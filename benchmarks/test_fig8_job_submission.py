"""Figure 8: CCDF of job submission rate; the 3.5x longitudinal growth."""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import submission


def test_fig8_job_submission(benchmark, bench_traces_2011, bench_traces_2019):
    def compute():
        return {
            "2011": submission.job_submission_ccdf(bench_traces_2011[0]),
            "2019-aggregate": submission.aggregate_job_submission_ccdf(
                bench_traces_2019),
            **{f"2019-{t.cell}": submission.job_submission_ccdf(t)
               for t in bench_traces_2019},
        }

    ccdfs = run_once(benchmark, compute)

    print("\nFigure 8 (reproduced): job submission rate CCDFs")
    for name, ccdf in ccdfs.items():
        med = ccdf.quantile_of_exceedance(0.5)
        p90 = ccdf.quantile_of_exceedance(0.1)
        print(f"  {name:>14s}: median={med:7.1f}/h  90%ile={p90:7.1f}/h")

    growth = submission.growth_factors(bench_traces_2011[0], bench_traces_2019)
    print(f"  mean growth {growth['mean_job_rate_growth']:.2f}x (paper 3.5x); "
          f"median growth {growth['median_job_rate_growth']:.2f}x (paper 3.7x)")

    # The shape claim: ~3.5x mean/median growth at comparable cell sizes.
    assert 2.5 < growth["mean_job_rate_growth"] < 4.5
    assert 2.5 < growth["median_job_rate_growth"] < 4.5
