"""Figure 5: average allocation by tier per cell."""

from benchmarks.conftest import run_once
from repro.analysis import allocation
from repro.analysis.common import TIER_ORDER


def test_fig5_allocation_by_cell(benchmark, bench_traces_2011,
                                 bench_traces_2019):
    def compute():
        return {
            resource: {
                **allocation.allocation_by_cell(bench_traces_2011, resource),
                **allocation.allocation_by_cell(bench_traces_2019, resource),
            }
            for resource in ("cpu", "mem")
        }

    by_cell = run_once(benchmark, compute)

    print("\nFigure 5 (reproduced): average allocation fraction by tier per cell")
    for resource, cells in by_cell.items():
        print(f"[{resource}]")
        for cell, fractions in cells.items():
            parts = "  ".join(f"{t}={fractions.get(t, 0.0):.3f}"
                              for t in TIER_ORDER)
            print(f"  {cell:>4s}: {parts}  total={sum(fractions.values()):.2f}")

    mem = by_cell["mem"]
    beb_mem = {cell: f["beb"] for cell, f in mem.items() if cell != "2011"}
    if "c" in beb_mem:
        # Cell c allocates the most best-effort-batch memory of all cells
        # (the paper measures ~140% of cell capacity for beb alone).
        assert beb_mem["c"] == max(beb_mem.values())
        assert beb_mem["c"] > 0.55
    # Some 2019 cells allocate above their total capacity.
    totals_2019 = [sum(f.values()) for cell, f in by_cell["cpu"].items()
                   if cell != "2011"]
    assert max(totals_2019) > 1.0
