"""Figure 12: CCDF of per-job resource-hours on log-log axes."""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import consumption


def test_fig12_usage_ccdf(benchmark, bench_traces_2011, bench_traces_2019):
    def compute():
        return {
            (era, resource): consumption.usage_ccdf(traces, resource)
            for era, traces in (("2011", bench_traces_2011),
                                ("2019", bench_traces_2019))
            for resource in ("cpu", "mem")
        }

    ccdfs = run_once(benchmark, compute)

    grid = [1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0]
    print("\nFigure 12 (reproduced): Pr(job resource-hours > x)")
    print(f"  x = {grid}")
    for (era, resource), ccdf in ccdfs.items():
        values = "  ".join(f"{ccdf.at(x):9.2e}" for x in grid)
        print(f"  {era} {resource}: {values}")

    for ccdf in ccdfs.values():
        # The distribution spans many orders of magnitude...
        assert ccdf.xs.max() / max(ccdf.xs.min(), 1e-12) > 1e5
        # ...and the tail decays roughly linearly on log-log axes above
        # 1 resource-hour: check the decade-over-decade decay ratio is
        # roughly constant (power law), not accelerating (exponential).
        p1, p10, p100 = ccdf.at(1.0), ccdf.at(10.0), ccdf.at(100.0)
        if p100 > 0:
            first = p1 / p10
            second = p10 / p100
            assert 0.2 < first / second < 5.0
