"""Simulator and pipeline throughput (not a paper figure).

Times the substrate itself: workload generation, the discrete-event
engine, and trace encoding, on a small fixed scenario so the numbers
are comparable across machines and revisions.
"""

import multiprocessing

import pytest

from repro.sim.driver import run_cells
from repro.trace import encode_cell, validate_trace
from repro.workload import scenarios_2019, small_test_scenario


def test_simulate_small_cell(benchmark):
    def build_and_run():
        return small_test_scenario(seed=5, machines_per_cell=24,
                                   horizon_hours=6.0).run()

    result = benchmark.pedantic(build_and_run, rounds=3, iterations=1,
                                warmup_rounds=0)
    assert result.counters.jobs_submitted > 50


def test_simulate_cells_serial(benchmark):
    """Three-cell batch through the driver's inline path (the baseline
    for the parallel speedup below)."""
    def build_and_run():
        return run_cells(scenarios_2019(seed=5, machines_per_cell=24,
                                        horizon_hours=6.0,
                                        cells=["a", "c", "g"]), workers=1)

    results = benchmark.pedantic(build_and_run, rounds=3, iterations=1,
                                 warmup_rounds=0)
    assert len(results) == 3


@pytest.mark.skipif(multiprocessing.cpu_count() < 2,
                    reason="parallel driver needs multiple CPUs to win")
def test_simulate_cells_parallel(benchmark):
    """The same three-cell batch fanned out over three worker processes.

    Only meaningful on multi-core machines; on a single CPU the pool
    adds pure oversubscription overhead, so the benchmark is skipped.
    """
    def build_and_run():
        return run_cells(scenarios_2019(seed=5, machines_per_cell=24,
                                        horizon_hours=6.0,
                                        cells=["a", "c", "g"]), workers=3)

    results = benchmark.pedantic(build_and_run, rounds=3, iterations=1,
                                 warmup_rounds=0)
    assert len(results) == 3


def test_encode_trace(benchmark):
    result = small_test_scenario(seed=5, machines_per_cell=24,
                                 horizon_hours=6.0).run()
    trace = benchmark.pedantic(encode_cell, args=(result,), rounds=3,
                               iterations=1, warmup_rounds=0)
    assert len(trace.instance_usage) > 0


def test_validate_trace(benchmark):
    trace = encode_cell(small_test_scenario(seed=5, machines_per_cell=24,
                                            horizon_hours=6.0).run())
    violations = benchmark.pedantic(validate_trace, args=(trace,), rounds=3,
                                    iterations=1, warmup_rounds=0)
    assert violations == []
