"""Simulator and pipeline throughput (not a paper figure).

Times the substrate itself: workload generation, the discrete-event
engine, and trace encoding, on a small fixed scenario so the numbers
are comparable across machines and revisions.
"""

from repro.trace import encode_cell, validate_trace
from repro.workload import small_test_scenario


def test_simulate_small_cell(benchmark):
    def build_and_run():
        return small_test_scenario(seed=5, machines_per_cell=24,
                                   horizon_hours=6.0).run()

    result = benchmark.pedantic(build_and_run, rounds=3, iterations=1,
                                warmup_rounds=0)
    assert result.counters.jobs_submitted > 50


def test_encode_trace(benchmark):
    result = small_test_scenario(seed=5, machines_per_cell=24,
                                 horizon_hours=6.0).run()
    trace = benchmark.pedantic(encode_cell, args=(result,), rounds=3,
                               iterations=1, warmup_rounds=0)
    assert len(trace.instance_usage) > 0


def test_validate_trace(benchmark):
    trace = encode_cell(small_test_scenario(seed=5, machines_per_cell=24,
                                            horizon_hours=6.0).run())
    violations = benchmark.pedantic(validate_trace, args=(trace,), rounds=3,
                                    iterations=1, warmup_rounds=0)
    assert violations == []
