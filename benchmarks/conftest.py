"""Benchmark fixtures: bench-scale traces built once per session.

The benchmark suite regenerates every paper table/figure, so it needs
the 2011 cell plus all eight 2019 cells.  Building them dominates the
wall clock (a couple of minutes); everything is cached at session scope
and the individual benchmarks time the *analysis* computations.

Environment knobs:
  REPRO_BENCH_MACHINES  machines per cell       (default 100)
  REPRO_BENCH_HOURS     trace horizon in hours  (default 48)
  REPRO_BENCH_SCALE     arrival-rate scale      (default 0.02)
  REPRO_BENCH_CELLS     2019 cells to simulate  (default all eight)
"""

from __future__ import annotations

import os
import time

import pytest

from repro.trace import encode_cell
from repro.workload import scenario_2011, scenarios_2019

MACHINES = int(os.environ.get("REPRO_BENCH_MACHINES", "100"))
HOURS = float(os.environ.get("REPRO_BENCH_HOURS", "48"))
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.02"))
CELLS = [c for c in os.environ.get("REPRO_BENCH_CELLS",
                                   "a,b,c,d,e,f,g,h").split(",") if c]
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture(scope="session")
def bench_trace_2011():
    t0 = time.time()
    trace = encode_cell(scenario_2011(
        seed=SEED, machines_per_cell=MACHINES, horizon_hours=HOURS,
        arrival_scale=SCALE,
    ).run())
    print(f"\n[bench setup] 2011 cell simulated in {time.time() - t0:.0f}s")
    return trace


@pytest.fixture(scope="session")
def bench_traces_2019():
    traces = []
    for scenario in scenarios_2019(seed=SEED, machines_per_cell=MACHINES,
                                   horizon_hours=HOURS, arrival_scale=SCALE,
                                   cells=CELLS):
        t0 = time.time()
        traces.append(encode_cell(scenario.run()))
        print(f"\n[bench setup] 2019 cell {scenario.name} simulated "
              f"in {time.time() - t0:.0f}s")
    return traces


@pytest.fixture(scope="session")
def bench_traces_2011(bench_trace_2011):
    return [bench_trace_2011]


def run_once(benchmark, fn, *args, **kwargs):
    """Time an analysis exactly once (they are deterministic and some
    are seconds-long over eight month-scale tables)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
