"""Benchmark fixtures: bench-scale traces built once per session.

The benchmark suite regenerates every paper table/figure, so it needs
the 2011 cell plus all eight 2019 cells.  Building them dominates the
wall clock (a couple of minutes); everything is cached at session scope
and the individual benchmarks time the *analysis* computations.  The
simulate-and-encode setup itself lives in :mod:`tests.trace_fixtures`,
shared with ``tests/conftest.py`` and parametrized on cell size.

Environment knobs (see :func:`tests.trace_fixtures.bench_scale`):
  REPRO_BENCH_MACHINES  machines per cell       (default 100)
  REPRO_BENCH_HOURS     trace horizon in hours  (default 48)
  REPRO_BENCH_SCALE     arrival-rate scale      (default 0.02)
  REPRO_BENCH_CELLS     2019 cells to simulate  (default all eight)
  REPRO_BENCH_SEED      simulation seed         (default 0)
"""

from __future__ import annotations

import pytest

from tests.trace_fixtures import bench_scale, build_trace, build_traces_2019

BENCH_SCALE = bench_scale()


@pytest.fixture(scope="session")
def bench_trace_2011():
    return build_trace("2011", BENCH_SCALE, verbose=True)


@pytest.fixture(scope="session")
def bench_traces_2019():
    return build_traces_2019(BENCH_SCALE, verbose=True)


@pytest.fixture(scope="session")
def bench_traces_2011(bench_trace_2011):
    return [bench_trace_2011]


def run_once(benchmark, fn, *args, **kwargs):
    """Time an analysis exactly once (they are deterministic and some
    are seconds-long over eight month-scale tables)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
