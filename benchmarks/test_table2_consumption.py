"""Table 2: the per-job resource-hour distribution (C², Pareto, hogs)."""

from benchmarks.conftest import run_once
from repro.analysis import consumption


def test_table2_consumption(benchmark, bench_traces_2011, bench_traces_2019):
    reports = run_once(benchmark, consumption.table2,
                       bench_traces_2011, bench_traces_2019)

    print("\nTable 2 (reproduced):")
    keys = ["n", "median", "mean", "variance", "90%ile", "99%ile", "99.9%ile",
            "maximum", "top 1% jobs load", "top 0.1% jobs load", "C^2",
            "Pareto(alpha)", "R^2"]
    header = f"{'measure':>20s}" + "".join(f"{name:>14s}" for name in reports)
    print(header)
    for key in keys:
        row = f"{key:>20s}"
        for rep in reports.values():
            value = rep.as_dict().get(key)
            row += f"{value:14.4g}" if value is not None else f"{'-':>14s}"
        print(row)

    cpu_2019 = reports["2019 cpu"]
    cpu_2011 = reports["2011 cpu"]
    mem_2019 = reports["2019 mem"]

    # Extremely heavy-tailed: C^2 orders of magnitude above exponential.
    for rep in reports.values():
        assert rep.summary.squared_cv > 50
    # Hogs: top 1% of jobs carries the overwhelming majority of the load.
    assert cpu_2019.summary.top_1pct_share > 0.60
    assert cpu_2019.summary.top_01pct_share > 0.25
    # Pareto tails fit with high R² and alpha < 1 (paper: 0.69-0.77).
    for name in ("2019 cpu", "2019 mem", "2011 cpu", "2011 mem"):
        fit = reports[name].pareto
        assert fit is not None, f"no Pareto fit for {name}"
        assert 0.4 < fit.alpha < 1.15, name
        assert fit.r_squared > 0.90, name
    # The 2011 tail is shallower (larger alpha) than 2019 for CPU.
    assert cpu_2011.pareto.alpha > cpu_2019.pareto.alpha - 0.05
    # Medians are tiny compared to means (mice vs hogs).
    assert cpu_2019.summary.median < 0.01 * cpu_2019.summary.mean
    assert mem_2019.summary.median < 0.01 * mem_2019.summary.mean
