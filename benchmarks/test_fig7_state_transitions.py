"""Figure 7: the state-transition diagram with occurrence counts (cell g)."""

from benchmarks.conftest import run_once
from repro.analysis import transitions


def test_fig7_state_transitions(benchmark, bench_traces_2019):
    by_name = {t.cell: t for t in bench_traces_2019}
    trace = by_name.get("g", bench_traces_2019[0])

    rows = run_once(benchmark, transitions.transition_table, trace)

    print(f"\nFigure 7 (reproduced): transitions in cell {trace.cell}")
    for src, dst, n_coll, n_inst in rows:
        print(f"  {src:>14s} -> {dst:<14s} collections={n_coll:8d} "
              f"instances={n_inst:9d}")

    counts = dict(((src, dst), (c, i)) for src, dst, c, i in rows)
    # The common paths dominate by orders of magnitude (the paper's
    # observation about the figure).
    common = counts[("PENDING", "RUNNING")][1]
    rare = counts.get(("DEAD(evict)", "PENDING"), (0, 0))[1]
    assert common > 0
    assert common > 10 * max(rare, 1)
    # Batch queueing shows up at the collection level.
    assert counts.get(("PENDING", "QUEUED"), (0, 0))[0] > 0
    # Every terminal cause appears somewhere.
    dead_states = {dst for _, dst, __, ___ in rows if dst.startswith("DEAD")}
    assert {"DEAD(finish)", "DEAD(kill)", "DEAD(fail)", "DEAD(evict)"} <= dead_states
