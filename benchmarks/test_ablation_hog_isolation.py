"""Ablation: hog/mouse isolation scheduling (paper section 10, direction 5).

Feeds the *simulated trace's* per-job NCU-hours into the multi-server
queue experiment: shared FCFS versus a mice-reserved partition, at
several loads.  The paper's conjecture — isolating the top 1% lets the
other 99% "experience what appears to be a very lightly loaded
environment" — is measured directly.
"""

import numpy as np

from repro.analysis.common import job_usage_integrals
from repro.queueing import run_isolation_experiment
from repro.table import concat


def test_ablation_hog_isolation(benchmark, bench_traces_2019):
    table = concat([job_usage_integrals(t) for t in bench_traces_2019[:4]])
    sizes = table.column("ncu_hours").values
    sizes = sizes[sizes > 0]

    def sweep():
        out = {}
        for rho in (0.7, 0.9):
            rng = np.random.default_rng(17)
            out[rho] = run_isolation_experiment(rng, sizes, n_servers=24,
                                                rho=rho, n_jobs=60_000)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1,
                                 warmup_rounds=0)

    print("\nAblation: hog isolation on trace job sizes "
          f"({len(sizes)} jobs; waits in mean-service units)")
    for rho, exp in results.items():
        print(f"  rho={rho}: mice shared mean={exp.mice_shared.mean_wait:8.2f} "
              f"p99={exp.mice_shared.p99_wait:8.2f}  ->  isolated "
              f"mean={exp.mice_isolated.mean_wait:8.4f} "
              f"p99={exp.mice_isolated.p99_wait:7.3f}  "
              f"(speedup {exp.mice_mean_speedup:,.0f}x; hogs "
              f"{exp.hogs_shared.mean_wait:.1f} -> {exp.hogs_isolated.mean_wait:.1f})")

    for exp in results.values():
        # Mice see a near-empty system under isolation.
        assert exp.mice_isolated.mean_wait < 0.5
        if exp.mice_shared.mean_wait > 1.0:
            assert exp.mice_mean_speedup > 10
    # The effect strengthens with load.
    assert (results[0.9].mice_shared.mean_wait
            > results[0.7].mice_shared.mean_wait)
