"""Ablation: how far can over-commitment be pushed? (paper section 10, Q2).

Sweeps the admission over-commit factor on a fixed small cell and
reports realized utilization, allocation, evictions and unplaced work —
the trade-off statistical multiplexing rides on.
"""

import dataclasses

import numpy as np

from repro.sim.cell import CellSim
from repro.util.rng import RngFactory
from repro.util.timeutil import HOUR_SECONDS
from repro.workload import small_test_scenario


def _run_with_overcommit(factor: float, seed: int = 3):
    scenario = small_test_scenario(seed=seed, machines_per_cell=30,
                                   horizon_hours=12.0, arrival_scale=0.015)
    scheduler = dataclasses.replace(scenario.config.scheduler,
                                    overcommit_cpu=factor,
                                    overcommit_mem=factor)
    config = dataclasses.replace(scenario.config, scheduler=scheduler)
    rng = RngFactory(scenario.seed).child(f"oc-{factor}")
    result = CellSim(config, scenario.machines, scenario.workload, rng).run()
    u = result.usage
    cap = result.capacity
    hours = config.horizon / HOUR_SECONDS
    util = float((u["avg_cpu"] * u["duration"]).sum()) / HOUR_SECONDS / (cap.cpu * hours)
    alloc = float((u["cpu_limit"] * u["duration"])[~u["in_alloc"]].sum()) \
        / HOUR_SECONDS / (cap.cpu * hours)
    return {
        "factor": factor,
        "cpu_utilization": util,
        "cpu_allocation": alloc,
        "evictions": result.counters.evictions,
        "preemption_victims": result.counters.preemption_victims,
    }


def test_ablation_overcommit(benchmark):
    factors = [1.0, 1.4, 1.9, 2.4]

    def sweep():
        return [_run_with_overcommit(f) for f in factors]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)

    print("\nAblation: over-commit factor sweep (one 2019-style cell)")
    print(f"  {'factor':>6s} {'cpu util':>9s} {'cpu alloc':>10s} "
          f"{'evictions':>10s} {'preempted':>10s}")
    for r in rows:
        print(f"  {r['factor']:6.1f} {r['cpu_utilization']:9.3f} "
              f"{r['cpu_allocation']:10.3f} {r['evictions']:10d} "
              f"{r['preemption_victims']:10d}")

    by_factor = {r["factor"]: r for r in rows}
    # No over-commit leaves capacity stranded: utilization clearly lower.
    assert by_factor[1.0]["cpu_utilization"] < by_factor[1.9]["cpu_utilization"]
    # Admission-bound allocation grows with the factor.
    assert by_factor[1.0]["cpu_allocation"] <= 1.02
    assert by_factor[1.9]["cpu_allocation"] > by_factor[1.0]["cpu_allocation"]
    # Pushing further yields diminishing returns: the last step buys less
    # utilization than the first.
    gain_first = (by_factor[1.4]["cpu_utilization"]
                  - by_factor[1.0]["cpu_utilization"])
    gain_last = (by_factor[2.4]["cpu_utilization"]
                 - by_factor[1.9]["cpu_utilization"])
    assert gain_last < gain_first + 0.05
