"""Paper-scale simulation bench: one 2019 cell, 2k machines, one week.

This is the tentpole measurement for the event-queue / batched-usage /
store-decode speed push: a single cell at a meaningful fraction of the
paper's scale (the real cells run ~12k machines for a month).  At this
size the run produces ~3.9M instance events and ~25M usage windows, so
each round takes on the order of a minute — the tests are marked
``slow`` and run once per invocation (``rounds=1``); deselect them with
``-m 'not slow'``.

Scenario construction is excluded from the timed region (it is
workload generation, not the engine under test), via ``pedantic``'s
``setup`` hook.

``test_paper_week_baseline`` deliberately passes no ``queue`` argument:
with ``CellConfig(queue=None)`` the module default (the binary heap)
applies, and the identical test body runs against revisions that
predate the queue knob — that is how the ``BENCH_history/`` *pre*
entry for this bench was captured.
"""

from __future__ import annotations

import pytest

from repro.workload.scenarios import scenarios_2019

#: 1 cell x 2000 machines x 1 simulated week, 5-minute usage windows.
PAPER_SCALE = dict(seed=7, machines_per_cell=2000, horizon_hours=168.0,
                   arrival_scale=0.02, sample_period=300.0, cells=["a"])

#: The run is fully deterministic at fixed seed; every configuration
#: below must reproduce exactly this event count (bit-exactness is
#: asserted structurally by tests/test_eventq.py; here we just pin the
#: scenario identity so a silent scenario drift can't masquerade as a
#: speedup).
EXPECTED_EVENTS = 3_889_504


def _run_week(benchmark, **scenario_kwargs):
    def setup():
        # CellSim mutates the scenario's machines/workload in place, so
        # every round needs a scenario built from scratch.
        sc = scenarios_2019(**PAPER_SCALE, **scenario_kwargs)[0]
        return (sc,), {}

    result = benchmark.pedantic(lambda sc: sc.run(), setup=setup,
                                rounds=1, iterations=1, warmup_rounds=0)
    assert len(result.events.instance_events) == EXPECTED_EVENTS
    return result


@pytest.mark.slow
def test_paper_week_baseline(benchmark):
    """Heap event queue (the module default) — the pre-PR baseline."""
    _run_week(benchmark)


@pytest.mark.slow
def test_paper_week_optimized(benchmark):
    """Calendar event queue — the optimized configuration."""
    _run_week(benchmark, queue="calendar")
