"""Table 1: 2011 vs 2019 trace comparison."""

from benchmarks.conftest import run_once
from repro.analysis import summary


def test_table1_summary(benchmark, bench_traces_2011, bench_traces_2019):
    rows = run_once(benchmark, summary.table1,
                    bench_traces_2011, bench_traces_2019)

    col_2011, col_2019 = rows
    print("\nTable 1 (reproduced):")
    for key in col_2011:
        print(f"  {key:22s} {col_2011[key]!s:>14s} {col_2019[key]!s:>14s}")

    # The paper's qualitative deltas.
    assert col_2019["cells"] > col_2011["cells"]
    assert col_2019["hardware_platforms"] > col_2011["hardware_platforms"]
    assert col_2019["machine_shapes"] > col_2011["machine_shapes"]
    assert col_2019["alloc_sets"] and not col_2011["alloc_sets"]
    assert col_2019["batch_queueing"] and not col_2011["batch_queueing"]
    assert col_2019["vertical_scaling"] and not col_2011["vertical_scaling"]
    assert col_2011["priority_values"].endswith("11")   # 0-11 bands
    assert col_2019["priority_values"].endswith("450")  # raw 0-450
