"""Ablation: what does the batch scheduler's queue buy? (paper section 3).

Runs the same workload with the best-effort-batch admission queue on and
off, comparing eviction/preemption churn and beb scheduling delay.  The
queue trades ready-state latency for a calmer cell: without it the whole
beb backlog lands on the scheduler at once.
"""

import dataclasses

import numpy as np

from repro.analysis import sched_delay
from repro.sim.cell import CellSim
from repro.trace import encode_cell
from repro.util.rng import RngFactory
from repro.workload import small_test_scenario


def _run(batch_queueing: bool, seed: int = 6):
    scenario = small_test_scenario(seed=seed, machines_per_cell=30,
                                   horizon_hours=12.0, arrival_scale=0.02)
    config = dataclasses.replace(scenario.config,
                                 batch_queueing=batch_queueing)
    rng = RngFactory(scenario.seed).child(f"bq-{batch_queueing}")
    result = CellSim(config, scenario.machines, scenario.workload, rng).run()
    trace = encode_cell(result)
    delays = sched_delay.scheduling_delays(trace)
    beb = delays.filter(delays.column("tier") == "beb")
    return {
        "queueing": batch_queueing,
        "evictions": result.counters.evictions,
        "preemption_victims": result.counters.preemption_victims,
        "beb_median_ready_delay": float(np.median(beb.column("delay").values))
        if len(beb) else 0.0,
        "queued_collections": result.counters.batch_queued,
    }


def test_ablation_batch_queue(benchmark):
    def sweep():
        return [_run(True), _run(False)]

    with_queue, without_queue = benchmark.pedantic(
        sweep, rounds=1, iterations=1, warmup_rounds=0)

    print("\nAblation: best-effort-batch admission queue")
    for r in (with_queue, without_queue):
        print(f"  queueing={str(r['queueing']):>5s}  "
              f"evictions={r['evictions']:5d}  "
              f"preempted={r['preemption_victims']:5d}  "
              f"beb median ready-delay={r['beb_median_ready_delay']:.1f}s  "
              f"queued={r['queued_collections']}")

    # The queue actually engages...
    assert with_queue["queued_collections"] > 0
    assert without_queue["queued_collections"] == 0
    # ...and the post-ready delay stays moderate either way (the batch
    # wait itself is deliberate and excluded from the metric).
    assert with_queue["beb_median_ready_delay"] < 120
