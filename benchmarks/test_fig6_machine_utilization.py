"""Figure 6: CCDF of machine utilization at the same local time."""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import machine_util


def test_fig6_machine_utilization(benchmark, bench_traces_2011,
                                  bench_traces_2019):
    def compute():
        out = {}
        for resource in ("cpu", "mem"):
            for trace in list(bench_traces_2019) + list(bench_traces_2011):
                out[(resource, trace.cell)] = \
                    machine_util.machine_utilization_ccdf(trace, resource)
        return out

    ccdfs = run_once(benchmark, compute)

    grid = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    print("\nFigure 6 (reproduced): Pr(machine utilization > x)")
    for resource in ("cpu", "mem"):
        print(f"[{resource}]  x = {grid}")
        for (res, cell), ccdf in ccdfs.items():
            if res != resource:
                continue
            values = "  ".join(f"{ccdf.at(x):5.2f}" for x in grid)
            print(f"  {cell:>4s}: {values}")

    summaries_2019 = [machine_util.summarize_machine_utilization(t, "cpu")
                      for t in bench_traces_2019]
    summary_2011 = machine_util.summarize_machine_utilization(
        bench_traces_2011[0], "cpu")
    medians_2019 = [s.median for s in summaries_2019]
    print(f"\n  median cpu util: 2011={summary_2011.median:.2f}  "
          f"2019 cells={[round(m, 2) for m in medians_2019]}")

    # Considerable variation across the 2019 cells at the median.
    assert max(medians_2019) - min(medians_2019) > 0.05
    # Utilization values are physical (reconciliation holds them <= 1).
    for ccdf in ccdfs.values():
        assert ccdf.xs.max() <= 1.0 + 1e-6
    # There are few machines above 80% CPU utilization in 2019.
    frac_above_80 = np.mean([s.fraction_above_80pct for s in summaries_2019])
    assert frac_above_80 < 0.35
