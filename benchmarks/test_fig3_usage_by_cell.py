"""Figure 3: average usage by tier, per cell (inter-cell variation)."""

from benchmarks.conftest import run_once
from repro.analysis import utilization
from repro.analysis.common import TIER_ORDER


def test_fig3_usage_by_cell(benchmark, bench_traces_2011, bench_traces_2019):
    def compute():
        return {
            resource: {
                **utilization.usage_by_cell(bench_traces_2011, resource),
                **utilization.usage_by_cell(bench_traces_2019, resource),
            }
            for resource in ("cpu", "mem")
        }

    by_cell = run_once(benchmark, compute)

    print("\nFigure 3 (reproduced): average usage fraction by tier per cell")
    for resource, cells in by_cell.items():
        print(f"[{resource}]")
        for cell, fractions in cells.items():
            parts = "  ".join(f"{t}={fractions.get(t, 0.0):.3f}"
                              for t in TIER_ORDER)
            print(f"  {cell:>4s}: {parts}")

    cpu = by_cell["cpu"]
    beb_by_cell = {cell: f["beb"] for cell, f in cpu.items() if cell != "2011"}
    mid_by_cell = {cell: f["mid"] for cell, f in cpu.items() if cell != "2011"}
    prod_by_cell = {cell: f["prod"] for cell, f in cpu.items() if cell != "2011"}

    if set(beb_by_cell) >= {"a", "b", "h"}:
        # Cell b is the batch-heaviest, cell h the mid-heaviest, and cell
        # a among the production-heaviest (section 4 / figure 3).
        assert beb_by_cell["b"] == max(beb_by_cell.values())
        assert mid_by_cell["h"] == max(mid_by_cell.values())
        top_prod = sorted(prod_by_cell, key=prod_by_cell.get, reverse=True)[:3]
        assert "a" in top_prod
    # Considerable inter-cell variation.
    assert max(beb_by_cell.values()) > 1.5 * min(beb_by_cell.values())
