"""Figure 9: task submission rates, new vs all (scheduling churn)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import submission


def test_fig9_task_submission(benchmark, bench_traces_2011, bench_traces_2019):
    def compute():
        return ([submission.summarize_submissions(t) for t in bench_traces_2019],
                submission.summarize_submissions(bench_traces_2011[0]))

    summaries_2019, summary_2011 = run_once(benchmark, compute)

    print("\nFigure 9 (reproduced): median tasks/hour")
    print(f"  2011: new={summary_2011.median_new_tasks_per_hour:7.0f} "
          f"all={summary_2011.median_all_tasks_per_hour:7.0f} "
          f"resubmit:new={summary_2011.resubmit_to_new_ratio:.2f}")
    for s in summaries_2019:
        print(f"  2019 {s.cell}: new={s.median_new_tasks_per_hour:7.0f} "
              f"all={s.median_all_tasks_per_hour:7.0f} "
              f"resubmit:new={s.resubmit_to_new_ratio:.2f}")

    growth = submission.growth_factors(bench_traces_2011[0], bench_traces_2019)
    print(f"  all-task median growth {growth['median_all_task_rate_growth']:.2f}x "
          f"(paper ~3.6x)")
    print(f"  resubmit:new 2011={growth['resubmit_ratio_2011']:.2f} (paper 0.66) "
          f"2019={growth['resubmit_ratio_2019']:.2f} (paper 2.26)")

    # Task-rate growth and the churn story.
    assert growth["median_all_task_rate_growth"] > 2.0
    assert growth["resubmit_ratio_2019"] > 2.0 * growth["resubmit_ratio_2011"]
    assert 0.3 < growth["resubmit_ratio_2011"] < 1.3
    assert 1.3 < growth["resubmit_ratio_2019"] < 4.0
