"""Figure 14: CCDF of peak NCU slack by vertical-scaling mode."""

from benchmarks.conftest import run_once
from repro.analysis import autoscaling


def test_fig14_autopilot_slack(benchmark, bench_traces_2019):
    ccdfs = run_once(benchmark, autoscaling.slack_ccdf_by_mode,
                     bench_traces_2019)

    grid = [10, 20, 30, 40, 50, 60, 70, 80, 90]
    print("\nFigure 14 (reproduced): Pr(peak slack % > x)")
    print(f"  x = {grid}")
    for mode in autoscaling.MODES:
        values = "  ".join(f"{ccdfs[mode].at(x):5.2f}" for x in grid)
        print(f"  {mode:>11s}: {values}")

    slack = autoscaling.summarize_slack(bench_traces_2019)
    print(f"  medians: { {k: round(v, 3) for k, v in slack.median_slack.items()} }")

    # The ordering the paper finds: fully < constrained < manual.
    assert slack.median_slack["fully"] < slack.median_slack["constrained"]
    assert slack.median_slack["constrained"] < slack.median_slack["none"]
    # Full autoscaling beats manual by a wide margin at most thresholds.
    for x in (30, 40, 50):
        assert ccdfs["fully"].at(float(x)) < ccdfs["none"].at(float(x))
