"""Section 5.2: termination analysis (kills, evictions, dependencies)."""

from benchmarks.conftest import run_once
from repro.analysis import terminations


def test_sec52_terminations(benchmark, bench_traces_2019):
    rep = run_once(benchmark, terminations.termination_report,
                   bench_traces_2019)

    print("\nSection 5.2 (reproduced):")
    for key, value in rep.as_dict().items():
        print(f"  {key:42s} {value:.4g}")
    print("  (paper: kill-with-parent 87%, without 41%; 3.2% of collections "
          "see evictions, 96.6% of those non-prod)")

    # The dependency effect on kill rates.
    assert rep.kill_rate_with_parent > 0.60
    assert 0.25 < rep.kill_rate_without_parent < 0.60
    assert rep.kill_rate_with_parent > rep.kill_rate_without_parent + 0.2
    # Evictions are rare at the collection level and almost entirely
    # outside the production tier.
    assert rep.collections_with_evictions_fraction < 0.15
    assert rep.evicted_collections_nonprod_fraction > 0.80
    assert rep.prod_collections_evicted_fraction < 0.02
