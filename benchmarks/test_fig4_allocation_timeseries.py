"""Figure 4: hourly allocation by tier — the over-commit picture."""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import allocation, utilization
from repro.analysis.common import TIER_ORDER


def test_fig4_allocation_timeseries(benchmark, bench_traces_2011,
                                    bench_traces_2019):
    def compute():
        out = {}
        for resource in ("cpu", "mem"):
            out[("2011", resource)] = allocation.allocation_timeseries(
                bench_traces_2011[0], resource)
            out[("2019", resource)] = allocation.mean_allocation_timeseries(
                bench_traces_2019, resource)
        return out

    series = run_once(benchmark, compute)

    print("\nFigure 4 (reproduced): mean allocation fraction of capacity")
    totals = {}
    for (era, resource), tiers in series.items():
        total = float(np.mean(sum(tiers[t] for t in TIER_ORDER)))
        totals[(era, resource)] = total
        parts = "  ".join(f"{t}={float(np.mean(v)):.3f}"
                          for t, v in sorted(tiers.items()))
        print(f"  {era} {resource}: total={total:.2f}  ({parts})")

    # 2019: both dimensions consistently allocated above 100% of capacity.
    assert totals[("2019", "cpu")] > 1.0
    assert totals[("2019", "mem")] > 0.9
    # 2011: CPU over-committed much more than memory.
    assert totals[("2011", "cpu")] > totals[("2011", "mem")] + 0.15
    # 2019 over-commits memory comparably to CPU (ratio far closer to 1).
    ratio_2019 = totals[("2019", "cpu")] / totals[("2019", "mem")]
    ratio_2011 = totals[("2011", "cpu")] / totals[("2011", "mem")]
    assert ratio_2019 < ratio_2011
    # Allocation sits well above usage in every era/resource.
    for era, traces in (("2011", bench_traces_2011), ("2019", bench_traces_2019)):
        for resource in ("cpu", "mem"):
            used = float(np.mean([
                utilization.total_usage_fraction(t, resource) for t in traces
            ]))
            assert totals[(era, resource)] > used
