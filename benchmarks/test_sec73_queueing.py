"""Section 7.3: the queueing-delay implications of the hog/mouse split."""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.common import job_usage_integrals
from repro.queueing import compare_isolation, pollaczek_khinchine
from repro.stats import squared_cv, top_share
from repro.table import concat


def test_sec73_queueing(benchmark, bench_traces_2019):
    def compute():
        table = concat([job_usage_integrals(t) for t in bench_traces_2019])
        sizes = table.column("ncu_hours").values
        sizes = sizes[sizes > 0]
        return sizes, compare_isolation(sizes, rho=0.5, hog_fraction=0.01)

    sizes, report = run_once(benchmark, compute)

    cv2 = squared_cv(sizes)
    print("\nSection 7.3 (reproduced):")
    print(f"  jobs={len(sizes)}  C^2={cv2:.0f}  "
          f"top-1% load share={top_share(sizes, 0.01):.1%}")
    print(f"  P-K mean delay at rho=0.5: {pollaczek_khinchine(0.5, cv2):,.0f} "
          "mean service times")
    print(f"  isolating hogs: shared={report.shared_delay:,.0f} -> "
          f"mice-only={report.mice_only_delay:.2f} "
          f"({report.speedup:,.0f}x faster)")

    # High C^2 implies high delay even at moderate load...
    assert pollaczek_khinchine(0.5, cv2) > 50
    # ...and isolating just the top 1% gives the mice a near-empty system.
    assert report.speedup > 20
    assert report.mice_only_delay < report.shared_delay / 10
