"""Figure 13: correlation of compute and memory consumption."""

from benchmarks.conftest import run_once
from repro.analysis import correlation


def test_fig13_cpu_mem_correlation(benchmark, bench_traces_2019):
    rep = run_once(benchmark, correlation.cpu_mem_correlation,
                   bench_traces_2019)

    print("\nFigure 13 (reproduced): NCU-hour bucket -> median NMU-hours")
    for c, m in list(zip(rep.bucket_centers, rep.median_nmu_hours))[:15]:
        print(f"  {c:8.1f} NCU-h -> {m:8.2f} NMU-h")
    print(f"  jobs={rep.n_jobs}  buckets={len(rep.bucket_centers)}  "
          f"Pearson r={rep.pearson_r:.3f} (paper: 0.97)")

    # Strongly correlated: CPU hogs are memory hogs too (section 7.2).
    assert rep.pearson_r > 0.85
    assert rep.n_jobs > 5_000
