"""Store scans vs whole-CSV loads: the point of the chunked format.

The paper's 2019 analysis relies on BigQuery because month-scale traces
cannot be re-read whole for every query.  This benchmark makes the
laptop-scale version of that argument: a time-windowed aggregate through
the store's parallel predicate-pushdown scan must beat loading the full
CSV trace and filtering in memory.

Environment knobs (defaults sized to the acceptance floor: a 48-hour,
200-machine cell):
  REPRO_BENCH_STORE_MACHINES  machines in the cell   (default 200)
  REPRO_BENCH_STORE_HOURS     horizon in hours       (default 48)
  REPRO_BENCH_STORE_SCALE     arrival-rate scale     (default 0.02)
"""

from __future__ import annotations

import os
import time

import pytest

from benchmarks.conftest import run_once
from repro.store import Agg, Between, default_workers, open_store
from repro.trace import encode_cell, load_trace, save_trace
from repro.workload import scenarios_2019

# Bench-scale knobs, not simulation inputs: they size the fixture and are
# echoed in the bench output, so reruns are comparable at equal settings.
MACHINES = int(os.environ.get("REPRO_BENCH_STORE_MACHINES", "200"))  # repro: noqa[RPR008] bench size knob
HOURS = float(os.environ.get("REPRO_BENCH_STORE_HOURS", "48"))  # repro: noqa[RPR008] bench size knob
SCALE = float(os.environ.get("REPRO_BENCH_STORE_SCALE", "0.02"))  # repro: noqa[RPR008] bench size knob

#: The query under test: CPU usage statistics over a window covering one
#: twelfth of the horizon, starting mid-trace (4 hours at the default 48).
WINDOW = (HOURS / 2 * 3600.0, (HOURS / 2 + HOURS / 12) * 3600.0)


@pytest.fixture(scope="module")
def trace_dirs(tmp_path_factory):
    """One bench-scale 2019 cell saved in both on-disk formats."""
    t0 = time.time()
    scenario = scenarios_2019(seed=7, machines_per_cell=MACHINES,
                              horizon_hours=HOURS, arrival_scale=SCALE,
                              cells=["d"])[0]
    trace = encode_cell(scenario.run())
    print(f"\n[bench setup] store-scan cell simulated in {time.time() - t0:.0f}s "
          f"({MACHINES} machines, {HOURS:.0f}h, "
          f"{len(trace.instance_usage)} usage rows)")
    root = tmp_path_factory.mktemp("store_scan")
    save_trace(trace, root / "csv", format="csv")
    save_trace(trace, root / "store", format="store")
    return root


def _query_csv(csv_dir):
    """The baseline: load the whole CSV trace, filter in memory."""
    trace = load_trace(csv_dir, format="csv")
    t = trace.instance_usage.column("start_time").values
    mask = (t >= WINDOW[0]) & (t <= WINDOW[1])
    values = trace.instance_usage.column("avg_cpu").values[mask]
    return int(mask.sum()), float(values.sum())


def _query_store(store_dir, workers):
    """The contender: parallel pushdown scan over the chunked store."""
    store = open_store(store_dir)
    scan = (store.scan("instance_usage")
                 .where(Between("start_time", *WINDOW))
                 .select("avg_cpu"))
    result = scan.aggregate(Agg("count"), Agg("sum", "avg_cpu"),
                            workers=workers)
    return int(result["count"]), float(result["sum(avg_cpu)"]), scan.last_stats


def test_parallel_pushdown_beats_whole_csv_load(benchmark, trace_dirs):
    workers = max(2, default_workers())

    # Warm the page cache identically for both contenders, then time each
    # end-to-end (open + read + filter + aggregate) from fresh objects.
    _query_csv(trace_dirs / "csv")
    _query_store(trace_dirs / "store", workers)

    t0 = time.perf_counter()
    csv_count, csv_sum = _query_csv(trace_dirs / "csv")
    csv_seconds = time.perf_counter() - t0

    def scan_store():
        return _query_store(trace_dirs / "store", workers)

    t1 = time.perf_counter()
    store_count, store_sum, stats = run_once(benchmark, scan_store)
    store_seconds = time.perf_counter() - t1

    print(f"\n[store scan] csv load+filter: {csv_seconds:.3f}s; "
          f"store pushdown ({workers} workers): {store_seconds:.3f}s "
          f"({csv_seconds / store_seconds:.1f}x); {stats}")

    # Same answer.
    assert store_count == csv_count
    assert store_sum == pytest.approx(csv_sum)
    # Pushdown actually pruned: the 4-hour window must skip chunks.
    assert 0 < stats.chunks_decoded < stats.chunks_total
    # And it pays off end-to-end.
    assert store_seconds < csv_seconds


def test_serial_pushdown_also_beats_whole_csv_load(trace_dirs):
    """Even without the process pool, pruning + projection should win."""
    _query_csv(trace_dirs / "csv")  # warm cache

    t0 = time.perf_counter()
    csv_count, csv_sum = _query_csv(trace_dirs / "csv")
    csv_seconds = time.perf_counter() - t0

    t1 = time.perf_counter()
    store_count, store_sum, stats = _query_store(trace_dirs / "store", None)
    store_seconds = time.perf_counter() - t1

    print(f"\n[store scan] csv: {csv_seconds:.3f}s; serial store: "
          f"{store_seconds:.3f}s ({csv_seconds / store_seconds:.1f}x); {stats}")

    assert store_count == csv_count
    assert store_sum == pytest.approx(csv_sum)
    assert store_seconds < csv_seconds
