"""Figure 2: hourly usage by tier, 2011 vs 2019."""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import utilization
from repro.analysis.common import TIER_ORDER


def test_fig2_usage_timeseries(benchmark, bench_traces_2011, bench_traces_2019):
    def compute():
        out = {}
        for resource in ("cpu", "mem"):
            out[("2011", resource)] = utilization.usage_timeseries(
                bench_traces_2011[0], resource)
            out[("2019", resource)] = utilization.mean_usage_timeseries(
                bench_traces_2019, resource)
        return out

    series = run_once(benchmark, compute)

    print("\nFigure 2 (reproduced): mean-of-series usage fractions")
    averages = {}
    for (era, resource), tiers in series.items():
        means = {t: float(np.mean(v)) for t, v in tiers.items()}
        averages[(era, resource)] = means
        parts = "  ".join(f"{t}={means[t]:.3f}" for t in TIER_ORDER)
        print(f"  {era} {resource}: {parts}  total={sum(means.values()):.3f}")

    for resource in ("cpu", "mem"):
        m11 = averages[("2011", resource)]
        m19 = averages[("2019", resource)]
        # Workload migration: beb grew substantially, free shrank (section 4).
        assert m19["beb"] > 1.3 * m11["beb"]
        assert m19["free"] < m11["free"]
        # beb is ~20% of cell capacity in 2019.
        assert 0.10 < m19["beb"] < 0.35
        # The mid tier exists only in 2019.
        assert m11["mid"] == 0.0 and m19["mid"] > 0.0
        # Production usage roughly constant across the eras.
        assert m19["prod"] > 0.5 * m11["prod"]
