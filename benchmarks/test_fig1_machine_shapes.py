"""Figure 1: frequency of machine shapes (CPU x memory)."""

from benchmarks.conftest import run_once
from repro.analysis import machines


def test_fig1_machine_shapes(benchmark, bench_traces_2019):
    points = run_once(benchmark, machines.machine_shapes, bench_traces_2019)

    print("\nFigure 1 (reproduced): machine shapes by frequency")
    total = sum(p.count for p in points)
    for p in points[:15]:
        print(f"  cpu={p.cpu:4.2f} mem={p.mem:4.2f}  "
              f"machines={p.count:5d} ({p.count / total:5.1%})")

    # The 2019 fleet's heterogeneity: many shapes, wide CPU:mem spread.
    assert len(points) >= 15
    ratios = [p.cpu / p.mem for p in points]
    assert max(ratios) / min(ratios) > 4
    fleet = machines.fleet_summary(bench_traces_2019)
    assert fleet["hardware_platforms"] == 7
