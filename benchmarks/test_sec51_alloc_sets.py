"""Section 5.1: alloc-set statistics."""

from benchmarks.conftest import run_once
from repro.analysis import allocsets


def test_sec51_alloc_sets(benchmark, bench_traces_2019):
    rep = run_once(benchmark, allocsets.alloc_set_report, bench_traces_2019)

    print("\nSection 5.1 (reproduced) vs paper:")
    paper = {
        "alloc sets / collections": 0.02,
        "alloc share of CPU allocations": 0.20,
        "alloc share of RAM allocations": 0.18,
        "jobs running in allocs": 0.15,
        "of which production tier": 0.95,
        "memory utilization inside allocs": 0.73,
        "memory utilization outside allocs": 0.41,
    }
    for key, value in rep.as_dict().items():
        print(f"  {key:38s} measured={value:6.3f}  paper={paper[key]:5.2f}")

    assert 0.005 < rep.alloc_set_fraction_of_collections < 0.05
    assert 0.08 < rep.alloc_cpu_allocation_share < 0.40
    assert 0.08 < rep.alloc_mem_allocation_share < 0.40
    assert 0.05 < rep.jobs_in_alloc_fraction < 0.30
    assert rep.in_alloc_prod_fraction > 0.80
    assert rep.mem_utilization_in_alloc > rep.mem_utilization_outside + 0.10
