"""Figure 11: CCDF of tasks per job by tier."""

from benchmarks.conftest import run_once
from repro.analysis import tasks_per_job
from repro.analysis.common import TIER_ORDER


def test_fig11_tasks_per_job(benchmark, bench_traces_2019):
    pct = run_once(benchmark, tasks_per_job.width_percentiles,
                   bench_traces_2019, (50, 80, 95))

    print("\nFigure 11 (reproduced): tasks-per-job percentiles")
    for tier in TIER_ORDER:
        if tier not in pct:
            continue
        print(f"  {tier:>5s}: 50%ile={pct[tier][50]:4.0f} "
              f"80%ile={pct[tier][80]:5.0f} 95%ile={pct[tier][95]:6.0f}")
    print("  (paper 95%iles: beb=498, mid=67, free=21, prod=3)")

    # Ordering of widths: beb widest, prod narrowest (the paper's point).
    assert pct["beb"][95] > pct["mid"][95] > pct["prod"][95]
    assert pct["free"][95] > pct["prod"][95]
    # beb jobs are dramatically wider than production at the tail.
    assert pct["beb"][95] > 10 * pct["prod"][95]
    # Most jobs in every tier are small.
    assert all(pct[t][50] <= 4 for t in pct)
