"""Figure 10: job scheduling delay CCDFs, per cell and per tier."""

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis import sched_delay
from repro.analysis.common import TIER_ORDER


def test_fig10_sched_delay(benchmark, bench_traces_2011, bench_traces_2019):
    def compute():
        return (sched_delay.delay_ccdf_by_tier(bench_traces_2011),
                sched_delay.delay_ccdf_by_tier(bench_traces_2019),
                [sched_delay.median_delay(t) for t in bench_traces_2019],
                sched_delay.median_delay(bench_traces_2011[0]))

    by_tier_2011, by_tier_2019, medians_2019, median_2011 = \
        run_once(benchmark, compute)

    grid = [1, 2, 5, 10, 20, 30, 60, 120]
    print("\nFigure 10 (reproduced): Pr(delay > x seconds)")
    print(f"  x = {grid}")
    for label, pooled in (("2011", by_tier_2011), ("2019", by_tier_2019)):
        for tier in TIER_ORDER:
            if tier not in pooled:
                continue
            values = "  ".join(f"{pooled[tier].at(x):5.2f}" for x in grid)
            print(f"  {label} {tier:>5s}: {values}")
    print(f"  medians: 2011={median_2011:.1f}s  "
          f"2019 mean-of-cells={np.mean(medians_2019):.1f}s")

    # Median scheduling delay decreased 2011 -> 2019.
    assert float(np.mean(medians_2019)) < median_2011
    # Production jobs are scheduled fastest in 2019 (figure 10b); allow a
    # small tolerance for statistical ties at the median.
    prod_median = by_tier_2019["prod"].quantile_of_exceedance(0.5)
    for tier in ("beb", "mid"):
        if tier in by_tier_2019:
            tier_median = by_tier_2019[tier].quantile_of_exceedance(0.5)
            assert prod_median <= tier_median + 0.5
    # The 2019 distribution has a tail (some jobs wait much longer).
    assert by_tier_2019["beb"].at(20.0) > 0.0
