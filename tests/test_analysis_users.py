"""Tests for the per-user concentration analysis."""

import numpy as np
import pytest

from repro.analysis import users


class TestCounts:
    def test_jobs_per_user_totals(self, traces_2019):
        counts = users.jobs_per_user(traces_2019)
        ce = traces_2019[0].collection_events
        n_jobs = int(((ce.column("type").values == "SUBMIT")
                      & (ce.column("collection_type").values == "job")).sum())
        assert sum(counts.values()) == n_jobs

    def test_usage_attribution_conserves_total(self, traces_2019):
        from repro.analysis.common import job_usage_integrals
        usage = users.usage_per_user(traces_2019)
        table = job_usage_integrals(traces_2019[0])
        assert sum(usage.values()) == pytest.approx(
            float(table.column("ncu_hours").sum()), rel=1e-6)


class TestZipf:
    def test_known_zipf_slope(self):
        counts = (1000 / np.arange(1, 200) ** 1.0).astype(int)
        assert users.zipf_exponent(counts) == pytest.approx(-1.0, abs=0.15)

    def test_uniform_counts_flat(self):
        assert abs(users.zipf_exponent([50] * 30)) < 0.05

    def test_too_few(self):
        with pytest.raises(ValueError):
            users.zipf_exponent([5, 3])


class TestReport:
    def test_report_shape(self, traces_2019):
        rep = users.user_report(traces_2019)
        assert rep.n_users > 5
        assert 0 < rep.top_user_job_share <= rep.top10_user_job_share <= 1
        assert 0 <= rep.top10_user_usage_share <= 1
        assert rep.zipf_slope < -0.3  # heavy-hitter population by design
        assert len(rep.as_dict()) == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            users.user_report([])
