"""Sampling-profiler tests: engines, output formats, the overhead budget.

The overhead test enforces the profiler's core promise — ``--profile``
costs less than 5% of simulator-like throughput — using the same
interleaved-minima discipline the bench gate uses: base and profiled
runs alternate, the minimum of each side is compared (the minimum is
the noise-robust estimator on shared CI machines), and the comparison
retries a couple of times before failing so one preempted round cannot
flake the suite.
"""

import re
import time

import pytest

from repro import obs
from repro.obs.profiler import (
    PROFILE_SCHEMA,
    SamplingProfiler,
    _signal_engine_available,
)

needs_signal = pytest.mark.skipif(
    not _signal_engine_available(),
    reason="SIGPROF/setitimer unavailable in this environment")


def _busy_work(iterations=60_000):
    """A simulator-shaped hot loop: dict traffic plus arithmetic."""
    counters = {}
    total = 0
    for i in range(iterations):
        key = i & 7
        counters[key] = counters.get(key, 0) + 1
        total += (i * 31) % 97
    return total, counters


def _helper_leaf(n):
    acc = 0
    for i in range(n):
        acc += i * i
    return acc


class TestConstruction:
    def test_rejects_bad_interval_and_engine(self):
        with pytest.raises(ValueError, match="positive"):
            SamplingProfiler(interval=0.0)
        with pytest.raises(ValueError, match="unknown profiler engine"):
            SamplingProfiler(engine="dtrace")

    def test_double_start_raises(self):
        prof = SamplingProfiler(engine="setprofile")
        prof.start()
        try:
            with pytest.raises(ValueError, match="already running"):
                prof.start()
        finally:
            prof.stop()

    def test_stop_is_idempotent(self):
        prof = SamplingProfiler(engine="setprofile")
        prof.stop()  # never started: a no-op
        assert prof.sample_count == 0


@needs_signal
class TestSignalEngine:
    def test_collects_samples_from_busy_loop(self):
        with SamplingProfiler(interval=0.001, engine="signal") as prof:
            _busy_work(300_000)
        assert prof.engine == "signal"
        assert prof.sample_count > 0
        hot = prof.hot_table(10)
        assert hot
        assert any("_busy_work" in row["func"] for row in hot)

    def test_restores_previous_handler(self):
        import signal as signal_mod
        before = signal_mod.getsignal(signal_mod.SIGPROF)
        with SamplingProfiler(interval=0.001, engine="signal"):
            _busy_work(50_000)
        assert signal_mod.getsignal(signal_mod.SIGPROF) == before


class TestSetprofileEngine:
    def test_collects_samples_via_call_stride(self):
        with SamplingProfiler(engine="setprofile", stride=10) as prof:
            for _ in range(500):
                _helper_leaf(5)
        assert prof.engine == "setprofile"
        assert prof.sample_count > 0
        assert any("_helper_leaf" in row["func"]
                   for row in prof.hot_table(20))

    def test_restores_previous_profile_hook(self):
        import sys
        assert sys.getprofile() is None
        with SamplingProfiler(engine="setprofile"):
            _helper_leaf(10)
        assert sys.getprofile() is None


class TestOutputs:
    @pytest.fixture(scope="class")
    def profiled(self):
        with SamplingProfiler(engine="setprofile", stride=5) as prof:
            for _ in range(400):
                _helper_leaf(10)
        return prof

    def test_hot_table_shape_and_ordering(self, profiled):
        rows = profiled.hot_table(10)
        assert all(set(row) == {"func", "self", "cum", "self_pct", "cum_pct"}
                   for row in rows)
        selfs = [row["self"] for row in rows]
        assert selfs == sorted(selfs, reverse=True)
        for row in rows:
            assert row["cum"] >= row["self"]
            assert row["cum"] <= profiled.sample_count

    def test_collapsed_lines_are_flamegraph_format(self, profiled):
        lines = profiled.collapsed()
        assert lines == sorted(lines)
        for line in lines:
            # Exactly one space: the separator before the sample count
            # (frame labels fold internal spaces to underscores).
            assert re.match(r"^\S+(;\S+)* \d+$", line)
            stack, count = line.rsplit(" ", 1)
            assert int(count) > 0
            assert all(part for part in stack.split(";"))

    def test_write_collapsed(self, profiled, tmp_path):
        path = tmp_path / "profile.collapsed"
        n = profiled.write_collapsed(path)
        assert n == len(profiled.collapsed())
        assert len(path.read_text().splitlines()) == n

    def test_to_dict_payload(self, profiled):
        payload = profiled.to_dict(top=5)
        assert payload["schema"] == PROFILE_SCHEMA
        assert payload["engine"] == "setprofile"
        assert payload["samples"] == profiled.sample_count
        assert len(payload["hot"]) <= 5

    def test_report_embeds_and_renders_profile(self, profiled):
        with obs.scoped_registry():
            obs.inc("sim.events_processed")
            report = obs.run_report(command="simulate",
                                    profile=profiled.to_dict())
        text = obs.render_report(report)
        assert "profile (setprofile engine" in text
        assert "self%" in text

    def test_report_without_profile_has_no_section(self):
        with obs.scoped_registry():
            report = obs.run_report(command="simulate")
        assert "profile" not in report
        assert "profile (" not in obs.render_report(report)


@needs_signal
class TestOverheadBudget:
    BUDGET = 1.05
    ROUNDS = 5
    ATTEMPTS = 3

    def _measure(self):
        """Interleaved minima: (base_min, profiled_min) over ROUNDS."""
        base, profiled = [], []
        for _ in range(self.ROUNDS):
            t0 = time.perf_counter()
            _busy_work()
            base.append(time.perf_counter() - t0)
            prof = SamplingProfiler(engine="signal")
            prof.start()
            t0 = time.perf_counter()
            _busy_work()
            profiled.append(time.perf_counter() - t0)
            prof.stop()
        return min(base), min(profiled)

    def test_signal_engine_overhead_under_five_percent(self):
        last = None
        for _ in range(self.ATTEMPTS):
            base_min, prof_min = self._measure()
            last = (base_min, prof_min)
            if prof_min <= base_min * self.BUDGET:
                return
        base_min, prof_min = last
        raise AssertionError(
            f"profiler overhead {prof_min / base_min - 1.0:.1%} exceeds "
            f"{self.BUDGET - 1.0:.0%} budget "
            f"(base {base_min * 1e3:.1f}ms, profiled {prof_min * 1e3:.1f}ms)")
