"""Campaign spec parsing, validation, and deterministic grid expansion."""

import pytest

from repro.campaign import CampaignSpecError, load_spec, parse_spec
from repro.campaign.spec import DEFAULT_PARAMS, MAX_POINTS


def minimal(**overrides) -> dict:
    spec = {"campaign": "t", "base": {"machines": 8, "hours": 2.0},
            "grid": {"overcommit_cpu": [1.2, 1.9]}, "seeds": [0, 1]}
    spec.update(overrides)
    return spec


class TestValidation:
    def test_minimal_spec_parses(self):
        spec = parse_spec(minimal())
        assert spec.name == "t"
        assert spec.seeds == (0, 1)
        assert len(spec.points) == 4

    def test_missing_name_rejected(self):
        with pytest.raises(CampaignSpecError, match="campaign"):
            parse_spec({"grid": {}})

    def test_unknown_spec_key_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown spec keys"):
            parse_spec(minimal(extra=1))

    def test_unknown_parameter_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown campaign parameter"):
            parse_spec(minimal(base={"warp_factor": 9}))
        with pytest.raises(CampaignSpecError, match="unknown campaign parameter"):
            parse_spec(minimal(grid={"warp_factor": [9]}))

    def test_bad_values_rejected(self):
        for base in ({"machines": 0}, {"machines": 2.5}, {"hours": -1},
                     {"scale": 0}, {"era": "2025"}, {"cells": []},
                     {"overcommit_cpu": 0.5}, {"machines": True},
                     {"faults": "meteor"}, {"faults": 3},
                     {"fault_rate": 0}, {"archetype_mix": "nobody"}):
            with pytest.raises(CampaignSpecError):
                parse_spec(minimal(base=base))

    def test_fault_axes_accepted(self):
        spec = parse_spec(minimal(
            base={"machines": 8, "hours": 2.0, "archetype_mix": "mixed"},
            grid={"faults": [None, "light", "heavy"],
                  "fault_rate": [0.5, 2.0]},
            seeds=[0]))
        assert len(spec.points) == 6
        assert spec.base["archetype_mix"] == "mixed"
        values = {p.grid_values["faults"] for p in spec.points}
        assert values == {None, "light", "heavy"}
        # Defaults leave fault injection off.
        assert DEFAULT_PARAMS["faults"] is None
        assert DEFAULT_PARAMS["archetype_mix"] is None
        assert DEFAULT_PARAMS["fault_rate"] == 1.0

    def test_era_cell_consistency(self):
        with pytest.raises(CampaignSpecError, match="unknown 2019 cells"):
            parse_spec(minimal(base={"cells": ["z"]}))
        with pytest.raises(CampaignSpecError, match="era 2011"):
            parse_spec(minimal(base={"era": "2011", "cells": ["d"]}))
        spec = parse_spec(minimal(base={"era": "2011", "cells": ["2011"]}))
        assert spec.base["cells"] == ["2011"]

    def test_cells_comma_string_normalized(self):
        spec = parse_spec(minimal(base={"cells": "a,b"}))
        assert spec.base["cells"] == ["a", "b"]

    def test_seeds_validation(self):
        with pytest.raises(CampaignSpecError, match="seeds"):
            parse_spec(minimal(seeds=[]))
        with pytest.raises(CampaignSpecError, match="seeds"):
            parse_spec(minimal(seeds=[0, "x"]))
        with pytest.raises(CampaignSpecError, match="duplicate"):
            parse_spec(minimal(seeds=[0, 0]))

    def test_empty_grid_axis_rejected(self):
        with pytest.raises(CampaignSpecError, match="non-empty list"):
            parse_spec(minimal(grid={"overcommit_cpu": []}))

    def test_point_explosion_capped(self):
        grid = {"machines": list(range(1, MAX_POINTS + 2))}
        with pytest.raises(CampaignSpecError, match="limit"):
            parse_spec(minimal(grid=grid))

    def test_invalid_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(CampaignSpecError, match="not valid JSON"):
            load_spec(path)


class TestExpansion:
    def test_full_resolution_of_params(self):
        spec = parse_spec(minimal())
        for point in spec.points:
            assert set(point.params) == set(DEFAULT_PARAMS)

    def test_expansion_order_axes_sorted_seeds_innermost(self):
        spec = parse_spec(minimal(
            grid={"overcommit_mem": [1.1, 1.8], "overcommit_cpu": [1.2]},
            seeds=[5, 7]))
        combos = [(p.grid_values["overcommit_cpu"],
                   p.grid_values["overcommit_mem"], p.seed)
                  for p in spec.points]
        assert combos == [(1.2, 1.1, 5), (1.2, 1.1, 7),
                          (1.2, 1.8, 5), (1.2, 1.8, 7)]
        assert [p.point_id for p in spec.points] == [0, 1, 2, 3]

    def test_gridless_spec_is_one_point_per_seed(self):
        spec = parse_spec(minimal(grid={}, seeds=[0, 1, 2]))
        assert len(spec.points) == 3
        assert all(p.grid_values == {} for p in spec.points)

    def test_keys_unique_across_points(self):
        spec = parse_spec(minimal())
        keys = [p.key for p in spec.points]
        assert len(set(keys)) == len(keys)

    def test_example_specs_parse(self):
        from pathlib import Path
        examples = Path(__file__).resolve().parents[1] / "examples"
        for name in ("campaign_overcommit.json", "campaign_smoke.json",
                     "campaign_failures.json"):
            spec = load_spec(examples / name)
            assert spec.points
