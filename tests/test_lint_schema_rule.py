"""RPR001 schema-consistency fixtures: each resolution path + precision.

The rule's contract is precision-first: everything it flags is a real
mismatch against repro/trace/schema.py, and anything it cannot prove
(parameters, derived tables) stays unchecked.
"""

import textwrap

from repro.lint import lint_source
from repro.trace.schema import TABLE_COLUMNS

PATH = "src/repro/analysis/fixture.py"


def lint(source):
    return lint_source(textwrap.dedent(source), PATH, select=["RPR001"])


def test_flags_bad_column_via_dataset_property():
    source = """\
        def cpu(trace):
            return trace.instance_usage.column("cpu_avg")
    """
    violations = lint(source)
    assert len(violations) == 1
    assert "'cpu_avg'" in violations[0].message
    assert "'instance_usage'" in violations[0].message
    # The fix is discoverable from the message itself.
    assert "avg_cpu" in violations[0].message


def test_allows_real_columns_via_dataset_property():
    source = """\
        def cpu(trace):
            usage = trace.instance_usage
            return usage.column("avg_cpu"), usage.select("tier", "max_mem")
    """
    assert lint(source) == []


def test_flags_bad_column_via_tables_subscript():
    source = """\
        def capacities(ds):
            return ds.tables["machine_events"].select("time", "capacity_cpu")
    """
    violations = lint(source)
    assert len(violations) == 1
    assert "'capacity_cpu'" in violations[0].message


def test_tracks_assignments_within_function():
    source = """\
        def report(trace):
            events = trace.collection_events
            good = events.column("priority")
            bad = events.column("prio")
            return good, bad
    """
    violations = lint(source)
    assert len(violations) == 1
    assert "'prio'" in violations[0].message
    assert violations[0].line == 4


def test_reassignment_to_unknown_stops_checking():
    source = """\
        def report(trace, derive):
            events = trace.collection_events
            events = derive(events)
            return events.column("no_such_column")
    """
    assert lint(source) == []


def test_unresolvable_receivers_are_not_checked():
    source = """\
        def helper(table):
            return table.column("anything_goes")
    """
    assert lint(source) == []


def test_flags_scan_select_and_chained_where():
    source = """\
        def query(store):
            bad = store.scan("machine_events").select("mem_cap")
            chained = store.scan("instance_usage").where(ok).select("bogus")
            return bad, chained
    """
    violations = lint(source)
    assert len(violations) == 2
    assert "'mem_cap'" in violations[0].message
    assert "'machine_events'" in violations[0].message
    assert "'bogus'" in violations[1].message
    assert "'instance_usage'" in violations[1].message


def test_flags_predicate_columns_under_where():
    source = """\
        from repro.store import Between, Compare

        def query(store):
            scan = store.scan("collection_events")
            return scan.where(Compare("prio", ">=", 360)).select("user")
    """
    violations = lint(source)
    assert len(violations) == 1
    assert "'prio'" in violations[0].message
    assert "predicate Compare" in violations[0].message


def test_allows_valid_scan_chains_and_to_table():
    source = """\
        from repro.store import Between, Compare

        def query(store):
            scan = store.scan("instance_usage") \\
                .where(Between("start_time", 0.0, 3600.0)) \\
                .select("avg_cpu", "tier")
            table = store.scan("machine_events").to_table()
            return scan, table.column("cpu_capacity")
    """
    assert lint(source) == []


def test_flags_bad_column_after_to_table():
    source = """\
        def query(store):
            table = store.scan("machine_events").to_table()
            return table.column("platform")
    """
    violations = lint(source)
    assert len(violations) == 1
    assert "'machine_events'" in violations[0].message


def test_table_preserving_methods_keep_tracking():
    source = """\
        def report(trace):
            tiers = trace.instance_events.distinct("tier")
            return trace.instance_events.filter(ok).column("machne_id")
    """
    violations = lint(source)
    assert len(violations) == 1
    assert "'machne_id'" in violations[0].message


def test_suppression():
    source = """\
        def cpu(trace):
            return trace.instance_usage.column("cpu_avg")  # repro: noqa[RPR001]
    """
    assert lint(source) == []


def test_schema_fixture_columns_exist():
    # The fixtures above lean on these schema facts; pin them so a future
    # schema change updates the tests rather than silently hollowing them.
    assert "avg_cpu" in TABLE_COLUMNS["instance_usage"]
    assert "cpu_capacity" in TABLE_COLUMNS["machine_events"]
    assert "platform" not in TABLE_COLUMNS["machine_events"]
    assert "priority" in TABLE_COLUMNS["collection_events"]
