"""Crash-safety fault injection for the plumbing itself: SIGKILL a
campaign worker mid-point-write and a recorder mid-frame, then prove the
recovery path resumes cleanly.

These are real ``kill -9`` tests — a subprocess writes a prefix of a
JSONL line, fsyncs, signals readiness, and is killed while the tail of
the record is still unwritten.  That is exactly the on-disk state an
OOM-killed worker leaves behind: a torn final line.  Recovery
(:func:`repro.obs.recorder.recover_jsonl`) must drop only the torn
line; the campaign cache probe must then rerun only the damaged point,
and a frames journal must stay schema-valid end to end.
"""

import io
import json
import signal
import subprocess
import sys
import textwrap

from repro.campaign import load_point_result, parse_spec, run_campaign
from repro.campaign.runner import result_path
from repro.obs.recorder import iter_frames, recover_jsonl

#: Subprocess body: write ``prefix`` to the target file, fsync so the
#: torn bytes are durably on disk, print a marker, then hang until
#: killed.  The parent SIGKILLs it mid-"write" — between the fsync'd
#: prefix and the never-written suffix.
_TORN_WRITER = textwrap.dedent("""
    import os, sys
    path, prefix = sys.argv[1], sys.argv[2]
    f = open(path, "a", encoding="utf-8")
    f.write(prefix)
    f.flush()
    os.fsync(f.fileno())
    print("TORN", flush=True)
    import time
    time.sleep(3600)
""")


def _kill_mid_write(path, prefix: str) -> None:
    """Append ``prefix`` to ``path`` from a subprocess, SIGKILL it."""
    proc = subprocess.Popen(
        [sys.executable, "-c", _TORN_WRITER, str(path), prefix],
        stdout=subprocess.PIPE, text=True)
    try:
        assert proc.stdout.readline().strip() == "TORN"
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
    assert proc.returncode == -signal.SIGKILL


def _spec():
    """A seconds-fast two-point campaign (one grid axis, one seed)."""
    return parse_spec({
        "campaign": "crashy",
        "base": {"machines": 8, "hours": 2.0, "scale": 0.012,
                 "sample_period": 300.0, "cells": ["d"]},
        "grid": {"overcommit_cpu": [1.2, 1.9]},
        "seeds": [0],
    })


class TestCampaignWorkerKilled:
    def test_resume_reruns_only_the_damaged_point(self, tmp_path):
        spec = _spec()
        cold = run_campaign(spec, tmp_path)
        assert (cold.ran, cold.errors) == (2, 0)
        intact = {p.key: result_path(tmp_path, p.key).read_text()
                  for p in spec.points}

        # Replay the crash: the first point's result file is replaced by
        # the torn prefix a SIGKILLed worker would leave behind.
        victim, survivor = spec.points
        path = result_path(tmp_path, victim.key)
        full_line = path.read_text()
        path.unlink()
        _kill_mid_write(path, full_line[:len(full_line) // 2])

        # The torn file is unreadable as a result: the probe discards it.
        assert load_point_result(tmp_path, victim.key) is None
        assert load_point_result(tmp_path, survivor.key) is not None

        resumed = run_campaign(spec, tmp_path)
        # Exactly the damaged point reran; the survivor was a cache hit.
        assert (resumed.total, resumed.hits, resumed.ran,
                resumed.errors) == (2, 1, 1, 0)
        # The rerun reproduced the identical result (volatile wall-clock
        # aside) and the survivor's bytes never changed.
        assert result_path(tmp_path, survivor.key).read_text() == \
            intact[survivor.key]
        rerun = json.loads(result_path(tmp_path, victim.key).read_text())
        original = json.loads(intact[victim.key])
        rerun.pop("wall"), original.pop("wall")
        assert rerun == original

    def test_kill_between_points_loses_at_most_one(self, tmp_path):
        # A worker killed *between* point writes leaves N intact files;
        # resume reruns only what is missing.
        spec = _spec()
        run_campaign(spec, tmp_path)
        lost, kept = spec.points
        result_path(tmp_path, lost.key).unlink()
        resumed = run_campaign(spec, tmp_path)
        assert (resumed.hits, resumed.ran, resumed.errors) == (1, 1, 0)


class TestRecorderKilledMidFrame:
    def _frame(self, seq: int) -> dict:
        return {"schema": "repro.obs.frames/1", "kind": "cell",
                "seq": seq, "cell": "d", "t": float(seq) * 3600.0,
                "counters": {"sim.jobs_submitted": seq},
                "wall": {"elapsed_s": 0.1}}

    def test_recovery_drops_only_the_torn_frame(self, tmp_path):
        path = tmp_path / "frames.jsonl"
        good = [self._frame(i) for i in range(3)]
        with open(path, "w", encoding="utf-8") as f:
            for frame in good:
                f.write(json.dumps(frame, sort_keys=True) + "\n")
        torn = json.dumps(self._frame(3), sort_keys=True)
        _kill_mid_write(path, torn[: len(torn) // 2])

        dropped = recover_jsonl(path)
        assert dropped > 0
        # Every surviving line is schema-valid and the torn tail is gone.
        text = path.read_text(encoding="utf-8")
        frames = list(iter_frames(io.StringIO(text), source=str(path)))
        assert [f["seq"] for f in frames] == [0, 1, 2]
        assert frames == good

    def test_recovered_journal_accepts_appends(self, tmp_path):
        # After recovery the journal keeps working: the next writer
        # appends frame 3 where the torn frame 3 used to be.
        path = tmp_path / "frames.jsonl"
        with open(path, "w", encoding="utf-8") as f:
            f.write(json.dumps(self._frame(0), sort_keys=True) + "\n")
        torn = json.dumps(self._frame(1), sort_keys=True)
        _kill_mid_write(path, torn[:10])
        recover_jsonl(path)
        with open(path, "a", encoding="utf-8") as f:
            f.write(json.dumps(self._frame(1), sort_keys=True) + "\n")
        frames = list(iter_frames(io.StringIO(path.read_text()),
                                  source=str(path)))
        assert [f["seq"] for f in frames] == [0, 1]
