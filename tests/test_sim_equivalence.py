"""Whole-simulation bit-equality across the performance knobs.

Neither the event-queue implementation (heap vs calendar) nor the usage
noise kernel (blocked per-interval draws vs the fused one-RNG-block
path) may move a single byte of simulator output: event tuples,
counters, and every float in the usage trajectories must be identical.
These are the acceptance tests behind the goldens' stability — a golden
failure points at *what* changed, these point at *which knob* broke it.

Scenarios are single-use (``CellSim`` consumes the scenario's machine
and workload objects), so each configuration rebuilds from scratch and
determinism does the rest.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.workload.scenarios import small_test_scenario


def run_config(era: str, queue=None, fused: bool = False):
    sc = small_test_scenario(seed=13, era=era, machines_per_cell=40,
                             horizon_hours=18.0, arrival_scale=0.03,
                             queue=queue)
    cfg = dataclasses.replace(
        sc.config,
        usage=dataclasses.replace(sc.config.usage, fused_sampling=fused))
    return dataclasses.replace(sc, config=cfg).run()


def assert_results_byte_equal(a, b, label: str) -> None:
    assert a.events.collection_events == b.events.collection_events, label
    assert a.events.instance_events == b.events.instance_events, label
    assert a.events.machine_events == b.events.machine_events, label
    assert a.events.resubmit_events == b.events.resubmit_events, label
    assert a.counters == b.counters, label
    assert set(a.usage) == set(b.usage), label
    for key in a.usage:
        ua, ub = a.usage[key], b.usage[key]
        assert ua.dtype == ub.dtype and ua.shape == ub.shape, (label, key)
        # tobytes catches even -0.0 vs 0.0 and NaN payload differences
        # that array_equal would wave through.
        assert ua.tobytes() == ub.tobytes(), (label, key)


@pytest.mark.parametrize("era", ["2019", "2011"])
def test_all_knob_combinations_byte_identical(era):
    base = run_config(era, queue="heap", fused=False)
    assert base.counters.jobs_submitted > 20  # non-trivial run
    for queue, fused in (("calendar", False), ("heap", True),
                         ("calendar", True), (None, False)):
        other = run_config(era, queue=queue, fused=fused)
        assert_results_byte_equal(
            base, other, f"era={era} queue={queue} fused={fused}")


def test_usage_rows_are_nontrivial():
    """Guard against the equivalence test passing vacuously: the
    scenario must actually exercise the usage sampler."""
    result = run_config("2019")
    total_rows = sum(arr.shape[0] for arr in result.usage.values()
                     if isinstance(arr, np.ndarray) and arr.ndim >= 1)
    assert total_rows > 100
