"""Unit tests for C², distribution summaries, and hog/mouse splits."""

import numpy as np
import pytest

from repro.stats import squared_cv, summarize, top_share
from repro.stats.tails import split_hogs_mice


class TestSquaredCv:
    def test_constantish_sample_near_zero(self):
        assert squared_cv([5.0, 5.0, 5.0, 5.00001]) < 1e-9

    def test_exponential_is_about_one(self):
        samples = np.random.default_rng(1).exponential(3.0, 200_000)
        assert squared_cv(samples) == pytest.approx(1.0, abs=0.05)

    def test_scale_invariant(self):
        rng = np.random.default_rng(2)
        x = rng.lognormal(0, 2, 10_000)
        assert squared_cv(x) == pytest.approx(squared_cv(x * 1000), rel=1e-9)

    def test_requires_two_samples(self):
        with pytest.raises(ValueError):
            squared_cv([1.0])

    def test_zero_mean_rejected(self):
        with pytest.raises(ValueError):
            squared_cv([-1.0, 1.0])


class TestTopShare:
    def test_uniform_top_1pct(self):
        x = np.ones(1000)
        assert top_share(x, 0.01) == pytest.approx(0.01)

    def test_single_hog_dominates(self):
        x = np.concatenate([np.full(99, 0.001), [1000.0]])
        assert top_share(x, 0.01) > 0.99

    def test_fraction_one_is_total(self):
        assert top_share([1.0, 2.0], 1.0) == 1.0

    def test_at_least_one_sample_counted(self):
        assert top_share([1.0, 9.0], 0.001) == pytest.approx(0.9)

    def test_all_zero(self):
        assert top_share([0.0, 0.0], 0.01) == 0.0

    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            top_share([1.0], 0.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            top_share([-1.0, 2.0], 0.5)


class TestSplit:
    def test_partition_sizes(self):
        split = split_hogs_mice(np.arange(1, 201, dtype=float), 0.01)
        assert split.hog_count == 2
        assert split.mouse_count == 198

    def test_hogs_are_largest(self):
        x = np.asarray([5.0, 1.0, 9.0, 3.0])
        split = split_hogs_mice(x, 0.25)
        assert split.hogs.tolist() == [9.0]
        assert split.threshold == 9.0

    def test_shares_sum_to_one(self):
        rng = np.random.default_rng(5)
        x = rng.pareto(0.9, 5000) + 1
        split = split_hogs_mice(x, 0.01)
        assert split.hog_load_share + split.mice.sum() / x.sum() == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            split_hogs_mice([])


class TestSummarize:
    def test_table2_fields(self):
        rng = np.random.default_rng(9)
        x = rng.lognormal(0, 2, 10_000)
        s = summarize(x)
        assert s.n == 10_000
        assert s.median < s.mean  # right-skewed
        assert s.p90 < s.p99 < s.p999 <= s.maximum
        assert 0 < s.top_01pct_share < s.top_1pct_share <= 1
        d = s.as_dict()
        assert "C^2" in d and "top 1% jobs load" in d

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            summarize([-1.0, 2.0])

    def test_needs_two(self):
        with pytest.raises(ValueError):
            summarize([1.0])
