"""Property-based tests for event-log invariants under fault injection.

Hypothesis draws a small workload *and* a fault-injection configuration
(correlated crash/outage rates, maintenance and upgrade schedules, a
resubmission policy); every run must satisfy the event-log invariants
that make traces analyzable:

* every instance incarnation (SCHEDULE ..) ends in exactly one closing
  event — a terminal EVICT/FAIL/FINISH/KILL, or the requeueing SUBMIT
  of a graceful drain — never a double-kill or a silent drop;
* no instance is scheduled onto a machine while it is down;
* replaying the event log never drives a machine's allocation negative;
* resubmission backoff delays strictly increase up to the policy cap.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultParams, ResubmitPolicy
from repro.sim import CellConfig, CellSim, Machine, Resources, Tier
from repro.sim.entities import EndReason, InstanceState
from repro.util.rng import RngFactory
from repro.workload.jobs import build_simple_job

HORIZON = 4 * 3600.0
N_MACHINES = 6

PRIORITY = {Tier.FREE: 25, Tier.BEB: 112, Tier.MID: 117, Tier.PROD: 200}

job_strategy = st.fixed_dictionaries({
    "tier": st.sampled_from([Tier.FREE, Tier.BEB, Tier.MID, Tier.PROD]),
    "submit": st.floats(min_value=0.0, max_value=HORIZON * 0.8),
    "duration": st.floats(min_value=60.0, max_value=HORIZON),
    "n_tasks": st.integers(min_value=1, max_value=4),
    "cpu": st.floats(min_value=0.01, max_value=0.2),
    "end": st.sampled_from([EndReason.FINISH, EndReason.FAIL,
                            EndReason.KILL]),
})

fault_strategy = st.fixed_dictionaries({
    "machines_per_rack": st.integers(min_value=1, max_value=4),
    "racks_per_power_domain": st.integers(min_value=1, max_value=3),
    "rack_crash_rate_per_day": st.floats(min_value=0.0, max_value=40.0),
    "crash_duration": st.floats(min_value=60.0, max_value=1800.0),
    "power_outage_rate_per_day": st.floats(min_value=0.0, max_value=10.0),
    "power_outage_duration": st.floats(min_value=120.0, max_value=3600.0),
    "maintenance_interval_days": st.sampled_from([0.0, 0.05, 0.1]),
    "upgrade_period_hours": st.sampled_from([0.0, 1.5, 3.0]),
})

policy_strategy = st.fixed_dictionaries({
    "base_delay": st.floats(min_value=10.0, max_value=120.0),
    "multiplier": st.floats(min_value=1.5, max_value=3.0),
    "max_delay": st.floats(min_value=200.0, max_value=2000.0),
    "max_attempts": st.integers(min_value=1, max_value=6),
    "user_retry_budget": st.integers(min_value=1, max_value=50),
    "refail_prob": st.floats(min_value=0.0, max_value=1.0),
})


def build_workload(specs):
    return [build_simple_job(
        collection_id=i + 1, tier=spec["tier"], user=f"user_{i % 3}",
        submit_time=spec["submit"], priority=PRIORITY[spec["tier"]],
        n_tasks=spec["n_tasks"], duration=spec["duration"],
        cpu_usage=spec["cpu"], mem_usage=spec["cpu"],
        cpu_fraction=0.5, mem_fraction=0.5, planned_end=spec["end"],
        batch_queueing=False,
    ) for i, spec in enumerate(specs)]


def run(specs, fault_kwargs, policy_kwargs, seed):
    faults = FaultParams(resubmit=ResubmitPolicy(**policy_kwargs),
                         **fault_kwargs)
    config = CellConfig(name="prop-faults", era="2019", horizon=HORIZON,
                        faults=faults)
    machines = [Machine(i, Resources(1.0, 1.0)) for i in range(N_MACHINES)]
    sim = CellSim(config, machines, build_workload(specs), RngFactory(seed))
    return sim.run()


def _per_instance_events(result):
    """Instance events grouped per (collection_id, index), in log order."""
    grouped = {}
    for event in result.events.instance_events:
        grouped.setdefault(
            (event.collection_id, event.instance_index), []).append(event)
    return grouped


@settings(max_examples=20, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=8), fault_strategy,
       policy_strategy, st.integers(min_value=0, max_value=1000))
def test_every_incarnation_ends_in_one_terminal_event(
        specs, fault_kwargs, policy_kwargs, seed):
    result = run(specs, fault_kwargs, policy_kwargs, seed)
    for key, events in _per_instance_events(result).items():
        running = False
        queue_killed = False
        for event in events:
            name = event.event.value
            if name == "SCHEDULE":
                assert not running, f"{key}: double SCHEDULE"
                assert not queue_killed, f"{key}: revived after queue-kill"
                running = True
            elif event.event.is_terminal:
                if running:
                    running = False  # exactly one closer per incarnation
                else:
                    # A never-scheduled (queued) instance may be killed
                    # once; nothing can follow.
                    assert not queue_killed, f"{key}: double terminal"
                    queue_killed = True
            elif name == "SUBMIT" and not event.is_new and running:
                # A planned outage *drains* the instance: the incarnation
                # closes with a requeueing SUBMIT instead of a terminal
                # (Borg's eviction SLO — see CellSim._drain_instance).
                running = False
        # At the horizon an instance is either still running or fully
        # terminated — replay never ends mid-anomaly (running is a valid
        # end state; the encoder closes those intervals at the horizon).


@settings(max_examples=20, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=8), fault_strategy,
       policy_strategy, st.integers(min_value=0, max_value=1000))
def test_no_schedule_on_a_down_machine(specs, fault_kwargs, policy_kwargs,
                                       seed):
    result = run(specs, fault_kwargs, policy_kwargs, seed)
    down_intervals = {i: [] for i in range(N_MACHINES)}
    down_since = {}
    for event in result.events.machine_events:
        if event.event == "REMOVE":
            down_since[event.machine_id] = event.time
        elif event.event == "ADD" and event.machine_id in down_since:
            down_intervals[event.machine_id].append(
                (down_since.pop(event.machine_id), event.time))
    for machine_id, start in down_since.items():
        down_intervals[machine_id].append((start, float("inf")))
    for event in result.events.instance_events:
        if event.event.value != "SCHEDULE" or event.machine_id < 0:
            continue
        for start, end in down_intervals[event.machine_id]:
            assert not (start < event.time < end), (
                f"SCHEDULE at t={event.time} on machine "
                f"{event.machine_id}, down over ({start}, {end})")


@settings(max_examples=20, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=8), fault_strategy,
       policy_strategy, st.integers(min_value=0, max_value=1000))
def test_allocation_replay_never_negative(specs, fault_kwargs,
                                          policy_kwargs, seed):
    result = run(specs, fault_kwargs, policy_kwargs, seed)
    alloc_cpu = {i: 0.0 for i in range(N_MACHINES)}
    placed_on = {}
    for event in result.events.instance_events:
        key = (event.collection_id, event.instance_index)
        if event.event.value == "SCHEDULE" and event.machine_id >= 0:
            alloc_cpu[event.machine_id] += event.cpu_request
            placed_on[key] = (event.machine_id, event.cpu_request)
        elif (event.event.is_terminal
              or (event.event.value == "SUBMIT" and not event.is_new)) \
                and key in placed_on:
            # Terminals and drain requeues both free the placement.
            machine_id, request = placed_on.pop(key)
            alloc_cpu[machine_id] -= request
            assert alloc_cpu[machine_id] >= -1e-9, (
                f"machine {machine_id} allocation went negative")
    # Residual replayed allocation is exactly the instances still
    # running at the horizon (the simulator clears machine placements
    # during finalization, so compare against instance state).
    still_running = {
        (c.collection_id, i.index): i.request.cpu
        for c in result.collections for i in c.instances
        if i.state is InstanceState.RUNNING}
    assert set(placed_on) == set(still_running)
    residual = sum(alloc_cpu.values())
    assert abs(residual - sum(still_running.values())) < 1e-6


@settings(max_examples=20, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=8), fault_strategy,
       policy_strategy, st.integers(min_value=0, max_value=1000))
def test_backoff_delays_strictly_increase_to_cap(specs, fault_kwargs,
                                                 policy_kwargs, seed):
    result = run(specs, fault_kwargs, policy_kwargs, seed)
    cap = policy_kwargs["max_delay"]
    chains = {}
    for event in result.events.resubmit_events:
        chains.setdefault(event.root_collection_id, []).append(event)
    for chain in chains.values():
        chain.sort(key=lambda e: e.attempt)
        delays = [e.delay for e in chain]
        for prev, cur in zip(delays, delays[1:]):
            assert cur > prev or (cur == prev == cap), (
                f"backoff not increasing below the cap: {delays}")
        assert all(d <= cap + 1e-9 for d in delays)
