"""Smoke tests: every example script runs end to end.

Each example is executed in-process (imported as a module and driven via
its ``main``) with small arguments where supported, so a refactor that
breaks the public API surface fails here rather than in a user's shell.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_quickstart(self, capsys):
        load_example("quickstart").main(seed=3)
        out = capsys.readouterr().out
        assert "hogs and mice" in out
        assert "invariant violations: 0" in out

    def test_hogs_and_mice(self, capsys):
        load_example("hogs_and_mice").main(seed=3)
        out = capsys.readouterr().out
        assert "Pollaczek-Khinchine" in out
        assert "isolating the hogs" in out

    def test_trace_explorer(self, capsys):
        load_example("trace_explorer").main(seed=3)
        out = capsys.readouterr().out
        assert "kill rate by tier" in out
        assert "2011 CSV layout" in out

    def test_explain_scheduling(self, capsys):
        load_example("explain_scheduling").main(seed=3)
        out = capsys.readouterr().out
        assert "decision" in out
        assert "machine-sized monster" in out

    def test_ascii_figures(self, capsys):
        load_example("ascii_figures").main(seed=3)
        out = capsys.readouterr().out
        assert "figure 12" in out
        assert "Pr(machine CPU utilization > x)" in out

    def test_what_if_replay(self, capsys):
        load_example("what_if_replay").main(seed=3)
        out = capsys.readouterr().out
        assert "faithful replay" in out
        assert "no over-commit" in out

    def test_longitudinal_comparison_tiny(self, capsys):
        load_example("longitudinal_comparison").main([
            "--cells", "d", "--machines", "16", "--hours", "6",
            "--scale", "0.01", "--seed", "3",
        ])
        out = capsys.readouterr().out
        assert "Table 1" in out and "Figure 14" in out
