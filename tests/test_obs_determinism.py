"""Determinism sweep: same seed -> same events AND same span structure.

Two properties, checked at three seeds:

1. The simulator is bit-deterministic: two runs from the same seed
   produce identical encoded trace tables.
2. The obs span tree's *structure* — names, nesting, counts, sibling
   order — is a pure function of control flow (DESIGN.md §9), so two
   identical runs record identical structures even though the measured
   durations differ.  This is the contract that lets golden span
   structures be asserted at all, and that RPR006 (literal span names)
   protects statically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.trace import encode_cell
from repro.workload import small_test_scenario


def _run_once(seed: int):
    """One small simulation under a fresh registry: (trace, structure)."""
    with obs.scoped_registry() as registry:
        scenario = small_test_scenario(seed=seed, machines_per_cell=10,
                                       horizon_hours=3.0)
        trace = encode_cell(scenario.run())
        return trace, registry.snapshot().span_structure()


def _assert_tables_equal(a, b) -> None:
    assert a.tables.keys() == b.tables.keys()
    for name in a.tables:
        ta, tb = a.tables[name], b.tables[name]
        assert ta.column_names == tb.column_names, name
        assert len(ta) == len(tb), name
        for column in ta.column_names:
            va = ta.column(column).values
            vb = tb.column(column).values
            assert np.array_equal(va, vb), f"{name}.{column} differs"


@pytest.mark.parametrize("seed", [0, 7, 42])
def test_same_seed_same_events_and_span_structure(seed):
    trace_a, structure_a = _run_once(seed)
    trace_b, structure_b = _run_once(seed)
    _assert_tables_equal(trace_a, trace_b)
    assert structure_a == structure_b

    # The structure is non-trivial: the simulator's phases all appear.
    names = set()

    def collect(node):
        names.add(node[0])
        for child in node[2]:
            collect(child)

    collect(structure_a)
    assert {"sim.run", "sim.seed_events", "sim.event_loop", "sim.round",
            "sim.round.admit", "sim.round.place",
            "sim.finalize"} <= names


def test_different_seeds_differ():
    """The sweep is not vacuous: seeds actually change the event stream."""
    trace_a, _ = _run_once(0)
    trace_b, _ = _run_once(7)
    ea = trace_a.tables["instance_events"]
    eb = trace_b.tables["instance_events"]
    assert len(ea) != len(eb) or not np.array_equal(
        ea.column("time").values, eb.column("time").values)


def test_scoped_runs_do_not_leak_into_outer_registry():
    """A scoped simulation leaves the ambient registry untouched."""
    before = obs.snapshot().counters.get("sim.events_processed", 0)
    _run_once(0)
    after = obs.snapshot().counters.get("sim.events_processed", 0)
    assert before == after
