"""Tests for trace encoding, validation, legacy conversion, and I/O."""

import numpy as np
import pytest

from repro.table import Table
from repro.trace import (
    encode_cell,
    load_trace,
    save_trace,
    to_2011_tables,
    validate_trace,
)
from repro.trace.dataset import SCHEMA_2019, TraceDataset
from repro.trace.legacy import band_of_raw_priority
from repro.trace.validate import INVARIANTS, Violation
from repro.util.errors import SchemaError, ValidationError


class TestEncode:
    def test_all_tables_present(self, trace_2019):
        assert set(trace_2019.tables) == set(SCHEMA_2019)
        for name, columns in SCHEMA_2019.items():
            assert trace_2019.tables[name].column_names == columns

    def test_metadata(self, trace_2019):
        assert trace_2019.era == "2019"
        assert trace_2019.capacity_cpu > 0
        assert trace_2019.sample_period == 300.0

    def test_collection_events_types(self, trace_2019):
        types = set(trace_2019.collection_events.column("type").values.tolist())
        assert "SUBMIT" in types
        assert types & {"FINISH", "KILL", "FAIL"}

    def test_2019_has_new_features(self, trace_2019):
        ce = trace_2019.collection_events
        assert "alloc_set" in set(ce.column("collection_type").values.tolist())
        assert (ce.column("parent_collection_id").values >= 0).any()
        assert "QUEUE" in set(ce.column("type").values.tolist())
        assert set(ce.column("vertical_scaling").values.tolist()) >= {"none", "fully"}

    def test_2011_lacks_new_features(self, trace_2011):
        ce = trace_2011.collection_events
        assert "alloc_set" not in set(ce.column("collection_type").values.tolist())
        assert "QUEUE" not in set(ce.column("type").values.tolist())
        assert set(ce.column("vertical_scaling").values.tolist()) == {"none"}

    def test_usage_rows_have_positive_durations(self, trace_2019):
        durations = trace_2019.instance_usage.column("duration").values
        assert (durations > 0).all()
        assert (durations <= trace_2019.sample_period + 1e-9).all()

    def test_machine_attributes_complete(self, trace_2019, result_2019):
        assert len(trace_2019.machine_attributes) == len(result_2019.machines)

    def test_repr(self, trace_2019):
        assert "TraceDataset" in repr(trace_2019)

    def test_bad_schema_rejected(self):
        tables = {"collection_events": Table({"nope": [1]})}
        with pytest.raises(ValueError, match="expected"):
            TraceDataset(cell="x", era="2019", horizon=1.0, sample_period=300.0,
                         utc_offset_hours=0.0, capacity_cpu=1.0,
                         capacity_mem=1.0, tables=tables)

    def test_empty_dataset_constructible(self):
        ds = TraceDataset(cell="x", era="2019", horizon=1.0, sample_period=300.0,
                          utc_offset_hours=0.0, capacity_cpu=1.0, capacity_mem=1.0)
        assert len(ds.collection_events) == 0


class TestValidate:
    def test_simulated_trace_is_clean(self, trace_2019, trace_2011):
        assert validate_trace(trace_2019) == []
        assert validate_trace(trace_2011) == []

    def test_unknown_invariant_rejected(self, trace_2019):
        with pytest.raises(ValueError):
            validate_trace(trace_2019, only=["not-a-check"])

    def test_subset_runs(self, trace_2019):
        assert validate_trace(trace_2019, only=["event-time-in-window"]) == []

    def test_detects_terminal_without_submit(self, trace_2019):
        ce = trace_2019.collection_events
        broken = dict(trace_2019.tables)
        extra = Table.from_rows([{
            "time": 10.0, "collection_id": 999_999_999, "type": "KILL",
            "collection_type": "job", "priority": 200, "tier": "prod",
            "user": "u", "scheduler": "borg", "parent_collection_id": -1,
            "alloc_collection_id": -1, "vertical_scaling": "none",
            "constraint": "", "num_instances": 1,
        }], columns=ce.column_names)
        from repro.table import concat
        broken["collection_events"] = concat([ce, extra])
        ds = TraceDataset(cell="x", era=trace_2019.era, horizon=trace_2019.horizon,
                          sample_period=trace_2019.sample_period,
                          utc_offset_hours=0.0,
                          capacity_cpu=trace_2019.capacity_cpu,
                          capacity_mem=trace_2019.capacity_mem, tables=broken)
        violations = validate_trace(ds, only=["submit-before-terminal"])
        assert violations and "without a SUBMIT" in violations[0].detail

    def test_detects_out_of_window_event(self, trace_2019):
        broken = dict(trace_2019.tables)
        me = trace_2019.machine_events
        extra = Table({"time": [-5.0], "machine_id": [0], "type": ["ADD"],
                       "cpu_capacity": [1.0], "mem_capacity": [1.0]})
        from repro.table import concat
        broken["machine_events"] = concat([
            me if len(me) else Table({c: [] for c in me.column_names}), extra,
        ]) if len(me) else extra
        ds = TraceDataset(cell="x", era=trace_2019.era, horizon=trace_2019.horizon,
                          sample_period=trace_2019.sample_period,
                          utc_offset_hours=0.0,
                          capacity_cpu=trace_2019.capacity_cpu,
                          capacity_mem=trace_2019.capacity_mem, tables=broken)
        violations = validate_trace(ds, only=["event-time-in-window"])
        assert violations

    def test_raise_on_violation(self, trace_2019):
        broken = dict(trace_2019.tables)
        iu = trace_2019.instance_usage
        row = {c: [iu.column(c).values[0]] for c in iu.column_names}
        row["avg_mem"] = [99.0]
        row["limit_mem"] = [0.1]
        from repro.table import concat
        broken["instance_usage"] = concat([iu, Table(row)])
        ds = TraceDataset(cell="x", era=trace_2019.era, horizon=trace_2019.horizon,
                          sample_period=trace_2019.sample_period,
                          utc_offset_hours=0.0,
                          capacity_cpu=trace_2019.capacity_cpu,
                          capacity_mem=trace_2019.capacity_mem, tables=broken)
        with pytest.raises(ValidationError):
            validate_trace(ds, raise_on_violation=True,
                           only=["usage-within-limits"])

    def test_violation_str(self):
        v = Violation("check", "something off")
        assert "check" in str(v) and "something off" in str(v)

    def test_invariant_registry_nonempty(self):
        assert len(INVARIANTS) >= 7


class TestLegacy:
    def test_band_mapping_spot_checks(self):
        assert band_of_raw_priority(0) == 0
        assert band_of_raw_priority(101) == 3  # paper's example
        assert band_of_raw_priority(450) == 11
        assert band_of_raw_priority(250) == 9  # between 200 and 360

    def test_2011_tables_shape(self, trace_2011):
        tables = to_2011_tables(trace_2011)
        assert set(tables) == {"job_events", "task_events", "task_usage",
                               "machine_events"}
        assert len(tables["job_events"]) == len(trace_2011.collection_events)

    def test_2011_priorities_pass_through(self, trace_2011):
        tables = to_2011_tables(trace_2011)
        priorities = tables["job_events"].column("priority").values
        assert priorities.max() <= 11

    def test_2019_priorities_banded(self, trace_2019):
        tables = to_2011_tables(trace_2019)
        priorities = tables["job_events"].column("priority").values
        assert priorities.max() <= 11
        assert priorities.min() >= 0

    def test_task_usage_end_times(self, trace_2019):
        tu = to_2011_tables(trace_2019)["task_usage"]
        assert (tu.column("end_time").values > tu.column("start_time").values).all()


class TestIo:
    def test_roundtrip(self, trace_2011, tmp_path):
        save_trace(trace_2011, tmp_path / "t")
        back = load_trace(tmp_path / "t")
        assert back.cell == trace_2011.cell
        assert back.era == trace_2011.era
        assert len(back.instance_usage) == len(trace_2011.instance_usage)
        np.testing.assert_allclose(
            back.instance_usage.column("avg_cpu").values,
            trace_2011.instance_usage.column("avg_cpu").values,
        )

    def test_missing_metadata(self, tmp_path):
        with pytest.raises(SchemaError):
            load_trace(tmp_path)

    def test_missing_table(self, trace_2011, tmp_path):
        save_trace(trace_2011, tmp_path / "t")
        (tmp_path / "t" / "instance_usage.csv").unlink()
        with pytest.raises(SchemaError):
            load_trace(tmp_path / "t")

    def test_all_missing_tables_reported_at_once(self, trace_2011, tmp_path):
        save_trace(trace_2011, tmp_path / "t")
        (tmp_path / "t" / "instance_usage.csv").unlink()
        (tmp_path / "t" / "machine_events.csv").unlink()
        with pytest.raises(SchemaError) as err:
            load_trace(tmp_path / "t")
        message = str(err.value)
        assert "instance_usage.csv" in message
        assert "machine_events.csv" in message
        assert "2 table(s)" in message

    def test_crash_mid_save_preserves_old_trace(self, trace_2011, tmp_path,
                                                monkeypatch):
        save_trace(trace_2011, tmp_path / "t")
        import repro.trace.io as io_mod

        def exploding(table, path):
            raise OSError("disk full")

        monkeypatch.setattr(io_mod, "write_csv", exploding)
        with pytest.raises(OSError):
            save_trace(trace_2011, tmp_path / "t")
        # The old trace is untouched and still loads; no temp litter.
        back = load_trace(tmp_path / "t")
        assert len(back.instance_usage) == len(trace_2011.instance_usage)
        assert [p.name for p in tmp_path.iterdir()] == ["t"]


def _edge_dataset() -> TraceDataset:
    """Unicode users, inf/nan usage floats, and three empty tables."""
    ce = Table.from_rows([
        {"time": 1.0, "collection_id": 1, "type": "SUBMIT",
         "collection_type": "job", "priority": 200, "tier": "prod",
         "user": "алиса", "scheduler": "borg", "parent_collection_id": -1,
         "alloc_collection_id": -1, "vertical_scaling": "none",
         "constraint": "", "num_instances": 1},
        {"time": 2.0, "collection_id": 2, "type": "SUBMIT",
         "collection_type": "job", "priority": 103, "tier": "beb",
         "user": "ユーザー名-2", "scheduler": "borg",
         "parent_collection_id": -1, "alloc_collection_id": -1,
         "vertical_scaling": "none", "constraint": "", "num_instances": 2},
    ], columns=SCHEMA_2019["collection_events"])
    iu = Table.from_rows([
        {"start_time": 0.0, "duration": 300.0, "collection_id": 1,
         "instance_index": 0, "machine_id": 0, "tier": "prod",
         "vertical_scaling": "none", "in_alloc": False,
         "avg_cpu": float("nan"), "max_cpu": float("inf"),
         "avg_mem": float("-inf"), "max_mem": 0.25,
         "limit_cpu": 1.0, "limit_mem": 1.0},
    ], columns=SCHEMA_2019["instance_usage"])
    return TraceDataset(cell="edge", era="2019", horizon=3600.0,
                        sample_period=300.0, utc_offset_hours=0.0,
                        capacity_cpu=1.0, capacity_mem=1.0,
                        tables={"collection_events": ce, "instance_usage": iu})


class TestIoEdgeCases:
    """Round trips that stress both on-disk formats the same way."""

    @pytest.mark.parametrize("format", ["csv", "store"])
    def test_empty_tables_round_trip(self, tmp_path, format):
        save_trace(_edge_dataset(), tmp_path / "t", format=format)
        back = load_trace(tmp_path / "t")
        for name in ("instance_events", "machine_events", "machine_attributes"):
            assert len(back.tables[name]) == 0
            assert back.tables[name].column_names == SCHEMA_2019[name]

    @pytest.mark.parametrize("format", ["csv", "store"])
    def test_unicode_users_round_trip(self, tmp_path, format):
        save_trace(_edge_dataset(), tmp_path / "t", format=format)
        back = load_trace(tmp_path / "t")
        users = back.collection_events.column("user").values.tolist()
        assert users == ["алиса", "ユーザー名-2"]

    @pytest.mark.parametrize("format", ["csv", "store"])
    def test_inf_nan_floats_round_trip(self, tmp_path, format):
        save_trace(_edge_dataset(), tmp_path / "t", format=format)
        iu = load_trace(tmp_path / "t").instance_usage
        assert np.isnan(iu.column("avg_cpu").values[0])
        assert iu.column("max_cpu").values[0] == float("inf")
        assert iu.column("avg_mem").values[0] == float("-inf")
        assert iu.column("max_mem").values[0] == 0.25

    @pytest.mark.parametrize("format", ["csv", "store"])
    def test_metadata_round_trips(self, tmp_path, format):
        ds = _edge_dataset()
        save_trace(ds, tmp_path / "t", format=format)
        back = load_trace(tmp_path / "t")
        assert back.cell == "edge"
        assert back.era == "2019"
        assert back.horizon == ds.horizon
        assert back.capacity_mem == ds.capacity_mem
