"""Tests for trace-driven workload replay."""

import dataclasses

import numpy as np
import pytest

from repro.sim.cell import CellSim
from repro.sim.entities import CollectionType
from repro.trace import encode_cell, validate_trace
from repro.util.rng import RngFactory
from repro.workload.replay import (
    machines_from_trace,
    replay_components,
    workload_from_trace,
)


class TestReconstruction:
    def test_collection_population_preserved(self, trace_2019):
        workload = workload_from_trace(trace_2019)
        ce = trace_2019.collection_events
        n_submitted = len(ce.filter(ce.column("type") == "SUBMIT")
                          .distinct("collection_id"))
        assert len(workload) == n_submitted

    def test_tiers_and_widths_preserved(self, trace_2019, result_2019):
        replayed = {c.collection_id: c for c in workload_from_trace(trace_2019)}
        for original in result_2019.collections:
            replay = replayed[original.collection_id]
            assert replay.tier == original.tier
            assert replay.num_instances == original.num_instances
            assert replay.collection_type == original.collection_type
            assert replay.constraint == original.constraint

    def test_requests_preserved(self, trace_2019, result_2019):
        replayed = {c.collection_id: c for c in workload_from_trace(trace_2019)}
        original = result_2019.collections[0]
        replay = replayed[original.collection_id]
        for a, b in zip(original.instances, replay.instances):
            assert b.request.cpu == pytest.approx(a.request.cpu)
            assert b.request.mem == pytest.approx(a.request.mem)

    def test_parent_links_preserved(self, trace_2019, result_2019):
        replayed = {c.collection_id: c for c in workload_from_trace(trace_2019)}
        parents_original = {c.collection_id: c.parent_id
                            for c in result_2019.collections}
        for cid, parent in parents_original.items():
            assert replayed[cid].parent_id == parent

    def test_machines_rebuilt(self, trace_2019, result_2019):
        machines = machines_from_trace(trace_2019)
        assert len(machines) == len(result_2019.machines)
        by_id = {m.machine_id: m for m in result_2019.machines}
        for m in machines:
            assert m.capacity.cpu == pytest.approx(by_id[m.machine_id].capacity.cpu)
            assert m.platform == by_id[m.machine_id].platform


class TestReplayRun:
    def test_replay_produces_valid_trace(self, trace_2019):
        parts = replay_components(trace_2019)
        result = CellSim(parts.config, parts.machines, parts.workload,
                         RngFactory(99)).run()
        replay_trace = encode_cell(result)
        assert validate_trace(replay_trace) == []

    def test_replay_utilization_close_to_original(self, trace_2019):
        from repro.analysis.utilization import total_usage_fraction
        parts = replay_components(trace_2019)
        result = CellSim(parts.config, parts.machines, parts.workload,
                         RngFactory(99)).run()
        replay_trace = encode_cell(result)
        original = total_usage_fraction(trace_2019, "cpu")
        replayed = total_usage_fraction(replay_trace, "cpu")
        assert replayed == pytest.approx(original, rel=0.4)

    def test_what_if_config_override(self, trace_2019):
        parts = replay_components(trace_2019)
        strict = dataclasses.replace(
            parts.config,
            scheduler=dataclasses.replace(parts.config.scheduler,
                                          overcommit_cpu=1.0,
                                          overcommit_mem=1.0),
        )
        result = CellSim(strict, machines_from_trace(trace_2019),
                         workload_from_trace(trace_2019), RngFactory(99)).run()
        # Stricter admission means allocation never exceeds capacity.
        u = result.usage
        if len(u["window_start"]):
            from repro.util.timeutil import HOUR_SECONDS
            cap = result.capacity
            hours = trace_2019.horizon / HOUR_SECONDS
            alloc = float((u["cpu_limit"] * u["duration"])[~u["in_alloc"]].sum()
                          ) / HOUR_SECONDS / (cap.cpu * hours)
            assert alloc <= 1.05
