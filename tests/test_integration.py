"""End-to-end integration tests: scenario -> sim -> trace -> analyses.

These exercise the whole stack on the shared session fixtures and check
cross-module accounting identities plus the paper's *qualitative*
findings at small scale.
"""

import numpy as np
import pytest

from repro.analysis import allocsets, autoscaling, sched_delay, submission, terminations
from repro.analysis.common import job_usage_integrals
from repro.sim.entities import CollectionType, EndReason
from repro.trace import encode_cell, validate_trace
from repro.util.timeutil import HOUR_SECONDS
from repro.workload import small_test_scenario


class TestEventAccounting:
    def test_every_task_has_submit_event(self, result_2019, trace_2019):
        n_submits = int((
            (trace_2019.instance_events.column("type").values == "SUBMIT")
            & trace_2019.instance_events.column("is_new").values
        ).sum())
        assert n_submits == result_2019.counters.tasks_created

    def test_schedule_counter_matches_events(self, result_2019, trace_2019):
        n_schedules = int((
            trace_2019.instance_events.column("type").values == "SCHEDULE"
        ).sum())
        assert n_schedules == result_2019.counters.schedule_events

    def test_collection_terminal_counts(self, result_2019, trace_2019):
        done = sum(1 for c in result_2019.collections if c.is_done)
        types = trace_2019.collection_events.column("type").values
        terminal = int(np.isin(types, ("FINISH", "KILL", "FAIL", "EVICT")).sum())
        assert terminal == done

    def test_usage_only_for_scheduled_instances(self, result_2019, trace_2019):
        scheduled = set()
        ie = trace_2019.instance_events
        ids = ie.column("collection_id").values
        idx = ie.column("instance_index").values
        types = ie.column("type").values
        for i in range(len(ie)):
            if types[i] == "SCHEDULE":
                scheduled.add((int(ids[i]), int(idx[i])))
        iu = trace_2019.instance_usage
        pairs = set(zip(iu.column("collection_id").values.tolist(),
                        iu.column("instance_index").values.tolist()))
        assert pairs <= scheduled

    def test_run_intervals_within_collection_lifetime(self, result_2019):
        for c in result_2019.collections:
            if c.end_time is None:
                continue
            for inst in c.instances:
                for start, end, *_ in inst.run_intervals:
                    assert end <= c.end_time + 1e-6


class TestInvariantPipeline:
    def test_both_eras_validate_clean(self, trace_2019, trace_2011):
        assert validate_trace(trace_2019) == []
        assert validate_trace(trace_2011) == []

    def test_another_seed_validates(self):
        result = small_test_scenario(seed=23).run()
        assert validate_trace(encode_cell(result)) == []


class TestQualitativeFindings:
    """The paper's headline observations, at reduced scale."""

    def test_heavy_tail_top_share(self, traces_2019):
        table = job_usage_integrals(traces_2019[0])
        values = table.column("ncu_hours").values
        values = values[values > 0]
        from repro.stats import top_share
        assert top_share(values, 0.01) > 0.3  # far above uniform's 1%

    def test_parent_jobs_killed_more(self, traces_2019):
        rep = terminations.termination_report(traces_2019)
        assert rep.kill_rate_with_parent > rep.kill_rate_without_parent + 0.15

    def test_autopilot_reduces_slack(self, traces_2019):
        s = autoscaling.summarize_slack(traces_2019)
        assert s.median_slack["fully"] < s.median_slack["none"]

    def test_alloc_jobs_use_memory_harder(self, traces_2019):
        rep = allocsets.alloc_set_report(traces_2019)
        assert rep.mem_utilization_in_alloc > rep.mem_utilization_outside + 0.05

    def test_evictions_concentrated_outside_prod(self, traces_2019):
        rep = terminations.termination_report(traces_2019)
        if rep.collections_with_evictions_fraction > 0:
            assert rep.prod_collections_evicted_fraction <= \
                rep.collections_with_evictions_fraction + 0.05

    def test_most_jobs_schedule_quickly(self, traces_2019):
        delays = sched_delay.scheduling_delays(traces_2019[0])
        median = float(np.median(delays.column("delay").values))
        assert median < 30.0

    def test_submission_rates_positive(self, traces_2019, traces_2011):
        g = submission.growth_factors(traces_2011[0], traces_2019)
        assert g["resubmit_ratio_2019"] > g["resubmit_ratio_2011"]


class TestScenarioPlumbing:
    def test_capacity_property(self):
        sc = small_test_scenario(seed=5)
        assert sc.capacity.cpu == pytest.approx(
            sum(m.capacity.cpu for m in sc.machines))

    def test_rerun_is_deterministic(self):
        a = small_test_scenario(seed=9).run()
        b = small_test_scenario(seed=9).run()
        assert len(a.events.instance_events) == len(b.events.instance_events)
        np.testing.assert_array_equal(a.usage["avg_cpu"], b.usage["avg_cpu"])

    def test_horizon_respected(self, trace_2019):
        for name in ("collection_events", "instance_events"):
            times = trace_2019.tables[name].column("time").values
            if len(times):
                assert times.max() <= trace_2019.horizon
