"""Unit tests for the M/G/1 analysis and hog-isolation comparison."""

import numpy as np
import pytest

from repro.queueing import (
    compare_isolation,
    mg1_mean_queueing_delay,
    mg1_mean_waiting_time_simulated,
    pollaczek_khinchine,
)


class TestPollaczekKhinchine:
    def test_mm1_case(self):
        # For exponential service (C^2 = 1): W = rho/(1-rho) mean services.
        assert pollaczek_khinchine(0.5, 1.0) == pytest.approx(1.0)
        assert pollaczek_khinchine(0.9, 1.0) == pytest.approx(9.0)

    def test_deterministic_service_halves_delay(self):
        assert pollaczek_khinchine(0.5, 0.0) == pytest.approx(0.5)

    def test_delay_grows_linearly_with_cv2(self):
        assert (pollaczek_khinchine(0.5, 23_000.0)
                == pytest.approx(23_001.0 / 2.0))

    def test_zero_load_zero_delay(self):
        assert pollaczek_khinchine(0.0, 100.0) == 0.0

    def test_bad_rho(self):
        with pytest.raises(ValueError):
            pollaczek_khinchine(1.0, 1.0)
        with pytest.raises(ValueError):
            pollaczek_khinchine(-0.1, 1.0)

    def test_bad_cv2(self):
        with pytest.raises(ValueError):
            pollaczek_khinchine(0.5, -1.0)


class TestSimulatedMG1:
    def test_matches_pk_for_exponential(self):
        rng = np.random.default_rng(0)
        service = rng.exponential(1.0, 50_000)
        stats = mg1_mean_waiting_time_simulated(rng, service, rho=0.6, n_jobs=200_000)
        predicted = pollaczek_khinchine(0.6, 1.0)
        assert stats.normalized_mean_wait == pytest.approx(predicted, rel=0.15)

    def test_matches_pk_for_deterministic(self):
        rng = np.random.default_rng(1)
        service = np.ones(100)
        stats = mg1_mean_waiting_time_simulated(rng, service, rho=0.5, n_jobs=200_000)
        assert stats.normalized_mean_wait == pytest.approx(0.5, rel=0.15)

    def test_bad_inputs(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            mg1_mean_waiting_time_simulated(rng, [], rho=0.5)
        with pytest.raises(ValueError):
            mg1_mean_waiting_time_simulated(rng, [1.0], rho=1.5)
        with pytest.raises(ValueError):
            mg1_mean_waiting_time_simulated(rng, [0.0], rho=0.5)

    def test_empirical_cv2_shortcut(self):
        rng = np.random.default_rng(2)
        service = rng.exponential(1.0, 100_000)
        assert mg1_mean_queueing_delay(service, 0.5) == pytest.approx(1.0, abs=0.1)


class TestIsolation:
    def test_isolation_helps_heavy_tails(self):
        rng = np.random.default_rng(3)
        sizes = np.concatenate([
            rng.exponential(0.01, 9900),            # mice
            (rng.pareto(0.7, 100) + 1) * 10.0,      # hogs
        ])
        report = compare_isolation(sizes, rho=0.5, hog_fraction=0.01)
        assert report.shared_cv2 > report.mice_cv2
        assert report.speedup > 10  # mice see a drastically lighter queue

    def test_homogeneous_sizes_little_benefit(self):
        sizes = np.ones(1000)
        report = compare_isolation(sizes, rho=0.5)
        assert report.speedup < 3

    def test_hog_share_recorded(self):
        sizes = np.concatenate([np.full(99, 0.001), [100.0]])
        report = compare_isolation(sizes, rho=0.3, hog_fraction=0.01)
        assert report.hog_load_share > 0.99

    def test_too_few_jobs(self):
        with pytest.raises(ValueError):
            compare_isolation([1.0] * 5)
