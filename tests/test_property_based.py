"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing import pollaczek_khinchine
from repro.sim.autopilot import AutopilotMode, limit_trajectory, peak_slack
from repro.sim.priority import (
    Tier,
    tier_of_priority_2011,
    tier_of_priority_2019,
)
from repro.sim.resources import Resources
from repro.stats import (
    empirical_ccdf,
    squared_cv,
    top_share,
)
from repro.stats.distributions import bounded_pareto_quantile, stratified_uniforms
from repro.stats.tails import split_hogs_mice
from repro.table import Table

finite_floats = st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False, allow_infinity=False)
positive_floats = st.floats(min_value=1e-6, max_value=1e6,
                            allow_nan=False, allow_infinity=False)
samples = st.lists(finite_floats, min_size=1, max_size=200)


class TestCcdfProperties:
    @given(samples)
    def test_probs_in_unit_interval_and_monotone(self, xs):
        c = empirical_ccdf(xs)
        assert ((c.probs >= 0) & (c.probs <= 1)).all()
        assert (np.diff(c.probs) <= 1e-12).all()

    @given(samples, finite_floats)
    def test_at_matches_definition(self, xs, x):
        c = empirical_ccdf(xs)
        direct = float((np.asarray(xs) > x).mean())
        assert abs(c.at(x) - direct) < 1e-12

    @given(samples)
    def test_extremes(self, xs):
        c = empirical_ccdf(xs)
        assert c.at(min(xs) - 1.0) == 1.0
        assert c.at(max(xs)) == 0.0


class TestTailProperties:
    @given(st.lists(positive_floats, min_size=2, max_size=200),
           st.floats(min_value=0.01, max_value=1.0))
    def test_top_share_bounds(self, xs, fraction):
        share = top_share(xs, fraction)
        assert 0.0 <= share <= 1.0 + 1e-12
        # The top fraction carries at least its proportional share.
        k = max(1, int(round(len(xs) * fraction)))
        assert share >= k / len(xs) - 1e-9

    @given(st.lists(positive_floats, min_size=2, max_size=200))
    def test_split_partitions_everything(self, xs):
        split = split_hogs_mice(xs, 0.1)
        assert split.hog_count + split.mouse_count == len(xs)
        np.testing.assert_allclose(split.hogs.sum() + split.mice.sum(),
                                   float(np.sum(xs)), rtol=1e-9)
        if split.mice.size:
            assert split.hogs.min() >= split.mice.max() - 1e-12

    @given(st.lists(st.floats(min_value=0.1, max_value=1e4,
                              allow_nan=False), min_size=2, max_size=100))
    def test_cv2_scale_invariance(self, xs):
        a = squared_cv(xs)
        b = squared_cv([x * 37.5 for x in xs])
        assert abs(a - b) <= 1e-6 * max(1.0, a)


class TestParetoQuantileProperties:
    @given(st.floats(min_value=0.0, max_value=0.999999),
           st.floats(min_value=0.2, max_value=3.0),
           st.floats(min_value=0.01, max_value=10.0),
           st.floats(min_value=1.5, max_value=1e5))
    def test_quantile_within_bounds(self, u, alpha, x_min, ratio):
        x_max = x_min * ratio
        q = float(bounded_pareto_quantile(u, alpha, x_min, x_max))
        assert x_min - 1e-9 <= q <= x_max + 1e-6

    @given(st.integers(min_value=1, max_value=500), st.integers(0, 2**31))
    def test_stratified_uniforms_marginals(self, n, seed):
        rng = np.random.default_rng(seed)
        u = stratified_uniforms(rng, n)
        assert len(u) == n
        assert ((u >= 0) & (u < 1)).all()
        # Exactly one point per stratum.
        strata = np.floor(np.sort(u) * n).astype(int)
        assert (strata == np.arange(n)).all()


class TestQueueingProperties:
    @given(st.floats(min_value=0.0, max_value=0.99),
           st.floats(min_value=0.0, max_value=1e6))
    def test_pk_monotone_in_cv2(self, rho, cv2):
        assert pollaczek_khinchine(rho, cv2 + 1.0) >= pollaczek_khinchine(rho, cv2)

    @given(st.floats(min_value=0.0, max_value=0.98),
           st.floats(min_value=0.0, max_value=1e6))
    def test_pk_monotone_in_rho(self, rho, cv2):
        assert pollaczek_khinchine(rho + 0.01, cv2) >= pollaczek_khinchine(rho, cv2)


class TestAutopilotProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                    min_size=1, max_size=100),
           st.sampled_from(list(AutopilotMode)))
    def test_limits_bounded_and_cover_usage(self, usage, mode):
        usage = np.asarray(usage)
        initial = 1.0
        limits = limit_trajectory(mode, initial, usage)
        assert (limits <= initial + 1e-12).all()
        assert (limits >= usage - 1e-9).all() or mode is AutopilotMode.NONE
        slack = peak_slack(limits, np.minimum(usage, limits))
        assert ((slack >= 0) & (slack <= 1)).all()


class TestResourceProperties:
    resources = st.builds(Resources,
                          st.floats(min_value=0, max_value=100, allow_nan=False),
                          st.floats(min_value=0, max_value=100, allow_nan=False))

    @given(resources, resources)
    def test_add_commutes(self, a, b):
        assert a + b == b + a

    @given(resources, resources)
    def test_sub_never_negative(self, a, b):
        out = a - b
        assert out.cpu >= 0 and out.mem >= 0

    @given(resources, resources)
    def test_fits_in_consistent_with_sub(self, a, b):
        if a.fits_in(b):
            slack = b - a
            assert slack.cpu >= -1e-9 and slack.mem >= -1e-9


class TestPriorityProperties:
    @given(st.integers(min_value=0, max_value=450))
    def test_2019_total_mapping(self, priority):
        assert tier_of_priority_2019(priority) in Tier

    @given(st.integers(min_value=0, max_value=11))
    def test_2011_total_mapping(self, band):
        assert tier_of_priority_2011(band) in Tier

    @given(st.integers(min_value=0, max_value=449))
    def test_2019_monotone_in_priority(self, p):
        assert tier_of_priority_2019(p + 1).rank >= tier_of_priority_2019(p).rank


class TestTableProperties:
    @given(st.lists(st.integers(min_value=-5, max_value=5), min_size=1,
                    max_size=100))
    def test_groupby_count_partitions_rows(self, keys):
        t = Table({"k": keys, "v": [1.0] * len(keys)})
        out = t.group_by("k").agg(n=("v", "count"))
        assert int(out.column("n").sum()) == len(keys)
        assert len(out) == len(set(keys))

    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                    min_size=1, max_size=100))
    def test_sort_is_permutation(self, values):
        t = Table({"x": values})
        out = t.sort("x")
        assert sorted(values) == out.column("x").to_list()

    @given(st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                    min_size=1, max_size=50))
    def test_filter_complement(self, values):
        t = Table({"x": values})
        from repro.table import col
        above = t.filter(col("x") > 0)
        below = t.filter(~(col("x") > 0))
        assert len(above) + len(below) == len(t)
