"""Tests for placement constraints, end to end."""

import numpy as np
import pytest

from repro.analysis import constraints as constraints_analysis
from repro.sim import CellConfig, CellSim, Machine, Resources, Tier
from repro.sim.entities import Collection, CollectionType, EndReason, Instance
from repro.sim.scheduler import PlacementPolicy, SchedulerParams
from repro.trace import encode_cell, validate_trace
from repro.util.rng import RngFactory

PARAMS = SchedulerParams(overcommit_cpu=1.0, overcommit_mem=1.0)


class TestPolicyConstraints:
    def _fleet(self):
        return [Machine(0, Resources(1.0, 1.0), platform="A"),
                Machine(1, Resources(1.0, 1.0), platform="B")]

    def test_constraint_restricts_platform(self):
        policy = PlacementPolicy(PARAMS, np.random.default_rng(0))
        machines = self._fleet()
        for _ in range(10):
            found = policy.find_machine(machines, Resources(0.1, 0.1),
                                        constraint="B")
            assert found is not None and found.platform == "B"

    def test_unsatisfiable_constraint(self):
        policy = PlacementPolicy(PARAMS, np.random.default_rng(0))
        assert policy.find_machine(self._fleet(), Resources(0.1, 0.1),
                                   constraint="Z") is None

    def test_empty_constraint_means_anywhere(self):
        policy = PlacementPolicy(PARAMS, np.random.default_rng(0))
        assert policy.find_machine(self._fleet(), Resources(0.1, 0.1),
                                   constraint="") is not None

    def test_preemption_respects_constraint(self):
        machines = self._fleet()
        filler = Collection(collection_id=1, collection_type=CollectionType.JOB,
                            priority=25, tier=Tier.FREE, user="u", submit_time=0.0)
        inst = Instance(collection=filler, index=0, request=Resources(0.9, 0.9))
        filler.instances.append(inst)
        machines[0].place(inst)  # platform A full of preemptible work
        policy = PlacementPolicy(PARAMS, np.random.default_rng(0))
        found_a = policy.find_preemption(machines, Resources(0.5, 0.5),
                                         Tier.PROD.rank, constraint="A")
        found_b = policy.find_preemption(machines, Resources(0.5, 0.5),
                                         Tier.PROD.rank, constraint="B")
        assert found_a is not None and found_a[0].platform == "A"
        assert found_b is None  # nothing preemptible on B


class TestCellConstraints:
    def _run(self):
        machines = [Machine(0, Resources(1.0, 1.0), platform="A"),
                    Machine(1, Resources(1.0, 1.0), platform="B")]
        jobs = []
        for i, platform in enumerate(("A", "B", "")):
            c = Collection(
                collection_id=i + 1, collection_type=CollectionType.JOB,
                priority=112, tier=Tier.BEB, user="u", submit_time=10.0 * i,
                planned_duration=1800.0, planned_end=EndReason.FINISH,
                constraint=platform, cpu_usage_fraction=0.5,
                mem_usage_fraction=0.5,
            )
            c.instances.append(Instance(collection=c, index=0,
                                        request=Resources(0.2, 0.2)))
            jobs.append(c)
        config = CellConfig(name="t", era="2019", horizon=2 * 3600.0,
                            restart_rate_per_hour=0.0,
                            eviction_rate_per_hour={t: 0.0 for t in Tier},
                            machine_downtime_per_month=0.0,
                            batch_queueing=False)
        return CellSim(config, machines, jobs, RngFactory(0)).run()

    def test_constrained_tasks_land_on_required_platform(self):
        result = self._run()
        placements = {}
        for e in result.events.instance_events:
            if e.event.value == "SCHEDULE":
                placements[e.collection_id] = e.machine_id
        assert placements[1] == 0  # platform A
        assert placements[2] == 1  # platform B

    def test_trace_validates_including_constraint_invariant(self):
        trace = encode_cell(self._run())
        assert validate_trace(trace) == []
        constraints = trace.collection_events.column("constraint").values
        assert set(constraints.tolist()) == {"A", "B", ""}


class TestWorkloadConstraints:
    def test_generated_workload_has_constraints(self):
        from repro.workload import small_test_scenario
        sc = small_test_scenario(seed=13)
        constrained = [c for c in sc.workload if c.constraint]
        assert constrained, "2019 workload should carry some constraints"
        share = len(constrained) / len(sc.workload)
        assert 0.01 < share < 0.20
        platforms = {m.platform for m in sc.machines}
        assert all(c.constraint in platforms for c in constrained)


class TestConstraintAnalysis:
    def test_report_on_simulated_trace(self, traces_2019):
        rep = constraints_analysis.constraint_report(traces_2019)
        assert 0.0 < rep.constrained_job_fraction < 0.2
        assert rep.satisfied_fraction == pytest.approx(1.0)
        assert rep.constraints_by_platform
        d = rep.as_dict()
        assert len(d) == 4

    def test_2011_trace_has_fewer_constraints(self, traces_2011, traces_2019):
        r11 = constraints_analysis.constraint_report(traces_2011)
        r19 = constraints_analysis.constraint_report(traces_2019)
        assert r11.constrained_job_fraction <= r19.constrained_job_fraction
