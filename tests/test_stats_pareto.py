"""Unit tests for Pareto tail fitting and heavy-tailed samplers."""

import numpy as np
import pytest

from repro.stats import (
    bounded_pareto_sample,
    fit_pareto_ccdf,
    fit_pareto_mle,
    pareto_sample,
)
from repro.stats.distributions import bounded_pareto_quantile, stratified_uniforms


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestSamplers:
    def test_pareto_respects_x_min(self, rng):
        samples = pareto_sample(rng, alpha=1.5, x_min=2.0, size=1000)
        assert samples.min() >= 2.0

    def test_pareto_tail_probability(self, rng):
        # Pr{X > x} = (x_min/x)^alpha
        samples = pareto_sample(rng, alpha=1.0, x_min=1.0, size=200_000)
        assert float((samples > 10).mean()) == pytest.approx(0.1, rel=0.1)

    def test_pareto_bad_params(self, rng):
        with pytest.raises(ValueError):
            pareto_sample(rng, alpha=0.0, x_min=1.0, size=1)
        with pytest.raises(ValueError):
            pareto_sample(rng, alpha=1.0, x_min=0.0, size=1)

    def test_bounded_pareto_within_bounds(self, rng):
        samples = bounded_pareto_sample(rng, 0.7, 1.0, 100.0, 10_000)
        assert samples.min() >= 1.0 and samples.max() <= 100.0

    def test_bounded_pareto_bad_bounds(self, rng):
        with pytest.raises(ValueError):
            bounded_pareto_sample(rng, 0.7, 5.0, 1.0, 10)

    def test_quantile_monotone(self):
        us = np.linspace(0.0, 0.999, 50)
        qs = bounded_pareto_quantile(us, 0.69, 1.0, 1000.0)
        assert (np.diff(qs) > 0).all()

    def test_quantile_endpoints(self):
        assert bounded_pareto_quantile(0.0, 1.0, 2.0, 50.0) == pytest.approx(2.0)
        assert bounded_pareto_quantile(1.0 - 1e-12, 1.0, 2.0, 50.0) == pytest.approx(50.0, rel=1e-3)

    def test_stratified_uniforms_cover_strata(self, rng):
        u = stratified_uniforms(rng, 100)
        assert sorted(np.floor(np.sort(u) * 100).astype(int).tolist()) == list(range(100))

    def test_stratified_uniforms_empty(self, rng):
        assert len(stratified_uniforms(rng, 0)) == 0


class TestFits:
    def test_regression_fit_recovers_alpha(self, rng):
        samples = bounded_pareto_sample(rng, 0.69, 1.0, 50_000.0, 50_000)
        fit = fit_pareto_ccdf(samples, x_min=1.0, upper_quantile=0.9999)
        assert fit.alpha == pytest.approx(0.69, abs=0.06)
        assert fit.r_squared > 0.98

    def test_mle_fit_recovers_alpha(self, rng):
        samples = pareto_sample(rng, 1.2, 1.0, 50_000)
        fit = fit_pareto_mle(samples, x_min=1.0)
        assert fit.alpha == pytest.approx(1.2, abs=0.05)

    def test_fit_ignores_body_below_x_min(self, rng):
        body = rng.random(10_000) * 0.5
        tail = bounded_pareto_sample(rng, 0.8, 1.0, 10_000.0, 5_000)
        fit = fit_pareto_ccdf(np.concatenate([body, tail]), x_min=1.0)
        assert fit.alpha == pytest.approx(0.8, abs=0.08)

    def test_too_few_tail_samples(self, rng):
        with pytest.raises(ValueError, match="need >= 10"):
            fit_pareto_ccdf([0.1, 0.2, 2.0], x_min=1.0)

    def test_empty_sample(self):
        with pytest.raises(ValueError):
            fit_pareto_ccdf([])

    def test_bad_upper_quantile(self, rng):
        samples = pareto_sample(rng, 1.0, 1.0, 100)
        with pytest.raises(ValueError):
            fit_pareto_ccdf(samples, upper_quantile=1.5)

    def test_model_ccdf_evaluates(self, rng):
        samples = pareto_sample(rng, 1.0, 1.0, 10_000)
        fit = fit_pareto_ccdf(samples)
        model = fit.ccdf(np.array([1.0, 10.0]))
        assert model[0] == pytest.approx(1.0)
        assert 0 < model[1] < 1

    def test_fit_metadata(self, rng):
        samples = bounded_pareto_sample(rng, 1.0, 1.0, 1000.0, 5000)
        fit = fit_pareto_ccdf(samples, x_min=1.0)
        assert fit.n_tail > 1000
        assert fit.x_min == 1.0
        assert fit.x_max <= 1000.0
