"""Unit tests for group-by aggregation and joins."""

import numpy as np
import pytest

from repro.table import Table, col
from repro.util.errors import SchemaError


@pytest.fixture
def usage():
    return Table({
        "tier": ["prod", "beb", "beb", "prod", "free"],
        "cell": ["a", "a", "b", "b", "a"],
        "cpu": [0.5, 0.1, 0.2, 0.3, 0.05],
    })


class TestGroupBy:
    def test_sum_by_single_key(self, usage):
        out = usage.group_by("tier").agg(total=("cpu", "sum")).sort("tier")
        assert out.column("tier").to_list() == ["beb", "free", "prod"]
        assert out.column("total").to_list() == pytest.approx([0.3, 0.05, 0.8])

    def test_multi_key(self, usage):
        out = usage.group_by("tier", "cell").agg(n=("cpu", "count"))
        assert len(out) == 5  # every (tier, cell) pair here is unique

    def test_multiple_aggregations(self, usage):
        out = usage.group_by("cell").agg(
            total=("cpu", "sum"), biggest=("cpu", "max"), n=("tier", "count"),
        ).sort("cell")
        assert out.column("n").to_list() == [3, 2]
        assert out.column("biggest").to_list() == pytest.approx([0.5, 0.3])

    def test_custom_callable(self, usage):
        out = usage.group_by("cell").agg(spread=("cpu", lambda a: float(a.max() - a.min())))
        assert set(out.column_names) == {"cell", "spread"}

    def test_mean_median_var_std(self):
        t = Table({"k": ["x", "x", "x"], "v": [1.0, 2.0, 3.0]})
        out = t.group_by("k").agg(m=("v", "mean"), md=("v", "median"),
                                  var=("v", "var"), sd=("v", "std"))
        assert out.column("m").to_list() == [2.0]
        assert out.column("md").to_list() == [2.0]
        assert out.column("var").to_list() == [1.0]
        assert out.column("sd").to_list() == [1.0]

    def test_first_last_nunique(self, usage):
        out = usage.group_by("cell").agg(
            first=("tier", "first"), last=("tier", "last"), k=("tier", "nunique"),
        ).sort("cell")
        assert out.column("first").to_list() == ["prod", "beb"]
        assert out.column("k").to_list() == [3, 2]

    def test_numeric_agg_on_strings_rejected(self, usage):
        with pytest.raises(SchemaError):
            usage.group_by("cell").agg(x=("tier", "sum"))

    def test_unknown_agg_name(self, usage):
        with pytest.raises(SchemaError, match="unknown aggregation"):
            usage.group_by("cell").agg(x=("cpu", "frobnicate"))

    def test_bad_spec_shape(self, usage):
        with pytest.raises(SchemaError):
            usage.group_by("cell").agg(x="cpu")

    def test_no_aggregations(self, usage):
        with pytest.raises(SchemaError):
            usage.group_by("cell").agg()

    def test_no_keys(self, usage):
        with pytest.raises(SchemaError):
            usage.group_by()

    def test_empty_table(self):
        t = Table({"k": [], "v": []})
        out = t.group_by("k").agg(total=("v", "sum"))
        assert len(out) == 0
        assert out.column_names == ["k", "total"]

    def test_size_shorthand(self, usage):
        out = usage.group_by("tier").size().sort("tier")
        assert out.column("count").to_list() == [2, 1, 2]

    def test_groups_returns_indices(self, usage):
        groups = usage.group_by("cell").groups()
        assert set(groups) == {("a",), ("b",)}
        assert groups[("a",)].tolist() == [0, 1, 4]

    def test_group_count_matches_unique_pairs(self):
        rng = np.random.default_rng(0)
        t = Table({
            "k1": [f"k{int(i)}" for i in rng.integers(0, 5, 200)],
            "k2": rng.integers(0, 7, 200),
            "v": rng.random(200),
        })
        out = t.group_by("k1", "k2").agg(n=("v", "count"))
        pairs = {(a, b) for a, b in zip(t.column("k1"), t.column("k2"))}
        assert len(out) == len(pairs)
        assert int(out.column("n").sum()) == 200


class TestJoin:
    def test_inner_join(self):
        left = Table({"id": [1, 2, 3], "x": [10.0, 20.0, 30.0]})
        right = Table({"id": [2, 3, 4], "y": ["b", "c", "d"]})
        out = left.join(right, on="id")
        assert out.column("id").to_list() == [2, 3]
        assert out.column("y").to_list() == ["b", "c"]

    def test_left_join_fills_missing(self):
        left = Table({"id": [1, 2], "x": [1.0, 2.0]})
        right = Table({"id": [2], "y": [9.0]})
        out = left.join(right, on="id", how="left").sort("id")
        y = out.column("y").to_list()
        assert np.isnan(y[0]) and y[1] == 9.0

    def test_left_join_fill_values_by_kind(self):
        left = Table({"id": [1]})
        right = Table({"id": [2], "s": ["x"], "i": [5], "b": [True]})
        out = left.join(right, on="id", how="left")
        assert out.column("s").to_list() == [""]
        assert out.column("i").to_list() == [-1]
        assert out.column("b").to_list() == [False]

    def test_one_to_many(self):
        left = Table({"id": [1], "x": [0.0]})
        right = Table({"id": [1, 1], "y": [1.0, 2.0]})
        assert len(left.join(right, on="id")) == 2

    def test_multi_key_join(self):
        left = Table({"a": [1, 1], "b": ["x", "y"], "v": [1.0, 2.0]})
        right = Table({"a": [1], "b": ["y"], "w": [9.0]})
        out = left.join(right, on=["a", "b"])
        assert out.column("v").to_list() == [2.0]

    def test_shared_column_suffixed(self):
        left = Table({"id": [1], "v": [1.0]})
        right = Table({"id": [1], "v": [2.0]})
        out = left.join(right, on="id")
        assert out.column("v").to_list() == [1.0]
        assert out.column("v_right").to_list() == [2.0]

    def test_unknown_join_type(self):
        t = Table({"id": [1]})
        with pytest.raises(SchemaError):
            t.join(t, on="id", how="outer")

    def test_missing_key_column(self):
        with pytest.raises(SchemaError):
            Table({"id": [1]}).join(Table({"other": [1]}), on="id")
