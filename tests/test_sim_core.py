"""Unit tests for simulator primitives: resources, tiers, machines."""

import pytest

from repro.sim import (
    Machine,
    Resources,
    Tier,
    priority_for_tier_2011,
    priority_for_tier_2019,
    tier_of_priority_2011,
    tier_of_priority_2019,
)
from repro.sim.entities import Collection, CollectionType, Instance
from repro.sim.priority import merge_monitoring
from repro.util.errors import SimulationError


class TestResources:
    def test_add_sub(self):
        a = Resources(1.0, 2.0) + Resources(0.5, 0.5)
        assert (a.cpu, a.mem) == (1.5, 2.5)
        b = a - Resources(1.5, 2.5)
        assert b.is_zero()

    def test_sub_clamps_tiny_negative(self):
        out = Resources(1.0, 1.0) - Resources(1.0 + 1e-15, 1.0)
        assert out.cpu == 0.0

    def test_scalar_multiply(self):
        assert (Resources(1.0, 2.0) * 2).mem == 4.0
        assert (3 * Resources(1.0, 2.0)).cpu == 3.0

    def test_fits_in_both_dimensions(self):
        assert Resources(0.5, 0.5).fits_in(Resources(0.5, 0.5))
        assert not Resources(0.6, 0.1).fits_in(Resources(0.5, 0.5))
        assert not Resources(0.1, 0.6).fits_in(Resources(0.5, 0.5))

    def test_dominant_share(self):
        share = Resources(0.2, 0.4).dominant_share(Resources(1.0, 1.0))
        assert share == 0.4

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Resources(-1.0, 0.0)

    def test_scale_to(self):
        k = Resources(0.1, 0.2).scale_to(Resources(1.0, 1.0))
        assert k == pytest.approx(5.0)


class TestTiers:
    @pytest.mark.parametrize("priority,tier", [
        (0, Tier.FREE), (99, Tier.FREE),
        (110, Tier.BEB), (115, Tier.BEB),
        (116, Tier.MID), (119, Tier.MID),
        (120, Tier.PROD), (359, Tier.PROD),
        (360, Tier.MONITORING), (450, Tier.MONITORING),
    ])
    def test_2019_bands(self, priority, tier):
        assert tier_of_priority_2019(priority) is tier

    @pytest.mark.parametrize("band,tier", [
        (0, Tier.FREE), (1, Tier.FREE),
        (2, Tier.BEB), (8, Tier.BEB),
        (9, Tier.PROD), (10, Tier.PROD),
        (11, Tier.MONITORING),
    ])
    def test_2011_bands(self, band, tier):
        assert tier_of_priority_2011(band) is tier

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            tier_of_priority_2019(451)
        with pytest.raises(ValueError):
            tier_of_priority_2011(12)

    def test_rank_ordering(self):
        assert (Tier.FREE.rank < Tier.BEB.rank < Tier.MID.rank
                < Tier.PROD.rank < Tier.MONITORING.rank)

    def test_representative_priorities_round_trip(self):
        for tier in (Tier.FREE, Tier.BEB, Tier.MID, Tier.PROD, Tier.MONITORING):
            assert tier_of_priority_2019(priority_for_tier_2019(tier)) is tier
        for tier in (Tier.FREE, Tier.BEB, Tier.PROD, Tier.MONITORING):
            assert tier_of_priority_2011(priority_for_tier_2011(tier)) is tier

    def test_merge_monitoring(self):
        assert merge_monitoring(Tier.MONITORING) is Tier.PROD
        assert merge_monitoring(Tier.BEB) is Tier.BEB

    def test_label(self):
        assert Tier.BEB.label == "beb tier"


def _collection(tier=Tier.PROD, cid=1):
    return Collection(
        collection_id=cid, collection_type=CollectionType.JOB,
        priority=200, tier=tier, user="u", submit_time=0.0,
    )


def _instance(collection, index=0, cpu=0.1, mem=0.1):
    inst = Instance(collection=collection, index=index,
                    request=Resources(cpu, mem))
    collection.instances.append(inst)
    return inst


class TestMachine:
    def test_place_updates_allocation(self):
        m = Machine(0, Resources(1.0, 1.0))
        inst = _instance(_collection())
        m.place(inst)
        assert m.allocated.cpu == pytest.approx(0.1)
        assert inst in m.instances

    def test_double_place_rejected(self):
        m = Machine(0, Resources(1.0, 1.0))
        inst = _instance(_collection())
        m.place(inst)
        with pytest.raises(SimulationError):
            m.place(inst)

    def test_remove_returns_allocation(self):
        m = Machine(0, Resources(1.0, 1.0))
        inst = _instance(_collection())
        m.place(inst)
        m.remove(inst)
        assert m.allocated.is_zero()

    def test_remove_absent_rejected(self):
        m = Machine(0, Resources(1.0, 1.0))
        with pytest.raises(SimulationError):
            m.remove(_instance(_collection()))

    def test_fits_respects_overcommit(self):
        m = Machine(0, Resources(1.0, 1.0))
        big = _instance(_collection(), cpu=1.2, mem=0.5)
        assert not m.fits(big.request, overcommit=1.0)
        assert m.fits(big.request, overcommit=1.5)

    def test_down_machine_never_fits(self):
        m = Machine(0, Resources(1.0, 1.0))
        m.up = False
        assert not m.fits(Resources(0.01, 0.01))

    def test_overcommit_below_one_rejected(self):
        m = Machine(0, Resources(1.0, 1.0))
        with pytest.raises(SimulationError):
            m.fits(Resources(0.1, 0.1), overcommit=0.5)

    def test_preemptible_below_rank_and_order(self):
        m = Machine(0, Resources(2.0, 2.0))
        free = _instance(_collection(Tier.FREE, 1), cpu=0.1, mem=0.1)
        beb_small = _instance(_collection(Tier.BEB, 2), cpu=0.1, mem=0.1)
        beb_big = _instance(_collection(Tier.BEB, 3), cpu=0.4, mem=0.4)
        prod = _instance(_collection(Tier.PROD, 4), cpu=0.1, mem=0.1)
        for inst in (free, beb_small, beb_big, prod):
            m.place(inst)
        victims = m.preemptible_below(Tier.PROD.rank)
        assert prod not in victims
        assert victims[0] is free            # lowest tier first
        assert victims[1] is beb_big         # then biggest within tier

    def test_allocation_ratio(self):
        m = Machine(0, Resources(0.5, 1.0))
        m.place(_instance(_collection(), cpu=0.25, mem=0.5))
        ratios = m.allocation_ratio()
        assert ratios["cpu"] == pytest.approx(0.5)
        assert ratios["mem"] == pytest.approx(0.5)

    def test_headroom(self):
        m = Machine(0, Resources(1.0, 1.0))
        m.place(_instance(_collection(), cpu=0.4, mem=0.3))
        head = m.headroom(overcommit=1.0)
        assert head.cpu == pytest.approx(0.6)
        assert head.mem == pytest.approx(0.7)
