"""Per-rule fixtures for RPR002-RPR007: true positive, suppression, clean.

Each rule's positive fixture is the bug class the rule exists to catch —
code that parses, imports, and passes casual runtime tests, but violates
a repo invariant (nondeterminism, pickle failure under workers>1,
swallowed errors, silent unit assumptions).
"""

import textwrap

from repro.lint import lint_source

SIM_PATH = "src/repro/sim/fixture.py"
WORKLOAD_PATH = "src/repro/workload/fixture.py"
ANALYSIS_PATH = "src/repro/analysis/fixture.py"


def lint(source, path, rule_id):
    return lint_source(textwrap.dedent(source), path, select=[rule_id])


# -- RPR002: determinism ----------------------------------------------------

def test_rpr002_flags_wall_clock_and_global_rng():
    source = """\
        import time
        import numpy as np

        def step(state):
            np.random.seed(0)
            state.started = time.time()
            return np.random.rand()
    """
    violations = lint(source, SIM_PATH, "RPR002")
    messages = [v.message for v in violations]
    assert len(violations) == 3
    assert any("numpy.random.seed" in m for m in messages)
    assert any("time.time" in m for m in messages)
    assert any("numpy.random.rand" in m for m in messages)


def test_rpr002_flags_from_imports_and_random_module():
    source = """\
        import random
        from time import monotonic

        def jitter():
            return monotonic() + random.random()
    """
    violations = lint(source, WORKLOAD_PATH, "RPR002")
    assert len(violations) == 2
    assert any("time.monotonic" in v.message for v in violations)
    assert any("random.random" in v.message for v in violations)


def test_rpr002_allows_injected_generator():
    source = """\
        import numpy as np

        def step(rng: np.random.Generator, now: float):
            return now + rng.exponential(1.0)
    """
    assert lint(source, SIM_PATH, "RPR002") == []


def test_rpr002_scoped_to_sim_and_workload():
    source = """\
        import time

        def stamp():
            return time.time()
    """
    assert lint(source, ANALYSIS_PATH, "RPR002") == []
    assert len(lint(source, SIM_PATH, "RPR002")) == 1


def test_rpr002_suppression():
    source = """\
        import time

        def profile():
            return time.time()  # repro: noqa[RPR002]
    """
    assert lint(source, SIM_PATH, "RPR002") == []


# -- RPR003: fork safety ----------------------------------------------------

def test_rpr003_flags_lambdas():
    source = """\
        def total_rows(scan):
            return scan.map_reduce(lambda c: len(c), lambda a, b: a + b)
    """
    violations = lint(source, ANALYSIS_PATH, "RPR003")
    assert len(violations) == 2
    assert all("lambda" in v.message for v in violations)
    assert all("map_reduce" in v.message for v in violations)


def test_rpr003_flags_nested_functions():
    source = """\
        def total_rows(scan):
            def count(chunk):
                return len(chunk)
            return scan.map_reduce(count, _add)
    """
    violations = lint(source, ANALYSIS_PATH, "RPR003")
    assert len(violations) == 1
    assert "closure" in violations[0].message
    assert "'count'" in violations[0].message


def test_rpr003_flags_bound_methods_and_keyword_args():
    source = """\
        class Runner:
            def go(self, scan):
                return scan.map_reduce(self.mapper, reduce_fn=self.reducer)
    """
    violations = lint(source, ANALYSIS_PATH, "RPR003")
    assert len(violations) == 2
    assert all("bound method" in v.message for v in violations)


def test_rpr003_allows_module_level_functions_and_partial():
    source = """\
        from functools import partial

        import numpy as np

        def count(chunk):
            return len(chunk)

        def scaled(chunk, factor):
            return len(chunk) * factor

        def run(scan):
            a = scan.map_reduce(count, np.add)
            b = scan.map_reduce(partial(scaled, factor=2), count)
            return a, b
    """
    assert lint(source, ANALYSIS_PATH, "RPR003") == []


def test_rpr003_flags_lambda_inside_partial():
    source = """\
        from functools import partial

        def run(scan):
            return scan.map_reduce(partial(lambda c, k: len(c), k=1), _add)
    """
    violations = lint(source, ANALYSIS_PATH, "RPR003")
    assert len(violations) == 1
    assert "lambda" in violations[0].message


def test_rpr003_suppression():
    source = """\
        def run(scan):  # serial-only path, never workers>1
            return scan.map_reduce(lambda c: len(c), _add)  # repro: noqa[RPR003]
    """
    assert lint(source, ANALYSIS_PATH, "RPR003") == []


# -- RPR004: exception hygiene ----------------------------------------------

def test_rpr004_flags_swallowing_broad_handlers():
    source = """\
        def load(path):
            try:
                return parse(path)
            except:
                return None

        def load2(path):
            try:
                return parse(path)
            except Exception:
                return None
    """
    violations = lint(source, ANALYSIS_PATH, "RPR004")
    assert len(violations) == 2
    assert "bare except" in violations[0].message
    assert "except Exception" in violations[1].message


def test_rpr004_flags_broad_member_of_tuple():
    source = """\
        def load(path):
            try:
                return parse(path)
            except (ValueError, Exception):
                return None
    """
    assert len(lint(source, ANALYSIS_PATH, "RPR004")) == 1


def test_rpr004_allows_narrow_reraise_and_logging():
    source = """\
        import logging

        def load(path):
            try:
                return parse(path)
            except ValueError:
                return None

        def load2(path):
            try:
                return parse(path)
            except Exception:
                logging.exception("parse failed: %s", path)
                return None

        def load3(path):
            try:
                return parse(path)
            except BaseException:
                raise
    """
    assert lint(source, ANALYSIS_PATH, "RPR004") == []


def test_rpr004_suppression():
    source = """\
        def probe(path):
            try:
                return parse(path)
            except Exception:  # repro: noqa[RPR004]
                return None
    """
    assert lint(source, ANALYSIS_PATH, "RPR004") == []


# -- RPR005: unit discipline ------------------------------------------------

def test_rpr005_flags_magnitude_literals():
    source = """\
        def hours(seconds):
            return seconds / 3600.0

        GIB = 1073741824
    """
    violations = lint(source, ANALYSIS_PATH, "RPR005")
    assert len(violations) == 2
    assert "3600.0" in violations[0].message
    assert "HOUR_SECONDS" in violations[0].message
    assert "1073741824" in violations[1].message


def test_rpr005_allows_unit_modules_and_small_numbers():
    magnitudes = "HOUR_SECONDS = 3600.0\nDAY_SECONDS = 86400.0\n"
    assert lint_source(magnitudes, "src/repro/util/timeutil.py",
                       select=["RPR005"]) == []
    harmless = "x = 60\ny = 1024\nz = 0.25\nflag = True\n"
    assert lint(harmless, ANALYSIS_PATH, "RPR005") == []


def test_rpr005_suppression():
    source = "window = 86400  # repro: noqa[RPR005] matches figure 7 caption\n"
    assert lint(source, ANALYSIS_PATH, "RPR005") == []


# -- RPR006: obs discipline -------------------------------------------------

def test_rpr006_flags_dynamic_span_names():
    source = """\
        from repro import obs

        def work(kind, items):
            with obs.span("sim." + kind):
                pass
            with obs.span(f"store.{kind}"):
                pass
            obs.traced(kind)
    """
    violations = lint(source, SIM_PATH, "RPR006")
    assert len(violations) == 3
    assert all("string literal" in v.message for v in violations)


def test_rpr006_flags_missing_name_and_keyword_form():
    source = """\
        from repro.obs import span

        def work(name):
            with span():
                pass
            with span(name=name):
                pass
    """
    violations = lint(source, SIM_PATH, "RPR006")
    assert len(violations) == 2
    assert "missing its span name" in violations[0].message


def test_rpr006_allows_literals_and_dynamic_counters():
    source = """\
        from repro import obs
        from repro.obs import traced

        @traced("analysis.reducer")
        def reduce(table, kind):
            with obs.span("analysis.phase"):
                # Counters may be dynamic: they are flat and merge by name.
                obs.inc("analysis." + kind)
            return table
    """
    assert lint(source, ANALYSIS_PATH, "RPR006") == []


def test_rpr006_ignores_unrelated_span_functions():
    source = """\
        def span(name):
            return name

        def work(kind):
            span(kind)  # not repro.obs.span
    """
    assert lint(source, SIM_PATH, "RPR006") == []


def test_rpr006_suppression():
    source = """\
        from repro import obs

        def work(kind):
            with obs.span("x" + kind):  # repro: noqa[RPR006]
                pass
    """
    assert lint(source, SIM_PATH, "RPR006") == []


# -- RPR007: hot-loop guards ------------------------------------------------

def test_rpr007_flags_unguarded_recorder_in_loop():
    source = """\
        def run(self):
            while self._heap:
                self.recorder.tick(t)
    """
    violations = lint(source, SIM_PATH, "RPR007")
    assert len(violations) == 1
    assert violations[0].rule == "RPR007"
    assert "loop" in violations[0].message


def test_rpr007_flags_profiler_in_for_and_comprehension():
    source = """\
        def run(self, profiler):
            for event in self.events:
                profiler.sample(event)
            return [profiler.snapshot(e) for e in self.events]
    """
    assert len(lint(source, SIM_PATH, "RPR007")) == 2


def test_rpr007_allows_guarded_and_hoisted_calls():
    source = """\
        def run(self):
            recorder = self.recorder
            while self._heap:
                if recorder is not None and t >= recorder.next_due:
                    recorder.tick(t)
            if recorder is not None:
                for t in trailing:
                    recorder.finish(t)
    """
    assert lint(source, SIM_PATH, "RPR007") == []


def test_rpr007_guard_must_cover_the_call():
    # The else branch of a recorder guard is *not* guarded.
    source = """\
        def run(self, recorder):
            for t in ts:
                if recorder is None:
                    pass
                else:
                    recorder.tick(t)
    """
    assert len(lint(source, SIM_PATH, "RPR007")) == 1


def test_rpr007_allows_setup_outside_loops_and_other_dirs():
    setup = """\
        def __init__(self, recorder):
            self.recorder = recorder
            recorder.attach(self.probes())
    """
    assert lint(setup, SIM_PATH, "RPR007") == []
    loop = """\
        def drain(self, recorder):
            for frame in frames:
                recorder.emit(frame)
    """
    assert lint(loop, ANALYSIS_PATH, "RPR007") == []


def test_rpr007_suppression():
    source = """\
        def run(self, recorder):
            for t in ts:
                recorder.tick(t)  # repro: noqa[RPR007]
    """
    assert lint(source, SIM_PATH, "RPR007") == []
