"""Framework tests for repro.lint: registry, noqa, driver, reporters."""

import io
import json

import pytest

from repro.lint import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_VIOLATIONS,
    RULES,
    Rule,
    Violation,
    exit_code,
    iter_python_files,
    lint_paths,
    lint_source,
    parse_noqa,
    render,
    render_json,
    render_text,
    rule,
)

SIM_PATH = "src/repro/sim/fixture.py"


# -- registry ---------------------------------------------------------------

def test_builtin_rules_registered():
    assert set(RULES) == {"RPR001", "RPR002", "RPR003", "RPR004", "RPR005",
                          "RPR006", "RPR007", "RPR008", "RPR009", "RPR010"}
    for rule_id, cls in RULES.items():
        assert cls.id == rule_id
        assert cls.summary


def test_rule_decorator_rejects_bad_ids():
    class NoId(Rule):
        id = "XYZ1"
        summary = "whatever"

    with pytest.raises(ValueError, match="must look like"):
        rule(NoId)

    class NoSummary(Rule):
        id = "RPR999"
        summary = ""

    with pytest.raises(ValueError, match="summary"):
        rule(NoSummary)


def test_rule_decorator_rejects_duplicate_ids():
    class Duplicate(Rule):
        id = "RPR001"
        summary = "an impostor"

    with pytest.raises(ValueError, match="duplicate"):
        rule(Duplicate)
    assert RULES["RPR001"].summary != "an impostor"


def test_unknown_select_raises():
    with pytest.raises(ValueError, match="RPR042"):
        lint_source("x = 1\n", "a.py", select=["RPR042"])


# -- noqa parsing -----------------------------------------------------------

def test_parse_noqa_bare_and_targeted():
    source = (
        "a = 1  # repro: noqa\n"
        "b = 2  # repro: noqa[RPR001,RPR005]\n"
        "c = 3  # repro: NOQA[rpr002]\n"
        "d = 4  # plain comment\n"
    )
    noqa = parse_noqa(source)
    assert noqa[1] == {"*"}
    assert noqa[2] == {"RPR001", "RPR005"}
    assert noqa[3] == {"RPR002"}
    assert 4 not in noqa


def test_parse_noqa_ignores_string_literals():
    assert parse_noqa("s = '# repro: noqa'\n") == {}


def test_noqa_suppresses_only_its_line_and_rule():
    flagged = "window = 3600.0\n"
    assert [v.rule for v in lint_source(flagged, "x.py")] == ["RPR005"]
    suppressed = "window = 3600.0  # repro: noqa[RPR005]\n"
    assert lint_source(suppressed, "x.py") == []
    wrong_rule = "window = 3600.0  # repro: noqa[RPR001]\n"
    assert [v.rule for v in lint_source(wrong_rule, "x.py")] == ["RPR005"]
    bare = "window = 3600.0  # repro: noqa\n"
    assert lint_source(bare, "x.py") == []
    other_line = "# repro: noqa[RPR005]\nwindow = 3600.0\n"
    assert [v.rule for v in lint_source(other_line, "x.py")] == ["RPR005"]


# -- driver -----------------------------------------------------------------

def test_syntax_error_reports_rpr000():
    violations = lint_source("def broken(:\n", "bad.py")
    assert len(violations) == 1
    assert violations[0].rule == "RPR000"
    assert "syntax error" in violations[0].message
    assert exit_code(violations) == EXIT_ERROR


def test_clean_source_is_clean():
    assert lint_source("x = 1\n", SIM_PATH) == []


def test_violations_sorted_by_location():
    source = "b = 86400\na = 3600\n"
    violations = lint_source(source, "x.py")
    assert [v.line for v in violations] == [1, 2]


def test_select_filters_rules():
    source = "try:\n    pass\nexcept Exception:\n    pass\nx = 3600\n"
    all_rules = {v.rule for v in lint_source(source, "x.py")}
    assert all_rules == {"RPR004", "RPR005"}
    only = lint_source(source, "x.py", select=["RPR004"])
    assert {v.rule for v in only} == {"RPR004"}


def test_iter_python_files_and_lint_paths(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "b.py").write_text("x = 3600\n")
    (tmp_path / "pkg" / "a.py").write_text("y = 1\n")
    (tmp_path / "pkg" / "notes.txt").write_text("not python")
    single = tmp_path / "c.py"
    single.write_text("z = 86400\n")
    files = list(iter_python_files([tmp_path / "pkg", single]))
    assert [f.name for f in files] == ["a.py", "b.py", "c.py"]
    violations = lint_paths([tmp_path / "pkg", single])
    assert sorted(v.path.rsplit("/", 1)[-1] for v in violations) == \
        ["b.py", "c.py"]


# -- violations and reporters ----------------------------------------------

def test_violation_format_and_dict():
    v = Violation("RPR001", "src/x.py", 3, 7, "bad column")
    assert v.format() == "src/x.py:3:7: RPR001 bad column"
    assert v.to_dict() == {"rule": "RPR001", "path": "src/x.py", "line": 3,
                           "column": 7, "message": "bad column"}


def test_render_text_summary_and_statistics():
    violations = [Violation("RPR005", "x.py", 1, 1, "raw 3600"),
                  Violation("RPR005", "x.py", 2, 1, "raw 86400")]
    out = io.StringIO()
    render_text(violations, 4, out, statistics=True)
    text = out.getvalue()
    assert "x.py:1:1: RPR005 raw 3600" in text
    assert "2 violations in 4 file(s) checked" in text
    assert "RPR005" in text.splitlines()[-2]

    out = io.StringIO()
    render_text([], 4, out)
    assert out.getvalue() == "0 violations in 4 file(s) checked\n"


def test_render_json_document():
    violations = [Violation("RPR002", "s.py", 9, 5, "wall clock")]
    out = io.StringIO()
    render_json(violations, 2, out)
    document = json.loads(out.getvalue())
    assert document["files_checked"] == 2
    assert document["violation_count"] == 1
    assert document["exit_code"] == EXIT_VIOLATIONS
    assert document["violations"][0]["rule"] == "RPR002"
    assert document["rules"]["RPR002"]["violations"] == 1
    assert document["rules"]["RPR001"]["violations"] == 0


def test_render_returns_exit_code():
    assert render([], 1, io.StringIO()) == EXIT_CLEAN
    v = Violation("RPR005", "x.py", 1, 1, "m")
    assert render([v], 1, io.StringIO(), format="json") == EXIT_VIOLATIONS
    err = Violation("RPR000", "x.py", 1, 1, "syntax error: bad")
    assert render([err], 1, io.StringIO()) == EXIT_ERROR
