"""Unit tests for ``repro.obs``: timers, spans, registry, reports, CLI."""

from __future__ import annotations

import json
import math
import pickle

import pytest

from repro import obs
from repro.cli import main
from repro.obs.report import CORE_SECTIONS
from repro.obs.spans import SpanNode, SpanTree
from repro.obs.timing import (
    N_BUCKETS,
    TimingHistogram,
    bucket_bounds,
    bucket_index,
)


@pytest.fixture()
def registry():
    """A fresh registry installed as current for the duration of a test."""
    with obs.scoped_registry() as fresh:
        yield fresh


# -- timing histograms --------------------------------------------------------

class TestTimingHistogram:
    def test_bucket_index_edges(self):
        assert bucket_index(0.0) == 0
        assert bucket_index(1e-7) == 0            # underflow
        assert bucket_index(1e5) == N_BUCKETS - 1  # overflow
        # Every interior value lands in a bucket whose bounds contain it.
        for value in (1e-6, 3.7e-4, 0.01, 0.5, 1.0, 42.0, 9999.0):
            lo, hi = bucket_bounds(bucket_index(value))
            assert lo <= value < hi or math.isclose(value, lo)

    def test_observe_tracks_exact_count_sum_min_max(self):
        hist = TimingHistogram()
        for value in (0.5, 0.1, 2.0, 0.3):
            hist.observe(value)
        assert hist.count == 4
        assert hist.total == pytest.approx(2.9)
        assert hist.min == 0.1
        assert hist.max == 2.0
        assert hist.mean == pytest.approx(2.9 / 4)

    def test_percentiles_clamped_to_observed_range(self):
        hist = TimingHistogram()
        for value in (0.2, 0.4, 0.6, 0.8, 1.0):
            hist.observe(value)
        for p in (50.0, 95.0, 99.0):
            assert hist.min <= hist.percentile(p) <= hist.max
        # Percentiles are monotone in p.
        assert hist.percentile(50.0) <= hist.percentile(95.0) \
            <= hist.percentile(99.0)

    def test_percentile_relative_error_bounded(self):
        hist = TimingHistogram()
        values = [1e-4 * (1.1 ** i) for i in range(200)]
        for value in values:
            hist.observe(value)
        exact = sorted(values)[int(len(values) * 0.5) - 1]
        estimate = hist.percentile(50.0)
        assert abs(estimate - exact) / exact < 0.3

    def test_percentile_validates_range(self):
        hist = TimingHistogram()
        with pytest.raises(ValueError):
            hist.percentile(0.0)
        with pytest.raises(ValueError):
            hist.percentile(101.0)
        assert hist.percentile(50.0) == 0.0  # empty histogram

    def test_merge_equals_observing_everything(self):
        a, b, combined = TimingHistogram(), TimingHistogram(), TimingHistogram()
        for i, value in enumerate(v * 1e-3 for v in range(1, 51)):
            (a if i % 2 else b).observe(value)
            combined.observe(value)
        a.merge(b)
        assert a.count == combined.count
        assert a.total == pytest.approx(combined.total)
        assert a.min == combined.min and a.max == combined.max
        for p in (50.0, 95.0, 99.0):
            assert a.percentile(p) == pytest.approx(combined.percentile(p))

    def test_dict_round_trip(self):
        hist = TimingHistogram()
        for value in (1e-5, 0.02, 3.0):
            hist.observe(value)
        clone = TimingHistogram.from_dict(
            json.loads(json.dumps(hist.to_dict())))
        assert clone.to_dict() == hist.to_dict()
        assert clone.summary() == hist.summary()

    def test_summary_keys(self):
        summary = TimingHistogram().summary()
        assert set(summary) == {"count", "sum", "mean", "min", "max",
                                "p50", "p95", "p99"}


# -- spans --------------------------------------------------------------------

class TestSpans:
    def test_nesting_aggregates_by_parent_and_name(self, registry):
        for _ in range(3):
            with obs.span("outer"):
                with obs.span("inner"):
                    pass
                with obs.span("inner"):
                    pass
        assert registry.snapshot().span_structure() == (
            "root", 0, (("outer", 3, (("inner", 6, ()),)),))

    def test_same_name_different_parents_are_distinct_nodes(self, registry):
        with obs.span("a"):
            with obs.span("shared"):
                pass
        with obs.span("b"):
            with obs.span("shared"):
                pass
        assert registry.snapshot().span_structure() == (
            "root", 0, (("a", 1, (("shared", 1, ()),)),
                        ("b", 1, (("shared", 1, ()),))))

    def test_sibling_order_is_first_entry_order(self, registry):
        with obs.span("late_alphabetically_z"):
            pass
        with obs.span("early_alphabetically_a"):
            pass
        structure = registry.snapshot().span_structure()
        assert [child[0] for child in structure[2]] == \
            ["late_alphabetically_z", "early_alphabetically_a"]

    def test_span_durations_accumulate(self, registry):
        with obs.span("timed"):
            pass
        with obs.span("timed"):
            pass
        node = registry.spans.root.children["timed"]
        assert node.count == 2
        assert node.total >= 0.0

    def test_span_feeds_a_same_named_timer(self, registry):
        with obs.span("store.scan"):
            pass
        assert registry.timer("store.scan").count == 1

    def test_exception_still_closes_span(self, registry):
        with pytest.raises(RuntimeError):
            with obs.span("fails"):
                raise RuntimeError("boom")
        assert registry.spans.current is registry.spans.root
        assert registry.spans.root.children["fails"].count == 1

    def test_mis_nesting_unwinds(self):
        tree = SpanTree()
        outer = tree.enter("outer")
        tree.enter("inner")  # never exited
        tree.exit(outer, 0.5)
        assert tree.current is tree.root
        assert outer.count == 1

    def test_node_merge_recursive(self):
        a, b = SpanNode("x"), SpanNode("x")
        a.child("c").count = 2
        b.child("c").count = 3
        b.child("d").count = 1
        b.count = 4
        a.merge(b)
        assert a.count == 4
        assert a.children["c"].count == 5
        assert a.children["d"].count == 1

    def test_node_dict_round_trip(self, registry):
        with obs.span("p"):
            with obs.span("q"):
                pass
        root = registry.spans.root
        clone = SpanNode.from_dict(json.loads(json.dumps(root.to_dict())))
        assert clone.structure() == root.structure()


# -- registry -----------------------------------------------------------------

class TestRegistry:
    def test_counter_handles_are_stable(self, registry):
        handle = obs.counter("events")
        handle.inc()
        handle.inc(5)
        obs.inc("events", 4)
        assert registry.snapshot().counters["events"] == 10
        assert obs.counter("events") is handle

    def test_gauge_last_value_wins(self, registry):
        obs.gauge("depth", 3)
        obs.gauge("depth", 7)
        assert registry.snapshot().gauges["depth"] == 7.0

    def test_observe_records_into_named_timer(self, registry):
        obs.observe("phase", 0.25)
        obs.observe("phase", 0.75)
        assert obs.timer("phase").count == 2

    def test_scoped_registry_isolates_and_restores(self):
        outer = obs.get_registry()
        obs.inc("outer_only")
        with obs.scoped_registry() as inner:
            assert obs.get_registry() is inner
            obs.inc("inner_only")
            assert "outer_only" not in inner.snapshot().counters
        assert obs.get_registry() is outer
        assert "inner_only" not in obs.snapshot().counters

    def test_reset_clears_everything(self, registry):
        obs.inc("c")
        obs.gauge("g", 1)
        obs.observe("t", 0.1)
        with obs.span("s"):
            pass
        obs.reset()
        snapshot = obs.snapshot()
        assert snapshot.counters == {} and snapshot.gauges == {} \
            and snapshot.timers == {}
        assert snapshot.span_structure() == ("root", 0, ())

    def test_snapshot_pickles(self, registry):
        obs.inc("n", 2)
        obs.observe("t", 0.5)
        with obs.span("s"):
            pass
        snapshot = pickle.loads(pickle.dumps(obs.snapshot()))
        assert snapshot.counters["n"] == 2
        assert snapshot.span_structure() == ("root", 0, (("s", 1, ()),))

    def test_merge_snapshot_semantics(self, registry):
        child = obs.MetricsRegistry()
        child.inc("n", 3)
        child.gauge("g", 9)
        child.observe("t", 0.5)
        with child.span("work"):
            pass
        obs.inc("n", 1)
        obs.gauge("g", 1)
        obs.observe("t", 1.5)
        registry.merge_snapshot(child.snapshot())
        merged = registry.snapshot()
        assert merged.counters["n"] == 4          # counters add
        assert merged.gauges["g"] == 9.0          # gauges: merge wins
        timer = registry.timer("t")
        assert timer.count == 2 and timer.min == 0.5 and timer.max == 1.5

    def test_merge_grafts_spans_under_open_span(self, registry):
        child = obs.MetricsRegistry()
        with child.span("store.chunk"):
            pass
        with obs.span("store.scan"):
            registry.merge_snapshot(child.snapshot())
        assert registry.snapshot().span_structure() == (
            "root", 0, (("store.scan", 1, (("store.chunk", 1, ()),)),))

    def test_traced_decorator(self, registry):
        calls = []

        @obs.traced("analysis.unit_test")
        def reducer(x):
            calls.append(x)
            return x * 2

        assert reducer(21) == 42
        assert reducer.__name__ == "reducer"
        assert registry.spans.root.children["analysis.unit_test"].count == 1


# -- run reports --------------------------------------------------------------

class TestRunReport:
    def test_core_sections_always_present(self, registry):
        report = obs.run_report(command="noop")
        assert set(CORE_SECTIONS) <= set(report["sections"])
        for name in CORE_SECTIONS:
            assert report["sections"][name] == \
                {"counters": {}, "gauges": {}, "timers": {}}

    def test_sections_group_by_first_dotted_component(self, registry):
        obs.inc("sim.events", 5)
        obs.gauge("store.pool_workers", 2)
        obs.observe("analysis.fig6", 0.1)
        obs.inc("bare_name")
        report = obs.run_report()
        assert report["sections"]["sim"]["counters"]["sim.events"] == 5
        assert report["sections"]["store"]["gauges"]["store.pool_workers"] == 2.0
        assert report["sections"]["analysis"]["timers"]["analysis.fig6"][
            "count"] == 1
        assert report["sections"]["other"]["counters"]["bare_name"] == 1

    def test_write_load_round_trip(self, registry, tmp_path):
        obs.inc("sim.events", 3)
        with obs.span("sim.run"):
            pass
        path = tmp_path / "report.json"
        written = obs.write_report(path, command="test", meta={"seed": 1})
        loaded = obs.load_report(path)
        assert loaded == json.loads(json.dumps(written))
        assert loaded["schema"] == obs.SCHEMA
        assert loaded["meta"] == {"seed": 1}
        assert loaded["spans"]["children"][0]["name"] == "sim.run"

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"schema": "something/else"}')
        with pytest.raises(ValueError, match="not a repro.obs run report"):
            obs.load_report(path)

    def test_render_contains_spans_and_metrics(self, registry):
        with obs.span("sim.run"):
            obs.inc("sim.events_processed", 12)
        text = obs.render_report(obs.run_report(command="simulate"))
        assert "command: simulate" in text
        assert "sim.run" in text
        assert "sim.events_processed" in text and "12" in text


# -- CLI ----------------------------------------------------------------------

class TestObsCli:
    @pytest.fixture(scope="class")
    def report_path(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("obs_cli")
        path = root / "report.json"
        with obs.scoped_registry():
            rc = main(["simulate", "--cells", "d", "--out", str(root / "t"),
                       "--machines", "10", "--hours", "2", "--scale", "0.01",
                       "--format", "store", "--obs-out", str(path)])
        assert rc == 0
        return path

    def test_simulate_obs_out_has_all_core_sections(self, report_path):
        report = obs.load_report(report_path)
        assert set(CORE_SECTIONS) <= set(report["sections"])
        sim = report["sections"]["sim"]
        assert sim["counters"]["sim.events_processed"] > 0
        store = report["sections"]["store"]
        assert store["counters"]["store.chunks_written"] > 0
        span_names = [c["name"] for c in report["spans"]["children"]]
        assert "sim.run" in span_names and "store.write" in span_names

    def test_query_obs_out(self, report_path, tmp_path, capsys):
        out = tmp_path / "query.json"
        with obs.scoped_registry():
            rc = main(["query", str(report_path.parent / "t" / "d"),
                       "instance_usage", "--agg", "mean:avg_cpu",
                       "--obs-out", str(out)])
        assert rc == 0
        report = obs.load_report(out)
        assert report["command"] == "query"
        assert report["sections"]["store"]["counters"]["store.scans"] == 1

    def test_stats_renders_text(self, report_path, capsys):
        assert main(["stats", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "repro.obs run report" in out
        assert "sim.run" in out

    def test_stats_json_round_trips(self, report_path, capsys):
        assert main(["stats", str(report_path), "--format", "json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed == obs.load_report(report_path)

    def test_stats_rejects_non_report(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.json"
        bogus.write_text("{}")
        assert main(["stats", str(bogus)]) == 2
        assert "unsupported repro.obs schema" in capsys.readouterr().err
