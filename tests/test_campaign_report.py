"""Trade-study aggregation and Pareto-front logic on synthetic payloads."""

from repro.campaign import (
    aggregate_points,
    build_report,
    pareto_front,
    parse_spec,
    render_report,
    render_report_json,
)


def payload(oc, seed, status="ok", **metrics):
    """A synthetic repro.campaign.result/1 payload for one point."""
    defaults = {"cpu_utilization": 0.5, "mem_utilization": 0.4,
                "evictions_per_machine_hour": 1.0,
                "p95_queueing_delay_s": 10.0}
    defaults.update(metrics)
    return {"schema": "repro.campaign.result/1", "key": f"k{oc}-{seed}",
            "point_id": 0, "params": {"overcommit_cpu": oc, "machines": 8},
            "grid": {"overcommit_cpu": oc}, "seed": seed, "status": status,
            "metrics": defaults if status == "ok" else {}, "error": None}


class TestAggregate:
    def test_mean_over_seeds(self):
        rows = aggregate_points(
            [payload(1.2, 0, cpu_utilization=0.4),
             payload(1.2, 1, cpu_utilization=0.6),
             payload(1.9, 0, cpu_utilization=0.7)],
            grid_axes=["overcommit_cpu"])
        assert len(rows) == 2
        assert rows[0]["grid"] == {"overcommit_cpu": 1.2}
        assert rows[0]["metrics"]["cpu_utilization"] == 0.5
        assert rows[0]["seeds"] == [0, 1]
        assert rows[1]["metrics"]["cpu_utilization"] == 0.7

    def test_error_seeds_tracked_separately(self):
        rows = aggregate_points(
            [payload(1.2, 0), payload(1.2, 1, status="error")],
            grid_axes=["overcommit_cpu"])
        assert rows[0]["seeds"] == [0]
        assert rows[0]["errors"] == [1]

    def test_rows_in_first_seen_order(self):
        rows = aggregate_points(
            [payload(1.9, 0), payload(1.2, 0)],
            grid_axes=["overcommit_cpu"])
        assert [r["grid"]["overcommit_cpu"] for r in rows] == [1.9, 1.2]


class TestParetoFront:
    def test_dominated_point_excluded(self):
        rows = aggregate_points(
            [payload(1.2, 0, cpu_utilization=0.4,
                     evictions_per_machine_hour=2.0,
                     p95_queueing_delay_s=20.0),
             payload(1.9, 0, cpu_utilization=0.5,
                     evictions_per_machine_hour=1.0,
                     p95_queueing_delay_s=10.0)],
            grid_axes=["overcommit_cpu"])
        assert pareto_front(rows) == [1]

    def test_tradeoff_keeps_both(self):
        # Higher utilization but worse evictions: neither dominates.
        rows = aggregate_points(
            [payload(1.2, 0, cpu_utilization=0.4,
                     evictions_per_machine_hour=0.5),
             payload(1.9, 0, cpu_utilization=0.6,
                     evictions_per_machine_hour=2.0)],
            grid_axes=["overcommit_cpu"])
        assert pareto_front(rows) == [0, 1]

    def test_identical_points_both_on_front(self):
        rows = aggregate_points(
            [payload(1.2, 0), payload(1.9, 0)],
            grid_axes=["overcommit_cpu"])
        assert pareto_front(rows) == [0, 1]

    def test_all_error_row_never_on_front(self):
        rows = aggregate_points(
            [payload(1.2, 0), payload(1.9, 0, status="error")],
            grid_axes=["overcommit_cpu"])
        assert pareto_front(rows) == [0]


class TestRendering:
    SPEC = {
        "campaign": "render-test",
        "description": "synthetic",
        "base": {"machines": 8, "hours": 2.0},
        "grid": {"overcommit_cpu": [1.2, 1.9]},
        "seeds": [0],
    }

    def test_text_report_shape(self):
        spec = parse_spec(self.SPEC)
        report = build_report(spec, [
            payload(1.2, 0, cpu_utilization=0.4,
                    evictions_per_machine_hour=2.0),
            payload(1.9, 0, cpu_utilization=0.6,
                    evictions_per_machine_hour=1.0)])
        text = render_report(report)
        assert "campaign render-test" in text
        assert "Pareto front" in text
        assert "overcommit_cpu" in text
        # Only the dominating row is starred.
        starred = [line for line in text.splitlines()
                   if line.lstrip().startswith("*")]
        assert len(starred) == 1 and "1.9" in starred[0]

    def test_json_report_roundtrips(self):
        import json
        spec = parse_spec(self.SPEC)
        report = build_report(spec, [payload(1.2, 0), payload(1.9, 0)])
        decoded = json.loads(render_report_json(report))
        assert decoded["pareto_front"] == [0, 1]
        assert decoded["objectives"][0] == {"metric": "cpu_utilization",
                                            "direction": "max"}

    def test_empty_front_message(self):
        spec = parse_spec(self.SPEC)
        report = build_report(spec, [payload(1.2, 0, status="error")])
        assert "empty" in render_report(report)
