"""Whole-program lint: graph, flow rules, incremental cache, suppression.

Each flow-rule fixture splits source, propagation, and sink across
*different modules*, then proves the per-file driver is blind to the
violation while the project driver reports it — the reason RPR008–010
exist at all.
"""

import json
import textwrap

import pytest

from repro.lint import RULES, Rule, lint_project, lint_source, rule
from repro.lint.graph import ProjectGraph, module_name
from repro.lint.project import ProjectContext


def write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")
    return root


def violations_of(result, rule_id):
    return [v for v in result.violations if v.rule == rule_id]


# ---------------------------------------------------------------------------
# graph


def test_module_name_walks_package_chain(tmp_path):
    write_tree(tmp_path, {
        "repro/__init__.py": "",
        "repro/sim/__init__.py": "",
        "repro/sim/engine.py": "",
        "standalone.py": "",
    })
    assert module_name(tmp_path / "repro/sim/engine.py") == "repro.sim.engine"
    assert module_name(tmp_path / "repro/sim/__init__.py") == "repro.sim"
    assert module_name(tmp_path / "standalone.py") == "standalone"


def test_graph_imports_and_reverse_closure(tmp_path):
    root = write_tree(tmp_path, {
        "repro/__init__.py": "",
        "repro/base.py": "X = 1\n",
        "repro/mid.py": "from repro.base import X\n",
        "repro/top.py": "import repro.mid\n",
        "repro/other.py": "Y = 2\n",
    })
    graph = ProjectGraph.build(
        (p, p.read_text()) for p in sorted(root.rglob("*.py")))
    assert "repro.base" in graph.modules["repro.mid"].imports
    assert graph.importers("repro.base") == {"repro.mid"}
    closure = graph.reverse_closure({"repro.base"})
    assert closure == {"repro.base", "repro.mid", "repro.top"}
    assert "repro.other" not in closure


def test_resolve_symbol_through_reexport(tmp_path):
    root = write_tree(tmp_path, {
        "repro/__init__.py": "from repro.impl import helper\n",
        "repro/impl.py": "def helper():\n    return 1\n",
    })
    graph = ProjectGraph.build(
        (p, p.read_text()) for p in sorted(root.rglob("*.py")))
    resolved = graph.resolve_symbol("repro.helper")
    assert resolved is not None
    assert resolved[0].name == "repro.impl"
    assert resolved[1] == "helper"


# ---------------------------------------------------------------------------
# RPR008 — determinism taint across modules


RPR008_TREE = {
    "repro/__init__.py": "",
    "repro/sim/__init__.py": "",
    "repro/sim/engine.py": """\
        def step(now):
            return now
        """,
    "repro/clockutil.py": """\
        import time


        def stamp():
            return time.time()
        """,
    "repro/driver.py": """\
        from repro.clockutil import stamp
        from repro.sim.engine import step


        def run():
            t = stamp()
            return step(t)
        """,
}


def test_rpr008_cross_module_wall_clock(tmp_path):
    root = write_tree(tmp_path, RPR008_TREE)
    result = lint_project([root], select=["RPR008"], use_cache=False)
    hits = violations_of(result, "RPR008")
    assert len(hits) == 1
    assert hits[0].path.endswith("driver.py")
    # Anchored at the line where taint enters driver.py: the stamp() call.
    assert hits[0].line == 6
    assert "time.time" in hits[0].message or "stamp" in hits[0].message


def test_rpr008_invisible_to_per_file_driver(tmp_path):
    root = write_tree(tmp_path, RPR008_TREE)
    driver = (root / "repro/driver.py").read_text()
    assert lint_source(driver, root / "repro/driver.py",
                       select=["RPR008"]) == []


def test_rpr008_seeded_generator_is_clean(tmp_path):
    root = write_tree(tmp_path, {
        "repro/__init__.py": "",
        "repro/sim/__init__.py": "",
        "repro/sim/engine.py": "def step(value):\n    return value\n",
        "repro/driver.py": """\
            import numpy as np

            from repro.sim.engine import step


            def run(seed):
                rng = np.random.default_rng(seed)
                return step(rng)
            """,
    })
    result = lint_project([root], select=["RPR008"], use_cache=False)
    assert violations_of(result, "RPR008") == []


# ---------------------------------------------------------------------------
# RPR009 — fork-share races across modules


RPR009_TREE = {
    "repro/__init__.py": "",
    "repro/state.py": """\
        CACHE = {}


        def bump(key):
            CACHE[key] = 1
        """,
    "repro/work.py": """\
        from repro.state import bump


        def task(item):
            bump(item)
            return item
        """,
    "repro/runner.py": """\
        from multiprocessing import Pool

        from repro.work import task


        def run(items):
            with Pool() as pool:
                return list(pool.imap(task, items))
        """,
}


def test_rpr009_cross_module_pool_write(tmp_path):
    root = write_tree(tmp_path, RPR009_TREE)
    result = lint_project([root], select=["RPR009"], use_cache=False)
    hits = violations_of(result, "RPR009")
    assert len(hits) == 1
    # Reported where the access happens — two modules away from the pool.
    assert hits[0].path.endswith("state.py")
    assert hits[0].line == 5
    assert "CACHE" in hits[0].message
    assert "scoped-registry" in hits[0].message


def test_rpr009_invisible_to_per_file_driver(tmp_path):
    root = write_tree(tmp_path, RPR009_TREE)
    state = (root / "repro/state.py").read_text()
    assert lint_source(state, root / "repro/state.py",
                       select=["RPR009"]) == []


def test_rpr009_import_time_registry_read_is_clean(tmp_path):
    tree = dict(RPR009_TREE)
    # Reading a registry that is only populated at import time is safe:
    # every process re-imports and sees identical contents.
    tree["repro/state.py"] = textwrap.dedent("""\
        CACHE = {"a": 1}


        def bump(key):
            return CACHE[key]
        """)
    root = write_tree(tmp_path, tree)
    result = lint_project([root], select=["RPR009"], use_cache=False)
    assert violations_of(result, "RPR009") == []


def test_rpr009_partial_wrapped_callable(tmp_path):
    tree = dict(RPR009_TREE)
    tree["repro/runner.py"] = textwrap.dedent("""\
        import functools
        from multiprocessing import Pool

        from repro.work import task


        def run(items):
            bound = functools.partial(task, items[0])
            with Pool() as pool:
                return list(pool.imap(bound, items))
        """)
    root = write_tree(tmp_path, tree)
    result = lint_project([root], select=["RPR009"], use_cache=False)
    assert len(violations_of(result, "RPR009")) == 1


# ---------------------------------------------------------------------------
# RPR010 — iteration order across modules


RPR010_TREE = {
    "repro/__init__.py": "",
    "repro/collect.py": """\
        def uniq(items):
            return list(set(items))
        """,
    "repro/emit.py": """\
        import json

        from repro.collect import uniq


        def dump(items):
            return json.dumps(uniq(items))
        """,
}


def test_rpr010_cross_module_set_to_json(tmp_path):
    root = write_tree(tmp_path, RPR010_TREE)
    result = lint_project([root], select=["RPR010"], use_cache=False)
    hits = violations_of(result, "RPR010")
    assert len(hits) == 1
    assert hits[0].path.endswith("emit.py")
    assert "sorted()" in hits[0].message


def test_rpr010_invisible_to_per_file_driver(tmp_path):
    root = write_tree(tmp_path, RPR010_TREE)
    emit = (root / "repro/emit.py").read_text()
    assert lint_source(emit, root / "repro/emit.py",
                       select=["RPR010"]) == []


def test_rpr010_sorted_sanitizes(tmp_path):
    tree = dict(RPR010_TREE)
    tree["repro/emit.py"] = textwrap.dedent("""\
        import json

        from repro.collect import uniq


        def dump(items):
            return json.dumps(sorted(uniq(items)))
        """)
    root = write_tree(tmp_path, tree)
    result = lint_project([root], select=["RPR010"], use_cache=False)
    assert violations_of(result, "RPR010") == []


def test_rpr010_comprehension_over_sorted_is_clean(tmp_path):
    root = write_tree(tmp_path, {
        "mod.py": """\
            import json


            def dump(paths):
                found = []
                for path in paths.iterdir():
                    found.append(path)
                return json.dumps([str(p) for p in sorted(found)])
            """,
    })
    result = lint_project([root], select=["RPR010"], use_cache=False)
    assert violations_of(result, "RPR010") == []


# ---------------------------------------------------------------------------
# noqa is line-narrow for flow rules


def test_flow_noqa_on_sink_line_does_not_hide_source(tmp_path):
    root = write_tree(tmp_path, {
        "mod.py": """\
            import json


            def dump(xs):
                data = set(xs)
                return json.dumps(data)  # repro: noqa[RPR010]
            """,
    })
    result = lint_project([root], select=["RPR010"], use_cache=False)
    hits = violations_of(result, "RPR010")
    # The violation anchors at the *source* line (set(xs)); the noqa on
    # the sink line suppresses nothing.
    assert len(hits) == 1
    assert hits[0].line == 5


def test_flow_noqa_on_source_line_suppresses(tmp_path):
    root = write_tree(tmp_path, {
        "mod.py": """\
            import json


            def dump(xs):
                data = set(xs)  # repro: noqa[RPR010] order-free payload
                return json.dumps(data)
            """,
    })
    result = lint_project([root], select=["RPR010"], use_cache=False)
    assert violations_of(result, "RPR010") == []


def test_two_sources_need_two_suppressions(tmp_path):
    root = write_tree(tmp_path, {
        "mod.py": """\
            import json


            def dump(xs, ys):
                a = set(xs)  # repro: noqa[RPR010] order-free payload
                b = set(ys)
                return json.dumps([a, b])
            """,
    })
    result = lint_project([root], select=["RPR010"], use_cache=False)
    hits = violations_of(result, "RPR010")
    assert len(hits) == 1
    assert hits[0].line == 6


# ---------------------------------------------------------------------------
# rule registry invariants


def test_rule_ids_unique_and_well_formed():
    import re
    assert len(RULES) == len(set(RULES))
    for rule_id, cls in RULES.items():
        assert re.match(r"^RPR\d{3}$", rule_id)
        assert cls.id == rule_id
        assert cls.summary
    assert {"RPR008", "RPR009", "RPR010"} <= set(RULES)


def test_duplicate_rule_id_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        @rule
        class Duplicate(Rule):  # noqa  (intentionally clashing id)
            id = "RPR008"
            summary = "duplicate registration must fail"


# ---------------------------------------------------------------------------
# incremental cache


CACHE_TREE = {
    "repro/__init__.py": "",
    "repro/base.py": "def origin():\n    return [1, 2]\n",
    "repro/mid.py": textwrap.dedent("""\
        from repro.base import origin


        def carry():
            return origin()
        """),
    "repro/top.py": textwrap.dedent("""\
        import json

        from repro.mid import carry


        def emit():
            return json.dumps(carry())
        """),
    "repro/leaf.py": "Z = 3\n",
}


def test_cache_warm_run_analyzes_zero_files(tmp_path):
    root = write_tree(tmp_path / "proj", CACHE_TREE)
    cache_dir = tmp_path / "cache"
    cold = lint_project([root], cache_dir=cache_dir)
    assert cold.files_analyzed == len(CACHE_TREE)
    assert cold.files_reused == 0
    warm = lint_project([root], cache_dir=cache_dir)
    assert warm.files_analyzed == 0
    assert warm.files_reused == len(CACHE_TREE)
    assert warm.violations == cold.violations


def test_cache_one_edit_reanalyzes_reverse_deps_only(tmp_path):
    root = write_tree(tmp_path / "proj", CACHE_TREE)
    cache_dir = tmp_path / "cache"
    lint_project([root], cache_dir=cache_dir)
    base = root / "repro/base.py"
    base.write_text(base.read_text() + "\n# edited\n")
    incremental = lint_project([root], cache_dir=cache_dir)
    analyzed = {p.rsplit("/", 1)[-1] for p in incremental.analyzed_paths}
    assert analyzed == {"base.py", "mid.py", "top.py"}
    assert incremental.files_reused == 2  # __init__.py and leaf.py


def test_cache_edit_introducing_violation_propagates(tmp_path):
    root = write_tree(tmp_path / "proj", CACHE_TREE)
    cache_dir = tmp_path / "cache"
    clean = lint_project([root], select=["RPR010"], cache_dir=cache_dir)
    assert clean.violations == []
    # base.py now returns unordered data; the sink is two modules away
    # in top.py, which must be re-analyzed purely via the import graph.
    (root / "repro/base.py").write_text(
        "def origin():\n    return list(set([1, 2]))\n")
    dirty = lint_project([root], select=["RPR010"], cache_dir=cache_dir)
    hits = violations_of(dirty, "RPR010")
    assert len(hits) == 1
    assert hits[0].path.endswith("top.py")
    # And the warm rerun reports it again, from cache, analyzing nothing.
    warm = lint_project([root], select=["RPR010"], cache_dir=cache_dir)
    assert warm.files_analyzed == 0
    assert [v.to_dict() for v in warm.violations] \
        == [v.to_dict() for v in dirty.violations]


def test_cache_changed_only_restricts_reporting(tmp_path):
    root = write_tree(tmp_path / "proj", CACHE_TREE)
    cache_dir = tmp_path / "cache"
    lint_project([root], cache_dir=cache_dir)
    leaf = root / "repro/leaf.py"
    leaf.write_text("Z = 4\n")
    result = lint_project([root], cache_dir=cache_dir, changed_only=True)
    assert [p.rsplit("/", 1)[-1] for p in result.analyzed_paths] \
        == ["leaf.py"]
    assert result.files_total == 1


def test_cache_disabled_analyzes_everything(tmp_path):
    root = write_tree(tmp_path / "proj", CACHE_TREE)
    cache_dir = tmp_path / "cache"
    lint_project([root], cache_dir=cache_dir)
    result = lint_project([root], cache_dir=cache_dir, use_cache=False)
    assert result.files_analyzed == len(CACHE_TREE)
    assert result.files_reused == 0


def test_cache_different_selects_do_not_collide(tmp_path):
    root = write_tree(tmp_path / "proj", CACHE_TREE)
    cache_dir = tmp_path / "cache"
    lint_project([root], select=["RPR008"], cache_dir=cache_dir)
    lint_project([root], select=["RPR010"], cache_dir=cache_dir)
    warm = lint_project([root], select=["RPR008"], cache_dir=cache_dir)
    assert warm.files_analyzed == 0
    assert len(list(cache_dir.glob("lint-*.json"))) == 2


def test_cache_file_is_deterministic_json(tmp_path):
    root = write_tree(tmp_path / "proj", CACHE_TREE)
    cache_dir = tmp_path / "cache"
    lint_project([root], cache_dir=cache_dir)
    cache_file = next(cache_dir.glob("lint-*.json"))
    first = cache_file.read_text()
    document = json.loads(first)
    assert document["schema"] == "repro.lint.cache/2"
    lint_project([root], cache_dir=cache_dir)
    assert cache_file.read_text() == first


# ---------------------------------------------------------------------------
# RPR009 cache soundness: its facts flow AGAINST import edges, so plain
# reverse-import invalidation cannot keep per-file verdicts fresh.  The
# driver recomputes the fork-share verdict map globally from cached fact
# summaries and promotes any file whose verdicts changed — warm results
# must always equal a cold --no-cache run.


SUBMITTER_TREE = {
    "repro/__init__.py": "",
    "repro/state.py": "CACHE = {}\n",
    "repro/work.py": textwrap.dedent("""\
        from repro import state


        def task(item):
            state.CACHE[item] = 1
            return item
        """),
    "repro/driver.py": textwrap.dedent("""\
        from repro.work import task


        def run(items):
            return [task(item) for item in items]
        """),
}

SUBMITTER_POOL = textwrap.dedent("""\
    from multiprocessing import Pool

    from repro.work import task


    def run(items):
        with Pool() as pool:
            return list(pool.imap(task, items))
    """)


def test_rpr009_submitter_edit_reverdicts_worker_on_warm_run(tmp_path):
    # The conditions for the violation (the pool submission) live in a
    # module that IMPORTS the worker: editing driver.py must re-verdict
    # work.py even though work.py is not in driver.py's reverse closure.
    root = write_tree(tmp_path / "proj", SUBMITTER_TREE)
    cache_dir = tmp_path / "cache"
    clean = lint_project([root], select=["RPR009"], cache_dir=cache_dir)
    assert clean.violations == []
    (root / "repro/driver.py").write_text(SUBMITTER_POOL)
    warm = lint_project([root], select=["RPR009"], cache_dir=cache_dir)
    cold = lint_project([root], select=["RPR009"], use_cache=False)
    assert [v.to_dict() for v in warm.violations] \
        == [v.to_dict() for v in cold.violations]
    hits = violations_of(warm, "RPR009")
    assert len(hits) == 1
    assert hits[0].path.endswith("work.py")
    # And the next warm run serves the same verdict straight from cache.
    again = lint_project([root], select=["RPR009"], cache_dir=cache_dir)
    assert again.files_analyzed == 0
    assert [v.to_dict() for v in again.violations] \
        == [v.to_dict() for v in warm.violations]


def test_rpr009_submission_removal_clears_stale_verdict(tmp_path):
    tree = dict(SUBMITTER_TREE)
    tree["repro/driver.py"] = SUBMITTER_POOL
    root = write_tree(tmp_path / "proj", tree)
    cache_dir = tmp_path / "cache"
    dirty = lint_project([root], select=["RPR009"], cache_dir=cache_dir)
    assert len(violations_of(dirty, "RPR009")) == 1
    (root / "repro/driver.py").write_text(SUBMITTER_TREE["repro/driver.py"])
    warm = lint_project([root], select=["RPR009"], cache_dir=cache_dir)
    assert warm.violations == []
    assert lint_project([root], select=["RPR009"],
                        use_cache=False).violations == []


def test_rpr009_changed_only_reports_promoted_files(tmp_path):
    # The PR fast path must surface verdict flips in files outside the
    # dirty set, or a cached PR build passes while uncached main fails.
    root = write_tree(tmp_path / "proj", SUBMITTER_TREE)
    cache_dir = tmp_path / "cache"
    lint_project([root], select=["RPR009"], cache_dir=cache_dir)
    (root / "repro/driver.py").write_text(SUBMITTER_POOL)
    warm = lint_project([root], select=["RPR009"], cache_dir=cache_dir,
                        changed_only=True)
    assert [v.path.rsplit("/", 1)[-1]
            for v in violations_of(warm, "RPR009")] == ["work.py"]
    analyzed = {p.rsplit("/", 1)[-1] for p in warm.analyzed_paths}
    assert "work.py" in analyzed


FLIP_TREE = {
    "repro/__init__.py": "",
    "repro/state.py": "CACHE = {}\n",
    "repro/work.py": textwrap.dedent("""\
        from repro import state


        def task(item):
            return state.CACHE[item]
        """),
    "repro/runner.py": textwrap.dedent("""\
        from multiprocessing import Pool

        from repro.work import task


        def run(items):
            with Pool() as pool:
                return list(pool.imap(task, items))
        """),
    "repro/writer.py": textwrap.dedent("""\
        from repro import state


        def poke():
            return None
        """),
}


def test_rpr009_unrelated_writer_flips_read_verdict_on_warm_run(tmp_path):
    # A worker READ of a never-written global is safe.  A module with no
    # import relationship to the worker gaining a runtime write must flip
    # the worker's verdict — even though the worker is neither changed,
    # dirty, nor even re-parsed on the warm run.
    root = write_tree(tmp_path / "proj", FLIP_TREE)
    cache_dir = tmp_path / "cache"
    clean = lint_project([root], select=["RPR009"], cache_dir=cache_dir)
    assert clean.violations == []
    (root / "repro/writer.py").write_text(textwrap.dedent("""\
        from repro import state


        def poke():
            state.CACHE["k"] = 1
        """))
    warm = lint_project([root], select=["RPR009"], cache_dir=cache_dir)
    cold = lint_project([root], select=["RPR009"], use_cache=False)
    assert [v.to_dict() for v in warm.violations] \
        == [v.to_dict() for v in cold.violations]
    paths = {v.path.rsplit("/", 1)[-1]
             for v in violations_of(warm, "RPR009")}
    assert "work.py" in paths
    # Reverting the writer clears the read verdict again.
    (root / "repro/writer.py").write_text(FLIP_TREE["repro/writer.py"])
    reverted = lint_project([root], select=["RPR009"], cache_dir=cache_dir)
    assert violations_of(reverted, "RPR009") == []


def test_rpr009_removed_submitter_clears_verdict(tmp_path):
    tree = dict(SUBMITTER_TREE)
    tree["repro/driver.py"] = SUBMITTER_POOL
    root = write_tree(tmp_path / "proj", tree)
    cache_dir = tmp_path / "cache"
    assert len(violations_of(
        lint_project([root], select=["RPR009"], cache_dir=cache_dir),
        "RPR009")) == 1
    (root / "repro/driver.py").unlink()
    warm = lint_project([root], select=["RPR009"], cache_dir=cache_dir)
    assert warm.violations == []


# ---------------------------------------------------------------------------
# module-name collisions and the cache signature


def test_same_stem_scripts_do_not_collide(tmp_path):
    # Two files resolving to the same dotted module name (same-stem
    # scripts in non-package directories) must keep separate import
    # edges and dirty state.
    write_tree(tmp_path, {
        "a/tool.py": "import json\n\n\ndef dump(xs):\n"
                     "    return json.dumps(list(set(xs)))\n",
        "b/tool.py": "X = 1\n",
    })
    roots = [tmp_path / "a", tmp_path / "b"]
    cache_dir = tmp_path / "cache"
    cold = lint_project(roots, select=["RPR010"], cache_dir=cache_dir)
    assert [v.path.rsplit("/", 2)[-2:] for v in cold.violations] \
        == [["a", "tool.py"]]
    warm = lint_project(roots, select=["RPR010"], cache_dir=cache_dir)
    assert warm.files_analyzed == 0
    assert [v.to_dict() for v in warm.violations] \
        == [v.to_dict() for v in cold.violations]
    # Editing one of them re-analyzes only that file, and the shadowed
    # file's verdicts survive untouched.
    (tmp_path / "b/tool.py").write_text("X = 2\n")
    edited = lint_project(roots, select=["RPR010"], cache_dir=cache_dir)
    assert [p.rsplit("/", 2)[-2:] for p in edited.analyzed_paths] \
        == [["b", "tool.py"]]
    assert [v.to_dict() for v in edited.violations] \
        == [v.to_dict() for v in cold.violations]


def test_cache_signature_tracks_engine_sources(monkeypatch):
    from repro.lint import cache as cache_mod
    baseline = cache_mod.cache_signature(["RPR001"], ["summary"])
    assert cache_mod.cache_signature(["RPR001"], ["summary"]) == baseline
    monkeypatch.setattr(cache_mod, "_ENGINE_DIGEST", "0" * 16)
    assert cache_mod.cache_signature(["RPR001"], ["summary"]) != baseline


# ---------------------------------------------------------------------------
# per-rule timings


def test_project_result_reports_rule_timings(tmp_path):
    root = write_tree(tmp_path / "proj", CACHE_TREE)
    result = lint_project([root], use_cache=False)
    assert set(result.timings) == set(RULES)
    for rule_id in ("RPR008", "RPR009", "RPR010"):
        assert result.timings[rule_id].count > 0


def test_project_context_memo_is_per_run(tmp_path):
    graph = ProjectGraph()
    context = ProjectContext(graph)
    built = []
    first = context.memo("key", lambda: built.append(1) or "value")
    second = context.memo("key", lambda: built.append(2) or "other")
    assert first == second == "value"
    assert built == [1]
