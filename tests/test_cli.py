"""Tests for the borg-repro command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def trace_dirs(tmp_path_factory):
    """Simulate two tiny cells (one per era) once for all CLI tests."""
    root = tmp_path_factory.mktemp("traces")
    rc = main([
        "simulate", "--cells", "2011,d", "--out", str(root),
        "--machines", "16", "--hours", "6", "--scale", "0.01", "--seed", "2",
    ])
    assert rc == 0
    return root


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.machines == 100
        assert "2011" in args.cells

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestSimulate:
    def test_writes_trace_directories(self, trace_dirs):
        for cell in ("2011", "d"):
            assert (trace_dirs / cell / "metadata.json").exists()
            assert (trace_dirs / cell / "instance_usage.csv").exists()


class TestValidate:
    def test_clean_trace_returns_zero(self, trace_dirs, capsys):
        rc = main(["validate", str(trace_dirs / "d")])
        assert rc == 0
        assert "all invariants hold" in capsys.readouterr().out

    def test_broken_trace_returns_one(self, trace_dirs, tmp_path, capsys):
        import shutil
        broken = tmp_path / "broken"
        shutil.copytree(trace_dirs / "d", broken)
        usage = (broken / "instance_usage.csv").read_text().splitlines()
        # Corrupt one usage row: memory usage far above its limit.
        header = usage[0].split(",")
        row = usage[1].split(",")
        row[header.index("avg_mem")] = "99.0"
        row[header.index("limit_mem")] = "0.0001"
        usage[1] = ",".join(row)
        (broken / "instance_usage.csv").write_text("\n".join(usage) + "\n")
        rc = main(["validate", str(broken)])
        assert rc == 1
        assert "violations" in capsys.readouterr().out


class TestReport:
    def test_report_renders(self, trace_dirs, tmp_path):
        out = tmp_path / "report.txt"
        rc = main(["report", str(trace_dirs), "--out", str(out)])
        assert rc == 0
        text = out.read_text()
        assert "Table 1" in text and "Figure 12" in text

    def test_report_missing_dir(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["report", str(empty)]) == 1

    def test_report_needs_both_eras(self, trace_dirs, tmp_path):
        import shutil
        only_2019 = tmp_path / "only2019"
        only_2019.mkdir()
        shutil.copytree(trace_dirs / "d", only_2019 / "d")
        assert main(["report", str(only_2019)]) == 1
