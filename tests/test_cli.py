"""Tests for the borg-repro command-line interface."""

import re

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def trace_dirs(tmp_path_factory):
    """Simulate two tiny cells (one per era) once for all CLI tests."""
    root = tmp_path_factory.mktemp("traces")
    rc = main([
        "simulate", "--cells", "2011,d", "--out", str(root),
        "--machines", "16", "--hours", "6", "--scale", "0.01", "--seed", "2",
    ])
    assert rc == 0
    return root


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.machines == 100
        assert "2011" in args.cells

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestSimulate:
    def test_writes_trace_directories(self, trace_dirs):
        for cell in ("2011", "d"):
            assert (trace_dirs / cell / "metadata.json").exists()
            assert (trace_dirs / cell / "instance_usage.csv").exists()


class TestValidate:
    def test_clean_trace_returns_zero(self, trace_dirs, capsys):
        rc = main(["validate", str(trace_dirs / "d")])
        assert rc == 0
        assert "all invariants hold" in capsys.readouterr().out

    def test_broken_trace_returns_one(self, trace_dirs, tmp_path, capsys):
        import shutil
        broken = tmp_path / "broken"
        shutil.copytree(trace_dirs / "d", broken)
        usage = (broken / "instance_usage.csv").read_text().splitlines()
        # Corrupt one usage row: memory usage far above its limit.
        header = usage[0].split(",")
        row = usage[1].split(",")
        row[header.index("avg_mem")] = "99.0"
        row[header.index("limit_mem")] = "0.0001"
        usage[1] = ",".join(row)
        (broken / "instance_usage.csv").write_text("\n".join(usage) + "\n")
        rc = main(["validate", str(broken)])
        assert rc == 1
        assert "violations" in capsys.readouterr().out


class TestSimulateFaults:
    def test_fault_flags_parse_and_run(self, tmp_path, capsys):
        rc = main([
            "simulate", "--cells", "d", "--out", str(tmp_path),
            "--machines", "8", "--hours", "2", "--scale", "0.01",
            "--seed", "3", "--faults", "heavy", "--fault-rate", "10",
            "--archetype-mix", "mixed",
        ])
        assert rc == 0
        assert (tmp_path / "d" / "metadata.json").exists()
        assert "simulated in" in capsys.readouterr().out

    def test_unknown_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--faults", "meteor"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--archetype-mix", "x"])

    def test_fault_defaults_off(self):
        args = build_parser().parse_args(["simulate"])
        assert args.faults is None
        assert args.archetype_mix is None
        assert args.fault_rate == 1.0


class TestSimulateStoreFormat:
    def test_store_format_and_timing_log(self, tmp_path, capsys):
        rc = main([
            "simulate", "--cells", "d", "--out", str(tmp_path),
            "--machines", "8", "--hours", "2", "--scale", "0.01",
            "--seed", "3", "--format", "store",
        ])
        assert rc == 0
        assert (tmp_path / "d" / "manifest.json").exists()
        out = capsys.readouterr().out
        assert "simulated in" in out and "saved (store)" in out
        assert "rows written: total=" in out
        assert "instance_usage=" in out


@pytest.fixture(scope="module")
def store_dir(trace_dirs, tmp_path_factory):
    """Cell d's CSV trace converted to a store via the CLI."""
    dst = tmp_path_factory.mktemp("store") / "d.store"
    rc = main(["convert", str(trace_dirs / "d"), str(dst),
               "--chunk-rows", "64"])
    assert rc == 0
    assert (dst / "manifest.json").exists()
    return dst


class TestConvert:
    def test_convert_reports_rows_and_chunks(self, trace_dirs, tmp_path,
                                             capsys):
        dst = tmp_path / "s"
        rc = main(["convert", str(trace_dirs / "d"), str(dst),
                   "--chunk-rows", "128"])
        assert rc == 0
        assert "chunks" in capsys.readouterr().out

    def test_convert_back_to_csv(self, store_dir, tmp_path, capsys):
        dst = tmp_path / "csv"
        rc = main(["convert", str(store_dir), str(dst), "--to", "csv"])
        assert rc == 0
        assert (dst / "metadata.json").exists()
        assert (dst / "instance_usage.csv").exists()

    def test_converted_store_validates(self, store_dir, capsys):
        assert main(["validate", str(store_dir)]) == 0
        assert "all invariants hold" in capsys.readouterr().out


class TestQuery:
    def test_count_matches_source_trace(self, trace_dirs, store_dir, capsys):
        from repro.trace import load_trace

        expected = len(load_trace(trace_dirs / "d").instance_usage)
        rc = main(["query", str(store_dir), "instance_usage",
                   "--agg", "count"])
        assert rc == 0
        assert f"count = {expected}" in capsys.readouterr().out

    def test_time_window_matches_in_memory_filter(self, trace_dirs, store_dir,
                                                  capsys):
        from repro.trace import load_trace

        t = load_trace(trace_dirs / "d").instance_usage.column(
            "start_time").values
        expected = int(((t >= 0) & (t <= 7200)).sum())
        rc = main(["query", str(store_dir), "instance_usage",
                   "--where", "start_time between 0 7200",
                   "--agg", "count", "--agg", "mean:avg_cpu"])
        assert rc == 0
        captured = capsys.readouterr()
        assert f"count = {expected}" in captured.out
        assert "mean(avg_cpu) = " in captured.out
        # Pushdown summary goes to stderr; the window must skip chunks.
        skipped = re.search(r"\((\d+) skipped\)", captured.err)
        assert skipped is not None and int(skipped.group(1)) > 0

    def test_parallel_workers_agree_with_serial(self, store_dir, capsys):
        argv = ["query", str(store_dir), "instance_usage",
                "--where", "tier in prod,mid", "--agg", "sum:avg_cpu"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_row_output_with_select_and_limit(self, store_dir, capsys):
        rc = main(["query", str(store_dir), "instance_usage",
                   "--select", "start_time,avg_cpu", "--limit", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "start_time" in out and "avg_cpu" in out

    def test_bad_where_clause_exits(self, store_dir):
        with pytest.raises(SystemExit):
            main(["query", str(store_dir), "instance_usage",
                  "--where", "nonsense"])

    def test_bad_agg_spec_exits(self, store_dir):
        with pytest.raises(SystemExit):
            main(["query", str(store_dir), "instance_usage",
                  "--agg", "histogram:avg_cpu"])


class TestReport:
    def test_report_renders(self, trace_dirs, tmp_path):
        out = tmp_path / "report.txt"
        rc = main(["report", str(trace_dirs), "--out", str(out)])
        assert rc == 0
        text = out.read_text()
        assert "Table 1" in text and "Figure 12" in text

    def test_report_missing_dir(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["report", str(empty)]) == 1

    def test_report_needs_both_eras(self, trace_dirs, tmp_path):
        import shutil
        only_2019 = tmp_path / "only2019"
        only_2019.mkdir()
        shutil.copytree(trace_dirs / "d", only_2019 / "d")
        assert main(["report", str(only_2019)]) == 1
