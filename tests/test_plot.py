"""Tests for the ASCII chart renderers."""

import numpy as np
import pytest

from repro.plot import bar_chart, ccdf_chart, line_chart, stacked_series_chart
from repro.stats import empirical_ccdf


class TestLineChart:
    def test_basic_render(self):
        text = line_chart({"f": ([1, 2, 3], [3.0, 2.0, 1.0])},
                          width=30, height=8, title="demo")
        assert "demo" in text
        assert "o" in text  # first series marker
        assert text.count("\n") >= 8

    def test_multiple_series_distinct_markers(self):
        text = line_chart({
            "a": ([0, 1], [0.0, 1.0]),
            "b": ([0, 1], [1.0, 0.0]),
        }, width=20, height=6)
        assert "o=a" in text and "x=b" in text

    def test_log_axes(self):
        xs = np.logspace(0, 4, 50)
        ys = 1.0 / xs
        text = line_chart({"p": (xs, ys)}, logx=True, logy=True,
                          width=40, height=10)
        assert "o" in text

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            line_chart({"f": ([0.0, 1.0], [1.0, 2.0])}, logx=True)

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"f": ([], [])})

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            line_chart({"f": ([1, 2], [1.0])})

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"f": ([1], [1.0])}, width=5, height=2)

    def test_constant_series_drawable(self):
        text = line_chart({"flat": ([1, 2, 3], [5.0, 5.0, 5.0])},
                          width=20, height=5)
        assert "o" in text


class TestCcdfChart:
    def test_renders_ccdf(self):
        ccdf = empirical_ccdf(np.random.default_rng(0).exponential(1, 500))
        text = ccdf_chart({"exp": ccdf}, width=40, height=10)
        assert "Pr(X > x)" in text

    def test_loglog_drops_zero_tail(self):
        ccdf = empirical_ccdf([1.0, 2.0, 4.0, 8.0])
        text = ccdf_chart({"s": ccdf}, logx=True, logy=True,
                          width=30, height=6)
        assert "o" in text

    def test_decimation(self):
        ccdf = empirical_ccdf(np.random.default_rng(1).random(50_000))
        text = ccdf_chart({"u": ccdf}, width=40, height=8, max_points=50)
        assert "o" in text

    def test_all_filtered_rejected(self):
        ccdf = empirical_ccdf([1.0])  # single point: prob 0 -> dropped by logy
        with pytest.raises(ValueError):
            ccdf_chart({"x": ccdf}, logy=True)


class TestStacked:
    def test_renders_bands(self):
        text = stacked_series_chart({
            "free": np.full(24, 0.05),
            "beb": np.full(24, 0.2),
            "prod": np.full(24, 0.3),
        }, width=30, height=10, title="usage")
        assert "usage" in text
        for marker in ("o", "x", "*"):
            assert marker in text

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError):
            stacked_series_chart({"a": [1.0], "b": [1.0, 2.0]})

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            stacked_series_chart({"a": np.zeros(5)})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stacked_series_chart({})


class TestBarChart:
    def test_bars_scale(self):
        text = bar_chart({"a": 1.0, "b": 0.5}, width=20)
        lines = text.splitlines()
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_labels_and_values(self):
        text = bar_chart({"cell-a": 0.25}, title="t")
        assert "cell-a" in text and "0.25" in text and text.startswith("t")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_all_zero_ok(self):
        assert "0" in bar_chart({"z": 0.0})
