"""Tests for size-stratified trace sampling."""

import numpy as np
import pytest

from repro.analysis.common import job_usage_integrals
from repro.trace import validate_trace
from repro.trace.sample import sample_trace


class TestSampling:
    def test_sample_is_smaller(self, trace_2019):
        sampled, info = sample_trace(trace_2019, mouse_fraction=0.1)
        assert info.kept_collections < info.total_collections
        assert len(sampled.collection_events) < len(trace_2019.collection_events)

    def test_load_mostly_preserved(self, trace_2019):
        # Keep the top 5% by size (at unit-test scale the top 1% is only
        # a handful of jobs); the hogs carry the load.
        sampled, _ = sample_trace(trace_2019, mouse_fraction=0.1,
                                  hog_quantile=0.95)
        original = float(job_usage_integrals(trace_2019)
                         .column("ncu_hours").sum())
        kept = float(job_usage_integrals(sampled).column("ncu_hours").sum())
        assert kept > 0.7 * original

    def test_count_reweighting_recovers_population(self, trace_2019):
        sampled, info = sample_trace(trace_2019, mouse_fraction=0.25, seed=3)
        n_kept_mice = info.kept_collections - info.hogs_kept
        # Alloc sets are all kept; remove them from the mouse estimate.
        ce = sampled.collection_events
        n_alloc = len(ce.filter(
            (ce.column("type") == "SUBMIT")
            & (ce.column("collection_type") == "alloc_set")
        ).distinct("collection_id"))
        estimated = (n_kept_mice - n_alloc) / info.mouse_sampling_rate \
            + info.hogs_kept + n_alloc
        assert estimated == pytest.approx(info.total_collections, rel=0.2)

    def test_sample_still_validates(self, trace_2019):
        sampled, _ = sample_trace(trace_2019, mouse_fraction=0.2)
        # Note: per-machine usage can only shrink, timestamps unchanged.
        assert validate_trace(sampled) == []

    def test_alloc_sets_always_kept(self, trace_2019):
        sampled, _ = sample_trace(trace_2019, mouse_fraction=0.01, seed=1)
        def alloc_count(trace):
            ce = trace.collection_events
            return len(ce.filter(
                (ce.column("type") == "SUBMIT")
                & (ce.column("collection_type") == "alloc_set")
            ).distinct("collection_id"))
        assert alloc_count(sampled) == alloc_count(trace_2019)

    def test_full_fraction_keeps_everything(self, trace_2019):
        sampled, info = sample_trace(trace_2019, mouse_fraction=1.0)
        assert info.kept_collections == info.total_collections

    def test_deterministic(self, trace_2019):
        a, _ = sample_trace(trace_2019, mouse_fraction=0.3, seed=5)
        b, _ = sample_trace(trace_2019, mouse_fraction=0.3, seed=5)
        assert len(a.collection_events) == len(b.collection_events)

    def test_bad_arguments(self, trace_2019):
        with pytest.raises(ValueError):
            sample_trace(trace_2019, mouse_fraction=0.0)
        with pytest.raises(ValueError):
            sample_trace(trace_2019, hog_quantile=0.3)
