"""Tests for explainable scheduling (section 10, direction 1)."""

import pytest

from repro.sim import Machine, Resources, Tier
from repro.sim.entities import Collection, CollectionType, Instance
from repro.sim.explain import (
    Verdict,
    explain_placement,
    format_explanation,
)
from repro.sim.scheduler import SchedulerParams

PARAMS = SchedulerParams(overcommit_cpu=1.0, overcommit_mem=1.0)


def _occupy(machine, tier, cpu, mem, cid=1):
    c = Collection(collection_id=cid, collection_type=CollectionType.JOB,
                   priority=200, tier=tier, user="u", submit_time=0.0)
    inst = Instance(collection=c, index=0, request=Resources(cpu, mem))
    c.instances.append(inst)
    machine.place(inst)
    return inst


class TestVerdicts:
    def test_empty_machine_fits(self):
        m = Machine(0, Resources(1.0, 1.0))
        exp = explain_placement([m], Resources(0.3, 0.3), Tier.BEB, PARAMS)
        assert exp.placeable and exp.chosen_machine_id == 0
        assert exp.verdicts[0].verdict is Verdict.FITS

    def test_down_machine(self):
        m = Machine(0, Resources(1.0, 1.0))
        m.up = False
        exp = explain_placement([m], Resources(0.3, 0.3), Tier.BEB, PARAMS)
        assert not exp.placeable
        assert exp.verdicts[0].verdict is Verdict.MACHINE_DOWN

    def test_too_small(self):
        m = Machine(0, Resources(0.2, 0.2))
        exp = explain_placement([m], Resources(0.5, 0.1), Tier.BEB, PARAMS)
        assert exp.verdicts[0].verdict is Verdict.TOO_SMALL

    def test_cpu_bound(self):
        m = Machine(0, Resources(1.0, 1.0))
        _occupy(m, Tier.PROD, cpu=0.9, mem=0.1)
        exp = explain_placement([m], Resources(0.3, 0.3), Tier.BEB, PARAMS)
        assert exp.verdicts[0].verdict is Verdict.CPU_BOUND

    def test_mem_bound(self):
        m = Machine(0, Resources(1.0, 1.0))
        _occupy(m, Tier.PROD, cpu=0.1, mem=0.9)
        exp = explain_placement([m], Resources(0.3, 0.3), Tier.BEB, PARAMS)
        assert exp.verdicts[0].verdict is Verdict.MEM_BOUND

    def test_both_bound(self):
        m = Machine(0, Resources(1.0, 1.0))
        _occupy(m, Tier.PROD, cpu=0.9, mem=0.9)
        exp = explain_placement([m], Resources(0.3, 0.3), Tier.BEB, PARAMS)
        assert exp.verdicts[0].verdict is Verdict.CPU_AND_MEM_BOUND

    def test_preemptible_for_prod(self):
        m = Machine(0, Resources(1.0, 1.0))
        victim = _occupy(m, Tier.FREE, cpu=0.9, mem=0.9)
        exp = explain_placement([m], Resources(0.3, 0.3), Tier.PROD, PARAMS)
        assert exp.verdicts[0].verdict is Verdict.PREEMPTIBLE
        assert exp.verdicts[0].victims == (victim.instance_id,)
        assert exp.placeable  # via preemption fallback

    def test_beb_cannot_preempt(self):
        m = Machine(0, Resources(1.0, 1.0))
        _occupy(m, Tier.FREE, cpu=0.9, mem=0.9)
        exp = explain_placement([m], Resources(0.3, 0.3), Tier.BEB, PARAMS)
        assert exp.verdicts[0].verdict is Verdict.CPU_AND_MEM_BOUND
        assert not exp.placeable

    def test_prod_cannot_preempt_prod(self):
        m = Machine(0, Resources(1.0, 1.0))
        _occupy(m, Tier.PROD, cpu=0.9, mem=0.9)
        exp = explain_placement([m], Resources(0.3, 0.3), Tier.PROD, PARAMS)
        assert exp.verdicts[0].verdict is Verdict.CPU_AND_MEM_BOUND

    def test_best_fit_choice(self):
        tight = Machine(0, Resources(1.0, 1.0))
        _occupy(tight, Tier.PROD, cpu=0.6, mem=0.6)
        empty = Machine(1, Resources(1.0, 1.0))
        exp = explain_placement([tight, empty], Resources(0.2, 0.2),
                                Tier.BEB, PARAMS)
        assert exp.chosen_machine_id == 0  # tighter fit preferred


class TestSummaryAndAdvice:
    def test_summary_histogram(self):
        machines = [Machine(i, Resources(1.0, 1.0)) for i in range(3)]
        machines[0].up = False
        _occupy(machines[1], Tier.PROD, cpu=0.95, mem=0.1, cid=5)
        exp = explain_placement(machines, Resources(0.3, 0.3), Tier.BEB, PARAMS)
        s = exp.summary()
        assert s["machine down"] == 1
        assert s["fits"] == 1

    def test_advice_for_oversized_request(self):
        machines = [Machine(i, Resources(0.2, 0.2)) for i in range(4)]
        exp = explain_placement(machines, Resources(0.9, 0.9), Tier.BEB, PARAMS)
        advice = " ".join(exp.advice())
        assert "split the work" in advice

    def test_advice_names_binding_dimension(self):
        machines = [Machine(i, Resources(1.0, 1.0)) for i in range(3)]
        for i, m in enumerate(machines):
            _occupy(m, Tier.PROD, cpu=0.9, mem=0.1, cid=10 + i)
        exp = explain_placement(machines, Resources(0.3, 0.3), Tier.BEB, PARAMS)
        assert any("CPU-constrained" in tip for tip in exp.advice())

    def test_no_advice_when_placeable(self):
        exp = explain_placement([Machine(0, Resources(1.0, 1.0))],
                                Resources(0.1, 0.1), Tier.BEB, PARAMS)
        assert exp.advice() == []

    def test_format_renders(self):
        machines = [Machine(i, Resources(1.0, 1.0)) for i in range(2)]
        _occupy(machines[0], Tier.FREE, cpu=0.9, mem=0.9, cid=2)
        exp = explain_placement(machines, Resources(0.5, 0.5), Tier.PROD, PARAMS)
        text = format_explanation(exp)
        assert "decision" in text and "fleet verdicts" in text

    def test_format_unplaceable_shows_advice(self):
        machines = [Machine(0, Resources(0.2, 0.2))]
        exp = explain_placement(machines, Resources(0.9, 0.9), Tier.BEB, PARAMS)
        assert "advice" in format_explanation(exp)


class TestConsistencyWithScheduler:
    def test_explanation_agrees_with_policy(self):
        """If the explainer says placeable-without-preemption, the real
        policy finds a machine too (and vice versa)."""
        import numpy as np
        from repro.sim.scheduler import PlacementPolicy

        rng = np.random.default_rng(0)
        machines = [Machine(i, Resources(float(c), float(m)))
                    for i, (c, m) in enumerate(zip(
                        rng.choice([0.25, 0.5, 1.0], 30),
                        rng.choice([0.25, 0.5, 1.0], 30)))]
        # Random pre-load.
        cid = 100
        for m in machines:
            if rng.random() < 0.7:
                _occupy(m, Tier.PROD, cpu=float(rng.uniform(0, m.capacity.cpu)),
                        mem=float(rng.uniform(0, m.capacity.mem)), cid=cid)
                cid += 1
        policy = PlacementPolicy(PARAMS, rng)
        for _ in range(50):
            request = Resources(float(rng.uniform(0.01, 0.6)),
                                float(rng.uniform(0.01, 0.6)))
            exp = explain_placement(machines, request, Tier.BEB, PARAMS)
            found = policy.find_machine(machines, request)
            assert (found is not None) == any(
                v.verdict is Verdict.FITS for v in exp.verdicts)


class TestConstraintVerdicts:
    def test_mismatch_verdict(self):
        machines = [Machine(0, Resources(1.0, 1.0), platform="A"),
                    Machine(1, Resources(1.0, 1.0), platform="B")]
        exp = explain_placement(machines, Resources(0.1, 0.1), Tier.BEB,
                                PARAMS, constraint="B")
        verdicts = {v.machine_id: v.verdict for v in exp.verdicts}
        assert verdicts[0] is Verdict.CONSTRAINT_MISMATCH
        assert verdicts[1] is Verdict.FITS
        assert exp.chosen_machine_id == 1

    def test_advice_mentions_constraint(self):
        machines = [Machine(i, Resources(1.0, 1.0), platform="A")
                    for i in range(4)]
        exp = explain_placement(machines, Resources(0.1, 0.1), Tier.BEB,
                                PARAMS, constraint="Z")
        assert any("constraint" in tip for tip in exp.advice())
