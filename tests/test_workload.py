"""Unit tests for workload parameters, fleets, and the generator."""

import math

import numpy as np
import pytest

from repro.sim.entities import CollectionType, SchedulerKind
from repro.sim.priority import Tier, tier_of_priority_2011, tier_of_priority_2019
from repro.sim.resources import Resources
from repro.util.rng import RngFactory
from repro.util.timeutil import HOUR_SECONDS
from repro.workload import (
    WorkloadGenerator,
    build_machines,
    era_2011,
    era_2019,
    fleet_2011,
    fleet_2019,
)
from repro.workload.params import SizeMixture, TaskCountModel, TierParams


class TestParams:
    def test_era_presets_validate(self):
        era_2011()
        era_2019()

    def test_2019_reflects_longitudinal_story(self):
        e11, e19 = era_2011(), era_2019()
        assert e19.jobs_per_hour / e11.jobs_per_hour == pytest.approx(3.49, abs=0.1)
        assert Tier.MID in e19.tiers and Tier.MID not in e11.tiers
        assert e19.alloc_set_fraction > 0 and e11.alloc_set_fraction == 0
        assert e19.batch_queueing and not e11.batch_queueing
        assert e19.autopilot_probs[0] < 1.0 and e11.autopilot_probs[0] == 1.0
        # beb grew, free shrank (section 4).
        assert (e19.tiers[Tier.BEB].target_cpu_usage
                > e11.tiers[Tier.BEB].target_cpu_usage)
        assert (e19.tiers[Tier.FREE].target_cpu_usage
                < e11.tiers[Tier.FREE].target_cpu_usage)

    def test_tail_alphas_match_paper(self):
        assert era_2019().sizes.tail_alpha == pytest.approx(0.69)
        assert era_2011().sizes.tail_alpha == pytest.approx(0.77)

    def test_size_mixture_mean_positive_and_tail_dominated(self):
        m = era_2019().sizes
        body_only = SizeMixture(m.body_log_median, m.body_log_sigma, 0.0,
                                m.tail_alpha, m.tail_x_min, m.tail_x_max)
        assert m.mean() > body_only.mean()

    def test_size_mixture_mean_matches_monte_carlo(self):
        m = SizeMixture(1e-4, 2.0, 0.05, 0.8, 1.0, 100.0)
        rng = np.random.default_rng(0)
        n = 400_000
        tail = rng.random(n) < 0.05
        from repro.stats.distributions import bounded_pareto_sample
        draws = np.where(
            tail,
            bounded_pareto_sample(rng, 0.8, 1.0, 100.0, n),
            rng.lognormal(math.log(1e-4), 2.0, n),
        )
        assert m.mean() == pytest.approx(float(draws.mean()), rel=0.03)

    def test_invalid_mixture(self):
        with pytest.raises(ValueError):
            SizeMixture(1e-4, 2.0, 1.5, 0.8)
        with pytest.raises(ValueError):
            SizeMixture(1e-4, 2.0, 0.1, -1.0)
        with pytest.raises(ValueError):
            SizeMixture(1e-4, 2.0, 0.1, 0.8, tail_x_min=10.0, tail_x_max=1.0)

    def test_invalid_task_model(self):
        with pytest.raises(ValueError):
            TaskCountModel(1.5, 0.5, 10)
        with pytest.raises(ValueError):
            TaskCountModel(0.5, 0.5, 0)

    def test_tier_end_probabilities_must_sum(self):
        with pytest.raises(ValueError):
            TierParams(arrival_share=1.0, target_cpu_usage=0.1,
                       target_mem_usage=0.1, cpu_usage_fraction=0.5,
                       mem_usage_fraction=0.5,
                       tasks=TaskCountModel(0.5, 0.5, 10), priorities=(1,),
                       end_finish=0.5, end_kill=0.4, end_fail=0.3)


class TestFleet:
    def test_shape_counts_match_table1(self):
        assert len(fleet_2011()) == 10
        assert len(fleet_2019()) == 21
        assert len({s.platform for s in fleet_2011()}) == 3
        assert len({s.platform for s in fleet_2019()}) == 7

    def test_build_machines_count_and_ids(self):
        rng = np.random.default_rng(0)
        machines = build_machines(fleet_2019(), 50, rng, id_offset=100)
        assert len(machines) == 50
        assert machines[0].machine_id == 100
        assert machines[-1].machine_id == 149

    def test_weights_respected(self):
        rng = np.random.default_rng(1)
        machines = build_machines(fleet_2011(), 3000, rng)
        # The dominant 2011 shape (0.50, 0.50) is ~53% of the fleet.
        share = sum(1 for m in machines
                    if (m.capacity.cpu, m.capacity.mem) == (0.5, 0.5)) / 3000
        assert share == pytest.approx(0.53, abs=0.05)

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            build_machines(fleet_2011(), 0, np.random.default_rng(0))

    def test_utc_offset_propagated(self):
        machines = build_machines(fleet_2019(), 3, np.random.default_rng(0),
                                  utc_offset_hours=8.0)
        assert all(m.utc_offset_hours == 8.0 for m in machines)


def make_generator(era=None, capacity=Resources(30.0, 30.0),
                   horizon=24 * HOUR_SECONDS, scale=0.01, seed=0):
    return WorkloadGenerator(
        era=era or era_2019(), capacity=capacity, horizon=horizon,
        rng=RngFactory(seed), arrival_scale=scale,
    )


class TestGenerator:
    def test_generates_sorted_collections(self):
        gen = make_generator()
        workload = gen.generate()
        assert len(workload) > 50
        times = [c.submit_time for c in workload]
        assert times == sorted(times)
        assert all(t >= 0 for t in times)

    def test_collection_ids_unique(self):
        workload = make_generator().generate()
        ids = [c.collection_id for c in workload]
        assert len(ids) == len(set(ids))

    def test_alloc_set_share_near_2pct(self):
        workload = make_generator(scale=0.05).generate()
        n_alloc = sum(1 for c in workload
                      if c.collection_type is CollectionType.ALLOC_SET)
        assert n_alloc / len(workload) == pytest.approx(0.02, abs=0.012)

    def test_no_alloc_sets_in_2011(self):
        workload = make_generator(era=era_2011()).generate()
        assert all(c.collection_type is CollectionType.JOB for c in workload)

    def test_beb_jobs_use_batch_scheduler_2019_only(self):
        for era, expected in ((era_2019(), SchedulerKind.BATCH),
                              (era_2011(), SchedulerKind.BORG)):
            workload = make_generator(era=era).generate()
            beb = [c for c in workload if c.tier is Tier.BEB
                   and c.collection_type is CollectionType.JOB]
            assert beb and all(c.scheduler is expected for c in beb)

    def test_priorities_consistent_with_tiers(self):
        workload = make_generator().generate()
        for c in workload:
            tier = tier_of_priority_2019(c.priority)
            tier = Tier.PROD if tier is Tier.MONITORING else tier
            expected = Tier.PROD if c.tier is Tier.MONITORING else c.tier
            assert tier is expected

    def test_2011_priorities_are_bands(self):
        workload = make_generator(era=era_2011()).generate()
        for c in workload:
            assert 0 <= c.priority <= 11
            tier = tier_of_priority_2011(c.priority)
            tier = Tier.PROD if tier is Tier.MONITORING else tier
            assert tier in (c.tier, Tier.PROD)

    def test_offered_load_matches_targets(self):
        gen = make_generator(scale=0.05, horizon=48 * HOUR_SECONDS)
        workload = gen.generate()
        horizon = 48 * HOUR_SECONDS
        delivered = {tier: 0.0 for tier in gen.era.tiers}
        for c in workload:
            if c.collection_type is CollectionType.ALLOC_SET:
                continue
            overlap = max(0.0, min(c.submit_time + c.planned_duration, horizon)
                          - c.submit_time)
            for inst in c.instances:
                delivered[c.tier] += (inst.request.cpu * c.cpu_usage_fraction
                                      * overlap / HOUR_SECONDS)
        for tier, params in gen.era.tiers.items():
            target = params.target_cpu_usage * gen.capacity.cpu * 48
            assert delivered[tier] == pytest.approx(target, rel=0.35), tier

    def test_parent_links_resolve(self):
        workload = make_generator(scale=0.05).generate()
        ids = {c.collection_id for c in workload}
        children = [c for c in workload if c.parent_id is not None]
        assert children, "expected some jobs with parents"
        assert all(c.parent_id in ids for c in children)

    def test_parents_submitted_before_children(self):
        workload = make_generator(scale=0.05).generate()
        submit = {c.collection_id: c.submit_time for c in workload}
        for c in workload:
            if c.parent_id is not None:
                assert submit[c.parent_id] <= c.submit_time

    def test_alloc_job_links_resolve(self):
        workload = make_generator(scale=0.05).generate()
        alloc_ids = {c.collection_id for c in workload
                     if c.collection_type is CollectionType.ALLOC_SET}
        in_alloc = [c for c in workload if c.alloc_collection_id is not None]
        assert in_alloc, "expected some jobs in allocs"
        assert all(c.alloc_collection_id in alloc_ids for c in in_alloc)
        prod_share = (sum(1 for c in in_alloc if c.tier is Tier.PROD)
                      / len(in_alloc))
        assert prod_share > 0.7

    def test_requests_at_least_usage(self):
        workload = make_generator().generate()
        for c in workload:
            for inst in c.instances:
                assert inst.request.cpu > 0 and inst.request.mem > 0
                assert c.cpu_usage_fraction <= 0.96
                assert c.mem_usage_fraction <= 0.96

    def test_durations_positive(self):
        workload = make_generator().generate()
        assert all(c.planned_duration > 0 for c in workload)

    def test_determinism(self):
        a = make_generator(seed=3).generate()
        b = make_generator(seed=3).generate()
        assert [(c.collection_id, c.submit_time, c.num_instances) for c in a] \
            == [(c.collection_id, c.submit_time, c.num_instances) for c in b]

    def test_infeasible_target_raises(self):
        # Tiny arrival scale: too few jobs to carry the target load.
        with pytest.raises(ValueError, match="increase the arrival scale"):
            WorkloadGenerator(era=era_2019(), capacity=Resources(30.0, 30.0),
                              horizon=24 * HOUR_SECONDS, rng=RngFactory(0),
                              arrival_scale=1e-5).generate()

    def test_bad_arguments(self):
        with pytest.raises(ValueError):
            make_generator(scale=0.0)
        with pytest.raises(ValueError):
            make_generator(horizon=0.0)
