"""Fork safety: worker-side obs metrics merge into the parent exactly once.

The store executor ships chunk tasks to worker processes; each worker
runs its task inside a fresh scoped registry and returns a
:class:`~repro.obs.snapshot.Snapshot` alongside the payload
(``traced_chunk_task``).  The parent merges each snapshot once, in task
order.  These tests pin the resulting invariants:

* parallel and serial runs agree on every work counter,
* nothing is double-counted (exactly one increment per chunk, even
  under ``fork`` start methods where the child inherits a *copy* of the
  parent registry),
* worker span trees graft under the parent's open ``store.scan`` span,
  so the merged structure equals the serial one.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.store import open_store, write_store
from repro.table.table import Table


def _count_rows(table: Table) -> int:
    """Module-level map_fn (must be picklable by name — RPR003)."""
    return len(table)


def _add(a: int, b: int) -> int:
    return a + b


@pytest.fixture(scope="module")
def store_dir(trace_2019, tmp_path_factory):
    directory = tmp_path_factory.mktemp("obs_store") / "cell"
    with obs.scoped_registry():
        write_store(trace_2019, directory)
    return directory


#: The counters that must agree between serial and parallel execution.
WORK_COUNTERS = ("store.scans", "store.chunks_total", "store.chunks_skipped",
                 "store.chunks_decoded", "store.rows_decoded",
                 "store.rows_matched", "store.chunks_read", "store.bytes_read")


def _map_reduce_run(store_dir, workers):
    """One instrumented map_reduce over instance_usage; returns
    (row total, counters, span structure)."""
    store = open_store(store_dir)
    with obs.scoped_registry() as registry:
        total = store.scan("instance_usage").map_reduce(
            _count_rows, _add, workers=workers)
        snapshot = registry.snapshot()
    return total, snapshot.counters, snapshot.span_structure()


def test_parallel_counters_match_serial(store_dir):
    total_serial, serial, structure_serial = _map_reduce_run(store_dir, None)
    total_parallel, parallel, structure_parallel = _map_reduce_run(store_dir, 2)

    assert total_parallel == total_serial
    for name in WORK_COUNTERS:
        assert parallel.get(name, 0) == serial.get(name, 0), name

    # Worker span trees grafted under the open store.scan span: the
    # merged structure is indistinguishable from the serial run's.
    assert structure_parallel == structure_serial


def test_chunk_work_counted_exactly_once(store_dir):
    """Each surviving chunk is read and decoded exactly once — a fork
    that re-counted inherited parent state would inflate these."""
    store = open_store(store_dir)
    n_chunks = len(store.scan("instance_usage").surviving_chunks())
    assert n_chunks > 1  # the parallel path needs real fan-out

    _, counters, structure = _map_reduce_run(store_dir, 2)
    assert counters["store.chunks_read"] == n_chunks
    assert counters["store.chunks_decoded"] == n_chunks
    assert counters["store.scans"] == 1

    def find(node, name):
        if node[0] == name:
            return node
        for child in node[2]:
            found = find(child, name)
            if found is not None:
                return found
        return None

    chunk_span = find(structure, "store.chunk")
    assert chunk_span is not None and chunk_span[1] == n_chunks


def test_traced_chunk_task_snapshot_is_the_task_delta(store_dir):
    """The worker-side wrapper's snapshot contains only its own task's
    metrics, regardless of what the ambient registry already held."""
    from repro.store.executor import traced_chunk_task

    store = open_store(store_dir)
    scan = store.scan("instance_usage")
    chunk = scan.surviving_chunks()[0]
    task = (str(store.chunk_path(chunk["file"])),
            tuple(store.manifest.column_names("instance_usage")),
            None, (), _count_rows)

    obs.inc("store.chunks_read", 1000)  # pre-existing parent state
    before = obs.snapshot().counters["store.chunks_read"]
    (payload, rows_decoded, rows_matched), snapshot = traced_chunk_task(task)

    assert payload == rows_decoded == rows_matched == chunk["rows"]
    # The snapshot is exactly this one task's work...
    assert snapshot.counters["store.chunks_read"] == 1
    assert snapshot.span_structure() == ("root", 0, (("store.chunk", 1, ()),))
    # ...and running it did not touch the ambient registry.
    assert obs.snapshot().counters["store.chunks_read"] == before


def test_merge_is_idempotent_per_snapshot_not_global():
    """merge_snapshot adds counters per call — callers own exactly-once."""
    registry = obs.MetricsRegistry()
    child = obs.MetricsRegistry()
    child.inc("store.chunks_decoded", 3)
    snapshot = child.snapshot()
    registry.merge_snapshot(snapshot)
    registry.merge_snapshot(snapshot)
    assert registry.snapshot().counters["store.chunks_decoded"] == 6
