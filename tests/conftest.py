"""Shared fixtures: session-scoped small simulations and traces.

Simulations are the expensive part of the suite, so each scenario is run
once per session and shared by every test that only reads from it.  The
actual simulate-and-encode setup lives in :mod:`tests.trace_fixtures`,
shared with ``benchmarks/conftest.py`` and parametrized on cell size.
"""

from __future__ import annotations

import os

import pytest

from repro.sim import eventq
from repro.store import format as store_format
from repro.trace import encode_cell
from tests.trace_fixtures import FAULTY_SCALE, TEST_SCALE, build_result


def pytest_configure(config):
    """Alternate-config runs: the CI matrix re-runs the whole tier-1
    suite with the calendar queue and mmap store reads switched on via
    environment knobs (env reads live here, outside ``src/repro``, by
    design — RPR002 keeps them out of library code).  Every golden must
    stay byte-identical under either setting.
    """
    queue = os.environ.get("REPRO_SIM_QUEUE")  # repro: noqa[RPR008] alt-config knob; both queues are bit-identical
    if queue:
        eventq.set_default_queue(queue)
    mmap_flag = os.environ.get("REPRO_STORE_MMAP")
    if mmap_flag is not None and mmap_flag != "":
        store_format.set_default_mmap(mmap_flag not in ("0", "false", "no"))


@pytest.fixture(scope="session")
def result_2019():
    """One small 2019-era cell simulation result."""
    return build_result("2019", TEST_SCALE)


@pytest.fixture(scope="session")
def result_2011():
    """One small 2011-era cell simulation result."""
    return build_result("2011", TEST_SCALE)


@pytest.fixture(scope="session")
def trace_2019(result_2019):
    return encode_cell(result_2019)


@pytest.fixture(scope="session")
def trace_2011(result_2011):
    return encode_cell(result_2011)


@pytest.fixture(scope="session")
def traces_2019(trace_2019):
    return [trace_2019]


@pytest.fixture(scope="session")
def result_2019_faulty():
    """The failure-heavy 2019 cell: heavy faults + mixed archetypes."""
    return build_result("2019", FAULTY_SCALE)


@pytest.fixture(scope="session")
def trace_2019_faulty(result_2019_faulty):
    return encode_cell(result_2019_faulty)


@pytest.fixture(scope="session")
def traces_2011(trace_2011):
    return [trace_2011]
