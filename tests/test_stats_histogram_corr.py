"""Unit tests for histograms and correlation helpers."""

import numpy as np
import pytest

from repro.stats import (
    CPU_HISTOGRAM_PERCENTILES,
    bucketed_medians,
    cpu_usage_histogram,
    histogram,
    pearson,
)


class TestHistogram:
    def test_counts(self):
        counts = histogram([0.1, 0.5, 0.9, 0.95], edges=[0.0, 0.5, 1.0])
        assert counts.tolist() == [1, 3]

    def test_out_of_range_clipped(self):
        counts = histogram([-5.0, 99.0], edges=[0.0, 1.0, 2.0])
        assert counts.sum() == 2

    def test_bad_edges(self):
        with pytest.raises(ValueError):
            histogram([1.0], edges=[1.0])
        with pytest.raises(ValueError):
            histogram([1.0], edges=[1.0, 0.5])

    def test_total_preserved(self):
        rng = np.random.default_rng(0)
        samples = rng.random(1000)
        assert histogram(samples, np.linspace(0, 1, 22)).sum() == 1000


class TestCpuUsageHistogram:
    def test_has_21_elements(self):
        out = cpu_usage_histogram(np.random.default_rng(0).random(500))
        assert len(out) == len(CPU_HISTOGRAM_PERCENTILES) == 21

    def test_monotone_nondecreasing(self):
        out = cpu_usage_histogram(np.random.default_rng(1).random(500))
        assert (np.diff(out) >= 0).all()

    def test_biased_towards_high_percentiles(self):
        # More than half of the recorded points are above the 80th pct.
        high = [p for p in CPU_HISTOGRAM_PERCENTILES if p >= 90]
        assert len(high) >= 11

    def test_endpoints_are_min_max(self):
        data = [0.2, 0.9, 0.5]
        out = cpu_usage_histogram(data)
        assert out[0] == 0.2 and out[-1] == 0.9

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cpu_usage_histogram([])


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(7)
        assert abs(pearson(rng.random(5000), rng.random(5000))) < 0.05

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1, 2], [1, 2, 3])

    def test_constant_rejected(self):
        with pytest.raises(ValueError):
            pearson([1, 1, 1], [1, 2, 3])


class TestBucketedMedians:
    def test_medians_per_bucket(self):
        x = [0.1, 0.2, 1.5, 1.9]
        y = [1.0, 3.0, 10.0, 20.0]
        centers, medians = bucketed_medians(x, y, bucket_width=1.0)
        assert centers.tolist() == [0.5, 1.5]
        assert medians.tolist() == [2.0, 15.0]

    def test_min_bucket_count_filters(self):
        x = [0.1, 1.5]
        y = [1.0, 2.0]
        centers, _ = bucketed_medians(x, y, min_bucket_count=2)
        assert len(centers) == 0

    def test_bad_width(self):
        with pytest.raises(ValueError):
            bucketed_medians([1.0], [1.0], bucket_width=0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bucketed_medians([], [])

    def test_linear_relation_recovered(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 50, 20_000)
        y = 0.6 * x * rng.lognormal(0, 0.2, 20_000)
        centers, medians = bucketed_medians(x, y, bucket_width=1.0, min_bucket_count=5)
        from repro.stats import pearson as p
        assert p(centers, medians) > 0.98
