"""Golden-figure regression tests: exact numeric snapshots of figures.

Each test recomputes one paper figure/table from the session-scoped
seed-11 traces and compares the result — bit-for-bit, after a JSON
round-trip — against a checked-in golden under ``tests/goldens/``.  The
simulator and every reducer are deterministic, so any diff is a real
behavior change: either a bug, or an intentional change that must be
reviewed alongside a regenerated golden.

Regenerate after an intentional change with::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest tests/test_goldens.py

and commit the rewritten JSON files with the change that caused them.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.analysis import consumption, failures, machine_util, submission, summary
from repro.analysis.common import job_usage_integrals
from repro.queueing import compare_isolation, pollaczek_khinchine
from repro.stats import squared_cv, top_share
from repro.table import concat

GOLDEN_DIR = Path(__file__).parent / "goldens"

#: CCDF evaluation grids (mirror the benchmark suite's print grids).
UTIL_GRID = (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
USAGE_GRID = (1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0)
#: Resubmission backoff delays (seconds) — spans the heavy profile's
#: exponential ladder (60 * 2**k, capped at an hour).
RESUBMIT_GRID = (30.0, 60.0, 120.0, 240.0, 480.0, 960.0, 1800.0, 3600.0)


def _jsonable(value):
    """Recursively convert numpy scalars/arrays so json.dumps round-trips."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def _check_golden(name: str, computed) -> None:
    """Exact-match ``computed`` against ``tests/goldens/<name>.json``."""
    computed = json.loads(json.dumps(_jsonable(computed)))
    path = GOLDEN_DIR / f"{name}.json"
    if os.environ.get("REPRO_REGEN_GOLDENS") == "1":
        GOLDEN_DIR.mkdir(exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(computed, f, indent=2, sort_keys=True)
            f.write("\n")
    golden = json.loads(path.read_text())
    assert computed == golden, (
        f"{name} drifted from its golden snapshot ({path}). If this "
        "change is intentional, regenerate with REPRO_REGEN_GOLDENS=1 "
        "and commit the updated golden with the code change.")


def test_golden_fig6_machine_utilization(trace_2011, trace_2019):
    computed = {
        f"{trace.era}.{resource}": [
            machine_util.machine_utilization_ccdf(trace, resource).at(x)
            for x in UTIL_GRID]
        for trace in (trace_2011, trace_2019)
        for resource in ("cpu", "mem")
    }
    _check_golden("fig6_machine_utilization", computed)


def test_golden_fig8_job_submission(trace_2011, traces_2019):
    ccdfs = {
        "2011": submission.job_submission_ccdf(trace_2011),
        "2019-aggregate": submission.aggregate_job_submission_ccdf(
            traces_2019),
        **{f"2019-{t.cell}": submission.job_submission_ccdf(t)
           for t in traces_2019},
    }
    computed = {
        name: {"median": ccdf.quantile_of_exceedance(0.5),
               "p90": ccdf.quantile_of_exceedance(0.1)}
        for name, ccdf in ccdfs.items()
    }
    computed["growth"] = submission.growth_factors(trace_2011, traces_2019)
    _check_golden("fig8_job_submission", computed)


def test_golden_table1_summary(traces_2011, traces_2019):
    col_2011, col_2019 = summary.table1(traces_2011, traces_2019)
    _check_golden("table1_summary", {"2011": col_2011, "2019": col_2019})


def test_golden_sec73_queueing(traces_2019):
    table = concat([job_usage_integrals(t) for t in traces_2019])
    sizes = table.column("ncu_hours").values
    sizes = sizes[sizes > 0]
    cv2 = squared_cv(sizes)
    report = compare_isolation(sizes, rho=0.5, hog_fraction=0.01)
    computed = {
        "jobs": len(sizes),
        "total_ncu_hours": float(sizes.sum()),
        "cv2": cv2,
        "top1_load_share": top_share(sizes, 0.01),
        "pk_delay_rho05": pollaczek_khinchine(0.5, cv2),
        "isolation": {
            "hog_load_share": report.hog_load_share,
            "shared_cv2": report.shared_cv2,
            "mice_cv2": report.mice_cv2,
            "shared_delay": report.shared_delay,
            "mice_only_delay": report.mice_only_delay,
            "speedup": report.speedup,
        },
    }
    _check_golden("sec73_queueing", computed)


def test_golden_fig12_usage_ccdf(traces_2011, traces_2019):
    computed = {
        f"{era}.{resource}": [
            consumption.usage_ccdf(traces, resource).at(x)
            for x in USAGE_GRID]
        for era, traces in (("2011", traces_2011), ("2019", traces_2019))
        for resource in ("cpu", "mem")
    }
    _check_golden("fig12_usage_ccdf", computed)


# -- scenario-pack goldens: the failure-heavy seed-11 cell ------------------

def test_golden_failure_rates_by_tier(trace_2019_faulty):
    computed = failures.failure_rates_by_tier([trace_2019_faulty])
    computed["availability"] = failures.machine_availability(
        [trace_2019_faulty], horizon=12 * 3600.0)
    _check_golden("failure_rates_by_tier", computed)


def test_golden_resubmission_intervals(result_2019_faulty):
    ccdf = failures.resubmission_interval_ccdf([result_2019_faulty])
    computed = {
        "ccdf": [ccdf.at(x) for x in RESUBMIT_GRID],
        "median_delay": ccdf.quantile_of_exceedance(0.5),
        "report": failures.resubmission_report([result_2019_faulty]),
    }
    _check_golden("resubmission_intervals", computed)


def test_golden_archetype_usage_shares(trace_2019_faulty):
    _check_golden("archetype_usage_shares",
                  failures.archetype_usage_shares([trace_2019_faulty]))
