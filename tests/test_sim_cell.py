"""Integration tests for the cell engine on a small, hand-built workload."""

import numpy as np
import pytest

from repro.sim import CellConfig, CellSim, EventType, Machine, Resources, Tier
from repro.sim.cell import TIER_CODES, _reconcile_machine_usage
from repro.sim.entities import (
    Collection,
    CollectionType,
    EndReason,
    Instance,
    InstanceState,
    SchedulerKind,
)
from repro.util.rng import RngFactory


def make_config(**overrides):
    defaults = dict(
        name="test", era="2019", horizon=4 * 3600.0,
        restart_rate_per_hour=0.0,
        eviction_rate_per_hour={t: 0.0 for t in Tier},
        machine_downtime_per_month=0.0,
    )
    defaults.update(overrides)
    return CellConfig(**defaults)


def make_job(cid, tier=Tier.PROD, submit=0.0, duration=1800.0, n=1,
             cpu=0.1, mem=0.1, end=EndReason.FINISH, parent=None,
             scheduler=SchedulerKind.BORG, alloc_id=None,
             autopilot="none"):
    c = Collection(
        collection_id=cid, collection_type=CollectionType.JOB,
        priority=200 if tier is Tier.PROD else 50, tier=tier, user="u",
        submit_time=submit, scheduler=scheduler, parent_id=parent,
        alloc_collection_id=alloc_id, planned_duration=duration,
        planned_end=end, autopilot_mode=autopilot,
        cpu_usage_fraction=0.5, mem_usage_fraction=0.5,
    )
    for i in range(n):
        c.instances.append(Instance(collection=c, index=i,
                                    request=Resources(cpu, mem)))
    return c


def run_cell(workload, machines=None, config=None, seed=0):
    config = config or make_config()
    machines = machines or [Machine(i, Resources(1.0, 1.0)) for i in range(4)]
    sim = CellSim(config, machines, workload, RngFactory(seed))
    return sim.run()


def events_of(result, cid, stream="collection"):
    if stream == "collection":
        return [e for e in result.events.collection_events if e.collection_id == cid]
    return [e for e in result.events.instance_events if e.collection_id == cid]


class TestBasicLifecycle:
    def test_job_runs_and_finishes(self):
        result = run_cell([make_job(1, duration=1800.0)])
        types = [e.event for e in events_of(result, 1)]
        assert types == [EventType.SUBMIT, EventType.FINISH]
        collection = result.collections[0]
        assert collection.end_reason is EndReason.FINISH
        assert collection.end_time == pytest.approx(
            collection.first_running_time + 1800.0)

    def test_instance_events_sequence(self):
        result = run_cell([make_job(1)])
        types = [e.event for e in events_of(result, 1, "instance")]
        assert types == [EventType.SUBMIT, EventType.SCHEDULE, EventType.FINISH]

    def test_usage_samples_generated(self):
        result = run_cell([make_job(1, duration=3600.0)])
        assert len(result.usage["window_start"]) >= 10  # 300s windows
        assert (result.usage["avg_cpu"] > 0).all()

    def test_usage_tier_codes(self):
        result = run_cell([make_job(1, tier=Tier.PROD)])
        assert set(result.usage["tier_code"].tolist()) == {TIER_CODES[Tier.PROD]}

    def test_scheduling_delay_within_round_interval(self):
        result = run_cell([make_job(1, submit=100.0)])
        c = result.collections[0]
        delay = c.scheduling_delay()
        assert 0 <= delay <= 2 * 5.0 + 1.0

    def test_planned_kill_and_fail(self):
        result = run_cell([
            make_job(1, end=EndReason.KILL),
            make_job(2, end=EndReason.FAIL),
        ])
        reasons = {c.collection_id: c.end_reason for c in result.collections}
        assert reasons[1] is EndReason.KILL
        assert reasons[2] is EndReason.FAIL

    def test_censored_job_has_no_terminal_event(self):
        result = run_cell([make_job(1, duration=999_999.0)])
        types = [e.event for e in events_of(result, 1)]
        assert EventType.FINISH not in types
        # But its usage up to the horizon was recorded.
        assert result.usage["window_start"].max() < 4 * 3600.0

    def test_multi_task_job(self):
        result = run_cell([make_job(1, n=5)])
        schedules = [e for e in events_of(result, 1, "instance")
                     if e.event is EventType.SCHEDULE]
        assert len(schedules) == 5
        assert result.counters.tasks_created == 5


class TestBatchQueue:
    def test_beb_job_gets_queue_and_enable(self):
        job = make_job(1, tier=Tier.BEB, scheduler=SchedulerKind.BATCH)
        result = run_cell([job])
        types = [e.event for e in events_of(result, 1)]
        assert types[:3] == [EventType.SUBMIT, EventType.QUEUE, EventType.ENABLE]

    def test_no_batch_queue_in_2011(self):
        config = make_config(era="2011", batch_queueing=False)
        job = make_job(1, tier=Tier.BEB, scheduler=SchedulerKind.BATCH)
        result = run_cell([job], config=config)
        types = [e.event for e in events_of(result, 1)]
        assert EventType.QUEUE not in types

    def test_queue_throttles_second_job(self):
        # Budget (0.55 * 4 cpu = 2.2) held by the first huge job.
        first = make_job(1, tier=Tier.BEB, scheduler=SchedulerKind.BATCH,
                         n=20, cpu=0.105, mem=0.105, duration=3600.0)
        second = make_job(2, tier=Tier.BEB, scheduler=SchedulerKind.BATCH,
                          submit=60.0, n=4, cpu=0.1, mem=0.1)
        result = run_cell([first, second])
        enable_2 = [e for e in events_of(result, 2)
                    if e.event is EventType.ENABLE][0]
        end_1 = [e for e in events_of(result, 1) if e.event.is_terminal][0]
        assert enable_2.time >= end_1.time


class TestDependenciesInCell:
    def test_cascade_kill(self):
        parent = make_job(1, duration=1800.0, end=EndReason.FINISH)
        child = make_job(2, submit=10.0, duration=999_999.0, parent=1)
        result = run_cell([parent, child])
        reasons = {c.collection_id: c.end_reason for c in result.collections}
        assert reasons[2] is EndReason.KILL
        ends = {c.collection_id: c.end_time for c in result.collections}
        assert ends[2] == pytest.approx(ends[1])
        assert result.counters.cascade_kills == 1

    def test_child_ending_first_not_cascaded(self):
        parent = make_job(1, duration=7000.0)
        child = make_job(2, submit=10.0, duration=600.0, parent=1,
                         end=EndReason.FINISH)
        result = run_cell([parent, child])
        reasons = {c.collection_id: c.end_reason for c in result.collections}
        assert reasons[2] is EndReason.FINISH


class TestPreemption:
    def test_prod_preempts_free(self):
        machines = [Machine(0, Resources(1.0, 1.0))]
        config = make_config()
        filler = make_job(1, tier=Tier.FREE, n=9, cpu=0.2, mem=0.2,
                          duration=999_999.0)
        filler.priority = 25
        prod = make_job(2, tier=Tier.PROD, submit=600.0, cpu=0.3, mem=0.3,
                        duration=600.0)
        result = run_cell([filler, prod], machines=machines, config=config)
        assert result.counters.preemption_victims >= 1
        evicts = [e for e in events_of(result, 1, "instance")
                  if e.event is EventType.EVICT]
        assert evicts
        # Victim was resubmitted (is_new False on its later SUBMIT).
        resubmits = [e for e in events_of(result, 1, "instance")
                     if e.event is EventType.SUBMIT and not e.is_new]
        assert resubmits

    def test_free_does_not_preempt(self):
        machines = [Machine(0, Resources(1.0, 1.0))]
        filler = make_job(1, tier=Tier.BEB, n=9, cpu=0.2, mem=0.2,
                          duration=999_999.0, scheduler=SchedulerKind.BORG)
        filler.priority = 110
        free = make_job(2, tier=Tier.FREE, submit=600.0, cpu=0.5, mem=0.5)
        free.priority = 25
        result = run_cell([filler, free], machines=machines)
        assert result.counters.preemption_victims == 0


class TestHazards:
    def test_restarts_produce_churn(self):
        config = make_config(restart_rate_per_hour=5.0)
        result = run_cell([make_job(1, duration=3 * 3600.0)], config=config)
        assert result.counters.task_restarts > 0
        fails = [e for e in events_of(result, 1, "instance")
                 if e.event is EventType.FAIL]
        assert fails
        # The collection itself still ends normally.
        assert result.collections[0].end_reason is EndReason.FINISH

    def test_eviction_hazard_reschedules(self):
        config = make_config(
            eviction_rate_per_hour={t: (30.0 if t is Tier.FREE else 0.0)
                                    for t in Tier},
        )
        job = make_job(1, tier=Tier.FREE, duration=2 * 3600.0)
        job.priority = 25
        result = run_cell([job], config=config)
        assert result.counters.evictions >= 1
        assert result.collections[0].instances[0].n_evictions >= 1

    def test_machine_downtime_evicts_and_recovers(self):
        config = make_config(machine_downtime_per_month=10_000.0,
                             machine_downtime_duration=600.0)
        machines = [Machine(0, Resources(1.0, 1.0))]
        result = run_cell([make_job(1, duration=3.5 * 3600.0)],
                          machines=machines, config=config)
        assert result.counters.machine_downtimes >= 1
        assert len(result.events.machine_events) >= 2
        kinds = {e.event for e in result.events.machine_events}
        assert {"REMOVE", "ADD"} <= kinds


class TestAllocSets:
    def _alloc_set(self, cid=10, n=2, size=0.4):
        c = Collection(
            collection_id=cid, collection_type=CollectionType.ALLOC_SET,
            priority=200, tier=Tier.PROD, user="u", submit_time=0.0,
            planned_duration=999_999.0, planned_end=EndReason.KILL,
        )
        for i in range(n):
            c.instances.append(Instance(collection=c, index=i,
                                        request=Resources(size, size)))
        return c

    def test_task_placed_inside_alloc(self):
        alloc = self._alloc_set()
        job = make_job(1, submit=60.0, alloc_id=10, cpu=0.1, mem=0.1)
        result = run_cell([alloc, job])
        task = [c for c in result.collections if c.collection_id == 1][0].instances[0]
        # The task ran on the machine hosting one of the alloc instances.
        alloc_machines = {iv[2] for c in result.collections if c.collection_id == 10
                          for i in c.instances for iv in i.run_intervals}
        alloc_live = {i.machine_id for c in result.collections
                      if c.collection_id == 10 for i in c.instances}
        assert task.run_intervals[0][2] in (alloc_machines | alloc_live)

    def test_alloc_instances_emit_reservation_rows(self):
        alloc = self._alloc_set()
        result = run_cell([alloc])
        u = result.usage
        assert len(u["window_start"]) > 0
        assert float(u["avg_cpu"].sum()) == 0.0        # reservations: no usage
        assert float(u["cpu_limit"].sum()) > 0.0       # but they hold limits

    def test_overflow_falls_back_to_machines(self):
        alloc = self._alloc_set(n=1, size=0.15)
        job = make_job(1, submit=60.0, alloc_id=10, n=6, cpu=0.1, mem=0.1)
        result = run_cell([alloc, job])
        # All six tasks ran even though the alloc fits at most one.
        schedules = [e for e in events_of(result, 1, "instance")
                     if e.event is EventType.SCHEDULE]
        assert len(schedules) == 6


class TestTimeouts:
    def test_unplaceable_job_killed_eventually(self):
        machines = [Machine(0, Resources(0.2, 0.2))]
        config = make_config(horizon=6 * 3600.0)
        # Request exceeds every machine even with over-commit: never places.
        job = make_job(1, cpu=0.9, mem=0.9, duration=600.0)
        result = run_cell([job], machines=machines, config=config)
        c = result.collections[0]
        assert c.end_reason is EndReason.KILL
        assert c.first_running_time is None


class TestReconcile:
    def test_overloaded_window_scaled_to_capacity(self):
        usage = {
            "window_start": np.array([0.0, 0.0]),
            "machine_id": np.array([0, 0]),
            "avg_cpu": np.array([0.8, 0.8]),
            "max_cpu": np.array([0.9, 0.9]),
            "avg_mem": np.array([0.1, 0.1]),
            "max_mem": np.array([0.1, 0.1]),
        }
        machines = [Machine(0, Resources(1.0, 1.0))]
        _reconcile_machine_usage(usage, machines, 300.0)
        assert float(usage["avg_cpu"].sum()) == pytest.approx(0.98)
        assert float(usage["avg_mem"].sum()) == pytest.approx(0.2)  # untouched

    def test_underloaded_window_untouched(self):
        usage = {
            "window_start": np.array([0.0]),
            "machine_id": np.array([0]),
            "avg_cpu": np.array([0.3]),
            "max_cpu": np.array([0.4]),
            "avg_mem": np.array([0.3]),
            "max_mem": np.array([0.4]),
        }
        _reconcile_machine_usage(usage, [Machine(0, Resources(1.0, 1.0))], 300.0)
        assert usage["avg_cpu"][0] == 0.3

    def test_empty_usage_ok(self):
        usage = {"window_start": np.empty(0)}
        _reconcile_machine_usage(usage, [], 300.0)


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        workload = lambda: [make_job(i, submit=i * 30.0, n=2) for i in range(1, 6)]
        a = run_cell(workload(), seed=7)
        b = run_cell(workload(), seed=7)
        assert len(a.events.instance_events) == len(b.events.instance_events)
        assert a.usage["avg_cpu"].tolist() == b.usage["avg_cpu"].tolist()

    def test_different_seed_different_usage(self):
        workload = lambda: [make_job(1, duration=3 * 3600.0)]
        a = run_cell(workload(), seed=1)
        b = run_cell(workload(), seed=2)
        assert a.usage["avg_cpu"].tolist() != b.usage["avg_cpu"].tolist()
