"""Property tests: the vectorized placement kernel == the scalar loop.

:meth:`PlacementPolicy.find_machine` runs as a structure-of-arrays
kernel over :class:`FleetState`.  Its contract is *bit-equivalence* with
looping the scalar reference methods ``_admissible`` / ``_score`` over
the same candidate indices — same float operations in the same order,
same tie-breaking (first occurrence wins).  These tests hold the two
paths together over randomized fleets, requests and constraints, and
pin the incremental-sync invariant the kernel depends on.
"""

import numpy as np
import pytest

from repro.sim import Machine, Resources, Tier
from repro.sim.entities import Collection, CollectionType, Instance
from repro.sim.fleet import FleetState
from repro.sim.scheduler import PlacementPolicy, SchedulerParams

PLATFORMS = ("amd-rome", "intel-skylake", "arm-n1")


def _reference_find_machine(policy, machines, request, constraint, rng):
    """The old per-object loop: sample, scalar-check, full-scan fallback.

    Draws candidate indices with per-call ``rng.integers`` — bit-identical
    to the kernel's pre-drawn index block consumed in order.
    """
    n = len(machines)
    if n == 0:
        return None
    sampled = None
    if policy.params.candidates < n:
        idx = rng.integers(0, n, size=policy.params.candidates)
        best, best_score = None, float("inf")
        for i in idx:
            m = machines[int(i)]
            if policy._admissible(m, request, constraint):
                score = policy._score(m, request)
                if score < best_score:
                    best, best_score = m, score
        if best is not None:
            return best
        sampled = {int(i) for i in idx}
    best, best_score = None, float("inf")
    for i, m in enumerate(machines):
        if sampled is not None and i in sampled:
            continue
        if policy._admissible(m, request, constraint):
            score = policy._score(m, request)
            if score < best_score:
                best, best_score = m, score
    return best


def _random_fleet(rng, n):
    machines = []
    for i in range(n):
        cap = Resources(float(rng.uniform(0.2, 2.0)),
                        float(rng.uniform(0.2, 2.0)))
        m = Machine(i, cap,
                    platform=PLATFORMS[int(rng.integers(0, len(PLATFORMS)))])
        # Random pre-existing allocation, sometimes over-committed.
        m.allocated = Resources(float(rng.uniform(0.0, cap.cpu * 1.6)),
                                float(rng.uniform(0.0, cap.mem * 1.6)))
        m.up = bool(rng.random() < 0.9)
        machines.append(m)
    return machines


def _random_constraint(rng):
    r = rng.random()
    if r < 0.5:
        return ""
    if r < 0.9:
        return PLATFORMS[int(rng.integers(0, len(PLATFORMS)))]
    return "no-such-platform"


class TestKernelEquivalence:
    def test_kernel_matches_reference_randomized(self):
        master = np.random.default_rng(20260805)
        for trial in range(150):
            n = int(master.integers(1, 48))
            machines = _random_fleet(master, n)
            params = SchedulerParams(
                overcommit_cpu=float(master.uniform(1.0, 2.0)),
                overcommit_mem=float(master.uniform(1.0, 2.0)),
                candidates=int(master.integers(1, 20)))
            seed = int(master.integers(0, 2**31))
            policy = PlacementPolicy(params, np.random.default_rng(seed))
            ref_rng = np.random.default_rng(seed)
            fleet = FleetState(machines)
            for _ in range(6):
                request = Resources(float(master.uniform(0.01, 1.2)),
                                    float(master.uniform(0.01, 1.2)))
                constraint = _random_constraint(master)
                got = policy.find_machine(fleet, request, constraint)
                want = _reference_find_machine(policy, machines, request,
                                               constraint, ref_rng)
                assert got is want, (
                    f"trial {trial}: kernel picked "
                    f"{got and got.machine_id}, reference picked "
                    f"{want and want.machine_id} for {request} "
                    f"constraint={constraint!r}")

    def test_plain_sequence_matches_fleet_state(self):
        # find_machine accepts a bare machine list (snapshotted on the
        # fly); it must pick the same machine as the attached path.
        master = np.random.default_rng(42)
        for _ in range(30):
            machines = _random_fleet(master, int(master.integers(2, 32)))
            params = SchedulerParams(candidates=8)
            seed = int(master.integers(0, 2**31))
            attached = PlacementPolicy(params, np.random.default_rng(seed))
            plain = PlacementPolicy(params, np.random.default_rng(seed))
            fleet = FleetState(machines, attach=False)
            request = Resources(float(master.uniform(0.01, 1.0)),
                                float(master.uniform(0.01, 1.0)))
            assert (attached.find_machine(fleet, request)
                    is plain.find_machine(machines, request))


def _instance(cid, cpu, mem, tier=Tier.PROD):
    c = Collection(collection_id=cid, collection_type=CollectionType.JOB,
                   priority=200, tier=tier, user="u", submit_time=0.0)
    inst = Instance(collection=c, index=0, request=Resources(cpu, mem))
    c.instances.append(inst)
    return inst


class TestIncrementalSync:
    def test_random_churn_keeps_arrays_consistent(self):
        # place / remove / up-down churn through the Machine mutators
        # must keep the columnar mirror exact (the invariant the kernel's
        # bit-equivalence rests on).
        rng = np.random.default_rng(99)
        machines = _random_fleet(rng, 16)
        fleet = FleetState(machines)
        placed = []
        for step in range(300):
            op = rng.random()
            if op < 0.5:
                m = machines[int(rng.integers(0, len(machines)))]
                if m.up:
                    inst = _instance(step, float(rng.uniform(0.01, 0.3)),
                                     float(rng.uniform(0.01, 0.3)))
                    m.place(inst)
                    placed.append((m, inst))
            elif op < 0.8 and placed:
                m, inst = placed.pop(int(rng.integers(0, len(placed))))
                m.remove(inst)
            else:
                m = machines[int(rng.integers(0, len(machines)))]
                m.up = not m.up
        fleet.check_consistency()

    def test_sync_is_copy_not_recompute(self):
        # The array value must be the machine's own float, bit for bit.
        m = Machine(0, Resources(1.0, 1.0))
        fleet = FleetState([m])
        for k in range(1, 20):
            m.place(_instance(k, 0.1, 0.1))
        assert fleet.allocated_cpu[0] == m.allocated.cpu
        assert fleet.allocated_mem[0] == m.allocated.mem

    def test_detached_snapshot_does_not_track(self):
        m = Machine(0, Resources(1.0, 1.0))
        snap = FleetState([m], attach=False)
        m.place(_instance(1, 0.5, 0.5))
        assert snap.allocated_cpu[0] == 0.0

    def test_check_consistency_raises_on_drift(self):
        m = Machine(0, Resources(1.0, 1.0))
        fleet = FleetState([m])
        fleet.alloc[0, 0] = 0.123  # simulate a missed sync
        with pytest.raises(AssertionError):
            fleet.check_consistency()
