"""Tests for repro.store: chunk format, manifest statistics, predicate
pushdown, the parallel executor, the chunk cache, and end-to-end
integration with the trace layer and the store-aware analysis reducers."""

import io
import json
import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.common import (
    alloc_set_ids,
    alloc_set_ids_store,
    average_tier_fractions,
    average_tier_fractions_store,
    hourly_tier_series,
    hourly_tier_series_store,
    job_usage_integrals,
    job_usage_integrals_store,
)
from repro.store import (
    Agg,
    And,
    Between,
    ChunkCache,
    Compare,
    IsIn,
    Manifest,
    Or,
    chunk_stats,
    merge_partials,
    open_store,
    partial_aggregate,
    read_chunk,
    read_chunk_header,
    write_chunk,
    write_store,
)
from repro.table import Table
from repro.trace import load_trace, save_trace
from repro.trace.dataset import SCHEMA_2019, TraceDataset
from repro.util.errors import SchemaError


def _dataset(usage_rows=2000, chunk_seed=0):
    """A synthetic five-table dataset with a time-sorted usage table."""
    rng = np.random.default_rng(chunk_seed)
    n = usage_rows
    tables = {name: Table({c: [] for c in cols})
              for name, cols in SCHEMA_2019.items()}
    tables["instance_usage"] = Table({
        "start_time": np.sort(rng.uniform(0, 48 * 3600, n)),
        "duration": np.full(n, 300.0),
        "collection_id": rng.integers(1, 200, n),
        "instance_index": rng.integers(0, 8, n),
        "machine_id": rng.integers(0, 64, n),
        "tier": np.asarray(rng.choice(["prod", "beb", "mid", "free"], n),
                           dtype=object),
        "vertical_scaling": np.asarray(["none"] * n, dtype=object),
        "in_alloc": rng.integers(0, 2, n).astype(bool),
        "avg_cpu": rng.uniform(0, 1, n),
        "max_cpu": rng.uniform(0, 1, n),
        "avg_mem": rng.uniform(0, 1, n),
        "max_mem": rng.uniform(0, 1, n),
        "limit_cpu": rng.uniform(0, 2, n),
        "limit_mem": rng.uniform(0, 2, n),
    })
    return TraceDataset(cell="t", era="2019", horizon=48 * 3600.0,
                        sample_period=300.0, utc_offset_hours=0.0,
                        capacity_cpu=64.0, capacity_mem=64.0, tables=tables)


@pytest.fixture()
def store_dir(tmp_path):
    ds = _dataset()
    write_store(ds, tmp_path / "s", chunk_rows=128)
    return tmp_path / "s", ds


class TestChunkFormat:
    def test_roundtrip_all_kinds(self):
        table = Table({
            "f": [1.5, float("inf"), float("-inf"), float("nan"), -0.0],
            "i": [0, -1, 2**62, -(2**62), 7],
            "b": [True, False, True, True, False],
            "s": ["", "héllo", "ユーザー", "a,b\nc", "True"],
        })
        buf = io.BytesIO()
        write_chunk(table, buf)
        buf.seek(0)
        back = read_chunk(buf)
        assert back.column_names == table.column_names
        for name in table.column_names:
            assert back.column(name).kind == table.column(name).kind
            if name == "s":
                assert back.column(name).values.tolist() == table.column(name).values.tolist()
            else:
                np.testing.assert_array_equal(back.column(name).values,
                                              table.column(name).values)

    def test_projection_skips_columns(self, tmp_path):
        table = Table({"a": [1, 2], "b": ["x", "y"], "c": [0.5, 1.5]})
        path = tmp_path / "c.rsc"
        write_chunk(table, path)
        got = read_chunk(path, columns=["c", "a"])
        assert got.column_names == ["c", "a"]
        np.testing.assert_array_equal(got.column("a").values, [1, 2])

    def test_unknown_projection_column(self, tmp_path):
        path = tmp_path / "c.rsc"
        write_chunk(Table({"a": [1]}), path)
        with pytest.raises(SchemaError, match="no column"):
            read_chunk(path, columns=["nope"])

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "junk.rsc"
        path.write_bytes(b"definitely not a chunk")
        with pytest.raises(SchemaError, match="magic"):
            read_chunk(path)

    def test_header_has_layout(self, tmp_path):
        path = tmp_path / "c.rsc"
        write_chunk(Table({"a": [1, 2, 3]}), path)
        header = read_chunk_header(path)
        assert header["rows"] == 3
        assert header["columns"][0]["kind"] == "int"


class TestChunkStats:
    def test_min_max_per_kind(self):
        stats = chunk_stats(Table({
            "i": [3, -1, 7], "f": [0.5, 2.5, 1.0], "s": ["b", "a", "c"],
            "flag": [True, False, True],
        }))
        assert stats["i"] == {"min": -1, "max": 7}
        assert stats["f"] == {"min": 0.5, "max": 2.5}
        assert stats["s"] == {"min": "a", "max": "c"}
        assert "flag" not in stats  # booleans carry no pruning power

    def test_nan_aware_bounds(self):
        stats = chunk_stats(Table({"f": [float("nan"), 1.0, 3.0]}))
        assert stats["f"] == {"min": 1.0, "max": 3.0}

    def test_all_nan_column_has_no_stats(self):
        stats = chunk_stats(Table({"f": [float("nan")], "i": [1]}))
        assert "f" not in stats and "i" in stats

    def test_empty_table(self):
        assert chunk_stats(Table({"a": []})) == {}


class TestPredicates:
    STATS = {"x": {"min": 10, "max": 20}, "s": {"min": "b", "max": "d"}}

    @pytest.mark.parametrize("pred,expected", [
        (Compare("x", "==", 15), True),
        (Compare("x", "==", 25), False),
        (Compare("x", "<", 10), False),
        (Compare("x", "<", 11), True),
        (Compare("x", "<=", 10), True),
        (Compare("x", ">", 20), False),
        (Compare("x", ">=", 20), True),
        (Compare("x", "!=", 15), True),
        (Between("x", 21, 30), False),
        (Between("x", 0, 9), False),
        (Between("x", 18, 30), True),
        (IsIn("x", [1, 2, 3]), False),
        (IsIn("x", [1, 12]), True),
        (Compare("s", "==", "c"), True),
        (Compare("s", "==", "zzz"), False),
        (Compare("unknown", "==", 5), True),  # no stats -> cannot prune
    ])
    def test_maybe_matches(self, pred, expected):
        assert pred.maybe_matches(self.STATS) is expected

    def test_ne_prunes_constant_chunk(self):
        assert Compare("x", "!=", 5).maybe_matches({"x": {"min": 5, "max": 5}}) is False

    def test_and_or_combinators(self):
        yes = Compare("x", "==", 15)
        no = Compare("x", "==", 99)
        assert (yes & no).maybe_matches(self.STATS) is False
        assert (yes | no).maybe_matches(self.STATS) is True
        assert And(yes, yes).maybe_matches(self.STATS) is True
        assert Or(no, no).maybe_matches(self.STATS) is False

    def test_type_confusion_never_prunes(self):
        assert Compare("s", "<", 5).maybe_matches(self.STATS) is True

    def test_masks_match_numpy(self):
        table = Table({"x": [1, 5, 10, 5], "s": ["a", "b", "c", "a"]})
        np.testing.assert_array_equal(
            Compare("x", ">=", 5).mask(table), [False, True, True, True])
        np.testing.assert_array_equal(
            Between("x", 2, 9).mask(table), [False, True, False, True])
        np.testing.assert_array_equal(
            IsIn("s", ["a"]).mask(table), [True, False, False, True])
        np.testing.assert_array_equal(
            (Compare("x", "==", 5) & IsIn("s", ["b"])).mask(table),
            [False, True, False, False])
        np.testing.assert_array_equal(
            (Compare("x", "==", 1) | Compare("x", "==", 10)).mask(table),
            [True, False, True, False])

    def test_predicates_are_picklable(self):
        pred = (Between("t", 0, 10) & Compare("tier", "==", "prod")) | IsIn("p", [1, 2])
        clone = pickle.loads(pickle.dumps(pred))
        table = Table({"t": [5.0], "tier": ["prod"], "p": [9]})
        np.testing.assert_array_equal(clone.mask(table), pred.mask(table))

    def test_unknown_operator(self):
        with pytest.raises(ValueError, match="unknown operator"):
            Compare("x", "~=", 1)


class TestWriterReader:
    def test_exact_roundtrip_without_clustering(self, tmp_path):
        ds = _dataset(usage_rows=300)
        write_store(ds, tmp_path / "s", chunk_rows=64, cluster_by=None)
        store = open_store(tmp_path / "s")
        for name, table in ds.tables.items():
            back = store.read_table(name)
            assert back.column_names == table.column_names
            for c in table.column_names:
                assert back.column(c).kind == table.column(c).kind
                if back.column(c).kind == "str":
                    assert back.column(c).values.tolist() == table.column(c).values.tolist()
                else:
                    np.testing.assert_array_equal(back.column(c).values,
                                                  table.column(c).values)

    def test_default_clustering_sorts_by_time(self, tmp_path):
        ds = _dataset(usage_rows=300)
        # Shuffle usage rows, then check the store comes back time-sorted.
        shuffled = ds.instance_usage.take(
            np.random.default_rng(1).permutation(300))
        ds.tables["instance_usage"] = shuffled
        write_store(ds, tmp_path / "s", chunk_rows=64)
        back = open_store(tmp_path / "s").read_table("instance_usage")
        times = back.column("start_time").values
        assert (np.diff(times) >= 0).all()
        assert sorted(back.column("avg_cpu").values.tolist()) == \
            sorted(shuffled.column("avg_cpu").values.tolist())

    def test_empty_tables_have_no_chunks_but_keep_schema(self, store_dir):
        path, _ = store_dir
        store = open_store(path)
        assert store.manifest.chunks("machine_events") == []
        table = store.read_table("machine_events")
        assert len(table) == 0
        assert table.column_names == SCHEMA_2019["machine_events"]

    def test_crash_mid_write_leaves_no_store(self, tmp_path, monkeypatch):
        ds = _dataset(usage_rows=100)
        calls = {"n": 0}
        import repro.store.writer as writer_mod

        real = writer_mod.write_chunk

        def exploding(table, dest):
            calls["n"] += 1
            if calls["n"] > 1:
                raise OSError("disk full")
            return real(table, dest)

        monkeypatch.setattr(writer_mod, "write_chunk", exploding)
        with pytest.raises(OSError):
            write_store(ds, tmp_path / "s", chunk_rows=16)
        assert not (tmp_path / "s").exists()
        assert list(tmp_path.iterdir()) == []  # no temp litter either

    def test_crash_preserves_previous_store(self, tmp_path, monkeypatch):
        write_store(_dataset(usage_rows=50), tmp_path / "s", chunk_rows=32)
        import repro.store.writer as writer_mod

        def exploding(table, dest):
            raise OSError("disk full")

        monkeypatch.setattr(writer_mod, "write_chunk", exploding)
        with pytest.raises(OSError):
            write_store(_dataset(usage_rows=80), tmp_path / "s", chunk_rows=32)
        # The original store is still complete and loadable.
        assert open_store(tmp_path / "s").rows("instance_usage") == 50

    def test_bad_chunk_rows(self, tmp_path):
        with pytest.raises(ValueError, match="chunk_rows"):
            write_store(_dataset(10), tmp_path / "s", chunk_rows=0)

    def test_manifest_rejects_foreign_json(self, tmp_path):
        (tmp_path / "manifest.json").write_text(json.dumps({"format": "parquet"}))
        with pytest.raises(SchemaError, match="manifest"):
            Manifest.load(tmp_path)

    def test_manifest_rejects_newer_version(self, tmp_path):
        (tmp_path / "manifest.json").write_text(json.dumps(
            {"format": "repro-store", "version": 99, "chunk_rows": 1,
             "meta": {}, "tables": {}}))
        with pytest.raises(SchemaError, match="version"):
            Manifest.load(tmp_path)


class TestScan:
    def test_time_window_skips_chunks(self, store_dir):
        """The acceptance criterion: a time-windowed aggregate decodes
        strictly fewer chunks than exist in the table."""
        path, ds = store_dir
        store = open_store(path)
        scan = (store.scan("instance_usage")
                     .where(Between("start_time", 0, 4 * 3600))
                     .select("avg_cpu"))
        result = scan.aggregate(Agg("sum", "avg_cpu"), Agg("count"))
        stats = scan.last_stats
        assert stats.chunks_total == len(store.manifest.chunks("instance_usage"))
        assert 0 < stats.chunks_decoded < stats.chunks_total
        assert stats.chunks_skipped == stats.chunks_total - stats.chunks_decoded
        assert stats.skip_fraction > 0
        # And the pruned answer is the exact answer.
        mask = ds.instance_usage.column("start_time").values <= 4 * 3600
        expected = ds.instance_usage.column("avg_cpu").values[mask]
        assert result["count"] == int(mask.sum())
        assert result["sum(avg_cpu)"] == pytest.approx(expected.sum())

    def test_filtered_table_matches_in_memory(self, store_dir):
        path, ds = store_dir
        store = open_store(path)
        pred = Compare("tier", "==", "prod") & Between("start_time", 0, 10 * 3600)
        got = (store.scan("instance_usage").where(pred)
                    .select("start_time", "avg_cpu").to_table())
        iu = ds.instance_usage
        mask = (iu.column("tier").values == "prod") & \
            (iu.column("start_time").values <= 10 * 3600)
        assert len(got) == int(mask.sum())
        np.testing.assert_allclose(np.sort(got.column("avg_cpu").values),
                                   np.sort(iu.column("avg_cpu").values[mask]))

    def test_projection_narrows_decoding(self, store_dir):
        path, _ = store_dir
        store = open_store(path)
        scan = (store.scan("instance_usage")
                     .where(Compare("tier", "==", "prod"))
                     .select("avg_mem"))
        scan.to_table()
        decoded_keys = list(store.cache._entries)
        assert decoded_keys, "serial scans should populate the cache"
        for _, _, columns in decoded_keys:
            assert set(columns) == {"tier", "avg_mem"}

    def test_count_fast_path_decodes_nothing(self, store_dir):
        path, ds = store_dir
        store = open_store(path)
        scan = store.scan("instance_usage")
        assert scan.count() == len(ds.instance_usage)
        assert scan.last_stats.chunks_decoded == 0

    def test_unknown_table_and_column(self, store_dir):
        path, _ = store_dir
        store = open_store(path)
        with pytest.raises(SchemaError, match="no table"):
            store.scan("nope")
        with pytest.raises(SchemaError, match="no column"):
            store.scan("instance_usage").select("nope")

    def test_scan_composition_is_immutable(self, store_dir):
        path, _ = store_dir
        store = open_store(path)
        base = store.scan("instance_usage")
        narrowed = base.select("avg_cpu").where(Between("start_time", 0, 3600))
        assert base.predicate is None
        assert base.output_columns() != narrowed.output_columns()

    def test_empty_result_keeps_projection(self, store_dir):
        path, _ = store_dir
        store = open_store(path)
        got = (store.scan("instance_usage")
                    .where(Compare("start_time", ">", 1e12))
                    .select("avg_cpu", "tier").to_table())
        assert len(got) == 0
        assert got.column_names == ["avg_cpu", "tier"]
        assert got.column("tier").kind == "str"

    def test_map_reduce_payloads(self, store_dir):
        path, ds = store_dir
        store = open_store(path)
        scan = store.scan("instance_usage").select("avg_cpu")
        total = scan.map_reduce(_chunk_cpu_sum, _add)
        assert total == pytest.approx(ds.instance_usage.column("avg_cpu").values.sum())


def _chunk_cpu_sum(table):
    return float(table.column("avg_cpu").values.sum())


def _add(a, b):
    return a + b


class TestExecutor:
    EDGES = (0.0, 0.25, 0.5, 0.75, 1.0)

    def _aggs(self):
        return [Agg("count"), Agg("sum", "avg_cpu"), Agg("min", "avg_cpu"),
                Agg("max", "avg_cpu"), Agg("mean", "avg_cpu"),
                Agg("histogram", "avg_cpu", edges=self.EDGES)]

    def test_serial_parallel_and_ground_truth_agree(self, store_dir):
        path, ds = store_dir
        store = open_store(path)
        pred = Between("start_time", 2 * 3600, 20 * 3600)
        serial = store.scan("instance_usage").where(pred).aggregate(*self._aggs())
        parallel = store.scan("instance_usage").where(pred).aggregate(
            *self._aggs(), workers=3)
        iu = ds.instance_usage
        t = iu.column("start_time").values
        vals = iu.column("avg_cpu").values[(t >= 2 * 3600) & (t <= 20 * 3600)]
        for result in (serial, parallel):
            assert result["count"] == len(vals)
            assert result["sum(avg_cpu)"] == pytest.approx(vals.sum())
            assert result["min(avg_cpu)"] == pytest.approx(vals.min())
            assert result["max(avg_cpu)"] == pytest.approx(vals.max())
            assert result["mean(avg_cpu)"] == pytest.approx(vals.mean())
            np.testing.assert_array_equal(
                result["histogram(avg_cpu)"],
                np.histogram(np.clip(vals, 0, 1), bins=np.asarray(self.EDGES))[0])

    def test_histogram_partials_merge_by_addition(self):
        aggs = [Agg("histogram", "x", edges=[0, 1, 2])]
        p1 = partial_aggregate(Table({"x": [0.5, 1.5]}), aggs)
        p2 = partial_aggregate(Table({"x": [0.25, 0.75]}), aggs)
        merged = merge_partials([p1, p2], aggs)
        np.testing.assert_array_equal(merged["histogram(x)"], [3, 1])

    def test_empty_match_identities(self, store_dir):
        path, _ = store_dir
        store = open_store(path)
        result = (store.scan("instance_usage")
                       .where(Compare("start_time", ">", 1e12))
                       .aggregate(Agg("count"), Agg("sum", "avg_cpu"),
                                  Agg("min", "avg_cpu"), Agg("mean", "avg_cpu")))
        assert result["count"] == 0
        assert result["sum(avg_cpu)"] == 0.0
        assert result["min(avg_cpu)"] is None
        assert np.isnan(result["mean(avg_cpu)"])

    def test_numeric_aggregate_over_string_column_fails_cleanly(self):
        with pytest.raises(SchemaError, match="string column"):
            partial_aggregate(Table({"tier": ["prod", "beb"]}),
                              [Agg("sum", "tier")])

    def test_agg_validation(self):
        with pytest.raises(ValueError, match="unknown aggregate"):
            Agg("median", "x")
        with pytest.raises(ValueError, match="needs a column"):
            Agg("sum")
        with pytest.raises(ValueError, match="edges"):
            Agg("histogram", "x")

    def test_aggs_are_picklable(self):
        agg = Agg("histogram", "x", edges=[0, 1], alias="h")
        clone = pickle.loads(pickle.dumps(agg))
        assert clone.alias == "h" and clone.edges == (0, 1)


class TestChunkCache:
    def test_hit_miss_counters(self, store_dir):
        path, _ = store_dir
        store = open_store(path)
        scan = store.scan("instance_usage").select("avg_cpu")
        scan.to_table()
        first = store.cache.stats
        misses_after_cold = first.misses
        assert first.hits == 0 and misses_after_cold > 0
        scan.to_table()
        assert store.cache.stats.hits == misses_after_cold
        assert store.cache.stats.misses == misses_after_cold

    def test_lru_eviction(self):
        cache = ChunkCache(capacity=2)
        t = Table({"a": [1]})
        cache.put("k1", t)
        cache.put("k2", t)
        assert cache.get("k1") is t  # k1 now most-recent
        cache.put("k3", t)           # evicts k2
        assert cache.get("k2") is None
        assert cache.get("k1") is t
        assert cache.stats.evictions == 1

    def test_zero_capacity_never_stores(self):
        cache = ChunkCache(capacity=0)
        cache.put("k", Table({"a": [1]}))
        assert len(cache) == 0
        assert cache.get("k") is None

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ChunkCache(capacity=-1)


class TestLazyDataset:
    def test_tables_decode_on_first_access(self, store_dir):
        path, ds = store_dir
        lazy = load_trace(path)
        assert lazy.loaded_tables == []
        assert len(lazy.instance_usage) == len(ds.instance_usage)
        assert lazy.loaded_tables == ["instance_usage"]
        assert "instance_usage" in repr(lazy)

    def test_metadata_round_trips(self, store_dir):
        path, ds = store_dir
        lazy = load_trace(path)
        assert lazy.cell == ds.cell
        assert lazy.era == ds.era
        assert lazy.horizon == ds.horizon
        assert lazy.capacity_cpu == ds.capacity_cpu

    def test_mapping_protocol(self, store_dir):
        path, _ = store_dir
        lazy = load_trace(path)
        assert set(lazy.tables) == set(SCHEMA_2019)
        assert len(lazy.tables) == len(SCHEMA_2019)

    def test_schema_mismatch_reports_all_tables(self, store_dir):
        path, _ = store_dir
        manifest = json.loads((path / "manifest.json").read_text())
        del manifest["tables"]["machine_events"]
        manifest["tables"]["machine_attributes"]["columns"] = [
            {"name": "bogus", "kind": "int"}]
        (path / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError) as err:
            load_trace(path)
        message = str(err.value)
        assert "machine_events" in message
        assert "machine_attributes" in message


class TestTraceIoIntegration:
    def test_save_load_store_format(self, tmp_path):
        ds = _dataset(usage_rows=150)
        save_trace(ds, tmp_path / "t", format="store", chunk_rows=64)
        assert (tmp_path / "t" / "manifest.json").exists()
        back = load_trace(tmp_path / "t")
        np.testing.assert_allclose(
            np.sort(back.instance_usage.column("avg_cpu").values),
            np.sort(ds.instance_usage.column("avg_cpu").values))

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace format"):
            save_trace(_dataset(10), tmp_path / "t", format="parquet")
        with pytest.raises(ValueError, match="unknown trace format"):
            load_trace(tmp_path, format="parquet")

    def test_autodetect_neither_format(self, tmp_path):
        with pytest.raises(SchemaError, match="no trace"):
            load_trace(tmp_path)


class TestStoreAwareAnalysis:
    @pytest.fixture(scope="class")
    def stored_trace(self, trace_2019, tmp_path_factory):
        path = tmp_path_factory.mktemp("analysis") / "s"
        save_trace(trace_2019, path, format="store", chunk_rows=512)
        return open_store(path)

    @pytest.mark.parametrize("workers", [None, 2])
    def test_job_usage_integrals(self, trace_2019, stored_trace, workers):
        expected = job_usage_integrals(trace_2019)
        got = job_usage_integrals_store(stored_trace, workers=workers)
        assert got.column_names == expected.column_names
        for c in expected.column_names:
            if expected.column(c).kind == "str":
                assert got.column(c).values.tolist() == expected.column(c).values.tolist()
            else:
                np.testing.assert_allclose(
                    got.column(c).values.astype(float),
                    expected.column(c).values.astype(float), err_msg=c)

    @pytest.mark.parametrize("quantity", ["usage", "allocation"])
    def test_hourly_tier_series(self, trace_2019, stored_trace, quantity):
        expected = hourly_tier_series(trace_2019, "cpu", quantity)
        got = hourly_tier_series_store(stored_trace, "cpu", quantity)
        assert set(got) == set(expected)
        for tier in expected:
            np.testing.assert_allclose(got[tier], expected[tier], err_msg=tier)

    def test_average_tier_fractions(self, trace_2019, stored_trace):
        expected = average_tier_fractions(trace_2019, "mem")
        got = average_tier_fractions_store(stored_trace, "mem")
        for tier in expected:
            assert got[tier] == pytest.approx(expected[tier])

    def test_alloc_set_ids(self, trace_2019, stored_trace):
        assert alloc_set_ids_store(stored_trace) == alloc_set_ids(trace_2019)


# -- property test: exact value + dtype preservation --------------------------

_KIND_STRATEGIES = {
    "float": st.floats(allow_nan=True, allow_infinity=True, width=64),
    "int": st.integers(min_value=-2**62, max_value=2**62),
    "bool": st.booleans(),
    "str": st.text(max_size=12),
}


@st.composite
def _trace_tables(draw):
    tables = {}
    for name, columns in SCHEMA_2019.items():
        rows = draw(st.integers(min_value=0, max_value=25))
        data = {}
        for column in columns:
            kind = draw(st.sampled_from(sorted(_KIND_STRATEGIES)))
            values = draw(st.lists(_KIND_STRATEGIES[kind],
                                   min_size=rows, max_size=rows))
            if kind == "str":
                data[column] = np.asarray(values, dtype=object)
            else:
                data[column] = np.asarray(values)
        tables[name] = Table(data)
    return tables


class TestStoreRoundTripProperty:
    @settings(max_examples=25, deadline=None)
    @given(tables=_trace_tables(), chunk_rows=st.integers(1, 16))
    def test_store_preserves_values_and_dtypes(self, tmp_path_factory,
                                               tables, chunk_rows):
        ds = TraceDataset(cell="p", era="2019", horizon=100.0,
                          sample_period=1.0, utc_offset_hours=0.0,
                          capacity_cpu=1.0, capacity_mem=1.0,
                          tables=dict(tables))
        path = tmp_path_factory.mktemp("prop") / "s"
        write_store(ds, path, chunk_rows=chunk_rows, cluster_by=None)
        store = open_store(path)
        for name, table in ds.tables.items():
            back = store.read_table(name)
            assert back.column_names == table.column_names
            for c in table.column_names:
                original = table.column(c)
                restored = back.column(c)
                assert restored.kind == original.kind, (name, c)
                if original.kind == "str":
                    assert restored.values.tolist() == original.values.tolist()
                else:
                    np.testing.assert_array_equal(restored.values,
                                                  original.values)
