"""Cache-key stability: the content-address contract of repro.campaign.

Same semantic config -> same key, regardless of serialization noise
(key order, whitespace, 1.0 vs 1); any semantic change (a parameter
value, the seed, the schema version) -> a different key.
"""

import json

import pytest

from repro.campaign import canonical_json, normalize, parse_spec, point_key


BASE_PARAMS = {
    "era": "2019", "cells": ["d"], "machines": 16, "hours": 4.0,
    "scale": 0.012, "sample_period": 300.0,
    "overcommit_cpu": 1.5, "overcommit_mem": None,
}


class TestNormalize:
    def test_dict_key_order_is_irrelevant(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert canonical_json(a) == canonical_json(b)

    def test_integral_floats_collapse_to_ints(self):
        assert normalize(1.0) == 1
        assert isinstance(normalize(1.0), int)
        assert canonical_json({"machines": 16.0}) == \
            canonical_json({"machines": 16})

    def test_non_integral_floats_survive(self):
        assert normalize(1.5) == 1.5
        assert canonical_json(1.5) != canonical_json(1)

    def test_bools_are_not_ints(self):
        assert canonical_json(True) != canonical_json(1)
        assert normalize(True) is True

    def test_list_order_matters(self):
        assert canonical_json([1, 2]) != canonical_json([2, 1])

    def test_nested_structures(self):
        a = {"grid": {"b": [1.0, 2], "a": 3}, "s": "x"}
        b = {"s": "x", "grid": {"a": 3, "b": [1, 2.0]}}
        assert canonical_json(a) == canonical_json(b)

    def test_nan_and_inf_rejected(self):
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                normalize(bad)

    def test_unsupported_types_rejected(self):
        with pytest.raises(ValueError):
            normalize({"x": object()})
        with pytest.raises(ValueError):
            normalize({1: "non-string key"})


class TestPointKey:
    def test_stable_across_equivalent_serializations(self):
        reordered = dict(reversed(list(BASE_PARAMS.items())))
        numerically_equivalent = dict(BASE_PARAMS,
                                      machines=16.0, hours=4, scale=0.012)
        assert point_key(BASE_PARAMS, 0) == point_key(reordered, 0)
        assert point_key(BASE_PARAMS, 0) == \
            point_key(numerically_equivalent, 0)

    def test_any_semantic_field_change_changes_key(self):
        base = point_key(BASE_PARAMS, 0)
        for name, value in [("machines", 17), ("hours", 4.5),
                            ("scale", 0.013), ("cells", ["a"]),
                            ("era", "2011"), ("overcommit_cpu", 1.6),
                            ("overcommit_mem", 1.1),
                            ("sample_period", 600.0)]:
            changed = dict(BASE_PARAMS)
            changed[name] = value
            assert point_key(changed, 0) != base, name

    def test_seed_changes_key(self):
        assert point_key(BASE_PARAMS, 0) != point_key(BASE_PARAMS, 1)

    def test_schema_version_changes_key(self):
        assert point_key(BASE_PARAMS, 0) != \
            point_key(BASE_PARAMS, 0, schema_version="repro.campaign.point/999")

    def test_key_is_short_stable_hex(self):
        key = point_key(BASE_PARAMS, 0)
        assert len(key) == 16
        int(key, 16)  # hex-parseable


class TestSpecLevelStability:
    """Whitespace / formatting of the spec JSON never reaches the keys."""

    SPEC = {
        "campaign": "stability",
        "base": {"machines": 12, "hours": 2.0, "cells": ["d"]},
        "grid": {"overcommit_cpu": [1.2, 1.9]},
        "seeds": [0, 1],
    }

    def _keys(self, payload: dict):
        return [p.key for p in parse_spec(payload).points]

    def test_reserialized_spec_same_keys(self):
        compact = json.loads(json.dumps(self.SPEC, separators=(",", ":")))
        pretty = json.loads(json.dumps(self.SPEC, indent=4,
                                       sort_keys=True))
        assert self._keys(compact) == self._keys(pretty)

    def test_explicit_default_same_keys_as_omitted(self):
        # Spelling a default out in `base` resolves to the same points.
        explicit = {**self.SPEC,
                    "base": {**self.SPEC["base"], "era": "2019",
                             "scale": 0.012}}
        assert self._keys(explicit) == self._keys(self.SPEC)

    def test_float_int_equivalence_in_grid(self):
        a = {**self.SPEC, "grid": {"overcommit_cpu": [1.0, 2.0]}}
        b = {**self.SPEC, "grid": {"overcommit_cpu": [1, 2]}}
        assert self._keys(a) == self._keys(b)

    def test_changed_seed_list_changes_point_keys(self):
        other = {**self.SPEC, "seeds": [2, 3]}
        assert set(self._keys(other)).isdisjoint(self._keys(self.SPEC))
