"""Unit tests for scheduler policy, batch queue, dependencies, autopilot, usage."""

import numpy as np
import pytest

from repro.sim import Machine, Resources, Tier
from repro.sim.autopilot import AutopilotMode, AutopilotParams, limit_trajectory, peak_slack
from repro.sim.batch import BatchParams, BatchQueue
from repro.sim.dependencies import DependencyManager
from repro.sim.entities import Collection, CollectionType, EndReason, Instance
from repro.sim.scheduler import PendingQueue, PlacementPolicy, SchedulerParams
from repro.sim.usage import UsageModel, UsageModelParams, diurnal_rate_factor


def _collection(tier=Tier.PROD, cid=1, n=0, cpu=0.1, mem=0.1):
    c = Collection(collection_id=cid, collection_type=CollectionType.JOB,
                   priority=200, tier=tier, user="u", submit_time=0.0)
    for i in range(n):
        c.instances.append(Instance(collection=c, index=i,
                                    request=Resources(cpu, mem)))
    return c


class TestPlacementPolicy:
    def _policy(self, **kw):
        return PlacementPolicy(SchedulerParams(**kw), np.random.default_rng(0))

    def test_finds_feasible_machine(self):
        machines = [Machine(i, Resources(0.5, 0.5)) for i in range(10)]
        policy = self._policy(overcommit_cpu=1.0, overcommit_mem=1.0)
        assert policy.find_machine(machines, Resources(0.3, 0.3)) is not None

    def test_none_when_infeasible(self):
        machines = [Machine(i, Resources(0.2, 0.2)) for i in range(10)]
        policy = self._policy(overcommit_cpu=1.0, overcommit_mem=1.0)
        assert policy.find_machine(machines, Resources(0.5, 0.1)) is None

    def test_full_scan_rescues_rare_fit(self):
        # Only 1 of 200 machines fits; sampling alone would often miss it.
        machines = [Machine(i, Resources(0.1, 0.1)) for i in range(199)]
        machines.append(Machine(199, Resources(1.0, 1.0)))
        policy = self._policy(overcommit_cpu=1.0, overcommit_mem=1.0, candidates=4)
        found = policy.find_machine(machines, Resources(0.5, 0.5))
        assert found is not None and found.machine_id == 199

    def test_best_fit_prefers_tighter_machine(self):
        near_full = Machine(0, Resources(1.0, 1.0))
        near_full.allocated = Resources(0.85, 0.85)
        near_full.instances = set()
        empty = Machine(1, Resources(1.0, 1.0))
        policy = self._policy(overcommit_cpu=1.0, overcommit_mem=1.0, candidates=16)
        found = policy.find_machine([near_full, empty], Resources(0.1, 0.1))
        assert found is near_full

    def test_preemption_finds_victims(self):
        m = Machine(0, Resources(1.0, 1.0))
        victim = _collection(Tier.FREE, 1, n=1, cpu=0.9, mem=0.9).instances[0]
        m.place(victim)
        policy = self._policy(overcommit_cpu=1.0, overcommit_mem=1.0)
        found = policy.find_preemption([m], Resources(0.5, 0.5), Tier.PROD.rank)
        assert found is not None
        machine, victims = found
        assert machine is m and victims == [victim]

    def test_preemption_ignores_equal_or_higher_tiers(self):
        m = Machine(0, Resources(1.0, 1.0))
        prod = _collection(Tier.PROD, 1, n=1, cpu=0.9, mem=0.9).instances[0]
        m.place(prod)
        policy = self._policy(overcommit_cpu=1.0, overcommit_mem=1.0)
        assert policy.find_preemption([m], Resources(0.5, 0.5), Tier.PROD.rank) is None

    def test_preemption_skips_too_small_machines(self):
        m = Machine(0, Resources(0.3, 0.3))
        victim = _collection(Tier.FREE, 1, n=1, cpu=0.2, mem=0.2).instances[0]
        m.place(victim)
        policy = self._policy(overcommit_cpu=1.0, overcommit_mem=1.0)
        assert policy.find_preemption([m], Resources(0.5, 0.5), Tier.PROD.rank) is None

    def test_empty_fleet(self):
        policy = self._policy()
        assert policy.find_machine([], Resources(0.1, 0.1)) is None
        assert policy.find_preemption([], Resources(0.1, 0.1), 3) is None


class TestPendingQueue:
    def test_priority_order_then_fifo(self):
        q = PendingQueue()
        beb = _collection(Tier.BEB, 1, n=2).instances
        prod = _collection(Tier.PROD, 2, n=1).instances
        q.push(beb[0])
        q.push(prod[0])
        q.push(beb[1])
        batch = q.pop_batch(10)
        assert batch[0].tier is Tier.PROD
        assert batch[1] is beb[0] and batch[2] is beb[1]

    def test_pop_batch_limit(self):
        q = PendingQueue()
        for inst in _collection(Tier.BEB, 1, n=5).instances:
            q.push(inst)
        assert len(q.pop_batch(2)) == 2
        assert len(q) == 3

    def test_remove_dead(self):
        q = PendingQueue()
        c = _collection(Tier.BEB, 1, n=2)
        for inst in c.instances:
            q.push(inst)
        c.end_reason = EndReason.KILL
        q.remove_dead()
        assert len(q) == 0

    def test_strict_tier_order_all_tiers(self):
        # Dispatch visits rank buckets strictly highest-rank-first, no
        # matter the arrival order of the tiers.
        q = PendingQueue()
        arrival = [Tier.BEB, Tier.MONITORING, Tier.FREE, Tier.PROD, Tier.MID]
        for cid, tier in enumerate(arrival, start=1):
            q.push(_collection(tier, cid, n=1).instances[0])
        ranks = [inst.tier.rank for inst in q.pop_batch(10)]
        assert ranks == sorted(ranks, reverse=True)

    def test_fifo_within_tier_across_collections(self):
        # Within one rank bucket, dispatch order is exactly arrival
        # order — even when pushes from different collections interleave.
        q = PendingQueue()
        a = _collection(Tier.BEB, 1, n=3).instances
        b = _collection(Tier.BEB, 2, n=3).instances
        pushed = [a[0], b[0], a[1], b[1], a[2], b[2]]
        for inst in pushed:
            q.push(inst)
        assert q.pop_batch(10) == pushed

    def test_pop_batch_spans_rank_boundary(self):
        # A limit cutting across buckets takes the whole higher bucket
        # first; the remainder keeps FIFO order for the next round.
        q = PendingQueue()
        prod = _collection(Tier.PROD, 1, n=2).instances
        beb = _collection(Tier.BEB, 2, n=3).instances
        for inst in beb + prod:
            q.push(inst)
        assert q.pop_batch(3) == [prod[0], prod[1], beb[0]]
        assert q.pop_batch(10) == [beb[1], beb[2]]
        assert len(q) == 0

    def test_remove_dead_keeps_live_fifo_order(self):
        q = PendingQueue()
        dead = _collection(Tier.BEB, 1, n=2)
        live = _collection(Tier.BEB, 2, n=2)
        q.push(dead.instances[0])
        q.push(live.instances[0])
        q.push(dead.instances[1])
        q.push(live.instances[1])
        dead.end_reason = EndReason.KILL
        q.remove_dead()
        assert len(q) == 2
        assert q.pop_batch(10) == list(live.instances)

    def test_dispatch_order_matches_sort_reference(self):
        # Randomized pushes: pop order must equal the old implementation's
        # sort key (-tier.rank, arrival sequence).
        rng = np.random.default_rng(8)
        tiers = [Tier.FREE, Tier.BEB, Tier.MID, Tier.PROD, Tier.MONITORING]
        q = PendingQueue()
        pushed = []
        for cid in range(40):
            tier = tiers[int(rng.integers(0, len(tiers)))]
            inst = _collection(tier, cid, n=1).instances[0]
            q.push(inst)
            pushed.append(inst)
        expected = [inst for _, inst in sorted(
            enumerate(pushed), key=lambda p: (-p[1].tier.rank, p[0]))]
        got = []
        while len(q):
            got.extend(q.pop_batch(7))
        assert got == expected

    def test_pop_batch_zero_and_empty(self):
        q = PendingQueue()
        assert q.pop_batch(0) == []
        assert q.pop_batch(5) == []
        q.push(_collection(Tier.BEB, 1, n=1).instances[0])
        assert q.pop_batch(0) == []
        assert len(q) == 1


class TestBatchQueue:
    def _queue(self, cpu_target=0.5, mem_target=0.5):
        return BatchQueue(BatchParams(beb_cpu_allocation_target=cpu_target,
                                      beb_mem_allocation_target=mem_target),
                          Resources(10.0, 10.0))

    def test_admits_within_budget(self):
        q = self._queue()
        c = _collection(Tier.BEB, 1, n=4, cpu=0.5, mem=0.5)  # 2.0 total
        q.enqueue(c)
        assert q.admit_ready() == [c]
        assert q.beb_allocated.cpu == pytest.approx(2.0)

    def test_holds_when_budget_full(self):
        q = self._queue()
        first = _collection(Tier.BEB, 1, n=8, cpu=0.6, mem=0.6)  # 4.8 of 5.0
        second = _collection(Tier.BEB, 2, n=2, cpu=0.5, mem=0.5)
        q.enqueue(first)
        q.enqueue(second)
        assert q.admit_ready() == [first]
        assert len(q) == 1

    def test_release_frees_budget(self):
        q = self._queue()
        first = _collection(Tier.BEB, 1, n=8, cpu=0.6, mem=0.6)
        second = _collection(Tier.BEB, 2, n=2, cpu=0.5, mem=0.5)
        q.enqueue(first)
        q.enqueue(second)
        q.admit_ready()
        q.release(first)
        assert q.admit_ready() == [second]

    def test_oversized_head_admitted_when_empty(self):
        q = self._queue()
        whale = _collection(Tier.BEB, 1, n=20, cpu=0.9, mem=0.9)  # 18 > budget 5
        q.enqueue(whale)
        assert q.admit_ready() == [whale]

    def test_dead_collections_skipped(self):
        q = self._queue()
        c = _collection(Tier.BEB, 1, n=1)
        c.end_reason = EndReason.KILL
        q.enqueue(c)
        assert q.admit_ready() == []
        assert len(q) == 0

    def test_peek(self):
        q = self._queue()
        assert q.peek_waiting() is None
        c = _collection(Tier.BEB, 1, n=1)
        q.enqueue(c)
        assert q.peek_waiting() is c


class TestDependencies:
    def test_cascade_returns_live_children(self):
        deps = DependencyManager()
        parent = _collection(cid=1)
        child = _collection(cid=2)
        child.parent_id = 1
        deps.register(child)
        assert deps.on_termination(parent) == [child]

    def test_dead_children_excluded(self):
        deps = DependencyManager()
        parent = _collection(cid=1)
        child = _collection(cid=2)
        child.parent_id = 1
        child.end_reason = EndReason.FINISH
        deps.register(child)
        assert deps.on_termination(parent) == []

    def test_no_parent_no_registration(self):
        deps = DependencyManager()
        orphan = _collection(cid=3)
        deps.register(orphan)
        assert deps.children_of(3) == []

    def test_grandchildren_via_repeated_calls(self):
        deps = DependencyManager()
        a, b, c = _collection(cid=1), _collection(cid=2), _collection(cid=3)
        b.parent_id, c.parent_id = 1, 2
        deps.register(b)
        deps.register(c)
        first = deps.on_termination(a)
        assert first == [b]
        assert deps.on_termination(b) == [c]

    def test_on_termination_pops(self):
        deps = DependencyManager()
        parent, child = _collection(cid=1), _collection(cid=2)
        child.parent_id = 1
        deps.register(child)
        deps.on_termination(parent)
        assert deps.on_termination(parent) == []


class TestAutopilot:
    def test_none_mode_keeps_limit(self):
        usage = np.asarray([0.1, 0.2, 0.1])
        limits = limit_trajectory(AutopilotMode.NONE, 1.0, usage)
        assert limits.tolist() == [1.0, 1.0, 1.0]

    def test_fully_shrinks_towards_peak(self):
        usage = np.full(50, 0.1)
        limits = limit_trajectory(AutopilotMode.FULLY, 1.0, usage)
        assert limits[0] == 1.0
        assert limits[-1] == pytest.approx(0.11, abs=0.01)  # peak * margin

    def test_constrained_floor_binds(self):
        usage = np.full(50, 0.1)
        params = AutopilotParams(min_limit_fraction_constrained=0.55)
        limits = limit_trajectory(AutopilotMode.CONSTRAINED, 1.0, usage, params)
        assert limits[-1] == pytest.approx(0.55)

    def test_limits_never_below_current_usage(self):
        rng = np.random.default_rng(0)
        usage = rng.uniform(0.05, 0.6, 200)
        limits = limit_trajectory(AutopilotMode.FULLY, 1.0, usage)
        assert (limits >= usage - 1e-12).all()

    def test_limits_never_exceed_initial(self):
        usage = np.full(20, 0.2)
        limits = limit_trajectory(AutopilotMode.FULLY, 1.0, usage)
        assert (limits <= 1.0).all()

    def test_causality(self):
        # Changing a later sample must not change earlier limits.
        base = np.full(30, 0.1)
        bumped = base.copy()
        bumped[20] = 0.9
        a = limit_trajectory(AutopilotMode.FULLY, 1.0, base)
        b = limit_trajectory(AutopilotMode.FULLY, 1.0, bumped)
        assert a[:20].tolist() == b[:20].tolist()

    def test_peak_slack_formula(self):
        slack = peak_slack(np.asarray([1.0, 0.5]), np.asarray([0.4, 0.5]))
        assert slack.tolist() == [0.6, 0.0]

    def test_peak_slack_zero_limit(self):
        assert peak_slack(np.asarray([0.0]), np.asarray([0.0])).tolist() == [0.0]

    def test_peak_slack_shape_mismatch(self):
        with pytest.raises(ValueError):
            peak_slack(np.zeros(2), np.zeros(3))

    def test_empty_usage(self):
        assert len(limit_trajectory(AutopilotMode.FULLY, 1.0, np.empty(0))) == 0


class TestUsageModel:
    def _model(self, period=300.0):
        return UsageModel(UsageModelParams(), sample_period=period)

    def test_window_grid_alignment(self):
        model = self._model()
        starts = model.window_starts(450.0, 1000.0)
        assert starts.tolist() == [300.0, 600.0, 900.0]

    def test_empty_interval(self):
        model = self._model()
        assert len(model.window_starts(100.0, 100.0)) == 0

    def test_sample_interval_columns_and_lengths(self):
        model = self._model()
        rng = np.random.default_rng(0)
        out = model.sample_interval(rng, 0.0, 1500.0, 0.4, 0.5, 0.5, 0.6)
        assert len(out["window_start"]) == 5
        assert set(out) == {"window_start", "duration", "avg_cpu", "max_cpu",
                            "avg_mem", "max_mem"}

    def test_partial_windows_have_short_durations(self):
        model = self._model()
        rng = np.random.default_rng(0)
        out = model.sample_interval(rng, 100.0, 500.0, 0.4, 0.5, 0.5, 0.6)
        assert out["duration"][0] == pytest.approx(200.0)
        assert out["duration"][-1] == pytest.approx(200.0)

    def test_memory_hard_capped_at_limit(self):
        model = self._model()
        rng = np.random.default_rng(1)
        out = model.sample_interval(rng, 0.0, 86400.0, 0.4, 0.5, 0.9, 0.95)
        assert (out["avg_mem"] <= 0.5 + 1e-12).all()
        assert (out["max_mem"] <= 0.5 + 1e-12).all()

    def test_cpu_can_exceed_limit_but_bounded(self):
        model = self._model()
        rng = np.random.default_rng(2)
        out = model.sample_interval(rng, 0.0, 86400.0, 0.4, 0.5, 0.95, 0.5)
        assert (out["max_cpu"] <= 0.4 * 1.15 + 1e-12).all()

    def test_max_at_least_avg(self):
        model = self._model()
        rng = np.random.default_rng(3)
        out = model.sample_interval(rng, 0.0, 86400.0, 0.4, 0.5, 0.5, 0.5)
        assert (out["max_cpu"] >= out["avg_cpu"] - 1e-12).all()
        assert (out["max_mem"] >= out["avg_mem"] - 1e-12).all()

    def test_mean_usage_near_fraction(self):
        model = UsageModel(UsageModelParams(diurnal_amplitude=0.0), 300.0)
        rng = np.random.default_rng(4)
        out = model.sample_interval(rng, 0.0, 30 * 86400.0, 1.0, 1.0, 0.5, 0.5)
        assert float(out["avg_cpu"].mean()) == pytest.approx(0.5, rel=0.05)

    def test_bad_period(self):
        with pytest.raises(ValueError):
            UsageModel(sample_period=0.0)

    def test_diurnal_rate_factor_peaks_afternoon(self):
        afternoon = diurnal_rate_factor(15 * 3600.0, 0.0)
        night = diurnal_rate_factor(3 * 3600.0, 0.0)
        assert afternoon > night

    def test_diurnal_respects_utc_offset(self):
        # 7am UTC is 3pm in Singapore (UTC+8).
        assert (diurnal_rate_factor(7 * 3600.0, 8.0)
                == pytest.approx(diurnal_rate_factor(15 * 3600.0, 0.0)))
