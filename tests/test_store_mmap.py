"""The zero-copy mmap read path: byte-equality with the buffered path,
read-only view semantics, default plumbing, and the worker-pool path.

The contract under test: ``use_mmap=True`` changes *how* bytes reach
numpy (read-only views over a shared map instead of copied buffers) and
nothing else — every decoded value, scan result and aggregate is
byte-identical to the buffered reader.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.store import (
    Agg,
    Compare,
    open_store,
    read_chunk,
    write_chunk,
    write_store,
)
from repro.store.format import get_default_mmap, set_default_mmap
from repro.table import Table
from repro.trace import load_trace
from repro.trace.dataset import SCHEMA_2019, TraceDataset
from repro.util.errors import SchemaError

from tests.test_store import _dataset


@pytest.fixture()
def chunk_path(tmp_path):
    table = Table({
        "f": np.array([1.5, float("inf"), float("nan"), -0.0]),
        "i": np.array([1, -2, 2**62, 0]),
        "b": np.array([True, False, True, True]),
        "s": np.array(["", "héllo", "x" * 100, "tab\tsep"], dtype=object),
    })
    path = tmp_path / "chunk.rsc"
    write_chunk(table, path)
    return path, table


def assert_tables_byte_equal(a: Table, b: Table) -> None:
    assert a.column_names == b.column_names
    for name in a.column_names:
        ca, cb = a.column(name).values, b.column(name).values
        assert ca.dtype == cb.dtype
        if ca.dtype == object:
            assert ca.tolist() == cb.tolist()
        else:
            assert ca.tobytes() == cb.tobytes()


class TestMappedChunkReads:
    def test_byte_equal_to_buffered(self, chunk_path):
        path, original = chunk_path
        buffered = read_chunk(path, use_mmap=False)
        mapped = read_chunk(path, use_mmap=True)
        assert_tables_byte_equal(buffered, mapped)
        assert_tables_byte_equal(original, mapped)

    def test_projection_byte_equal(self, chunk_path):
        path, _ = chunk_path
        buffered = read_chunk(path, columns=["s", "f"], use_mmap=False)
        mapped = read_chunk(path, columns=["s", "f"], use_mmap=True)
        assert mapped.column_names == ["s", "f"]
        assert_tables_byte_equal(buffered, mapped)

    def test_numeric_views_are_readonly_zero_copy(self, chunk_path):
        path, _ = chunk_path
        mapped = read_chunk(path, use_mmap=True)
        for name in ("f", "i"):
            values = mapped.column(name).values
            assert not values.flags.writeable
            assert not values.flags.owndata  # a view over the map
            with pytest.raises((ValueError, RuntimeError)):
                values[0] = 0
        # The buffered path is read-only too (frombuffer over immutable
        # bytes) but each payload was copied out of the file; the mmap
        # path's distinguishing property is the borrowed buffer above.
        assert not read_chunk(path, use_mmap=False).column("f").values.flags.writeable

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bogus.rsc"
        path.write_bytes(b"NOTASTORECHUNK--" * 4)
        with pytest.raises(SchemaError, match="bad magic"):
            read_chunk(path, use_mmap=True)

    def test_unknown_projection_column(self, chunk_path):
        path, _ = chunk_path
        with pytest.raises(SchemaError, match="no column"):
            read_chunk(path, columns=["nope"], use_mmap=True)

    def test_module_default_round_trip(self, chunk_path):
        path, _ = chunk_path
        before = get_default_mmap()
        try:
            set_default_mmap(True)
            assert get_default_mmap()
            values = read_chunk(path).column("f").values
            assert not values.flags.writeable  # default routed to mmap
        finally:
            set_default_mmap(before)
        assert get_default_mmap() == before


class TestMappedStoreReads:
    @pytest.fixture()
    def store_pair(self, tmp_path):
        ds = _dataset(usage_rows=1000)
        write_store(ds, tmp_path / "s", chunk_rows=128)
        return (open_store(tmp_path / "s", use_mmap=False),
                open_store(tmp_path / "s", use_mmap=True))

    def test_scan_results_byte_equal(self, store_pair):
        buffered, mapped = store_pair
        pred = Compare("avg_cpu", ">", 0.5)
        a = buffered.scan("instance_usage").where(pred).to_table()
        b = mapped.scan("instance_usage").where(pred).to_table()
        assert_tables_byte_equal(a, b)

    def test_aggregates_byte_equal_serial_and_workers(self, store_pair):
        buffered, mapped = store_pair
        def agg(store, workers=None):
            return (store.scan("instance_usage")
                    .aggregate(Agg("sum", "avg_cpu"), Agg("count"),
                               workers=workers))
        expected = agg(buffered)
        assert agg(mapped) == expected
        # Worker processes each map the chunk themselves (the task
        # tuple carries the store's mmap flag across the fork).
        assert agg(mapped, workers=2) == expected

    def test_load_trace_use_mmap(self, tmp_path):
        from repro.trace import save_trace
        ds = _dataset(usage_rows=500)
        save_trace(ds, tmp_path / "t", format="store")
        eager = load_trace(tmp_path / "t", use_mmap=False)
        lazy = load_trace(tmp_path / "t", use_mmap=True)
        assert_tables_byte_equal(eager.tables["instance_usage"],
                                 lazy.tables["instance_usage"])

    def test_store_resolves_default_at_open_time(self, tmp_path):
        ds = _dataset(usage_rows=200)
        write_store(ds, tmp_path / "s", chunk_rows=64)
        before = get_default_mmap()
        try:
            set_default_mmap(True)
            store = open_store(tmp_path / "s")
            assert store.use_mmap
            # Flipping the default later must not change an open store,
            # and its reads stay byte-identical to a buffered store.
            set_default_mmap(False)
            assert store.use_mmap
            assert not open_store(tmp_path / "s").use_mmap
            assert_tables_byte_equal(
                store.scan("instance_usage").to_table(),
                open_store(tmp_path / "s", use_mmap=False)
                .scan("instance_usage").to_table())
        finally:
            set_default_mmap(before)


EMPTY_TABLES = {name: Table({c: [] for c in cols})
                for name, cols in SCHEMA_2019.items()}


def test_empty_tables_map_cleanly(tmp_path):
    ds = TraceDataset(cell="t", era="2019", horizon=10.0, sample_period=1.0,
                      utc_offset_hours=0.0, capacity_cpu=1.0,
                      capacity_mem=1.0, tables=dict(EMPTY_TABLES))
    write_store(ds, tmp_path / "s", chunk_rows=16)
    store = open_store(tmp_path / "s", use_mmap=True)
    assert len(store.scan("instance_events").to_table()) == 0
