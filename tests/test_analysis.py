"""Tests for the analysis modules against simulated traces.

These check structural correctness (accounting identities, orderings,
ranges) rather than paper point values — EXPERIMENTS.md and the
benchmark harness own the paper-vs-measured comparison at full scale.
"""

import numpy as np
import pytest

from repro.analysis import (
    allocation,
    allocsets,
    autoscaling,
    consumption,
    correlation,
    machine_util,
    machines,
    report,
    sched_delay,
    submission,
    summary,
    tasks_per_job,
    terminations,
    transitions,
    utilization,
)
from repro.analysis.common import (
    TIER_ORDER,
    alloc_set_ids,
    hourly_tier_series,
    job_usage_integrals,
)
from repro.util.timeutil import HOUR_SECONDS


class TestCommon:
    def test_alloc_set_ids(self, trace_2019):
        ids = alloc_set_ids(trace_2019)
        assert ids  # the 2019 workload creates alloc sets
        kinds = dict(zip(
            trace_2019.collection_events.column("collection_id").values.tolist(),
            trace_2019.collection_events.column("collection_type").values.tolist(),
        ))
        assert all(kinds[i] == "alloc_set" for i in ids)

    def test_job_integrals_conserve_total_usage(self, trace_2019):
        iu = trace_2019.instance_usage
        total = float((iu.column("avg_cpu").values
                       * iu.column("duration").values).sum()) / HOUR_SECONDS
        table = job_usage_integrals(trace_2019, include_alloc_sets=True)
        assert float(table.column("ncu_hours").sum()) == pytest.approx(total, rel=1e-9)

    def test_job_integrals_exclude_alloc_sets_by_default(self, trace_2019):
        with_allocs = job_usage_integrals(trace_2019, include_alloc_sets=True)
        without = job_usage_integrals(trace_2019)
        assert len(without) < len(with_allocs)

    def test_hourly_series_shape_and_range(self, trace_2019):
        series = hourly_tier_series(trace_2019, "cpu", "usage")
        n_hours = int(trace_2019.horizon_hours)
        assert set(series) == set(TIER_ORDER)
        for values in series.values():
            assert len(values) == n_hours
            assert (values >= 0).all()

    def test_usage_below_allocation(self, trace_2019):
        for resource in ("cpu", "mem"):
            usage = sum(hourly_tier_series(trace_2019, resource, "usage").values())
            alloc = sum(hourly_tier_series(trace_2019, resource, "allocation").values())
            # Hour-by-hour, usage should not exceed allocated limits by
            # more than CPU work-conserving slack.
            assert (usage <= alloc * 1.2 + 0.05).all()

    def test_bad_arguments(self, trace_2019):
        with pytest.raises(ValueError):
            hourly_tier_series(trace_2019, "disk", "usage")
        with pytest.raises(ValueError):
            hourly_tier_series(trace_2019, "cpu", "wishes")


class TestUtilization:
    def test_total_fraction_sane(self, trace_2019):
        total = utilization.total_usage_fraction(trace_2019, "cpu")
        assert 0.1 < total < 1.0

    def test_mean_across_cells_matches_single(self, trace_2019):
        single = utilization.usage_timeseries(trace_2019, "cpu")
        mean = utilization.mean_usage_timeseries([trace_2019], "cpu")
        for tier in single:
            np.testing.assert_allclose(single[tier], mean[tier])

    def test_by_cell_keys(self, trace_2019):
        out = utilization.usage_by_cell([trace_2019], "cpu")
        assert list(out) == [trace_2019.cell]

    def test_stacked_rows(self, trace_2019):
        rows = utilization.stacked_rows(utilization.usage_timeseries(trace_2019))
        assert rows[0]["total"] == pytest.approx(
            sum(rows[0][t] for t in TIER_ORDER))

    def test_empty_trace_list_rejected(self):
        with pytest.raises(ValueError):
            utilization.mean_usage_timeseries([], "cpu")


class TestAllocation:
    def test_allocation_exceeds_usage(self, trace_2019):
        for resource in ("cpu", "mem"):
            alloc = allocation.total_allocation_fraction(trace_2019, resource)
            used = utilization.total_usage_fraction(trace_2019, resource)
            assert alloc > used

    def test_overcommit_ratio_keys(self, trace_2019):
        ratios = allocation.overcommit_ratio(trace_2019)
        assert set(ratios) == {"cpu", "mem"}

    def test_2011_cpu_overcommitted_more_than_mem(self, trace_2011):
        ratios = allocation.overcommit_ratio(trace_2011)
        assert ratios["cpu"] > ratios["mem"]


class TestMachineUtil:
    def test_snapshot_window_aligned(self, trace_2019):
        w = machine_util.snapshot_window_start(trace_2019)
        assert w % trace_2019.sample_period == 0
        assert 0 <= w < trace_2019.horizon

    def test_ccdf_covers_all_machines(self, trace_2019):
        ccdf = machine_util.machine_utilization_ccdf(trace_2019, "cpu")
        assert ccdf.n_samples == len(trace_2019.machine_attributes)

    def test_utilization_in_unit_range(self, trace_2019):
        w = machine_util.snapshot_window_start(trace_2019)
        values = machine_util.machine_utilization_at(trace_2019, w, "cpu")
        assert all(0.0 <= v <= 1.2 for v in values.values())

    def test_summary_fields(self, trace_2019):
        s = machine_util.summarize_machine_utilization(trace_2019, "mem")
        assert s.cell == trace_2019.cell
        assert 0 <= s.median <= 1.2
        assert 0 <= s.fraction_above_80pct <= 1


class TestTransitions:
    def test_pending_to_running_dominates(self, trace_2019):
        counts = transitions.instance_transitions(trace_2019)
        assert counts[("PENDING", "RUNNING")] > 0
        assert counts[("NONE", "PENDING")] > 0

    def test_batch_jobs_visit_queued(self, trace_2019):
        counts = transitions.collection_transitions(trace_2019)
        assert counts[("PENDING", "QUEUED")] > 0
        assert counts[("QUEUED", "PENDING")] > 0

    def test_table_sorted_descending(self, trace_2019):
        rows = transitions.transition_table(trace_2019)
        totals = [r[2] + r[3] for r in rows]
        assert totals == sorted(totals, reverse=True)
        assert all(t > 0 for t in totals)


class TestSubmission:
    def test_counts_exclude_alloc_sets(self, trace_2019):
        ce = trace_2019.collection_events
        n_job_submits = int(((ce.column("type").values == "SUBMIT")
                             & (ce.column("collection_type").values == "job")).sum())
        counts = submission.job_submission_counts(trace_2019)
        assert counts.sum() <= n_job_submits  # warm-up hour dropped

    def test_all_at_least_new(self, trace_2019):
        new = submission.task_submission_counts(trace_2019, "new")
        all_tasks = submission.task_submission_counts(trace_2019, "all")
        assert (all_tasks >= new).all()

    def test_summary_ratio_nonnegative(self, trace_2019):
        s = submission.summarize_submissions(trace_2019)
        assert s.resubmit_to_new_ratio >= 0

    def test_growth_factor_structure(self, trace_2011, trace_2019):
        growth = submission.growth_factors(trace_2011, [trace_2019])
        assert set(growth) == {
            "mean_job_rate_growth", "median_job_rate_growth",
            "median_all_task_rate_growth", "resubmit_ratio_2011",
            "resubmit_ratio_2019",
        }

    def test_bad_which(self, trace_2019):
        with pytest.raises(ValueError):
            submission.task_submission_counts(trace_2019, "some")


class TestSchedDelay:
    def test_delays_nonnegative(self, trace_2019):
        delays = sched_delay.scheduling_delays(trace_2019).column("delay").values
        assert len(delays) > 0
        assert (delays >= 0).all()

    def test_tier_ccdfs_present(self, trace_2019):
        ccdfs = sched_delay.delay_ccdf_by_tier([trace_2019])
        assert set(ccdfs) <= set(TIER_ORDER)
        assert "prod" in ccdfs

    def test_prod_not_slower_than_beb_median(self, trace_2019):
        ccdfs = sched_delay.delay_ccdf_by_tier([trace_2019])
        if "beb" in ccdfs and "prod" in ccdfs:
            prod = ccdfs["prod"].quantile_of_exceedance(0.5)
            beb = ccdfs["beb"].quantile_of_exceedance(0.5)
            assert prod <= beb + 5.0

    def test_median_positive(self, trace_2019):
        assert sched_delay.median_delay(trace_2019) >= 0


class TestTasksPerJob:
    def test_widths_at_least_one(self, trace_2019):
        for values in tasks_per_job.tasks_per_job(trace_2019).values():
            assert (values >= 1).all()

    def test_beb_wider_than_prod(self, trace_2019):
        pct = tasks_per_job.width_percentiles([trace_2019], (95,))
        if "beb" in pct and "prod" in pct:
            assert pct["beb"][95] >= pct["prod"][95]


class TestConsumption:
    def test_report_heavy_tailed(self, traces_2019):
        rep = consumption.consumption_report(traces_2019, "cpu")
        assert rep.summary.squared_cv > 3.0
        assert rep.summary.top_1pct_share > 0.2

    def test_mem_report(self, traces_2019):
        rep = consumption.consumption_report(traces_2019, "mem")
        assert rep.summary.n > 100

    def test_ccdf_spans_orders_of_magnitude(self, traces_2019):
        ccdf = consumption.usage_ccdf(traces_2019, "cpu")
        assert ccdf.xs.max() / ccdf.xs.min() > 1e4

    def test_table2_keys(self, traces_2011, traces_2019):
        out = consumption.table2(traces_2011, traces_2019)
        assert set(out) == {"2011 cpu", "2019 cpu", "2011 mem", "2019 mem"}

    def test_bad_resource(self, traces_2019):
        with pytest.raises(ValueError):
            consumption.consumption_report(traces_2019, "disk")


class TestCorrelation:
    def test_positive_correlation(self, traces_2019):
        rep = correlation.cpu_mem_correlation(traces_2019, bucket_width=0.5,
                                              min_bucket_count=2)
        assert rep.pearson_r > 0.5
        assert rep.n_jobs > 100


class TestAutoscaling:
    def test_modes_present(self, traces_2019):
        ccdfs = autoscaling.slack_ccdf_by_mode(traces_2019)
        assert set(ccdfs) == {"fully", "constrained", "none"}

    def test_fully_beats_manual(self, traces_2019):
        s = autoscaling.summarize_slack(traces_2019)
        assert s.median_slack["fully"] < s.median_slack["none"]
        assert s.fully_vs_manual_saving > 0

    def test_slack_fraction_range(self, trace_2019):
        for values in autoscaling.peak_slack_samples(trace_2019).values():
            if values.size:
                assert (values >= 0).all() and (values <= 1).all()


class TestAllocSetsAnalysis:
    def test_report_ranges(self, traces_2019):
        rep = allocsets.alloc_set_report(traces_2019)
        d = rep.as_dict()
        for key, value in d.items():
            assert 0 <= value <= 1, key
        assert rep.alloc_set_fraction_of_collections > 0
        assert rep.jobs_in_alloc_fraction > 0
        assert rep.in_alloc_prod_fraction > 0.5
        assert rep.mem_utilization_in_alloc > rep.mem_utilization_outside


class TestTerminations:
    def test_parent_kill_effect(self, traces_2019):
        rep = terminations.termination_report(traces_2019)
        assert rep.kill_rate_with_parent > rep.kill_rate_without_parent

    def test_eviction_stats_ranges(self, traces_2019):
        rep = terminations.termination_report(traces_2019)
        assert 0 <= rep.collections_with_evictions_fraction <= 1
        assert rep.prod_collections_evicted_fraction <= \
            rep.collections_with_evictions_fraction + 1.0

    def test_end_reasons_counted(self, traces_2019):
        rep = terminations.termination_report(traces_2019)
        assert sum(rep.end_reason_counts.values()) > 0


class TestSummaryAndMachines:
    def test_table1_columns(self, traces_2011, traces_2019):
        rows = summary.table1(traces_2011, traces_2019)
        assert rows[0]["era"] == "2011" and rows[1]["era"] == "2019"
        assert rows[1]["alloc_sets"] and not rows[0]["alloc_sets"]
        assert rows[1]["batch_queueing"] and not rows[0]["batch_queueing"]
        assert rows[1]["vertical_scaling"] and not rows[0]["vertical_scaling"]

    def test_mixed_eras_rejected(self, trace_2011, trace_2019):
        with pytest.raises(ValueError):
            summary.era_summary([trace_2011, trace_2019])

    def test_shapes_sorted_by_count(self, traces_2019):
        points = machines.machine_shapes(traces_2019)
        counts = [p.count for p in points]
        assert counts == sorted(counts, reverse=True)
        assert sum(counts) == len(traces_2019[0].machine_attributes)

    def test_fleet_summary(self, traces_2019):
        out = machines.fleet_summary(traces_2019)
        assert out["machines"] == len(traces_2019[0].machine_attributes)
        assert out["hardware_platforms"] >= 1


class TestReport:
    def test_full_report_renders(self, traces_2011, traces_2019):
        text = report.full_report(traces_2011, traces_2019)
        for needle in ("Table 1", "Figure 2", "Figure 6", "Figure 10",
                       "Table 2", "Figure 14", "Section 5.1", "Section 5.2"):
            assert needle in text
        assert len(text) > 3000
