"""CLI tests for ``borg-repro lint``: exit codes, formats, dogfooding."""

import json
from pathlib import Path

from repro.cli import main
from repro.lint import lint_paths

REPO_SRC = Path(__file__).resolve().parents[1] / "src"


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


def test_clean_file_exits_zero(tmp_path, capsys):
    path = write(tmp_path, "clean.py", "x = 1\n")
    assert main(["lint", path]) == 0
    out = capsys.readouterr().out
    assert "0 violations in 1 file(s) checked" in out


def test_violations_exit_one_text(tmp_path, capsys):
    path = write(tmp_path, "dirty.py", "window = 3600.0\n")
    assert main(["lint", path]) == 1
    out = capsys.readouterr().out
    assert f"{path}:1:10: RPR005" in out
    assert "1 violation in 1 file(s) checked" in out


def test_violations_exit_one_json(tmp_path, capsys):
    path = write(tmp_path, "dirty.py", "window = 3600.0\nd = 86400\n")
    assert main(["lint", path, "--format", "json"]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["violation_count"] == 2
    assert document["exit_code"] == 1
    assert document["rules"]["RPR005"]["violations"] == 2
    assert {v["rule"] for v in document["violations"]} == {"RPR005"}
    assert document["violations"][0]["path"] == path


def test_syntax_error_exits_two(tmp_path, capsys):
    path = write(tmp_path, "broken.py", "def nope(:\n")
    assert main(["lint", path, "--format", "json"]) == 2
    document = json.loads(capsys.readouterr().out)
    assert document["exit_code"] == 2
    assert document["violations"][0]["rule"] == "RPR000"


def test_select_limits_rules(tmp_path, capsys):
    source = "try:\n    pass\nexcept Exception:\n    pass\nx = 3600\n"
    path = write(tmp_path, "mixed.py", source)
    assert main(["lint", path, "--select", "rpr005"]) == 1
    out = capsys.readouterr().out
    assert "RPR005" in out
    assert "RPR004" not in out
    assert main(["lint", path, "--select", "RPR004,RPR005"]) == 1
    assert len(capsys.readouterr().out.strip().splitlines()) == 3


def test_unknown_rule_exits_two(tmp_path, capsys):
    path = write(tmp_path, "clean.py", "x = 1\n")
    assert main(["lint", path, "--select", "RPR042"]) == 2
    assert "RPR042" in capsys.readouterr().err


def test_statistics_flag(tmp_path, capsys):
    path = write(tmp_path, "dirty.py", "a = 3600\nb = 86400\n")
    assert main(["lint", path, "--statistics"]) == 1
    out = capsys.readouterr().out
    assert "RPR005     2" in out


def test_directory_lint_counts_files(tmp_path, capsys):
    write(tmp_path, "a.py", "x = 1\n")
    write(tmp_path, "b.py", "y = 2\n")
    assert main(["lint", str(tmp_path)]) == 0
    assert "2 file(s) checked" in capsys.readouterr().out


def test_repo_src_is_lint_clean():
    """Dogfood gate: the tree the CI lint job checks stays clean."""
    violations = lint_paths([REPO_SRC])
    assert violations == [], "\n".join(v.format() for v in violations)
