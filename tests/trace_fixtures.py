"""One shared builder for simulate-and-encode fixture setup.

``tests/conftest.py`` and ``benchmarks/conftest.py`` need the same
expensive setup — run a cell scenario, encode the result as a
:class:`TraceDataset` — at different scales: the unit suite wants
seconds-fast single cells, the benchmark suite wants paper-scale cells
tunable from the environment.  Both used to hand-roll the loop; this
module is the single copy, parametrized on cell size via
:class:`TraceScale`.

The two canonical scales are :data:`TEST_SCALE` (matches
``repro.workload.small_test_scenario``, so session fixtures — and the
golden figures derived from them — are unchanged) and
:func:`bench_scale` (reads the ``REPRO_BENCH_*`` environment knobs).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import List, Optional, Tuple

from repro.trace import encode_cell
from repro.trace.dataset import TraceDataset
from repro.workload import scenario_2011, scenarios_2019

ALL_CELLS_2019 = ("a", "b", "c", "d", "e", "f", "g", "h")


@dataclass(frozen=True)
class TraceScale:
    """How big the simulated cells are — the one knob set both suites share."""

    machines: int
    hours: float
    arrival_scale: float
    seed: int = 0
    sample_period: float = 900.0
    cells_2019: Tuple[str, ...] = ALL_CELLS_2019
    #: 2011-era arrival multiplier: the single 2011 cell stands in for a
    #: whole workload, so the small scale boosts its arrival rate
    #: (mirrors ``repro.workload.small_test_scenario``).
    boost_2011: float = 1.0
    #: Fault-injection profile name and archetype mix name (off/None by
    #: default, so every pre-existing fixture and golden stays
    #: byte-identical to the pre-fault-injection suite).
    faults: Optional[str] = None
    fault_rate: float = 1.0
    archetype_mix: Optional[str] = None


#: The unit-test scale: identical to ``small_test_scenario(seed=11)``.
TEST_SCALE = TraceScale(machines=24, hours=12.0, arrival_scale=0.012,
                        seed=11, sample_period=300.0, cells_2019=("d",),
                        boost_2011=3.5)

#: The failure-heavy unit-test scale: ``TEST_SCALE`` plus the heavy
#: fault profile (crashes, outages, maintenance, upgrades, resubmission)
#: and the mixed archetype crowd — the scenario-pack fixtures.
FAULTY_SCALE = replace(TEST_SCALE, faults="heavy", archetype_mix="mixed")


def bench_scale() -> TraceScale:
    """The benchmark scale, tunable via ``REPRO_BENCH_*`` env knobs."""
    cells = tuple(c for c in os.environ.get(
        "REPRO_BENCH_CELLS", ",".join(ALL_CELLS_2019)).split(",") if c)
    return TraceScale(
        machines=int(os.environ.get("REPRO_BENCH_MACHINES", "100")),
        hours=float(os.environ.get("REPRO_BENCH_HOURS", "48")),
        arrival_scale=float(os.environ.get("REPRO_BENCH_SCALE", "0.02")),
        seed=int(os.environ.get("REPRO_BENCH_SEED", "0")),
        cells_2019=cells,
    )


def build_result(era: str, scale: TraceScale):
    """Simulate one cell at ``scale`` and return its :class:`CellResult`.

    For the 2019 era this runs the *first* cell of ``scale.cells_2019``
    (the unit scale pins exactly one).
    """
    return _scenarios(era, scale)[0].run()


def build_trace(era: str, scale: TraceScale,
                verbose: bool = False) -> TraceDataset:
    """Simulate + encode one cell of ``era`` at ``scale``."""
    return _encode(_scenarios(era, scale)[0], verbose)


def build_traces_2019(scale: TraceScale,
                      verbose: bool = False) -> List[TraceDataset]:
    """Simulate + encode every 2019 cell in ``scale.cells_2019``."""
    return [_encode(scenario, verbose)
            for scenario in _scenarios("2019", scale)]


def _scenarios(era: str, scale: TraceScale):
    if era == "2011":
        return [scenario_2011(seed=scale.seed,
                              machines_per_cell=scale.machines,
                              horizon_hours=scale.hours,
                              arrival_scale=scale.arrival_scale * scale.boost_2011,
                              sample_period=scale.sample_period,
                              faults=scale.faults, fault_rate=scale.fault_rate,
                              archetype_mix=scale.archetype_mix)]
    return scenarios_2019(seed=scale.seed, machines_per_cell=scale.machines,
                          horizon_hours=scale.hours,
                          arrival_scale=scale.arrival_scale,
                          sample_period=scale.sample_period,
                          cells=list(scale.cells_2019),
                          faults=scale.faults, fault_rate=scale.fault_rate,
                          archetype_mix=scale.archetype_mix)


def _encode(scenario, verbose: bool) -> TraceDataset:
    t0 = time.time()
    trace = encode_cell(scenario.run())
    if verbose:
        print(f"\n[bench setup] cell {scenario.name} simulated "
              f"in {time.time() - t0:.0f}s")
    return trace
