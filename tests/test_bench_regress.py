"""Bench-gate tests: normalization, the noise-aware compare, CLI exits.

The two ends of the gate's contract come straight from the PR's
acceptance criteria: an unchanged re-run of the committed baseline must
pass, and a uniformly injected 20% slowdown must be flagged at the
default 10% threshold.  The adaptive-band tests pin the "noise-aware"
part: the gate widens to 1.5x the spread the history itself
demonstrates, so a benchmark whose minima historically wobble 25% is
not failed by a 15% excursion.
"""

import json

import pytest

from repro.cli import main
from repro.obs.regress import (
    BENCH_SCHEMA,
    DEFAULT_THRESHOLD,
    VERDICT_SCHEMA,
    BenchDataError,
    append_history,
    compact_bench,
    compare,
    compare_files,
    history_entries,
    load_bench,
    load_history,
    robust_min,
)


def raw_bench(scale=1.0, names=("test_sim", "test_encode"), commit="abc123f99"):
    """A pytest-benchmark-shaped payload with round data."""
    benchmarks = []
    for i, name in enumerate(names):
        base = 0.1 * (i + 1) * scale
        data = [base * f for f in (1.04, 1.0, 1.09, 1.02)]
        benchmarks.append({
            "name": name,
            "stats": {"min": min(data), "median": sorted(data)[2],
                      "mean": sum(data) / len(data), "stddev": 0.002,
                      "rounds": len(data), "data": data},
        })
    return {
        "machine_info": {"node": "ci-runner"},
        "commit_info": {"id": commit},
        "datetime": "2026-08-05T12:00:00",
        "benchmarks": benchmarks,
    }


def write_bench(path, **kwargs):
    path.write_text(json.dumps(raw_bench(**kwargs)))
    return path


@pytest.fixture()
def history_dir(tmp_path):
    current = write_bench(tmp_path / "run.json")
    directory = tmp_path / "BENCH_history"
    append_history(directory, current)
    return directory


# -- normalization / history ------------------------------------------------

class TestLoading:
    def test_normalizes_raw_pytest_benchmark_json(self, tmp_path):
        bench = load_bench(write_bench(tmp_path / "run.json"))
        assert set(bench) == {"test_sim", "test_encode"}
        stats = bench["test_sim"]
        assert stats["rounds"] == 4
        assert stats["min"] == min(stats["data"])

    def test_round_trips_through_compact_schema(self, tmp_path):
        raw_path = write_bench(tmp_path / "run.json")
        entry = compact_bench(raw_path)
        assert entry["schema"] == BENCH_SCHEMA
        assert entry["label"] == "abc123f"  # short commit
        compact_path = tmp_path / "entry.json"
        compact_path.write_text(json.dumps(entry))
        assert load_bench(compact_path) == load_bench(raw_path)

    def test_rejects_unusable_payloads(self, tmp_path):
        empty = tmp_path / "empty.json"
        empty.write_text('{"benchmarks": []}')
        with pytest.raises(BenchDataError):
            load_bench(empty)
        garbage = tmp_path / "garbage.json"
        garbage.write_text("not json")
        with pytest.raises(BenchDataError):
            load_bench(garbage)
        with pytest.raises(BenchDataError):
            load_bench(tmp_path / "missing.json")

    def test_append_numbers_entries_sequentially(self, tmp_path):
        run = write_bench(tmp_path / "run.json")
        directory = tmp_path / "hist"
        first = append_history(directory, run)
        second = append_history(directory, run, label="pr-5")
        assert first.name == "00001-abc123f.json"
        assert second.name == "00002-pr-5.json"
        assert [p.name for p in history_entries(directory)] == \
            [first.name, second.name]
        assert len(load_history(directory)) == 2
        assert len(load_history(directory, last=1)) == 1

    def test_robust_min_prefers_round_data(self):
        assert robust_min({"min": 0.5, "data": [0.4, 0.6]}) == 0.4
        assert robust_min({"min": 0.5, "data": []}) == 0.5


# -- comparison -------------------------------------------------------------

class TestCompare:
    def test_unchanged_rerun_passes(self, tmp_path):
        current = load_bench(write_bench(tmp_path / "run.json"))
        result = compare(current, [current])
        assert result.passed
        assert {v.status for v in result.verdicts} == {"ok"}

    def test_twenty_percent_slowdown_is_flagged(self, tmp_path):
        base = load_bench(write_bench(tmp_path / "base.json"))
        slow = load_bench(write_bench(tmp_path / "slow.json", scale=1.2))
        result = compare(slow, [base])
        assert not result.passed
        assert all(v.status == "regression" for v in result.verdicts)
        assert all(v.ratio == pytest.approx(1.2, abs=0.01)
                   for v in result.verdicts)

    def test_improvement_is_reported_not_failed(self, tmp_path):
        base = load_bench(write_bench(tmp_path / "base.json"))
        fast = load_bench(write_bench(tmp_path / "fast.json", scale=0.7))
        result = compare(fast, [base])
        assert result.passed
        assert {v.status for v in result.verdicts} == {"improvement"}

    def test_new_and_missing_benchmarks_never_fail(self):
        current = {"kept": {"min": 0.1, "data": [0.1]},
                   "added": {"min": 0.2, "data": [0.2]}}
        history = [{"kept": {"min": 0.1, "data": [0.1]},
                    "removed": {"min": 0.3, "data": [0.3]}}]
        result = compare(current, history)
        assert result.passed
        statuses = {v.name: v.status for v in result.verdicts}
        assert statuses == {"kept": "ok", "added": "new",
                            "removed": "missing"}

    def test_noise_band_widens_with_historical_spread(self):
        # Minima 100ms and 125ms: spread 25%, gate 1.5 * 25% = 37.5%.
        noisy_history = [{"t": {"min": 0.100, "data": [0.100]}},
                         {"t": {"min": 0.125, "data": [0.125]}}]
        wobble = {"t": {"min": 0.130, "data": [0.130]}}
        result = compare(wobble, noisy_history)
        assert result.verdicts[0].status == "ok"
        assert result.verdicts[0].threshold == pytest.approx(0.375)
        # The same 30% excursion against a *stable* history regresses.
        stable_history = [{"t": {"min": 0.100, "data": [0.100]}},
                          {"t": {"min": 0.101, "data": [0.101]}}]
        result = compare(wobble, stable_history)
        assert result.verdicts[0].status == "regression"

    def test_baseline_is_best_min_across_history(self):
        history = [{"t": {"min": 0.100, "data": [0.100]}},
                   {"t": {"min": 0.090, "data": [0.090]}}]
        current = {"t": {"min": 0.095, "data": [0.095]}}
        result = compare(current, history)
        assert result.verdicts[0].baseline_min == pytest.approx(0.090)

    def test_empty_history_raises(self):
        with pytest.raises(BenchDataError, match="no history"):
            compare({"t": {"min": 0.1, "data": [0.1]}}, [])

    def test_verdict_json_schema(self, tmp_path, history_dir):
        result = compare_files(write_bench(tmp_path / "run2.json"),
                               history_dir)
        payload = result.to_dict()
        assert payload["schema"] == VERDICT_SCHEMA
        assert payload["passed"] is True
        assert payload["threshold"] == DEFAULT_THRESHOLD
        assert {b["name"] for b in payload["benchmarks"]} == \
            {"test_sim", "test_encode"}

    def test_render_names_every_benchmark_and_verdict(self, tmp_path):
        base = load_bench(write_bench(tmp_path / "base.json"))
        slow = load_bench(write_bench(tmp_path / "slow.json", scale=1.2))
        text = compare(slow, [base]).render()
        assert "REGRESSION" in text
        assert "test_sim" in text
        assert text.strip().endswith("FAIL: 2 regression(s)")


# -- the CLI gate -----------------------------------------------------------

class TestBenchCli:
    def test_compare_pass_exits_zero(self, tmp_path, history_dir, capsys):
        run = write_bench(tmp_path / "rerun.json")
        rc = main(["bench", "compare", str(run),
                   "--history", str(history_dir)])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out

    def test_compare_regression_exits_one(self, tmp_path, history_dir,
                                          capsys):
        slow = write_bench(tmp_path / "slow.json", scale=1.2)
        verdict_path = tmp_path / "verdict.json"
        rc = main(["bench", "compare", str(slow),
                   "--history", str(history_dir),
                   "--json-out", str(verdict_path)])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out
        verdict = json.loads(verdict_path.read_text())
        assert verdict["schema"] == VERDICT_SCHEMA
        assert verdict["passed"] is False

    def test_compare_bad_input_exits_two(self, tmp_path, history_dir,
                                         capsys):
        missing = tmp_path / "missing.json"
        assert main(["bench", "compare", str(missing),
                     "--history", str(history_dir)]) == 2
        assert "bench compare:" in capsys.readouterr().err
        empty_history = tmp_path / "no_history"
        run = write_bench(tmp_path / "run3.json")
        assert main(["bench", "compare", str(run),
                     "--history", str(empty_history)]) == 2

    def test_compare_custom_threshold(self, tmp_path, history_dir):
        slow = write_bench(tmp_path / "slow2.json", scale=1.2)
        rc = main(["bench", "compare", str(slow),
                   "--history", str(history_dir), "--threshold", "0.5"])
        assert rc == 0

    def test_append_writes_next_entry(self, tmp_path, history_dir, capsys):
        run = write_bench(tmp_path / "run4.json", commit="feedface00")
        rc = main(["bench", "append", str(run),
                   "--history", str(history_dir)])
        assert rc == 0
        assert "00002-feedfac.json" in capsys.readouterr().out
        entries = history_entries(history_dir)
        assert len(entries) == 2
        assert json.loads(entries[-1].read_text())["schema"] == BENCH_SCHEMA

    def test_append_bad_input_exits_two(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"benchmarks": []}')
        assert main(["bench", "append", str(bad),
                     "--history", str(tmp_path / "hist")]) == 2
        assert "bench append:" in capsys.readouterr().err

    def test_seeded_repo_history_passes_unchanged_baseline(self, capsys):
        # The committed BENCH_history seed is the PR-4 baseline; replaying
        # the exact baseline file through the gate must pass.
        rc = main(["bench", "compare", "BENCH_simulator.json",
                   "--history", "BENCH_history"])
        assert rc == 0
        assert "PASS" in capsys.readouterr().out
