"""Unit tests for the Table relational operators."""

import numpy as np
import pytest

from repro.table import Table, col, concat
from repro.util.errors import SchemaError


@pytest.fixture
def table():
    return Table({
        "tier": ["prod", "beb", "beb", "free"],
        "cpu": [0.5, 0.1, 0.2, 0.05],
        "tasks": [3, 1, 7, 2],
    })


class TestConstruction:
    def test_len_and_columns(self, table):
        assert len(table) == 4
        assert table.column_names == ["tier", "cpu", "tasks"]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(SchemaError):
            Table({"a": [1, 2], "b": [1]})

    def test_empty_table(self):
        t = Table()
        assert len(t) == 0
        assert t.column_names == []

    def test_bad_column_name(self):
        with pytest.raises(SchemaError):
            Table({"": [1]})

    def test_from_rows(self):
        t = Table.from_rows([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert t.column("a").to_list() == [1, 2]
        assert t.column("b").to_list() == ["x", "y"]

    def test_from_rows_empty_with_schema(self):
        t = Table.from_rows([], columns=["a", "b"])
        assert t.column_names == ["a", "b"]
        assert len(t) == 0

    def test_from_rows_key_mismatch(self):
        with pytest.raises(SchemaError):
            Table.from_rows([{"a": 1}, {"b": 2}])


class TestAccess:
    def test_unknown_column_raises_with_suggestions(self, table):
        with pytest.raises(SchemaError, match="available"):
            table.column("nope")

    def test_contains(self, table):
        assert "cpu" in table
        assert "nope" not in table

    def test_row(self, table):
        assert table.row(0) == {"tier": "prod", "cpu": 0.5, "tasks": 3}

    def test_row_negative_index(self, table):
        assert table.row(-1)["tier"] == "free"

    def test_row_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.row(4)

    def test_iter_rows(self, table):
        rows = list(table.iter_rows())
        assert len(rows) == 4 and rows[1]["tier"] == "beb"


class TestOperators:
    def test_select_orders_columns(self, table):
        assert table.select("cpu", "tier").column_names == ["cpu", "tier"]

    def test_drop(self, table):
        assert table.drop("tasks").column_names == ["tier", "cpu"]

    def test_drop_unknown_raises(self, table):
        with pytest.raises(SchemaError):
            table.drop("nope")

    def test_rename(self, table):
        t = table.rename({"cpu": "ncu"})
        assert "ncu" in t and "cpu" not in t

    def test_filter_expr(self, table):
        t = table.filter(col("tier") == "beb")
        assert len(t) == 2
        assert t.column("cpu").to_list() == [0.1, 0.2]

    def test_filter_mask(self, table):
        t = table.filter(np.array([True, False, False, True]))
        assert t.column("tier").to_list() == ["prod", "free"]

    def test_filter_wrong_length_mask(self, table):
        with pytest.raises(SchemaError):
            table.filter(np.array([True]))

    def test_filter_non_boolean(self, table):
        with pytest.raises(SchemaError):
            table.filter(np.array([1, 2, 3, 4]))

    def test_compound_predicate(self, table):
        t = table.filter((col("tier") == "beb") & (col("cpu") > 0.15))
        assert len(t) == 1

    def test_take_and_head(self, table):
        assert table.take([2, 0]).column("tier").to_list() == ["beb", "prod"]
        assert len(table.head(2)) == 2

    def test_with_column_from_expr(self, table):
        t = table.with_column("double", col("cpu") * 2)
        assert t.column("double").to_list() == [1.0, 0.2, 0.4, 0.1]

    def test_with_column_replaces(self, table):
        t = table.with_column("cpu", [1.0, 1.0, 1.0, 1.0])
        assert t.column("cpu").sum() == 4.0

    def test_with_column_wrong_length(self, table):
        with pytest.raises(SchemaError):
            table.with_column("x", [1.0])

    def test_sort_single_key(self, table):
        t = table.sort("cpu")
        assert t.column("cpu").to_list() == [0.05, 0.1, 0.2, 0.5]

    def test_sort_descending(self, table):
        t = table.sort("cpu", descending=True)
        assert t.column("cpu").to_list() == [0.5, 0.2, 0.1, 0.05]

    def test_sort_multi_key_stable(self, table):
        t = table.sort("tier", "tasks")
        assert t.column("tier").to_list() == ["beb", "beb", "free", "prod"]
        assert t.column("tasks").to_list()[:2] == [1, 7]

    def test_sort_no_keys(self, table):
        with pytest.raises(SchemaError):
            table.sort()

    def test_distinct(self):
        t = Table({"a": [1, 1, 2], "b": ["x", "x", "y"]})
        assert len(t.distinct()) == 2

    def test_distinct_subset(self):
        t = Table({"a": [1, 1, 2], "b": ["x", "y", "z"]})
        assert len(t.distinct("a")) == 2


class TestConcat:
    def test_concat_stacks(self):
        a = Table({"x": [1], "s": ["a"]})
        b = Table({"x": [2], "s": ["b"]})
        merged = concat([a, b])
        assert merged.column("x").to_list() == [1, 2]
        assert merged.column("s").to_list() == ["a", "b"]

    def test_concat_schema_mismatch(self):
        with pytest.raises(SchemaError):
            concat([Table({"x": [1]}), Table({"y": [1]})])

    def test_concat_empty_list(self):
        assert len(concat([])) == 0


class TestRendering:
    def test_to_string_contains_headers(self, table):
        text = table.to_string()
        assert "tier" in text and "prod" in text

    def test_to_string_truncates(self):
        t = Table({"x": list(range(100))})
        assert "more rows" in t.to_string(max_rows=5)

    def test_to_dict(self, table):
        assert table.to_dict()["tasks"] == [3, 1, 7, 2]
