"""Unit tests for the util package: RNG streams, time helpers, units."""

import numpy as np
import pytest

from repro.util import (
    DAY_SECONDS,
    HOUR_SECONDS,
    RngFactory,
    clamp,
    hour_index,
    hours,
    normalize,
    safe_div,
    sample_index,
)
from repro.util.errors import ReproError, SchemaError, SimulationError, ValidationError
from repro.util.timeutil import days, local_hour, overlap


class TestRngFactory:
    def test_streams_cached_by_name(self):
        f = RngFactory(1)
        assert f.stream("a") is f.stream("a")

    def test_streams_independent_by_name(self):
        f = RngFactory(1)
        a = f.stream("a").random(5)
        b = f.stream("b").random(5)
        assert a.tolist() != b.tolist()

    def test_same_seed_same_streams(self):
        a = RngFactory(7).stream("x").random(5)
        b = RngFactory(7).stream("x").random(5)
        assert a.tolist() == b.tolist()

    def test_order_independent(self):
        f1 = RngFactory(3)
        f1.stream("first")
        v1 = f1.stream("second").random(3)
        f2 = RngFactory(3)
        v2 = f2.stream("second").random(3)
        assert v1.tolist() == v2.tolist()

    def test_different_seeds_differ(self):
        a = RngFactory(1).stream("x").random(3)
        b = RngFactory(2).stream("x").random(3)
        assert a.tolist() != b.tolist()

    def test_child_factories_deterministic_and_distinct(self):
        parent = RngFactory(5)
        c1 = parent.child("cell-a").stream("s").random(3)
        c2 = parent.child("cell-b").stream("s").random(3)
        c1_again = RngFactory(5).child("cell-a").stream("s").random(3)
        assert c1.tolist() != c2.tolist()
        assert c1.tolist() == c1_again.tolist()

    def test_non_int_seed_rejected(self):
        with pytest.raises(TypeError):
            RngFactory("seed")

    def test_repr(self):
        f = RngFactory(0)
        f.stream("abc")
        assert "abc" in repr(f)


class TestTimeutil:
    def test_constants(self):
        assert HOUR_SECONDS == 3600
        assert DAY_SECONDS == 24 * HOUR_SECONDS

    def test_hours_days(self):
        assert hours(2) == 7200
        assert days(1) == DAY_SECONDS

    def test_hour_index(self):
        assert hour_index(0.0) == 0
        assert hour_index(3599.9) == 0
        assert hour_index(3600.0) == 1

    def test_sample_index(self):
        assert sample_index(299.0) == 0
        assert sample_index(300.0) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            hour_index(-1.0)
        with pytest.raises(ValueError):
            sample_index(-0.1)

    def test_overlap(self):
        assert overlap(0, 10, 5, 20) == 5
        assert overlap(0, 10, 10, 20) == 0
        assert overlap(5, 6, 0, 100) == 1

    def test_local_hour_offsets(self):
        # Midnight UTC is 8am in Singapore (UTC+8).
        assert local_hour(0.0, 8.0) == pytest.approx(8.0)
        # And 5pm the previous day at UTC-7.
        assert local_hour(0.0, -7.0) == pytest.approx(17.0)

    def test_local_hour_wraps(self):
        assert 0 <= local_hour(123456.0, 8.0) < 24


class TestUnits:
    def test_clamp(self):
        assert clamp(1.5) == 1.0
        assert clamp(-0.5) == 0.0
        assert clamp(0.25) == 0.25
        assert clamp(5, 0, 10) == 5

    def test_clamp_empty_range(self):
        with pytest.raises(ValueError):
            clamp(1.0, 2.0, 1.0)

    def test_safe_div(self):
        assert safe_div(4, 2) == 2
        assert safe_div(4, 0) == 0.0
        assert safe_div(4, 0, default=-1.0) == -1.0

    def test_normalize_peak_is_one(self):
        out = normalize([1.0, 2.0, 4.0])
        assert out.tolist() == [0.25, 0.5, 1.0]

    def test_normalize_zero_and_empty(self):
        assert normalize([0.0, 0.0]).tolist() == [0.0, 0.0]
        assert len(normalize([])) == 0


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(SchemaError, ReproError)
        assert issubclass(SimulationError, ReproError)
        assert issubclass(ValidationError, ReproError)

    def test_validation_error_message(self):
        err = ValidationError("inv-name", "details here")
        assert err.invariant == "inv-name"
        assert "details here" in str(err)
