"""Tests for the hog-isolation multi-server queue (section 10, direction 5)."""

import numpy as np
import pytest

from repro.queueing import (
    QueueOutcome,
    run_isolation_experiment,
    simulate_partitioned_queue,
)


@pytest.fixture
def heavy_sizes():
    rng = np.random.default_rng(0)
    return np.concatenate([
        rng.exponential(0.05, 4950),
        (rng.pareto(0.7, 50) + 1) * 5.0,
    ])


class TestSimulator:
    def test_waits_nonnegative(self, heavy_sizes):
        rng = np.random.default_rng(1)
        out = simulate_partitioned_queue(rng, heavy_sizes, n_servers=10,
                                         rho=0.7, n_jobs=5000)
        assert (out["mice"] >= -1e-9).all()
        assert (out["hogs"] >= -1e-9).all()

    def test_every_job_classified(self, heavy_sizes):
        rng = np.random.default_rng(1)
        out = simulate_partitioned_queue(rng, heavy_sizes, n_servers=10,
                                         rho=0.5, n_jobs=5000)
        assert len(out["mice"]) + len(out["hogs"]) == 5000

    def test_low_load_little_waiting(self, heavy_sizes):
        rng = np.random.default_rng(2)
        out = simulate_partitioned_queue(rng, heavy_sizes, n_servers=20,
                                         rho=0.2, n_jobs=5000)
        assert float(out["mice"].mean()) < 0.5

    def test_waits_grow_with_load(self, heavy_sizes):
        means = []
        for rho in (0.5, 0.9):
            rng = np.random.default_rng(3)
            out = simulate_partitioned_queue(rng, heavy_sizes, n_servers=10,
                                             rho=rho, n_jobs=20_000)
            means.append(float(np.concatenate(list(out.values())).mean()))
        assert means[1] > means[0]

    def test_exponential_sizes_reasonable(self):
        # Sanity against M/M/c intuition: modest load, modest waits.
        rng = np.random.default_rng(4)
        sizes = rng.exponential(1.0, 5000)
        out = simulate_partitioned_queue(rng, sizes, n_servers=10, rho=0.6,
                                         n_jobs=20_000)
        combined = np.concatenate(list(out.values()))
        assert float(combined.mean()) < 1.0

    def test_input_validation(self, heavy_sizes):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            simulate_partitioned_queue(rng, heavy_sizes[:5])
        with pytest.raises(ValueError):
            simulate_partitioned_queue(rng, heavy_sizes, rho=1.5)
        with pytest.raises(ValueError):
            simulate_partitioned_queue(rng, heavy_sizes, n_servers=1)


class TestExperiment:
    def test_isolation_protects_mice(self, heavy_sizes):
        rng = np.random.default_rng(5)
        exp = run_isolation_experiment(rng, heavy_sizes, n_servers=16,
                                       rho=0.85, n_jobs=30_000)
        assert exp.mice_isolated.mean_wait < exp.mice_shared.mean_wait / 5
        assert exp.mice_isolated.p99_wait < exp.mice_shared.p99_wait / 5
        assert exp.mice_mean_speedup > 5

    def test_hogs_pay_for_isolation(self, heavy_sizes):
        rng = np.random.default_rng(6)
        exp = run_isolation_experiment(rng, heavy_sizes, n_servers=16,
                                       rho=0.85, n_jobs=30_000)
        # Fewer servers for hogs: their waits rise (the trade-off).
        assert exp.hogs_isolated.mean_wait >= exp.hogs_shared.mean_wait

    def test_threshold_recorded(self, heavy_sizes):
        rng = np.random.default_rng(7)
        exp = run_isolation_experiment(rng, heavy_sizes, n_servers=8,
                                       rho=0.5, n_jobs=5000)
        assert exp.hog_threshold > float(np.median(heavy_sizes))

    def test_paired_streams_are_deterministic(self, heavy_sizes):
        a = run_isolation_experiment(np.random.default_rng(8), heavy_sizes,
                                     n_servers=8, rho=0.7, n_jobs=5000)
        b = run_isolation_experiment(np.random.default_rng(8), heavy_sizes,
                                     n_servers=8, rho=0.7, n_jobs=5000)
        assert a.mice_shared == b.mice_shared
        assert a.mice_isolated == b.mice_isolated


class TestQueueOutcome:
    def test_from_waits(self):
        out = QueueOutcome.from_waits(np.asarray([0.0, 1.0, 2.0, 3.0]))
        assert out.n_jobs == 4
        assert out.mean_wait == 1.5
        assert out.median_wait == 1.5

    def test_empty(self):
        out = QueueOutcome.from_waits(np.empty(0))
        assert out.n_jobs == 0 and out.mean_wait == 0.0
