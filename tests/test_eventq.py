"""Event-queue equivalence and edge cases (heap vs calendar).

The calendar queue must be observationally identical to the binary
heap: same pop sequence for any push sequence a discrete-event
simulation can produce (times never before the current pop cursor).
The hypothesis test below drives both implementations with interleaved
push/pop schedules and asserts the sequences match entry for entry —
the property the simulation goldens rely on.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.eventq import (
    DEFAULT_BUCKET_WIDTH,
    CalendarEventQueue,
    HeapEventQueue,
    QUEUE_KINDS,
    get_default_queue,
    make_queue,
    set_default_queue,
)


def drain(q):
    out = []
    while q:
        out.append(q.pop())
    return out


class TestCalendarEdgeCases:
    def test_empty_pop_raises(self):
        q = CalendarEventQueue(100.0)
        with pytest.raises(IndexError):
            q.pop()

    def test_len_and_bool(self):
        q = CalendarEventQueue(100.0)
        assert not q and len(q) == 0
        q.push(5.0, "a", None)
        q.push(5.0, "b", None)
        assert q and len(q) == 2
        q.pop()
        assert len(q) == 1

    def test_same_timestamp_pops_in_push_order(self):
        q = CalendarEventQueue(50.0)
        for i in range(10):
            q.push(7.0, f"k{i}", i)
        assert [e[3] for e in drain(q)] == list(range(10))

    def test_times_at_and_past_horizon_land_in_last_bucket(self):
        q = CalendarEventQueue(64.0, bucket_width=8.0)
        q.push(1000.0, "far", 2)
        q.push(64.0, "at-horizon", 1)
        q.push(63.9, "inside", 0)
        assert [e[3] for e in drain(q)] == [0, 1, 2]

    def test_horizon_shorter_than_one_bucket(self):
        q = CalendarEventQueue(0.5, bucket_width=8.0)
        q.push(0.4, "a", "a")
        q.push(0.1, "b", "b")
        assert [e[3] for e in drain(q)] == ["b", "a"]

    def test_push_at_cursor_time_after_pops(self):
        # Pushing an event equal to the last popped time must order
        # after already-pushed earlier-seq entries at the same time.
        q = CalendarEventQueue(100.0)
        q.push(10.0, "a", 0)
        q.push(20.0, "b", 1)
        assert q.pop()[0] == 10.0
        q.push(10.0, "late", 2)  # same time as the cursor's last pop
        q.push(20.0, "c", 3)
        assert [e[3] for e in drain(q)] == [2, 1, 3]

    def test_interleaved_matches_heap_exactly(self):
        cal = CalendarEventQueue(200.0, bucket_width=8.0)
        heap = HeapEventQueue()
        schedule = [3.0, 170.5, 8.0, 8.0, 199.9, 0.0, 64.0, 7.999, 8.001]
        for i, t in enumerate(schedule):
            cal.push(t, "e", i)
            heap.push(t, "e", i)
        while cal:
            assert cal.pop() == heap.pop()
        assert not heap

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CalendarEventQueue(0.0)
        with pytest.raises(ValueError):
            CalendarEventQueue(10.0, bucket_width=0.0)


class TestFactoryAndDefault:
    def test_make_queue_kinds(self):
        assert isinstance(make_queue("heap", 10.0), HeapEventQueue)
        assert isinstance(make_queue("calendar", 10.0), CalendarEventQueue)
        with pytest.raises(ValueError):
            make_queue("splay", 10.0)

    def test_default_round_trip(self):
        before = get_default_queue()
        try:
            for kind in QUEUE_KINDS:
                set_default_queue(kind)
                assert get_default_queue() == kind
                built = make_queue(None, 10.0)
                expected = {"heap": HeapEventQueue,
                            "calendar": CalendarEventQueue}[kind]
                assert isinstance(built, expected)
            with pytest.raises(ValueError):
                set_default_queue("splay")
        finally:
            set_default_queue(before)


# A DES-shaped schedule: each step either pushes an event at
# now + delay (delays skew small, like scheduling rounds, with
# occasional hazard-scale jumps) or pops the next event.
steps = st.lists(
    st.tuples(
        st.booleans(),  # True = push, False = pop
        st.one_of(
            st.floats(min_value=0.0, max_value=30.0,
                      allow_nan=False, allow_infinity=False),
            st.floats(min_value=0.0, max_value=5000.0,
                      allow_nan=False, allow_infinity=False),
            st.sampled_from([0.0, 8.0, 16.0, 7.9999999, 8.0000001, 3600.0]),
        ),
    ),
    min_size=1, max_size=300,
)


class TestHeapCalendarEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(steps, st.floats(min_value=1.0, max_value=4000.0,
                            allow_nan=False, allow_infinity=False))
    def test_pop_sequences_identical(self, ops, horizon):
        cal = CalendarEventQueue(horizon, bucket_width=DEFAULT_BUCKET_WIDTH)
        heap = HeapEventQueue()
        now = 0.0
        n = 0
        for i, (is_push, delay) in enumerate(ops):
            if is_push:
                t = now + delay
                cal.push(t, "e", i)
                heap.push(t, "e", i)
            elif heap:
                a, b = cal.pop(), heap.pop()
                assert a == b
                now = a[0]
            assert len(cal) == len(heap)
            n = len(heap)
        # Drain what's left: full sequences must agree.
        for _ in range(n):
            assert cal.pop() == heap.pop()
        assert not cal and not heap
