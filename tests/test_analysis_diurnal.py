"""Tests for the diurnal-cycle analysis (section 4.1)."""

import numpy as np
import pytest

from repro.analysis import diurnal


class TestLocalHourProfile:
    def test_profile_shape(self, trace_2019):
        profile = diurnal.usage_by_local_hour(trace_2019, "cpu")
        assert profile.shape == (24,)
        assert (profile >= 0).all()

    def test_profile_tracks_total_usage(self, trace_2019):
        # The time-weighted mean of the profile equals overall utilization.
        from repro.analysis.utilization import total_usage_fraction
        profile = diurnal.usage_by_local_hour(trace_2019, "cpu")
        n_hours = int(trace_2019.horizon / 3600)
        bins = ((np.arange(n_hours) + trace_2019.utc_offset_hours) % 24).astype(int)
        weights = np.bincount(bins, minlength=24)
        mean = float((profile * weights).sum() / weights.sum())
        assert mean == pytest.approx(total_usage_fraction(trace_2019, "cpu"),
                                     rel=0.05)

    def test_bad_resource(self, trace_2019):
        with pytest.raises(ValueError):
            diurnal.usage_by_local_hour(trace_2019, "disk")

    def test_peak_hour_in_range(self, trace_2019):
        assert 0 <= diurnal.peak_local_hour(trace_2019) < 24

    def test_amplitude_nonnegative(self, trace_2019):
        assert diurnal.diurnal_amplitude(trace_2019) >= 0


class TestUtcSnapshot:
    def test_snapshot_covers_cells(self, traces_2019):
        snap = diurnal.load_at_utc_hour(traces_2019, utc_hour=7.0)
        assert set(snap.load_by_cell) == {t.cell for t in traces_2019}

    def test_local_hours_respect_offsets(self, trace_2019):
        snap = diurnal.load_at_utc_hour([trace_2019], utc_hour=7.0)
        expected = (7.0 + trace_2019.utc_offset_hours) % 24
        assert snap.local_hour_by_cell[trace_2019.cell] == pytest.approx(expected)
