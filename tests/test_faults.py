"""Tests for the fault-injection subsystem (repro.faults) and the user
archetypes (repro.workload.archetypes).

Covers the pure pieces (failure domains, schedules, backoff policies,
profiles, archetype generation) and the simulator integration: injected
machine outages evict and requeue work, resubmission chains respect the
backoff policy and budgets, and a faults-off run is untouched.
"""

import numpy as np
import pytest

from repro.faults import (
    FAULT_PROFILES,
    FailureDomains,
    FaultParams,
    ResubmitPolicy,
    fault_profile,
    generate_fault_schedule,
    resolve_faults,
)
from repro.faults.schedule import FAULT_KINDS
from repro.util.rng import RngFactory
from repro.util.timeutil import HOUR_SECONDS
from repro.workload import (
    ARCHETYPE_MIXES,
    ArchetypeMix,
    ArchetypeWorkload,
    archetype_of_user,
    small_test_scenario,
)
from repro.workload.archetypes import resolve_archetype_mix
from repro.workload.params import era_2011, era_2019
from repro.sim.resources import Resources


class TestFailureDomains:
    def test_block_assignment(self):
        d = FailureDomains(n_machines=20, machines_per_rack=8,
                           racks_per_power_domain=2)
        assert d.n_racks == 3           # 8 + 8 + 4 machines
        assert d.n_power_domains == 2   # racks {0,1}, {2}
        assert d.rack_of(0) == 0 and d.rack_of(7) == 0
        assert d.rack_of(8) == 1 and d.rack_of(19) == 2
        assert d.power_domain_of_rack(1) == 0
        assert d.power_domain_of_rack(2) == 1
        assert d.rack_members(2) == tuple(range(16, 20))
        assert d.power_domain_members(0) == tuple(range(0, 16))

    def test_every_machine_in_exactly_one_rack(self):
        d = FailureDomains(n_machines=24, machines_per_rack=5,
                           racks_per_power_domain=3)
        seen = [m for r in range(d.n_racks) for m in d.rack_members(r)]
        assert sorted(seen) == list(range(24))
        pd_seen = [m for p in range(d.n_power_domains)
                   for m in d.power_domain_members(p)]
        assert sorted(pd_seen) == list(range(24))

    def test_range_checks(self):
        d = FailureDomains(n_machines=8, machines_per_rack=4,
                           racks_per_power_domain=2)
        with pytest.raises(ValueError):
            d.rack_of(8)
        with pytest.raises(ValueError):
            d.rack_members(2)


class TestResubmitPolicy:
    def test_backoff_strictly_increases_to_cap(self):
        policy = ResubmitPolicy(base_delay=60.0, multiplier=2.0,
                                max_delay=300.0, max_attempts=8)
        delays = [policy.delay(k) for k in range(1, 9)]
        assert delays[:4] == [60.0, 120.0, 240.0, 300.0]
        # Strictly increasing until the cap, then flat at the cap.
        below_cap = [d for d in delays if d < policy.max_delay]
        assert below_cap == sorted(set(below_cap))
        assert all(d == policy.max_delay for d in delays[len(below_cap):])

    def test_validation(self):
        with pytest.raises(ValueError):
            ResubmitPolicy(base_delay=0.0)
        with pytest.raises(ValueError):
            ResubmitPolicy(multiplier=0.9)
        with pytest.raises(ValueError):
            ResubmitPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            ResubmitPolicy(refail_prob=1.5)


class TestFaultParams:
    def test_scaled_multiplies_only_unplanned_rates(self):
        params = fault_profile("heavy")
        scaled = params.scaled(2.0)
        assert scaled.rack_crash_rate_per_day == \
            pytest.approx(2 * params.rack_crash_rate_per_day)
        assert scaled.power_outage_rate_per_day == \
            pytest.approx(2 * params.power_outage_rate_per_day)
        # Planned-event cadence is a schedule, not a rate: unscaled.
        assert scaled.maintenance_interval_days == \
            params.maintenance_interval_days
        assert scaled.upgrade_period_hours == params.upgrade_period_hours
        assert params.scaled(1.0) is params

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultParams(machines_per_rack=0)
        with pytest.raises(ValueError):
            FaultParams(rack_crash_rate_per_day=-0.1)
        with pytest.raises(ValueError):
            FaultParams(crash_duration=0.0)

    def test_resolve_faults(self):
        assert resolve_faults(None) is None
        assert resolve_faults("off") is None
        heavy = resolve_faults("heavy")
        assert isinstance(heavy, FaultParams)
        assert resolve_faults(heavy) is heavy
        assert resolve_faults("light", rate_scale=3.0).rack_crash_rate_per_day \
            == pytest.approx(3 * FAULT_PROFILES["light"].rack_crash_rate_per_day)
        with pytest.raises(ValueError):
            resolve_faults("nope")
        with pytest.raises(TypeError):
            resolve_faults(42)


class TestFaultSchedule:
    def _schedule(self, seed=0, **overrides):
        params = fault_profile("heavy")
        if overrides:
            import dataclasses
            params = dataclasses.replace(params, **overrides)
        domains = params.domains_for(32)
        rng = RngFactory(seed).child("cell-x").stream("faults")
        return params, generate_fault_schedule(
            params, domains, horizon=24 * HOUR_SECONDS, rng=rng)

    def test_deterministic_and_sorted(self):
        _, a = self._schedule(seed=7)
        _, b = self._schedule(seed=7)
        assert a == b
        keys = [(f.time, FAULT_KINDS.index(f.kind), f.scope, f.domain_id)
                for f in a]
        assert keys == sorted(keys)

    def test_events_within_horizon_and_domains(self):
        params, schedule = self._schedule(seed=3)
        assert schedule  # heavy profile over a day must fire something
        domains = params.domains_for(32)
        for fault in schedule:
            assert 0.0 <= fault.time < 24 * HOUR_SECONDS
            assert fault.kind in FAULT_KINDS
            assert fault.duration > 0
            assert all(0 <= m < 32 for m in fault.machine_indices)
            if fault.scope == "rack":
                assert fault.machine_indices == \
                    domains.rack_members(fault.domain_id)

    def test_zero_rates_yield_empty_schedule(self):
        _, schedule = self._schedule(
            rack_crash_rate_per_day=0.0, power_outage_rate_per_day=0.0,
            maintenance_interval_days=0.0, upgrade_period_hours=0.0)
        assert schedule == []

    def test_upgrade_sweeps_roll_rack_by_rack(self):
        params, schedule = self._schedule(
            seed=5, rack_crash_rate_per_day=0.0,
            power_outage_rate_per_day=0.0, maintenance_interval_days=0.0,
            upgrade_period_hours=8.0, upgrade_step=120.0)
        upgrades = [f for f in schedule if f.kind == "upgrade"]
        assert upgrades
        by_start = {}
        for f in upgrades:
            by_start.setdefault(round(f.time - f.domain_id * 120.0, 6),
                                []).append(f)
        for sweep in by_start.values():
            racks = sorted(f.domain_id for f in sweep)
            # Each sweep hits consecutive racks starting at 0, offset by
            # exactly one step per rack.
            assert racks == list(range(len(racks)))


class TestArchetypes:
    def _workload(self, era=None, seed=0):
        era = era or era_2019()
        rng = RngFactory(seed).child("cell-t").stream("archetypes")
        return ArchetypeWorkload(era=era, capacity=Resources(100.0, 100.0),
                                 horizon=12 * HOUR_SECONDS, rng=rng,
                                 id_offset=5_000_000)

    def test_mix_resolution(self):
        assert resolve_archetype_mix(None) is None
        mixed = resolve_archetype_mix("mixed")
        assert mixed is ARCHETYPE_MIXES["mixed"]
        assert resolve_archetype_mix(mixed) is mixed
        with pytest.raises(ValueError):
            resolve_archetype_mix("nope")
        with pytest.raises(TypeError):
            resolve_archetype_mix(1.5)
        with pytest.raises(ValueError):
            ArchetypeMix(hogs=-1)

    def test_generate_is_deterministic_and_sorted(self):
        a = self._workload(seed=9).generate(ARCHETYPE_MIXES["mixed"])
        b = self._workload(seed=9).generate(ARCHETYPE_MIXES["mixed"])
        assert [c.collection_id for c in a] == [c.collection_id for c in b]
        assert [c.submit_time for c in a] == [c.submit_time for c in b]
        times = [c.submit_time for c in a]
        assert times == sorted(times)
        assert all(0.0 <= t < 12 * HOUR_SECONDS for t in times)

    def test_users_named_by_archetype(self):
        jobs = self._workload().generate(ArchetypeMix(hogs=1, mice=2,
                                                      cron=1, bursty=1))
        kinds = {archetype_of_user(c.user) for c in jobs}
        assert kinds == {"hog", "mouse", "cron", "bursty"}
        assert archetype_of_user("user_0007") is None
        assert archetype_of_user("hog_0000") == "hog"

    def test_cron_users_submit_periodically(self):
        jobs = self._workload(seed=2).generate(ArchetypeMix(cron=1))
        times = sorted(c.submit_time for c in jobs)
        assert len(times) >= 8  # 12h horizon, period <= 1h
        gaps = np.diff(times)
        assert np.allclose(gaps, gaps[0])

    def test_era_2011_falls_back_to_supported_tiers(self):
        jobs = self._workload(era=era_2011()).generate(
            ARCHETYPE_MIXES["mixed"])
        supported = set(era_2011().tiers)
        assert jobs
        assert {c.tier for c in jobs} <= supported

    def test_ids_start_above_offset_and_are_unique(self):
        jobs = self._workload().generate(ARCHETYPE_MIXES["mixed"])
        ids = [c.collection_id for c in jobs]
        assert len(set(ids)) == len(ids)
        assert min(ids) > 5_000_000


class TestSimIntegration:
    @pytest.fixture(scope="class")
    def faulty_result(self):
        return small_test_scenario(seed=11, faults="heavy",
                                   archetype_mix="mixed").run()

    def test_faults_off_leaves_counters_zero(self):
        result = small_test_scenario(seed=4, machines_per_cell=8,
                                     horizon_hours=2.0).run()
        c = result.counters
        assert c.fault_events == 0
        assert c.fault_machine_outages == 0
        assert c.resubmissions == 0
        assert not result.events.resubmit_events

    def test_faults_inject_outages_and_recoveries(self, faulty_result):
        c = faulty_result.counters
        assert c.fault_events > 0
        assert c.fault_machine_outages > 0
        removes = [e for e in faulty_result.events.machine_events
                   if e.event == "REMOVE"]
        adds = [e for e in faulty_result.events.machine_events
                if e.event == "ADD" and e.time > 0]
        assert len(removes) == c.fault_machine_outages
        # Every outage inside the horizon recovers (ADD) after its
        # duration; the tail may still be down at the horizon.
        assert len(adds) >= len(removes) - len(
            faulty_result.machines)
        # All machines that recovered are up at the end or down again.
        assert any(m.up for m in faulty_result.machines)

    def test_resubmission_chains_follow_policy(self, faulty_result):
        policy = FAULT_PROFILES["heavy"].resubmit
        events = faulty_result.events.resubmit_events
        assert events
        chains = {}
        for e in events:
            chains.setdefault(e.root_collection_id, []).append(e)
        for root, chain in chains.items():
            chain.sort(key=lambda e: e.attempt)
            attempts = [e.attempt for e in chain]
            assert attempts == list(range(1, len(chain) + 1))
            assert all(e.attempt <= policy.max_attempts for e in chain)
            for e in chain:
                assert e.delay == pytest.approx(policy.delay(e.attempt))
                assert e.root_collection_id == root

    def test_resubmitted_ids_are_fresh(self, faulty_result):
        events = faulty_result.events.resubmit_events
        clone_ids = [e.collection_id for e in events]
        # Every clone gets a brand-new id: unique, never its
        # predecessor's, never an id from the original workload block.
        assert len(set(clone_ids)) == len(clone_ids)
        workload_ids = {e.root_collection_id for e in events}
        for e in events:
            assert e.collection_id != e.prev_collection_id
            assert e.collection_id not in workload_ids

    def test_storm_profile_resubmits_more(self, faulty_result):
        storm = small_test_scenario(seed=11, faults="storm",
                                    archetype_mix="mixed").run()
        assert storm.counters.resubmissions > \
            faulty_result.counters.resubmissions

    def test_fault_rate_zero_equivalent_profile_quiet(self):
        quiet = small_test_scenario(seed=11, faults="light",
                                    fault_rate=1e-9).run()
        assert quiet.counters.fault_events <= 2  # planned maintenance only
