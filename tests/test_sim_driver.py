"""Tests for the parallel multi-cell run driver (repro.sim.driver).

The driver's contract: ``run_cells(scenarios, workers=N)`` returns the
same results as running each scenario inline — identical traces (cells
derive all randomness from their scenario seed) and identical obs
counters (each worker's metrics snapshot is merged exactly once).
"""

import hashlib

import numpy as np

from repro import obs
from repro.sim.driver import default_workers, run_cells
from repro.trace import encode_cell
from repro.workload import scenarios_2019, small_test_scenario


def _fingerprint(trace) -> str:
    """SHA-256 over every table's columns, byte-exact."""
    h = hashlib.sha256()
    for name in sorted(trace.tables):
        table = trace.tables[name]
        h.update(name.encode())
        for col in table.column_names:
            values = table.column(col).values
            h.update(col.encode())
            if values.dtype == object:
                h.update(str(values.tolist()).encode())
            else:
                h.update(np.ascontiguousarray(values).tobytes())
    return h.hexdigest()


def _scenarios():
    """Three fast, distinct 2019 cells (fresh objects per call)."""
    return scenarios_2019(seed=7, machines_per_cell=12, horizon_hours=3.0,
                          arrival_scale=0.015, cells=["a", "c", "g"])


class TestRunCells:
    def test_empty_input(self):
        assert run_cells([], workers=4) == []

    def test_serial_path_matches_scenario_run(self):
        scenario = small_test_scenario(seed=3, machines_per_cell=12,
                                       horizon_hours=3.0)
        direct = small_test_scenario(seed=3, machines_per_cell=12,
                                     horizon_hours=3.0).run()
        [via_driver] = run_cells([scenario], workers=1)
        assert _fingerprint(encode_cell(via_driver)) == \
            _fingerprint(encode_cell(direct))

    def test_results_come_back_in_input_order(self):
        results = run_cells(_scenarios(), workers=2)
        assert [r.config.name for r in results] == ["a", "c", "g"]

    def test_parallel_traces_identical_to_serial(self):
        # The determinism sweep: workers=2 must yield byte-identical
        # traces to the serial path for every cell.
        serial = [_fingerprint(encode_cell(r))
                  for r in run_cells(_scenarios(), workers=1)]
        parallel = [_fingerprint(encode_cell(r))
                    for r in run_cells(_scenarios(), workers=2)]
        assert serial == parallel

    def test_obs_counters_merged_exactly_once(self):
        with obs.scoped_registry() as serial_reg:
            run_cells(_scenarios(), workers=1)
        with obs.scoped_registry() as parallel_reg:
            run_cells(_scenarios(), workers=2)
        serial = serial_reg.snapshot().counters
        parallel = parallel_reg.snapshot().counters
        # Every simulator counter the serial run incremented must come
        # back with the same value from the pooled run (no double
        # merges, no dropped snapshots).
        sim_keys = [k for k, v in serial.items()
                    if k.startswith("sim.") and v
                    and k != "sim.parallel_batches"]
        assert sim_keys  # the run must actually have recorded something
        for key in sim_keys:
            assert parallel.get(key) == serial[key], key
        assert parallel.get("sim.parallel_batches") == 1

    def test_single_scenario_stays_inline(self):
        scenario = small_test_scenario(seed=1, machines_per_cell=8,
                                       horizon_hours=2.0)
        with obs.scoped_registry() as registry:
            run_cells([scenario], workers=4)
        # One scenario never pays pool startup: no parallel batch.
        assert not registry.snapshot().counters.get("sim.parallel_batches")

    def test_default_workers_positive(self):
        assert default_workers() >= 1


class TestEdgeCases:
    """Degenerate inputs surfaced by the campaign runner: zero cells,
    workers exceeding the cell count, non-positive worker counts."""

    def test_empty_input_with_record_flushes_sink(self, tmp_path):
        from repro.obs.recorder import RunRecorder
        record = RunRecorder(tmp_path / "frames.jsonl")
        assert run_cells([], workers=4, record=record) == []
        record.close()
        # The sink was flushed and closed: the file exists and is empty
        # (no cells, no frames), not absent or half-buffered.
        assert (tmp_path / "frames.jsonl").read_text() == ""

    def test_workers_zero_and_negative_run_serial(self):
        for workers in (0, -3):
            # Fresh scenario per run: simulating mutates collection state.
            scenario = small_test_scenario(seed=5, machines_per_cell=8,
                                           horizon_hours=2.0)
            with obs.scoped_registry() as registry:
                [result] = run_cells([scenario], workers=workers)
            assert result.counters.jobs_submitted > 0
            # Serial path: no pool was ever spawned.
            counters = registry.snapshot().counters
            assert not counters.get("sim.parallel_batches")

    def test_pool_never_exceeds_cell_count(self):
        # 3 cells with workers=8 must spawn exactly 3 processes: the
        # pool-size gauge records min(workers, cells), never idle extras.
        with obs.scoped_registry() as registry:
            results = run_cells(_scenarios(), workers=8)
        assert len(results) == 3
        assert registry.snapshot().gauges.get("sim.pool_workers") == 3

    def test_recorded_pool_never_exceeds_cell_count(self, tmp_path):
        from repro.obs.recorder import RunRecorder
        record = RunRecorder(tmp_path / "frames.jsonl")
        with obs.scoped_registry() as registry:
            results = run_cells(_scenarios(), workers=16, record=record)
        record.close()
        assert len(results) == 3
        assert registry.snapshot().gauges.get("sim.pool_workers") == 3


def _faulty_scenarios():
    """Two failure-heavy cells: heavy faults + mixed archetypes."""
    return scenarios_2019(seed=7, machines_per_cell=12, horizon_hours=3.0,
                          arrival_scale=0.015, sample_period=300.0,
                          cells=["a", "g"], faults="heavy",
                          fault_rate=25.0, archetype_mix="mixed")


class TestFailureHeavyDeterminism:
    """The scenario-pack determinism sweep: fault injection, resubmission
    and archetype workloads must stay bit-exact between serial and
    pooled execution at a fixed seed."""

    def test_parallel_traces_identical_to_serial(self):
        serial = run_cells(_faulty_scenarios(), workers=1)
        pooled = run_cells(_faulty_scenarios(), workers=2)
        assert any(r.counters.fault_events for r in serial)
        assert [_fingerprint(encode_cell(r)) for r in serial] == \
            [_fingerprint(encode_cell(r)) for r in pooled]
        # The resubmission side stream is part of the contract too.
        assert [r.events.resubmit_events for r in serial] == \
            [r.events.resubmit_events for r in pooled]

    def test_rerun_is_bit_exact(self):
        a = run_cells(_faulty_scenarios(), workers=1)
        b = run_cells(_faulty_scenarios(), workers=1)
        assert [_fingerprint(encode_cell(r)) for r in a] == \
            [_fingerprint(encode_cell(r)) for r in b]
        assert [r.counters for r in a] == [r.counters for r in b]

    def test_serial_equals_pooled_frames(self, tmp_path):
        from repro.obs.recorder import RunRecorder, StatusLine, \
            read_frames, strip_volatile

        def record_run(name, workers):
            path = tmp_path / f"{name}.jsonl"
            with obs.scoped_registry():
                record = RunRecorder(path, interval=3600.0,
                                     status=StatusLine(enabled=False))
                run_cells(_faulty_scenarios(), workers=workers,
                          record=record)
                record.finalize("test")
                record.close()
            return [strip_volatile(f) for f in read_frames(path)
                    if f["kind"] == "frame"]

        serial = record_run("serial", None)
        pooled = record_run("pooled", 2)
        assert serial  # the failure-heavy run must emit cell frames
        assert serial == pooled
