"""Property-based tests over the whole simulator.

Hypothesis generates small random workloads (shapes, tiers, timings,
outcomes, dependencies); every one must run to completion, produce an
invariant-clean trace, and satisfy the engine's accounting identities.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import CellConfig, CellSim, Machine, Resources, Tier
from repro.sim.entities import (
    Collection,
    CollectionType,
    EndReason,
    Instance,
    SchedulerKind,
)
from repro.trace import encode_cell, validate_trace
from repro.util.rng import RngFactory

TIERS = [Tier.FREE, Tier.BEB, Tier.MID, Tier.PROD]
ENDS = [EndReason.FINISH, EndReason.KILL, EndReason.FAIL]

job_strategy = st.fixed_dictionaries({
    "tier": st.sampled_from(TIERS),
    "submit": st.floats(min_value=0.0, max_value=3600.0 * 3),
    "duration": st.floats(min_value=30.0, max_value=3600.0 * 6),
    "n_tasks": st.integers(min_value=1, max_value=6),
    "cpu": st.floats(min_value=0.01, max_value=0.4),
    "mem": st.floats(min_value=0.01, max_value=0.4),
    "end": st.sampled_from(ENDS),
    "batch": st.booleans(),
    "child_of_previous": st.booleans(),
})

PRIORITY = {Tier.FREE: 25, Tier.BEB: 112, Tier.MID: 117, Tier.PROD: 200}


def build_workload(specs):
    collections = []
    for i, spec in enumerate(specs):
        parent = None
        if spec["child_of_previous"] and collections:
            parent = collections[-1].collection_id
        c = Collection(
            collection_id=i + 1,
            collection_type=CollectionType.JOB,
            priority=PRIORITY[spec["tier"]],
            tier=spec["tier"],
            user=f"user_{i % 3}",
            submit_time=spec["submit"],
            scheduler=(SchedulerKind.BATCH if spec["batch"]
                       and spec["tier"] is Tier.BEB else SchedulerKind.BORG),
            parent_id=parent,
            planned_duration=spec["duration"],
            planned_end=spec["end"],
            cpu_usage_fraction=0.5,
            mem_usage_fraction=0.5,
        )
        for idx in range(spec["n_tasks"]):
            c.instances.append(Instance(
                collection=c, index=idx,
                request=Resources(spec["cpu"], spec["mem"]),
            ))
        collections.append(c)
    return collections


def run(specs, seed):
    config = CellConfig(
        name="prop", era="2019", horizon=6 * 3600.0,
        restart_rate_per_hour=1.0,
        machine_downtime_per_month=50.0,
        machine_downtime_duration=300.0,
    )
    machines = [Machine(i, Resources(1.0, 1.0)) for i in range(3)]
    sim = CellSim(config, machines, build_workload(specs), RngFactory(seed))
    return sim.run()


@settings(max_examples=25, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=12),
       st.integers(min_value=0, max_value=100))
def test_any_workload_yields_valid_trace(specs, seed):
    result = run(specs, seed)
    trace = encode_cell(result)
    assert validate_trace(trace) == []


@settings(max_examples=25, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=12),
       st.integers(min_value=0, max_value=100))
def test_engine_accounting_identities(specs, seed):
    result = run(specs, seed)
    # Counters match the event log.
    schedules = sum(1 for e in result.events.instance_events
                    if e.event.value == "SCHEDULE")
    assert schedules == result.counters.schedule_events
    # Every dead instance's collection is done, with a matching reason.
    for collection in result.collections:
        if collection.is_done:
            for inst in collection.instances:
                assert inst.end_reason == collection.end_reason
        # No instance runs outside [0, horizon].
        for inst in collection.instances:
            for start, end, *_ in inst.run_intervals:
                assert 0.0 <= start <= end <= 6 * 3600.0 + 1e-6
    # Machines are internally consistent at the end: allocation equals
    # the sum of requests of instances still placed.
    for machine in result.machines:
        total = sum((i.request.cpu for i in machine.instances), 0.0)
        assert abs(machine.allocated.cpu - total) < 1e-6


@settings(max_examples=10, deadline=None)
@given(st.lists(job_strategy, min_size=1, max_size=8),
       st.integers(min_value=0, max_value=50))
def test_determinism_property(specs, seed):
    a = run(specs, seed)
    b = run(specs, seed)
    assert len(a.events.instance_events) == len(b.events.instance_events)
    np.testing.assert_array_equal(a.usage["avg_cpu"], b.usage["avg_cpu"])