"""Unit tests for the expression language and CSV round-trips."""

import io

import numpy as np
import pytest

from repro.table import Table, col, lit, read_csv, write_csv
from repro.util.errors import SchemaError


@pytest.fixture
def table():
    return Table({"x": [1.0, 2.0, 3.0], "name": ["a", "b", "c"], "n": [1, 2, 3]})


class TestExpr:
    def test_column_reference(self, table):
        assert col("x").evaluate(table).tolist() == [1.0, 2.0, 3.0]

    def test_literal_broadcast(self, table):
        assert lit(7).evaluate(table).tolist() == [7, 7, 7]

    def test_arithmetic(self, table):
        expr = (col("x") + 1) * 2 - col("n")
        assert expr.evaluate(table).tolist() == [3.0, 4.0, 5.0]

    def test_reflected_arithmetic(self, table):
        assert (10 - col("x")).evaluate(table).tolist() == [9.0, 8.0, 7.0]
        assert (12 / col("x")).evaluate(table).tolist() == [12.0, 6.0, 4.0]

    def test_negation(self, table):
        assert (-col("n")).evaluate(table).tolist() == [-1, -2, -3]

    def test_comparison_chain(self, table):
        mask = ((col("x") > 1) & (col("x") < 3)).evaluate(table)
        assert mask.tolist() == [False, True, False]

    def test_or_and_invert(self, table):
        mask = (~((col("n") == 1) | (col("n") == 3))).evaluate(table)
        assert mask.tolist() == [False, True, False]

    def test_isin(self, table):
        assert col("name").isin(["a", "c"]).evaluate(table).tolist() == [True, False, True]

    def test_isin_numeric(self, table):
        assert col("n").isin([2]).evaluate(table).tolist() == [False, True, False]

    def test_between_inclusive(self, table):
        assert col("n").between(2, 3).evaluate(table).tolist() == [False, True, True]

    def test_expr_vs_expr_comparison(self, table):
        assert (col("x") == col("n")).evaluate(table).tolist() == [True, True, True]

    def test_description_readable(self):
        expr = (col("a") + 1) > col("b")
        assert "a" in expr.description and ">" in expr.description

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(col("a"))


class TestCsv:
    def test_roundtrip_all_kinds(self, tmp_path):
        t = Table({
            "f": [1.5, -2.25],
            "i": [1, -2],
            "s": ["hello", "wor,ld"],
            "b": [True, False],
        })
        path = tmp_path / "t.csv"
        write_csv(t, path)
        back = read_csv(path)
        assert back.to_dict() == t.to_dict()
        assert [back.column(c).kind for c in back.column_names] == ["float", "int", "str", "bool"]

    def test_float_precision_preserved(self, tmp_path):
        t = Table({"x": [0.1 + 0.2, 1e-17]})
        path = tmp_path / "t.csv"
        write_csv(t, path)
        assert read_csv(path).column("x").to_list() == t.column("x").to_list()

    def test_column_subset(self, tmp_path):
        t = Table({"a": [1], "b": [2]})
        path = tmp_path / "t.csv"
        write_csv(t, path)
        assert read_csv(path, columns=["b"]).column_names == ["b"]

    def test_missing_column_requested(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv(Table({"a": [1]}), path)
        with pytest.raises(SchemaError):
            read_csv(path, columns=["zz"])

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(SchemaError):
            read_csv(path)

    def test_ragged_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n3\n")
        with pytest.raises(SchemaError, match="line 3"):
            read_csv(path)

    def test_buffer_io(self):
        buf = io.StringIO()
        write_csv(Table({"a": [1, 2]}), buf)
        buf.seek(0)
        assert read_csv(buf).column("a").to_list() == [1, 2]

    def test_header_only_yields_empty_table(self, tmp_path):
        path = tmp_path / "h.csv"
        path.write_text("a,b\n")
        t = read_csv(path)
        assert len(t) == 0 and t.column_names == ["a", "b"]
