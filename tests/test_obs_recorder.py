"""Flight-recorder tests: crash-safe sink, frame determinism, acceptance.

The determinism contract under test (DESIGN.md §11): at a fixed seed the
frames' deterministic payload is identical run to run and identical
between serial and ``--workers 2`` execution; everything wall-clock
flavored lives under the single volatile ``"wall"`` key.  The
acceptance block pins the ISSUE criteria: a seed-11 recorded simulate
emits one frame per simulated hour, monotonically timestamped, and the
final frame's cumulative counters equal the obs report written at the
same point of the run.
"""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.recorder import (
    FRAMES_SCHEMA,
    CellRecorder,
    FrameSchemaError,
    FrameSink,
    RunRecorder,
    StatusLine,
    frames_fingerprint,
    read_frames,
    recover_jsonl,
    render_frames,
    strip_volatile,
)
from repro.sim.driver import run_cells
from repro.util.timeutil import HOUR_SECONDS
from repro.workload.scenarios import scenarios_2019


def _frame(seq, **extra):
    base = {"schema": FRAMES_SCHEMA, "kind": "frame", "cell": "d",
            "seq": seq, "t_sim": seq * HOUR_SECONDS, "counters": {},
            "gauges": {}, "queues": {}, "wall": {"elapsed_s": 0.1 * seq}}
    base.update(extra)
    return base


# -- sink crash safety ------------------------------------------------------

class TestFrameSink:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "frames.jsonl"
        with FrameSink(path) as sink:
            for seq in range(5):
                sink.append(_frame(seq))
        frames = read_frames(path)
        assert [f["seq"] for f in frames] == list(range(5))

    def test_buffers_until_cadence_then_flushes(self, tmp_path):
        path = tmp_path / "frames.jsonl"
        sink = FrameSink(path, buffer_frames=4)
        for seq in range(3):
            sink.append(_frame(seq))
        assert path.read_text() == ""  # still buffered
        sink.append(_frame(3))  # 4th append crosses the cadence
        assert len(path.read_text().splitlines()) == 4
        sink.close()

    def test_append_after_close_raises(self, tmp_path):
        sink = FrameSink(tmp_path / "frames.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.append(_frame(0))

    def test_recover_truncates_partial_tail(self, tmp_path):
        path = tmp_path / "frames.jsonl"
        with FrameSink(path) as sink:
            for seq in range(3):
                sink.append(_frame(seq))
        good = path.read_bytes()
        path.write_bytes(good + b'{"schema": "repro.obs.fra')  # crash mid-write
        dropped = recover_jsonl(path)
        assert dropped == len(b'{"schema": "repro.obs.fra')
        assert path.read_bytes() == good
        assert [f["seq"] for f in read_frames(path)] == [0, 1, 2]

    def test_recover_drops_broken_but_terminated_line(self, tmp_path):
        path = tmp_path / "frames.jsonl"
        with FrameSink(path) as sink:
            sink.append(_frame(0))
        good = path.read_bytes()
        path.write_bytes(good + b"{not json}\n")
        assert recover_jsonl(path) == len(b"{not json}\n")
        assert [f["seq"] for f in read_frames(path)] == [0]

    def test_recover_missing_and_empty_files(self, tmp_path):
        assert recover_jsonl(tmp_path / "absent.jsonl") == 0
        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        assert recover_jsonl(empty) == 0

    def test_append_mode_recovers_then_continues(self, tmp_path):
        path = tmp_path / "frames.jsonl"
        with FrameSink(path) as sink:
            sink.append(_frame(0))
        with open(path, "ab") as f:
            f.write(b'{"half": ')
        sink = FrameSink(path, append=True)
        assert sink.recovered_bytes == len(b'{"half": ')
        sink.append(_frame(1))
        sink.close()
        assert [f["seq"] for f in read_frames(path)] == [0, 1]

    def test_read_frames_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "frames.jsonl"
        path.write_text(json.dumps(_frame(0)) + "\n"
                        + '{"schema": "repro.obs.frames/99"}\n')
        with pytest.raises(FrameSchemaError, match="repro.obs.frames/99"):
            read_frames(path)

    def test_read_frames_rejects_non_object_lines(self, tmp_path):
        path = tmp_path / "frames.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(FrameSchemaError, match="not a JSON object"):
            read_frames(path)


# -- sampling semantics -----------------------------------------------------

class TestCellRecorder:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            CellRecorder("d", interval=0.0)

    def test_tick_emits_one_frame_per_crossed_boundary(self):
        with obs.scoped_registry():
            rec = CellRecorder("d", interval=HOUR_SECONDS)
            rec.attach({"pending": lambda: 7})
            obs.inc("sim.events_processed", 3)
            rec.tick(2.5 * HOUR_SECONDS)  # crosses t=1h and t=2h
        assert [f["t_sim"] for f in rec.frames] == [HOUR_SECONDS,
                                                    2 * HOUR_SECONDS]
        assert all(f["queues"] == {"pending": 7} for f in rec.frames)
        assert all(f["counters"]["sim.events_processed"] == 3
                   for f in rec.frames)

    def test_finish_emits_trailing_boundaries_inclusive(self):
        with obs.scoped_registry():
            rec = CellRecorder("d", interval=HOUR_SECONDS)
            rec.attach({})
            rec.tick(1.5 * HOUR_SECONDS)
            rec.finish(4 * HOUR_SECONDS)
        assert [f["t_sim"] / HOUR_SECONDS for f in rec.frames] == [1, 2, 3, 4]
        assert [f["seq"] for f in rec.frames] == [0, 1, 2, 3]

    def test_counters_probe_overlays_live_sim_counters(self):
        live = {"evictions": 0}
        with obs.scoped_registry():
            rec = CellRecorder("d", interval=HOUR_SECONDS)
            rec.attach({}, counters_probe=lambda: live)
            live["evictions"] = 5
            rec.tick(HOUR_SECONDS)
        assert rec.frames[0]["counters"]["sim.evictions"] == 5

    def test_strip_volatile_removes_only_wall(self):
        frame = _frame(0)
        stripped = strip_volatile(frame)
        assert "wall" not in stripped
        assert set(frame) - set(stripped) == {"wall"}

    def test_fingerprint_ignores_wall_but_not_payload(self):
        a, b = _frame(0), _frame(0)
        b["wall"] = {"elapsed_s": 99.0, "rss_kb": 1}
        assert frames_fingerprint([a]) == frames_fingerprint([b])
        b["counters"] = {"sim.events_processed": 1}
        assert frames_fingerprint([a]) != frames_fingerprint([b])


class TestStatusLine:
    def test_inert_off_tty(self):
        class Stream:
            def __init__(self):
                self.data = ""

            def write(self, text):
                self.data += text

            def flush(self):
                pass

            def isatty(self):
                return False

        stream = Stream()
        line = StatusLine(stream)
        line.update("hello")
        line.close()
        assert stream.data == ""

    def test_overwrites_in_place_on_tty(self):
        class Tty:
            def __init__(self):
                self.data = ""

            def write(self, text):
                self.data += text

            def flush(self):
                pass

            def isatty(self):
                return True

        stream = Tty()
        line = StatusLine(stream)
        line.update("aaaa")
        line.update("bb")
        line.close()
        assert "\raaaa" in stream.data
        assert "\rbb  " in stream.data  # shorter text pads the old width
        assert stream.data.endswith("\r")  # cleared, not newline-terminated


# -- determinism: fixed seed, serial vs pooled ------------------------------

def _scenarios():
    return scenarios_2019(seed=3, machines_per_cell=16, horizon_hours=6.0,
                          arrival_scale=0.01, sample_period=300.0,
                          cells=["c", "d"])


def _record_run(tmp_path, name, workers):
    path = tmp_path / f"{name}.jsonl"
    with obs.scoped_registry():
        record = RunRecorder(path, interval=HOUR_SECONDS,
                             status=StatusLine(enabled=False))
        run_cells(_scenarios(), workers=workers, record=record)
        record.finalize("test")
        record.close()
    return read_frames(path)


class TestRecordedRunDeterminism:
    @pytest.fixture(scope="class")
    def serial_frames(self, tmp_path_factory):
        return _record_run(tmp_path_factory.mktemp("rec"), "serial", None)

    @pytest.fixture(scope="class")
    def pooled_frames(self, tmp_path_factory):
        return _record_run(tmp_path_factory.mktemp("rec"), "pooled", 2)

    def test_rerun_is_frame_identical_modulo_wall(self, serial_frames,
                                                  tmp_path):
        again = _record_run(tmp_path, "again", None)
        assert frames_fingerprint(serial_frames) == frames_fingerprint(again)

    def test_wall_payload_present_and_volatile_only_there(self, serial_frames):
        cell_frames = [f for f in serial_frames if f["kind"] == "frame"]
        assert cell_frames
        for frame in cell_frames:
            assert set(frame["wall"]) == {"elapsed_s", "events_per_s",
                                          "rss_kb"}

    def test_serial_equals_workers_two_cell_frames(self, serial_frames,
                                                   pooled_frames):
        serial = [strip_volatile(f) for f in serial_frames
                  if f["kind"] == "frame"]
        pooled = [strip_volatile(f) for f in pooled_frames
                  if f["kind"] == "frame"]
        assert serial == pooled
        # Frames arrive in scenario order: all of cell c, then all of d.
        assert [f["cell"] for f in serial] == \
            sorted([f["cell"] for f in serial])

    def test_final_frames_agree_modulo_pool_counters(self, serial_frames,
                                                     pooled_frames):
        (serial_final,) = [f for f in serial_frames if f["kind"] == "final"]
        (pooled_final,) = [f for f in pooled_frames if f["kind"] == "final"]
        # The pooled parent additionally counts its own fan-out.
        pool_only = {"sim.parallel_batches"}
        s_counters = {k: v for k, v in serial_final["counters"].items()
                      if k not in pool_only}
        p_counters = {k: v for k, v in pooled_final["counters"].items()
                      if k not in pool_only}
        assert s_counters == p_counters
        pool_gauges = {"sim.pool_workers"}
        s_gauges = {k: v for k, v in serial_final["gauges"].items()
                    if k not in pool_gauges}
        p_gauges = {k: v for k, v in pooled_final["gauges"].items()
                    if k not in pool_gauges}
        assert s_gauges == p_gauges


# -- acceptance: the recorded CLI run ---------------------------------------

class TestRecordedSimulateAcceptance:
    @pytest.fixture(scope="class")
    def recorded_run(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("recorded")
        frames_path = root / "frames.jsonl"
        report_path = root / "report.json"
        with obs.scoped_registry():
            rc = main([
                "simulate", "--cells", "d", "--machines", "24",
                "--hours", "24", "--scale", "0.012", "--seed", "11",
                "--out", str(root / "traces"),
                "--record", str(frames_path),
                "--obs-out", str(report_path),
            ])
        assert rc == 0
        return frames_path, report_path

    def test_emits_hourly_monotonic_frames(self, recorded_run):
        frames_path, _ = recorded_run
        frames = read_frames(frames_path)
        cell_frames = [f for f in frames if f["kind"] == "frame"]
        assert len(cell_frames) >= 24
        times = [f["t_sim"] for f in cell_frames]
        assert times == sorted(times)
        assert all(b - a == HOUR_SECONDS for a, b in zip(times, times[1:]))
        events = [f["counters"].get("sim.events_processed", 0)
                  for f in cell_frames]
        assert events == sorted(events)  # cumulative counters never drop

    def test_final_frame_counters_equal_obs_report(self, recorded_run):
        frames_path, report_path = recorded_run
        (final,) = [f for f in read_frames(frames_path)
                    if f["kind"] == "final"]
        report = json.loads(report_path.read_text())
        report_counters = {}
        for section in report["sections"].values():
            report_counters.update(section["counters"])
        assert final["counters"] == report_counters

    def test_stats_renders_frames_table(self, recorded_run, capsys):
        frames_path, _ = recorded_run
        assert main(["stats", str(frames_path)]) == 0
        out = capsys.readouterr().out
        assert "cell d" in out
        assert "hour" in out
        assert "final frame" in out

    def test_stats_json_format_round_trips(self, recorded_run, capsys):
        frames_path, _ = recorded_run
        assert main(["stats", str(frames_path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["schema"] == FRAMES_SCHEMA

    def test_stats_unknown_schema_errors_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "future.json"
        bad.write_text('{"schema": "repro.obs/9", "sections": {}}\n')
        assert main(["stats", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "unsupported repro.obs schema" in err
        assert "repro.obs/9" in err

    def test_stats_unknown_frames_schema_errors_cleanly(self, tmp_path,
                                                        capsys):
        bad = tmp_path / "future.jsonl"
        bad.write_text('{"schema": "repro.obs.frames/7"}\n'
                       '{"schema": "repro.obs.frames/7"}\n')
        assert main(["stats", str(bad)]) == 2
        assert "repro.obs.frames/7" in capsys.readouterr().err

    def test_render_frames_differences_are_per_interval(self, recorded_run):
        frames_path, _ = recorded_run
        frames = read_frames(frames_path)
        text = render_frames(frames)
        cell_frames = [f for f in frames if f["kind"] == "frame"]
        total = cell_frames[-1]["counters"]["sim.events_processed"]
        # The per-hour +events column sums back to the cumulative total.
        rows = [line.split() for line in text.splitlines()
                if line.strip() and line.lstrip()[0].isdigit()]
        assert sum(int(r[2]) for r in rows) == total
