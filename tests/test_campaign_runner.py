"""End-to-end tests of the campaign runner: caching, resume, fault
isolation, serial/parallel determinism, and the CLI subcommands."""

import json

import pytest

from repro import obs
from repro.campaign import (
    CampaignSpec,
    EvalPoint,
    build_report,
    campaign_status,
    load_point_result,
    parse_spec,
    point_key,
    render_report,
    run_campaign,
)
from repro.campaign.runner import result_path
from repro.campaign.spec import DEFAULT_PARAMS
from repro.cli import main


def tiny_spec(n_values=2, seeds=(0, 1)) -> CampaignSpec:
    """A seconds-fast campaign: n_values overcommit settings x seeds."""
    values = [1.2, 1.9, 1.5, 1.7][:n_values]
    return parse_spec({
        "campaign": "tiny",
        "base": {"machines": 8, "hours": 2.0, "scale": 0.012,
                 "sample_period": 300.0, "cells": ["d"]},
        "grid": {"overcommit_cpu": values},
        "seeds": list(seeds),
    })


def broken_point(point_id=99, seed=0) -> EvalPoint:
    """A point that passes the dataclass but fails at scenario build
    time (unknown cell), exercising the worker error path."""
    params = dict(DEFAULT_PARAMS)
    params.update({"machines": 8, "hours": 2.0, "cells": ["nonexistent"]})
    return EvalPoint(point_id=point_id, params=params, grid_values={},
                     seed=seed, key=point_key(params, seed))


class TestCachedRuns:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        spec = tiny_spec()
        cold = run_campaign(spec, tmp_path)
        assert (cold.total, cold.hits, cold.ran, cold.errors) == (4, 0, 4, 0)
        warm = run_campaign(spec, tmp_path)
        assert (warm.total, warm.hits, warm.ran, warm.errors) == (4, 4, 0, 0)
        # Hit payloads are byte-for-byte the cached results.
        assert [r["key"] for r in warm.results] == \
            [p.key for p in spec.points]

    def test_force_reruns_everything(self, tmp_path):
        spec = tiny_spec(n_values=1, seeds=(0,))
        run_campaign(spec, tmp_path)
        forced = run_campaign(spec, tmp_path, force=True)
        assert forced.hits == 0 and forced.ran == 1

    def test_spec_change_invalidates_only_changed_points(self, tmp_path):
        run_campaign(tiny_spec(n_values=2), tmp_path)
        grown = tiny_spec(n_values=3)
        second = run_campaign(grown, tmp_path)
        assert second.hits == 4 and second.ran == 2

    def test_cache_is_spec_formatting_independent(self, tmp_path):
        spec = tiny_spec(n_values=1, seeds=(0,))
        run_campaign(spec, tmp_path)
        # An equivalent spec with explicit defaults and float-typed ints.
        equivalent = parse_spec({
            "campaign": "tiny",
            "base": {"machines": 8.0, "hours": 2, "scale": 0.012,
                     "sample_period": 300, "cells": ["d"], "era": "2019"},
            "grid": {"overcommit_cpu": [1.2]},
            "seeds": [0],
        })
        warm = run_campaign(equivalent, tmp_path)
        assert warm.hits == 1 and warm.ran == 0


class TestResume:
    def test_truncated_result_discarded_and_rerun(self, tmp_path):
        spec = tiny_spec(n_values=1, seeds=(0,))
        run_campaign(spec, tmp_path)
        path = result_path(tmp_path, spec.points[0].key)
        intact = path.read_bytes()
        # Simulate a crash mid-write: chop the JSON line in half.
        path.write_bytes(intact[: len(intact) // 2])
        assert load_point_result(tmp_path, spec.points[0].key) is None
        resumed = run_campaign(spec, tmp_path)
        assert resumed.hits == 0 and resumed.ran == 1
        # The re-run result is identical up to the volatile wall clock.
        strip = lambda raw: {k: v for k, v in json.loads(raw).items()
                             if k != "wall"}
        assert strip(path.read_text()) == strip(intact)

    def test_foreign_or_mismatched_payload_discarded(self, tmp_path):
        spec = tiny_spec(n_values=1, seeds=(0,))
        point = spec.points[0]
        path = result_path(tmp_path, point.key)
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"schema": "other/1", "key": point.key})
                        + "\n")
        assert load_point_result(tmp_path, point.key) is None
        assert not path.exists()  # discarded so the next writer starts clean

    def test_missing_result_is_a_miss(self, tmp_path):
        spec = tiny_spec(n_values=1, seeds=(0,))
        assert load_point_result(tmp_path, spec.points[0].key) is None


class TestFaultIsolation:
    def _spec_with_broken_point(self, n_good=2):
        good = tiny_spec(n_values=n_good, seeds=(0,))
        points = list(good.points) + [broken_point()]
        return CampaignSpec(name=good.name, description="", base=good.base,
                            grid=good.grid, seeds=good.seeds,
                            points=tuple(points))

    def test_error_point_recorded_campaign_completes(self, tmp_path, capsys):
        spec = self._spec_with_broken_point()
        summary = run_campaign(spec, tmp_path)
        assert summary.ran == 3 and summary.errors == 1
        assert not summary.ok
        payload = load_point_result(tmp_path, broken_point().key)
        assert payload["status"] == "error"
        assert "nonexistent" in payload["error"]
        assert "failed" in capsys.readouterr().err
        # The good points all completed and are cached.
        states = [r["state"] for r in campaign_status(spec, tmp_path)]
        assert states == ["hit", "hit", "error"]

    def test_error_points_retry_on_next_run(self, tmp_path):
        spec = self._spec_with_broken_point()
        run_campaign(spec, tmp_path)
        again = run_campaign(spec, tmp_path)
        assert again.hits == 2 and again.ran == 1 and again.errors == 1

    def test_pooled_error_isolation(self, tmp_path):
        spec = self._spec_with_broken_point()
        summary = run_campaign(spec, tmp_path, workers=2)
        assert summary.errors == 1 and summary.ran == 3


class TestDeterminism:
    def test_parallel_matches_serial(self, tmp_path):
        spec = tiny_spec()
        serial = run_campaign(spec, tmp_path / "ser", workers=1)
        pooled = run_campaign(spec, tmp_path / "par", workers=3)
        strip = lambda r: {k: v for k, v in r.items() if k != "wall"}
        assert [strip(r) for r in serial.results] == \
            [strip(r) for r in pooled.results]
        assert render_report(build_report(spec, serial.results)) == \
            render_report(build_report(spec, pooled.results))

    def test_obs_counters_merged_exactly_once(self, tmp_path):
        spec = tiny_spec()
        with obs.scoped_registry() as serial_reg:
            run_campaign(spec, tmp_path / "ser", workers=1)
        with obs.scoped_registry() as pooled_reg:
            run_campaign(spec, tmp_path / "par", workers=2)
        serial = serial_reg.snapshot().counters
        pooled = pooled_reg.snapshot().counters
        sim_keys = [k for k, v in serial.items()
                    if k.startswith("sim.") and v]
        assert sim_keys
        for key in sim_keys:
            assert pooled.get(key) == serial[key], key
        assert pooled.get("campaign.parallel_batches") == 1

    def test_frames_journal_appends_across_runs(self, tmp_path):
        spec = tiny_spec(n_values=1, seeds=(0,))
        run_campaign(spec, tmp_path)
        run_campaign(spec, tmp_path)
        lines = [json.loads(line) for line in
                 (tmp_path / "frames.jsonl").read_text().splitlines()]
        # Two runs: (point + final) then (cached point + final).
        kinds = [(f["kind"], f.get("cached")) for f in lines]
        assert kinds == [("point", False), ("final", None),
                         ("point", True), ("final", None)]


class TestCli:
    @pytest.fixture()
    def spec_file(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({
            "campaign": "cli-tiny",
            "base": {"machines": 8, "hours": 2.0, "scale": 0.012,
                     "sample_period": 300.0, "cells": ["d"]},
            "grid": {"overcommit_cpu": [1.2, 1.9]},
            "seeds": [0],
        }))
        return path

    def test_run_status_report_roundtrip(self, spec_file, tmp_path, capsys):
        out = tmp_path / "campaign_out"
        summary_json = tmp_path / "summary.json"
        rc = main(["campaign", "run", str(spec_file), "--out", str(out),
                   "--workers", "2", "--summary-out", str(summary_json)])
        assert rc == 0
        assert "2 run" in capsys.readouterr().out
        cold = json.loads(summary_json.read_text())
        assert cold["points"] == 2 and cold["hits"] == 0

        rc = main(["campaign", "run", str(spec_file), "--out", str(out),
                   "--summary-out", str(summary_json)])
        assert rc == 0
        warm = json.loads(summary_json.read_text())
        assert warm["hits"] == warm["points"] == 2 and warm["errors"] == 0
        capsys.readouterr()

        rc = main(["campaign", "status", str(spec_file), "--out", str(out),
                   "--json"])
        assert rc == 0
        status = json.loads(capsys.readouterr().out)
        assert status["hits"] == 2 and status["missing"] == 0

        rc = main(["campaign", "report", str(spec_file), "--out", str(out)])
        assert rc == 0
        text = capsys.readouterr().out
        assert "Pareto front" in text and "overcommit_cpu" in text

        rc = main(["campaign", "report", str(spec_file), "--out", str(out),
                   "--format", "json"])
        assert rc == 0
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == "repro.campaign.report/1"
        assert len(report["rows"]) == 2

    def test_bad_spec_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert main(["campaign", "run", str(bad)]) == 2
        assert "campaign run:" in capsys.readouterr().err

    def test_report_without_results_exits_1(self, spec_file, tmp_path,
                                            capsys):
        rc = main(["campaign", "report", str(spec_file), "--out",
                   str(tmp_path / "empty")])
        assert rc == 1
        assert "no cached results" in capsys.readouterr().err

    def test_status_text_lists_points(self, spec_file, tmp_path, capsys):
        rc = main(["campaign", "status", str(spec_file), "--out",
                   str(tmp_path / "none")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 point(s)" in out and out.count("missing") >= 2
