"""Tests for the batch-queue analysis."""

import numpy as np
import pytest

from repro.analysis import batch_queue


class TestQueueWaits:
    def test_waits_nonnegative(self, trace_2019):
        waits = batch_queue.queue_waits(trace_2019)
        assert waits.size > 0  # the 2019 workload batch-queues beb jobs
        assert (waits >= 0).all()

    def test_2011_has_no_queue(self, trace_2011):
        assert batch_queue.queue_waits(trace_2011).size == 0

    def test_ccdf_builds(self, traces_2019):
        ccdf = batch_queue.queue_wait_ccdf(traces_2019)
        assert ccdf.at(-1.0) == 1.0

    def test_ccdf_requires_queued_jobs(self, traces_2011):
        with pytest.raises(ValueError):
            batch_queue.queue_wait_ccdf(traces_2011)


class TestDepthSeries:
    def test_depth_shape_and_nonnegative(self, trace_2019):
        series = batch_queue.queue_depth_series(trace_2019)
        assert len(series) == int(np.ceil(trace_2019.horizon / 3600))
        assert (series >= 0).all()

    def test_empty_for_2011(self, trace_2011):
        assert batch_queue.queue_depth_series(trace_2011).max() == 0


class TestReport:
    def test_report_fields(self, traces_2019):
        rep = batch_queue.batch_queue_report(traces_2019)
        d = rep.as_dict()
        assert 0 < rep.queued_fraction_of_beb_jobs <= 1.0
        assert rep.median_wait_seconds >= 0
        assert rep.p90_wait_seconds >= rep.median_wait_seconds
        assert len(d) == 4

    def test_report_handles_2011(self, traces_2011):
        rep = batch_queue.batch_queue_report(traces_2011)
        assert rep.queued_fraction_of_beb_jobs == 0.0
