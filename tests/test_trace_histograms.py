"""Tests for the synthesized per-window CPU histograms (section 3)."""

import numpy as np
import pytest

from repro.stats.histogram import CPU_HISTOGRAM_PERCENTILES
from repro.trace.histograms import (
    histogram_from_avg_max,
    overload_fraction,
    synthesize_cpu_histograms,
)


class TestReconstruction:
    def test_shape(self):
        out = histogram_from_avg_max(np.array([0.2, 0.4]), np.array([0.5, 0.6]))
        assert out.shape == (2, 21)

    def test_monotone_percentiles(self):
        out = histogram_from_avg_max(np.array([0.2]), np.array([0.9]))
        assert (np.diff(out[0]) >= -1e-12).all()

    def test_top_element_is_max(self):
        out = histogram_from_avg_max(np.array([0.2]), np.array([0.75]))
        assert out[0, -1] == pytest.approx(0.75)

    def test_degenerate_flat_usage(self):
        out = histogram_from_avg_max(np.array([0.3]), np.array([0.3]))
        np.testing.assert_allclose(out[0], 0.3, rtol=1e-9)

    def test_zero_usage_row(self):
        out = histogram_from_avg_max(np.array([0.0]), np.array([0.0]))
        assert (out[0] == 0.0).all()

    def test_median_below_mean_for_skewed(self):
        # Lognormal: median < mean whenever there is dispersion.
        out = histogram_from_avg_max(np.array([0.2]), np.array([0.9]))
        p50 = out[0, list(CPU_HISTOGRAM_PERCENTILES).index(50)]
        assert p50 < 0.2

    def test_mean_consistency(self):
        # Integrating the reconstructed quantile function approximates
        # the recorded average.
        avg, peak = 0.25, 0.6
        out = histogram_from_avg_max(np.array([avg]), np.array([peak]))[0]
        qs = np.linspace(0.005, 0.995, 200)
        from scipy.special import ndtri
        from repro.trace.histograms import _sigma_for_ratio
        sigma = _sigma_for_ratio(np.array([peak / avg]))[0]
        values = avg * np.exp(sigma * ndtri(qs) - sigma**2 / 2)
        assert float(values.mean()) == pytest.approx(avg, rel=0.05)

    def test_extreme_ratio_capped(self):
        out = histogram_from_avg_max(np.array([1e-6]), np.array([1.0]))
        assert np.isfinite(out).all()

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            histogram_from_avg_max(np.zeros(2), np.zeros(3))

    def test_deterministic(self):
        a = histogram_from_avg_max(np.array([0.3]), np.array([0.5]))
        b = histogram_from_avg_max(np.array([0.3]), np.array([0.5]))
        np.testing.assert_array_equal(a, b)


class TestOnTrace:
    def test_synthesize_from_trace(self, trace_2019):
        out = synthesize_cpu_histograms(trace_2019, max_rows=500)
        assert out.shape == (500, 21)
        assert (out >= 0).all()
        # Column 21 equals the recorded maxima.
        peaks = trace_2019.instance_usage.column("max_cpu").values[:500]
        np.testing.assert_allclose(out[:, -1][peaks > 0],
                                   peaks[peaks > 0], rtol=1e-9)

    def test_overload_fraction_range(self, trace_2019):
        frac = overload_fraction(trace_2019, max_rows=2000)
        assert 0.0 <= frac <= 1.0

    def test_overload_fraction_monotone_in_percentile(self, trace_2019):
        lo = overload_fraction(trace_2019, percentile_index=10, max_rows=2000)
        hi = overload_fraction(trace_2019, percentile_index=20, max_rows=2000)
        assert hi >= lo

    def test_bad_percentile_index(self, trace_2019):
        with pytest.raises(ValueError):
            overload_fraction(trace_2019, percentile_index=21)
