"""Unit tests for the columnar engine's Column type."""

import numpy as np
import pytest

from repro.table import Column
from repro.util.errors import SchemaError


class TestConstruction:
    def test_float_kind(self):
        assert Column([1.0, 2.0]).kind == "float"

    def test_int_kind(self):
        assert Column([1, 2, 3]).kind == "int"

    def test_bool_kind(self):
        assert Column([True, False]).kind == "bool"

    def test_str_kind(self):
        assert Column(["a", "b"]).kind == "str"

    def test_ints_preserved_not_floats(self):
        col = Column([1, 2])
        assert col.values.dtype == np.int64

    def test_from_numpy_float32_upcasts(self):
        col = Column(np.asarray([1.5], dtype=np.float32))
        assert col.values.dtype == np.float64

    def test_from_column_shares_data(self):
        a = Column([1.0, 2.0])
        b = Column(a)
        assert b.values is a.values

    def test_rejects_2d(self):
        with pytest.raises(SchemaError):
            Column(np.zeros((2, 2)))

    def test_rejects_mixed_objects(self):
        with pytest.raises(SchemaError):
            Column(["a", object()])

    def test_empty_column(self):
        assert len(Column([])) == 0


class TestComparisons:
    def test_scalar_comparison_returns_mask(self):
        mask = Column([1.0, 5.0, 3.0]) > 2.0
        assert mask.tolist() == [False, True, True]

    def test_eq_with_string(self):
        mask = Column(["x", "y", "x"]) == "x"
        assert mask.tolist() == [True, False, True]

    def test_ne(self):
        mask = Column([1, 2]) != 1
        assert mask.tolist() == [False, True]

    def test_column_vs_column(self):
        mask = Column([1, 5]) <= Column([2, 4])
        assert mask.tolist() == [True, False]

    def test_not_hashable(self):
        with pytest.raises(TypeError):
            hash(Column([1]))


class TestArithmetic:
    def test_add_scalar(self):
        assert (Column([1.0]) + 1.0).to_list() == [2.0]

    def test_radd(self):
        assert (1.0 + Column([1.0])).to_list() == [2.0]

    def test_sub_columns(self):
        assert (Column([3.0]) - Column([1.0])).to_list() == [2.0]

    def test_rsub(self):
        assert (5.0 - Column([2.0])).to_list() == [3.0]

    def test_mul_div(self):
        col = Column([4.0])
        assert (col * 2).to_list() == [8.0]
        assert (col / 2).to_list() == [2.0]

    def test_rtruediv(self):
        assert (8.0 / Column([2.0])).to_list() == [4.0]

    def test_neg(self):
        assert (-Column([1.0, -2.0])).to_list() == [-1.0, 2.0]


class TestReductions:
    def test_sum_mean(self):
        col = Column([1.0, 2.0, 3.0])
        assert col.sum() == 6.0
        assert col.mean() == 2.0

    def test_min_max(self):
        col = Column([3, 1, 2])
        assert col.min() == 1
        assert col.max() == 3

    def test_min_of_empty_raises(self):
        with pytest.raises(SchemaError):
            Column([]).min()

    def test_var_is_unbiased(self):
        assert Column([1.0, 3.0]).var() == pytest.approx(2.0)

    def test_var_singleton_is_zero(self):
        assert Column([5.0]).var() == 0.0

    def test_median_percentile(self):
        col = Column([1.0, 2.0, 3.0, 4.0])
        assert col.median() == 2.5
        assert col.percentile(100) == 4.0

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            Column([1.0]).percentile(101)

    def test_numeric_reduction_on_strings_raises(self):
        with pytest.raises(SchemaError):
            Column(["a"]).sum()


class TestMisc:
    def test_isin_numeric(self):
        assert Column([1, 2, 3]).isin([2, 3]).tolist() == [False, True, True]

    def test_isin_strings(self):
        assert Column(["a", "b"]).isin(["b"]).tolist() == [False, True]

    def test_unique_sorted(self):
        assert Column([3, 1, 3, 2]).unique() == [1, 2, 3]

    def test_unique_strings(self):
        assert Column(["b", "a", "b"]).unique() == ["a", "b"]

    def test_astype_roundtrip(self):
        assert Column([1, 0]).astype("bool").to_list() == [True, False]
        assert Column([1.7]).astype("int").to_list() == [1]
        assert Column([1]).astype("str").to_list() == ["1"]
        assert Column([1]).astype("float").kind == "float"

    def test_astype_unknown_kind(self):
        with pytest.raises(SchemaError):
            Column([1]).astype("complex")

    def test_getitem_scalar_and_slice(self):
        col = Column([10, 20, 30])
        assert col[1] == 20
        assert col[1:].to_list() == [20, 30]

    def test_repr_mentions_kind(self):
        assert "int" in repr(Column([1]))
