"""Unit tests for empirical CCDFs."""

import numpy as np
import pytest

from repro.stats import Ccdf, ccdf_at, empirical_ccdf


class TestEmpiricalCcdf:
    def test_basic_points(self):
        c = empirical_ccdf([1.0, 2.0, 2.0, 5.0])
        assert c.at(0.5) == 1.0
        assert c.at(1.0) == 0.75
        assert c.at(2.0) == 0.25
        assert c.at(5.0) == 0.0

    def test_between_sample_values(self):
        c = empirical_ccdf([1.0, 3.0])
        assert c.at(2.0) == 0.5

    def test_below_minimum_is_one(self):
        c = empirical_ccdf([5.0, 6.0])
        assert c.at(-10.0) == 1.0

    def test_above_maximum_is_zero(self):
        c = empirical_ccdf([5.0])
        assert c.at(100.0) == 0.0

    def test_n_samples_recorded(self):
        assert empirical_ccdf([1, 2, 3]).n_samples == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_ccdf([])

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            empirical_ccdf([1.0, float("nan")])

    def test_matches_direct_computation(self):
        rng = np.random.default_rng(3)
        samples = rng.exponential(2.0, 500)
        c = empirical_ccdf(samples)
        for x in (0.1, 1.0, 3.0, 10.0):
            assert c.at(x) == pytest.approx(float((samples > x).mean()))

    def test_probs_decrease(self):
        c = empirical_ccdf(np.random.default_rng(0).random(100))
        assert (np.diff(c.probs) <= 0).all()

    def test_on_grid(self):
        c = empirical_ccdf([1.0, 2.0])
        assert c.on_grid([0.0, 1.5, 3.0]).tolist() == [1.0, 0.5, 0.0]

    def test_as_series_copies(self):
        c = empirical_ccdf([1.0, 2.0])
        xs, ps = c.as_series()
        xs[0] = 99.0
        assert c.xs[0] == 1.0

    def test_quantile_of_exceedance(self):
        c = empirical_ccdf([1.0, 2.0, 3.0, 4.0])
        # smallest x with Pr(X > x) <= 0.5 is 2.0
        assert c.quantile_of_exceedance(0.5) == 2.0
        assert c.quantile_of_exceedance(0.0) == 4.0

    def test_quantile_bad_p(self):
        with pytest.raises(ValueError):
            empirical_ccdf([1.0]).quantile_of_exceedance(1.5)


class TestCcdfAt:
    def test_one_shot(self):
        assert ccdf_at([1.0, 2.0, 3.0, 4.0], 2.5) == 0.5

    def test_empty(self):
        with pytest.raises(ValueError):
            ccdf_at([], 1.0)
