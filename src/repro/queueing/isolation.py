"""Hog/mouse isolation analysis (paper section 7.3).

"If the scheduler were to ensure that just 1% of the jobs (the compute
hogs) did not get in the way of the other 99% of the jobs, the latter
could see little to no queueing."  We quantify that claim: compare the
P-K mean delay mice experience in a shared queue against a queue
containing only mice (the hogs removed to their own partition), at the
correspondingly reduced load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.queueing.mg1 import pollaczek_khinchine
from repro.stats.moments import squared_cv
from repro.stats.tails import split_hogs_mice


@dataclass(frozen=True)
class IsolationComparison:
    """Shared-queue vs. isolated-mice queueing delay, in mean-service units."""

    rho: float
    hog_fraction: float
    hog_load_share: float
    shared_cv2: float
    mice_cv2: float
    shared_delay: float
    mice_only_delay: float

    @property
    def speedup(self) -> float:
        """How many times faster mice wait once hogs are isolated."""
        if self.mice_only_delay == 0:
            return float("inf")
        return self.shared_delay / self.mice_only_delay


def compare_isolation(job_sizes: Sequence[float], rho: float = 0.5,
                      hog_fraction: float = 0.01) -> IsolationComparison:
    """Quantify the benefit of isolating the top ``hog_fraction`` of jobs.

    In the shared system, mice queue behind everything at load ``rho``
    with the full distribution's C².  In the isolated system the mice
    queue only sees mice: its load falls to ``rho * (1 -
    hog_load_share)`` and its C² is that of the mice alone.
    """
    sizes = np.asarray(job_sizes, dtype=float)
    if sizes.size < 10:
        raise ValueError("compare_isolation needs at least 10 jobs")
    split = split_hogs_mice(sizes, hog_fraction)
    shared_cv2 = squared_cv(sizes)
    mice_cv2 = squared_cv(split.mice) if split.mice.size >= 2 else 0.0
    mice_rho = rho * (1.0 - split.hog_load_share)
    return IsolationComparison(
        rho=rho,
        hog_fraction=hog_fraction,
        hog_load_share=split.hog_load_share,
        shared_cv2=shared_cv2,
        mice_cv2=mice_cv2,
        shared_delay=pollaczek_khinchine(rho, shared_cv2),
        mice_only_delay=pollaczek_khinchine(mice_rho, mice_cv2),
    )
