"""Scheduling to combat heavy tails (paper section 10, direction 5).

"There is interesting research to be done on how to schedule jobs in a
way that allows the remaining 99% of jobs (the 'mice') to have partial
or full isolation from these hogs, so that they can experience what
appears to be a very lightly loaded environment."

This module runs that experiment: an event-driven M/G/c multi-server
queue fed by an empirical (heavy-tailed) job-size sample, under two
policies —

* ``shared``: every job queues FCFS for any of the ``c`` servers;
* ``isolated``: a fraction of servers is reserved for mice (jobs below
  the hog threshold); hogs may only use the remaining servers, mice may
  overflow onto free hog servers but are never queued behind a hog.

The output compares mouse and hog waiting times between the policies.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.stats.tails import split_hogs_mice


@dataclass(frozen=True)
class QueueOutcome:
    """Waiting-time statistics for one class of jobs under one policy."""

    n_jobs: int
    mean_wait: float
    median_wait: float
    p99_wait: float

    @staticmethod
    def from_waits(waits: np.ndarray) -> "QueueOutcome":
        if waits.size == 0:
            return QueueOutcome(0, 0.0, 0.0, 0.0)
        return QueueOutcome(
            n_jobs=int(waits.size),
            mean_wait=float(waits.mean()),
            median_wait=float(np.median(waits)),
            p99_wait=float(np.percentile(waits, 99)),
        )


@dataclass(frozen=True)
class IsolationExperiment:
    """Shared vs isolated outcomes, mice and hogs separately."""

    rho: float
    n_servers: int
    hog_threshold: float
    mice_shared: QueueOutcome
    mice_isolated: QueueOutcome
    hogs_shared: QueueOutcome
    hogs_isolated: QueueOutcome

    @property
    def mice_mean_speedup(self) -> float:
        """How much faster mice wait under isolation (mean wait ratio)."""
        if self.mice_isolated.mean_wait <= 0:
            return float("inf") if self.mice_shared.mean_wait > 0 else 1.0
        return self.mice_shared.mean_wait / self.mice_isolated.mean_wait


class _ServerPool:
    """Free-server set plus a FIFO queue of (arrival, size, job_id)."""

    def __init__(self, server_ids: Sequence[int]):
        self.free: List[int] = list(server_ids)
        self.queue: List[Tuple[float, float, int]] = []

    def has_free(self) -> bool:
        return bool(self.free)


def simulate_partitioned_queue(rng: np.random.Generator,
                               job_sizes: Sequence[float],
                               n_servers: int = 20,
                               rho: float = 0.6,
                               n_jobs: int = 50_000,
                               hog_fraction: float = 0.01,
                               mice_reserved_fraction: Optional[float] = None,
                               isolated: bool = False) -> Dict[str, np.ndarray]:
    """Simulate the multi-server queue; returns waits per class.

    Jobs arrive Poisson at rate ``rho * n_servers / mean_size`` and are
    resampled from ``job_sizes``.  Under ``isolated``, the first
    ``mice_reserved_fraction`` of servers only run mice; mice may also
    run on hog servers when those are idle and no hog is waiting.

    ``mice_reserved_fraction`` defaults to the mice's measured share of
    the total load plus a safety margin — reserving more would starve the
    hog partition into instability (hogs carry ~99% of the work), and
    reserving less leaves mice exposed.

    Returns ``{"mice": waits, "hogs": waits}`` in service-time units of
    the overall mean size.
    """
    sizes = np.asarray(job_sizes, dtype=float)
    if sizes.size < 10:
        raise ValueError("need at least 10 job sizes")
    if not 0 < rho < 1:
        raise ValueError(f"rho must be in (0, 1), got {rho}")
    if n_servers < 2:
        raise ValueError("need at least 2 servers")
    split = split_hogs_mice(sizes, hog_fraction)
    threshold = split.threshold
    mean_size = float(sizes.mean())
    arrival_rate = rho * n_servers / mean_size

    if mice_reserved_fraction is None:
        mice_load_share = 1.0 - split.hog_load_share
        mice_reserved_fraction = min(0.9, 2.0 * mice_load_share + 1.0 / n_servers)
    n_mice_servers = min(n_servers - 1,
                         max(1, int(round(n_servers * mice_reserved_fraction))))
    if isolated:
        mice_pool = _ServerPool(range(n_mice_servers))
        hog_pool = _ServerPool(range(n_mice_servers, n_servers))
    else:
        mice_pool = _ServerPool(range(n_servers))
        hog_pool = mice_pool  # same object: one shared pool/queue

    service = rng.choice(sizes, size=n_jobs, replace=True)
    arrivals = np.cumsum(rng.exponential(1.0 / arrival_rate, size=n_jobs))
    is_hog = service >= threshold

    waits = np.zeros(n_jobs)
    #: (finish_time, seq, server_id, pool) ordering events.
    events: List[Tuple[float, int, int, int]] = []  # pool: 0=mice, 1=hog
    pools = {0: mice_pool, 1: hog_pool}
    seq = 0

    def start(job: int, server: int, now: float) -> None:
        nonlocal seq
        waits[job] = now - arrivals[job]
        pool_code = 1 if (isolated and server >= n_mice_servers) else 0
        heapq.heappush(events, (now + service[job], seq, server, pool_code))
        seq += 1

    def drain(pool_code: int, now: float) -> None:
        pool = pools[pool_code]
        while pool.free and pool.queue:
            _, __, job = heapq.heappop(pool.queue)
            start(job, pool.free.pop(), now)
        if isolated and pool_code == 1:
            # Idle hog servers help waiting mice (work conserving).
            while hog_pool.free and mice_pool.queue:
                _, __, job = heapq.heappop(mice_pool.queue)
                start(job, hog_pool.free.pop(), now)

    for job in range(n_jobs):
        now = arrivals[job]
        # Retire finished work first, handing freed servers to waiters.
        while events and events[0][0] <= now:
            finish_time, __, server, pool_code = heapq.heappop(events)
            pools[pool_code].free.append(server)
            drain(pool_code, finish_time)
        if not isolated:
            pool = mice_pool
        else:
            pool = hog_pool if is_hog[job] else mice_pool
        if pool.has_free():
            start(job, pool.free.pop(), now)
        elif isolated and not is_hog[job] and hog_pool.has_free() \
                and not hog_pool.queue:
            # Mouse overflow onto an idle hog server.
            start(job, hog_pool.free.pop(), now)
        else:
            heapq.heappush(pool.queue, (now, job, job))

    return {"mice": waits[~is_hog] / mean_size,
            "hogs": waits[is_hog] / mean_size}


def run_isolation_experiment(rng: np.random.Generator,
                             job_sizes: Sequence[float],
                             n_servers: int = 20,
                             rho: float = 0.6,
                             n_jobs: int = 50_000,
                             hog_fraction: float = 0.01,
                             mice_reserved_fraction: Optional[float] = None,
                             ) -> IsolationExperiment:
    """Run both policies on identical arrival/size streams and compare."""
    state = rng.bit_generator.state
    shared = simulate_partitioned_queue(
        rng, job_sizes, n_servers=n_servers, rho=rho, n_jobs=n_jobs,
        hog_fraction=hog_fraction, isolated=False,
    )
    # Identical randomness for the isolated run: a paired experiment.
    rng.bit_generator.state = state
    isolated = simulate_partitioned_queue(
        rng, job_sizes, n_servers=n_servers, rho=rho, n_jobs=n_jobs,
        hog_fraction=hog_fraction,
        mice_reserved_fraction=mice_reserved_fraction, isolated=True,
    )
    threshold = split_hogs_mice(np.asarray(job_sizes, dtype=float),
                                hog_fraction).threshold
    return IsolationExperiment(
        rho=rho, n_servers=n_servers, hog_threshold=float(threshold),
        mice_shared=QueueOutcome.from_waits(shared["mice"]),
        mice_isolated=QueueOutcome.from_waits(isolated["mice"]),
        hogs_shared=QueueOutcome.from_waits(shared["hogs"]),
        hogs_isolated=QueueOutcome.from_waits(isolated["hogs"]),
    )
