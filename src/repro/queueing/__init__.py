"""Queueing-theoretic analysis (paper section 7.3).

The paper connects its C² measurements to expected queueing delay via
the Pollaczek-Khinchine formula for an M/G/1 queue, and argues that
isolating the top 1% of jobs ("hogs") from the other 99% ("mice") would
let the mice see a nearly empty system.  This subpackage provides both
the closed-form analysis and an event-driven M/G/1 simulator to check
it, plus the hog/mouse isolation comparison.
"""

from repro.queueing.mg1 import (
    MG1Stats,
    mg1_mean_queueing_delay,
    mg1_mean_waiting_time_simulated,
    pollaczek_khinchine,
)
from repro.queueing.isolation import IsolationComparison, compare_isolation
from repro.queueing.partition import (
    IsolationExperiment,
    QueueOutcome,
    run_isolation_experiment,
    simulate_partitioned_queue,
)

__all__ = [
    "MG1Stats",
    "mg1_mean_queueing_delay",
    "mg1_mean_waiting_time_simulated",
    "pollaczek_khinchine",
    "IsolationComparison",
    "compare_isolation",
    "IsolationExperiment",
    "QueueOutcome",
    "run_isolation_experiment",
    "simulate_partitioned_queue",
]
