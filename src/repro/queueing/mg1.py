"""M/G/1 queueing analysis: Pollaczek-Khinchine plus a discrete simulator.

The paper (section 7.3) cites:

    E[queueing delay] = rho / (1 - rho) * (C^2 + 1) / 2

(in units of the mean service time) to argue that Borg's measured
C² ≈ 23,000 implies enormous queueing delay even at modest load unless
hogs are kept away from mice.  ``pollaczek_khinchine`` implements the
formula; ``mg1_mean_waiting_time_simulated`` checks it by simulating an
actual FCFS M/G/1 queue on a given empirical job-size sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def pollaczek_khinchine(rho: float, squared_cv: float) -> float:
    """Mean queueing delay (in mean-service-time units) for an M/G/1 queue.

    >>> pollaczek_khinchine(0.5, 1.0)  # M/M/1 at rho=0.5 waits 1 service time
    1.0
    """
    if not 0 <= rho < 1:
        raise ValueError(f"rho must be in [0, 1), got {rho}")
    if squared_cv < 0:
        raise ValueError(f"squared_cv must be non-negative, got {squared_cv}")
    return rho / (1.0 - rho) * (squared_cv + 1.0) / 2.0


@dataclass(frozen=True)
class MG1Stats:
    """Outcome of an M/G/1 simulation."""

    rho: float
    mean_wait: float
    mean_service: float
    n_jobs: int

    @property
    def normalized_mean_wait(self) -> float:
        """Mean wait divided by mean service time (the P-K unit)."""
        return self.mean_wait / self.mean_service if self.mean_service > 0 else 0.0


def mg1_mean_waiting_time_simulated(rng: np.random.Generator,
                                    service_times: Sequence[float],
                                    rho: float,
                                    n_jobs: int = 100_000) -> MG1Stats:
    """Simulate an FCFS M/G/1 queue fed by an empirical service distribution.

    Jobs arrive Poisson with rate ``rho / mean_service``; service times are
    resampled (with replacement) from ``service_times``.  Uses Lindley's
    recursion, so the whole simulation is two vectorized passes.
    """
    if not 0 < rho < 1:
        raise ValueError(f"rho must be in (0, 1), got {rho}")
    sizes = np.asarray(service_times, dtype=float)
    if sizes.size == 0:
        raise ValueError("service_times must be non-empty")
    if (sizes <= 0).any():
        raise ValueError("service times must be positive")
    mean_service = float(sizes.mean())
    arrival_rate = rho / mean_service

    service = rng.choice(sizes, size=n_jobs, replace=True)
    interarrival = rng.exponential(1.0 / arrival_rate, size=n_jobs)

    # Lindley: W[i] = max(0, W[i-1] + S[i-1] - A[i])
    wait = np.empty(n_jobs)
    wait[0] = 0.0
    w = 0.0
    for i in range(1, n_jobs):
        w = max(0.0, w + service[i - 1] - interarrival[i])
        wait[i] = w

    return MG1Stats(
        rho=rho,
        mean_wait=float(wait.mean()),
        mean_service=mean_service,
        n_jobs=n_jobs,
    )


def mg1_mean_queueing_delay(service_times: Sequence[float], rho: float) -> float:
    """P-K mean delay (mean-service units) from an empirical sample's C²."""
    from repro.stats.moments import squared_cv

    return pollaczek_khinchine(rho, squared_cv(service_times))
