"""Typed column: a thin, immutable-by-convention wrapper over a numpy array.

Columns normalize their storage to one of four kinds:

* ``float`` — ``float64``
* ``int``   — ``int64``
* ``bool``  — ``bool``
* ``str``   — ``object`` dtype holding Python strings

Comparison operators return plain boolean numpy arrays so they compose
with ``&``/``|``/``~`` and feed straight into :meth:`Table.filter`.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Sequence, Union

import numpy as np

from repro.util.errors import SchemaError

#: The four storage kinds every column normalizes to (public: the store
#: codec and the trace schema declare kinds against this set).
KINDS = ("float", "int", "bool", "str")
_KINDS = KINDS


def _coerce(values: Any) -> np.ndarray:
    """Normalize arbitrary input into one of the four supported dtypes."""
    arr = np.asarray(values)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise SchemaError(f"columns must be 1-D, got shape {arr.shape}")
    if arr.dtype == bool:
        return arr
    # copy=False keeps an already-int64/float64 array as-is — in
    # particular the store's zero-copy mmap views (read-only on purpose;
    # columns are immutable-by-convention anyway).
    if np.issubdtype(arr.dtype, np.integer):
        return arr.astype(np.int64, copy=False)
    if np.issubdtype(arr.dtype, np.floating):
        return arr.astype(np.float64, copy=False)
    # Everything else (strings, mixed python objects) is stored as objects;
    # require all elements to be strings for predictable semantics.
    out = np.empty(len(arr), dtype=object)
    for i, v in enumerate(arr):
        if not isinstance(v, str):
            raise SchemaError(
                f"unsupported column element {v!r} of type {type(v).__name__}; "
                "columns hold floats, ints, bools, or strings"
            )
        out[i] = v
    return out


class Column:
    """A single named-less column of homogeneous values."""

    __slots__ = ("_data",)

    def __init__(self, values: Union["Column", Sequence, np.ndarray]):
        if isinstance(values, Column):
            self._data = values._data
        else:
            self._data = _coerce(values)

    # -- basic protocol ----------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        """The underlying numpy array (do not mutate)."""
        return self._data

    @property
    def kind(self) -> str:
        """One of ``float``, ``int``, ``bool``, ``str``."""
        if self._data.dtype == bool:
            return "bool"
        if self._data.dtype == np.int64:
            return "int"
        if self._data.dtype == np.float64:
            return "float"
        return "str"

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self):
        return iter(self._data)

    def __getitem__(self, idx):
        out = self._data[idx]
        if isinstance(idx, (int, np.integer)):
            return out
        return Column(out)

    def __eq__(self, other) -> np.ndarray:  # type: ignore[override]
        return self._compare(other, "eq")

    def __ne__(self, other) -> np.ndarray:  # type: ignore[override]
        return ~self._compare(other, "eq")

    def __lt__(self, other) -> np.ndarray:
        return self._compare(other, "lt")

    def __le__(self, other) -> np.ndarray:
        return self._compare(other, "le")

    def __gt__(self, other) -> np.ndarray:
        return self._compare(other, "gt")

    def __ge__(self, other) -> np.ndarray:
        return self._compare(other, "ge")

    def __hash__(self):  # columns are not hashable (they define __eq__ as elementwise)
        raise TypeError("Column is not hashable")

    def _compare(self, other, op: str) -> np.ndarray:
        rhs = other._data if isinstance(other, Column) else other
        if op == "eq":
            return np.asarray(self._data == rhs, dtype=bool)
        if op == "lt":
            return np.asarray(self._data < rhs, dtype=bool)
        if op == "le":
            return np.asarray(self._data <= rhs, dtype=bool)
        if op == "gt":
            return np.asarray(self._data > rhs, dtype=bool)
        if op == "ge":
            return np.asarray(self._data >= rhs, dtype=bool)
        raise AssertionError(op)

    # -- arithmetic --------------------------------------------------------

    def _binop(self, other, fn) -> "Column":
        rhs = other._data if isinstance(other, Column) else other
        return Column(fn(self._data, rhs))

    def __add__(self, other) -> "Column":
        return self._binop(other, np.add)

    def __radd__(self, other) -> "Column":
        return Column(np.add(other, self._data))

    def __sub__(self, other) -> "Column":
        return self._binop(other, np.subtract)

    def __rsub__(self, other) -> "Column":
        return Column(np.subtract(other, self._data))

    def __mul__(self, other) -> "Column":
        return self._binop(other, np.multiply)

    def __rmul__(self, other) -> "Column":
        return Column(np.multiply(other, self._data))

    def __truediv__(self, other) -> "Column":
        return self._binop(other, np.true_divide)

    def __rtruediv__(self, other) -> "Column":
        return Column(np.true_divide(other, self._data))

    def __neg__(self) -> "Column":
        return Column(np.negative(self._data))

    # -- membership & null-ish helpers --------------------------------------

    def isin(self, values: Iterable) -> np.ndarray:
        """Boolean mask of rows whose value is in ``values``."""
        vals = list(values)
        if self.kind == "str":
            lookup = set(vals)
            return np.fromiter((v in lookup for v in self._data), dtype=bool, count=len(self))
        return np.isin(self._data, vals)

    # -- reductions ----------------------------------------------------------

    def _numeric(self) -> np.ndarray:
        if self.kind == "str":
            raise SchemaError("numeric reduction on a string column")
        return self._data

    def sum(self) -> float:
        return float(self._numeric().sum())

    def mean(self) -> float:
        return float(self._numeric().mean())

    def min(self):
        if len(self._data) == 0:
            raise SchemaError("min of empty column")
        return self._data.min()

    def max(self):
        if len(self._data) == 0:
            raise SchemaError("max of empty column")
        return self._data.max()

    def var(self) -> float:
        """Unbiased (ddof=1) sample variance; 0 for singleton columns."""
        arr = self._numeric()
        if len(arr) < 2:
            return 0.0
        return float(arr.var(ddof=1))

    def median(self) -> float:
        return float(np.median(self._numeric()))

    def percentile(self, q: float) -> float:
        """The q-th percentile (q in [0, 100])."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self._numeric(), q))

    def unique(self) -> List:
        """Sorted unique values."""
        return sorted(set(self._data.tolist())) if self.kind == "str" else np.unique(self._data).tolist()

    def to_list(self) -> List:
        return self._data.tolist()

    def astype(self, kind: str) -> "Column":
        """Cast to another supported kind."""
        if kind not in _KINDS:
            raise SchemaError(f"unknown column kind {kind!r}")
        if kind == "str":
            return Column([str(v) for v in self._data])
        if kind == "bool":
            return Column(self._data.astype(bool))
        if kind == "int":
            return Column(self._data.astype(np.int64))
        return Column(self._data.astype(np.float64))

    def __repr__(self) -> str:
        preview = ", ".join(repr(v) for v in self._data[:6])
        suffix = ", ..." if len(self) > 6 else ""
        return f"Column<{self.kind}>[{preview}{suffix}] (n={len(self)})"
