"""Group-by and aggregation for :class:`~repro.table.table.Table`.

Implementation: each key column is factorized to integer codes, the code
tuples are combined into a single group id with mixed-radix arithmetic,
and aggregations reduce over ``np.argsort``-contiguous slices.  This keeps
group-by O(n log n) and fully vectorized for numeric aggregations, which
matters because the hourly-utilization analyses group millions of usage
samples.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple, Union

import numpy as np

from repro.table.column import Column
from repro.util.errors import SchemaError

AggSpec = Tuple[str, Union[str, Callable[[np.ndarray], float]]]

_BUILTIN_AGGS: Dict[str, Callable[[np.ndarray], float]] = {
    "sum": lambda a: float(a.sum()),
    "mean": lambda a: float(a.mean()),
    "min": lambda a: a.min(),
    "max": lambda a: a.max(),
    "count": lambda a: int(len(a)),
    "median": lambda a: float(np.median(a)),
    "var": lambda a: float(a.var(ddof=1)) if len(a) > 1 else 0.0,
    "std": lambda a: float(a.std(ddof=1)) if len(a) > 1 else 0.0,
    "first": lambda a: a[0],
    "last": lambda a: a[-1],
    "nunique": lambda a: int(len(np.unique(a))) if a.dtype != object else len(set(a)),
}


def _factorize(values: np.ndarray) -> Tuple[np.ndarray, List]:
    """Map values to dense integer codes plus the code->value table."""
    if values.dtype == object:
        mapping: Dict[str, int] = {}
        codes = np.empty(len(values), dtype=np.int64)
        uniques: List = []
        for i, v in enumerate(values):
            code = mapping.get(v)
            if code is None:
                code = len(uniques)
                mapping[v] = code
                uniques.append(v)
            codes[i] = code
        return codes, uniques
    uniq, codes = np.unique(values, return_inverse=True)
    return codes.astype(np.int64), uniq.tolist()


class GroupBy:
    """Deferred group-by; call :meth:`agg` to materialize."""

    def __init__(self, table, keys: List[str]):
        if not keys:
            raise SchemaError("group_by requires at least one key column")
        self._table = table
        self._keys = keys

    def agg(self, **aggregations: AggSpec):
        """Aggregate each group.

        Each keyword is an output column name mapped to a ``(source_column,
        aggregation)`` pair; the aggregation is a builtin name (``sum``,
        ``mean``, ``min``, ``max``, ``count``, ``median``, ``var``, ``std``,
        ``first``, ``last``, ``nunique``) or any callable reducing a numpy
        array to a scalar.

        >>> from repro.table import Table
        >>> t = Table({"k": ["a", "a", "b"], "v": [1.0, 2.0, 5.0]})
        >>> t.group_by("k").agg(total=("v", "sum")).sort("k").to_dict()
        {'k': ['a', 'b'], 'total': [3.0, 5.0]}
        """
        from repro.table.table import Table

        if not aggregations:
            raise SchemaError("agg requires at least one aggregation")

        n = len(self._table)
        if n == 0:
            data: Dict[str, list] = {k: [] for k in self._keys}
            for out_name in aggregations:
                data[out_name] = []
            return Table(data)

        # Combine per-key codes into one group id (mixed radix).
        combined = np.zeros(n, dtype=np.int64)
        key_uniques: List[List] = []
        key_codes: List[np.ndarray] = []
        for key in self._keys:
            codes, uniques = _factorize(self._table.column(key).values)
            key_codes.append(codes)
            key_uniques.append(uniques)
            combined = combined * max(len(uniques), 1) + codes

        order = np.argsort(combined, kind="stable")
        sorted_ids = combined[order]
        boundaries = np.flatnonzero(np.diff(sorted_ids)) + 1
        starts = np.concatenate([[0], boundaries])
        ends = np.concatenate([boundaries, [n]])
        rep_rows = order[starts]  # one representative row per group

        data = {}
        for i, key in enumerate(self._keys):
            data[key] = Column(self._table.column(key).values[rep_rows])

        for out_name, spec in aggregations.items():
            if not (isinstance(spec, tuple) and len(spec) == 2):
                raise SchemaError(
                    f"aggregation {out_name!r} must be a (column, agg) pair, got {spec!r}"
                )
            src, agg = spec
            fn = _BUILTIN_AGGS.get(agg) if isinstance(agg, str) else agg
            if fn is None:
                raise SchemaError(
                    f"unknown aggregation {agg!r}; builtins: {sorted(_BUILTIN_AGGS)}"
                )
            values = self._table.column(src).values[order]
            if values.dtype == object and isinstance(agg, str) and agg not in (
                "count", "first", "last", "nunique"
            ):
                raise SchemaError(f"aggregation {agg!r} is not defined for string column {src!r}")
            results = [fn(values[s:e]) for s, e in zip(starts, ends)]
            data[out_name] = Column(np.asarray(results) if not isinstance(results[0], str)
                                    else results)
        return Table(data)

    def size(self):
        """Shorthand for a pure group-size count (column ``count``)."""
        first_key = self._keys[0]
        return self.agg(count=(first_key, "count"))

    def groups(self) -> Dict[Tuple, np.ndarray]:
        """Map of key tuple -> row indices; for analyses needing raw groups."""
        n = len(self._table)
        out: Dict[Tuple, List[int]] = {}
        cols = [self._table.column(k).values for k in self._keys]
        for i in range(n):
            key = tuple(c[i] for c in cols)
            out.setdefault(key, []).append(i)
        return {k: np.asarray(v, dtype=np.int64) for k, v in out.items()}
