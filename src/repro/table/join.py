"""Hash joins for the table engine.

Supports inner and left joins on one or more key columns, matching the
JOIN shapes used by the paper's analyses (e.g. joining instance usage
samples against collection metadata to attribute usage to tiers).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.table.column import Column
from repro.util.errors import SchemaError

_FILL = {"float": np.nan, "int": -1, "bool": False, "str": ""}


def join(left, right, on: Union[str, Sequence[str]], how: str = "inner",
         suffix: str = "_right"):
    """Join ``left`` and ``right`` on the ``on`` key column(s).

    ``how`` is ``"inner"`` or ``"left"``.  For a left join, unmatched rows
    fill right-side columns with NaN / -1 / "" / False by column kind.
    Non-key columns present on both sides get ``suffix`` appended on the
    right side.
    """
    from repro.table.table import Table

    if how not in ("inner", "left"):
        raise SchemaError(f"unsupported join type {how!r}; use 'inner' or 'left'")
    keys = [on] if isinstance(on, str) else list(on)
    if not keys:
        raise SchemaError("join requires at least one key column")
    for k in keys:
        left.column(k)
        right.column(k)

    # Build hash index over the right side.
    right_index: Dict[Tuple, List[int]] = {}
    right_keys = [right.column(k).values for k in keys]
    for i in range(len(right)):
        right_index.setdefault(tuple(c[i] for c in right_keys), []).append(i)

    left_rows: List[int] = []
    right_rows: List[int] = []  # -1 marks "no match" in a left join
    left_keys = [left.column(k).values for k in keys]
    for i in range(len(left)):
        matches = right_index.get(tuple(c[i] for c in left_keys))
        if matches:
            for j in matches:
                left_rows.append(i)
                right_rows.append(j)
        elif how == "left":
            left_rows.append(i)
            right_rows.append(-1)

    left_idx = np.asarray(left_rows, dtype=np.int64)
    right_idx = np.asarray(right_rows, dtype=np.int64)
    matched = right_idx >= 0

    data = {}
    for name in left.column_names:
        data[name] = Column(left.column(name).values[left_idx])

    for name in right.column_names:
        if name in keys:
            continue
        out_name = name if name not in data else f"{name}{suffix}"
        src = right.column(name)
        fill = _FILL[src.kind]
        values = np.empty(len(right_idx), dtype=src.values.dtype)
        values[:] = fill
        if matched.any():
            values[matched] = src.values[right_idx[matched]]
        data[out_name] = Column(values)

    return Table(data)
