"""A tiny expression language for predicates and derived columns.

``col("cpu") * col("hours") > 1.0`` builds an :class:`Expr` tree that is
evaluated against a :class:`~repro.table.table.Table`, yielding either a
boolean mask (for filters) or a value array (for derived columns).  This
mirrors the role SQL expressions played in the paper's BigQuery queries.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

import numpy as np

from repro.table.column import Column


class Expr:
    """A lazily-evaluated expression over table columns."""

    def __init__(self, fn: Callable[["Table"], np.ndarray], description: str):  # noqa: F821
        self._fn = fn
        self.description = description

    def evaluate(self, table) -> np.ndarray:
        """Evaluate against ``table``, returning a numpy array of row values."""
        out = self._fn(table)
        if isinstance(out, Column):
            out = out.values
        return np.asarray(out)

    # -- comparisons (produce boolean Exprs) --------------------------------

    def _cmp(self, other: Any, op: Callable, sym: str) -> "Expr":
        rhs = other

        def fn(table):
            left = self.evaluate(table)
            right = rhs.evaluate(table) if isinstance(rhs, Expr) else rhs
            return np.asarray(op(left, right), dtype=bool)

        rdesc = rhs.description if isinstance(rhs, Expr) else repr(rhs)
        return Expr(fn, f"({self.description} {sym} {rdesc})")

    def __eq__(self, other) -> "Expr":  # type: ignore[override]
        return self._cmp(other, lambda a, b: a == b, "==")

    def __ne__(self, other) -> "Expr":  # type: ignore[override]
        return self._cmp(other, lambda a, b: a != b, "!=")

    def __lt__(self, other) -> "Expr":
        return self._cmp(other, lambda a, b: a < b, "<")

    def __le__(self, other) -> "Expr":
        return self._cmp(other, lambda a, b: a <= b, "<=")

    def __gt__(self, other) -> "Expr":
        return self._cmp(other, lambda a, b: a > b, ">")

    def __ge__(self, other) -> "Expr":
        return self._cmp(other, lambda a, b: a >= b, ">=")

    def __hash__(self):
        raise TypeError("Expr is not hashable")

    # -- boolean algebra -----------------------------------------------------

    def __and__(self, other: "Expr") -> "Expr":
        return self._cmp(other, lambda a, b: np.logical_and(a, b), "&")

    def __or__(self, other: "Expr") -> "Expr":
        return self._cmp(other, lambda a, b: np.logical_or(a, b), "|")

    def __invert__(self) -> "Expr":
        return Expr(lambda t: np.logical_not(self.evaluate(t)), f"~{self.description}")

    # -- arithmetic ------------------------------------------------------------

    def _arith(self, other: Any, op: Callable, sym: str, reflected: bool = False) -> "Expr":
        rhs = other

        def fn(table):
            left = self.evaluate(table)
            right = rhs.evaluate(table) if isinstance(rhs, Expr) else rhs
            return op(right, left) if reflected else op(left, right)

        rdesc = rhs.description if isinstance(rhs, Expr) else repr(rhs)
        desc = f"({rdesc} {sym} {self.description})" if reflected else f"({self.description} {sym} {rdesc})"
        return Expr(fn, desc)

    def __add__(self, other) -> "Expr":
        return self._arith(other, np.add, "+")

    def __radd__(self, other) -> "Expr":
        return self._arith(other, np.add, "+", reflected=True)

    def __sub__(self, other) -> "Expr":
        return self._arith(other, np.subtract, "-")

    def __rsub__(self, other) -> "Expr":
        return self._arith(other, np.subtract, "-", reflected=True)

    def __mul__(self, other) -> "Expr":
        return self._arith(other, np.multiply, "*")

    def __rmul__(self, other) -> "Expr":
        return self._arith(other, np.multiply, "*", reflected=True)

    def __truediv__(self, other) -> "Expr":
        return self._arith(other, np.true_divide, "/")

    def __rtruediv__(self, other) -> "Expr":
        return self._arith(other, np.true_divide, "/", reflected=True)

    def __neg__(self) -> "Expr":
        return Expr(lambda t: np.negative(self.evaluate(t)), f"-{self.description}")

    # -- convenience ----------------------------------------------------------

    def isin(self, values: Iterable) -> "Expr":
        vals = list(values)

        def fn(table):
            arr = self.evaluate(table)
            if arr.dtype == object:
                lookup = set(vals)
                return np.fromiter((v in lookup for v in arr), dtype=bool, count=len(arr))
            return np.isin(arr, vals)

        return Expr(fn, f"{self.description}.isin({vals!r})")

    def between(self, lo, hi) -> "Expr":
        """Inclusive range test, matching SQL BETWEEN."""
        return (self >= lo) & (self <= hi)

    def __repr__(self) -> str:
        return f"Expr({self.description})"


def col(name: str) -> Expr:
    """Reference a column by name, for use in filters and derived columns."""

    def fn(table):
        return table.column(name).values

    return Expr(fn, name)


def lit(value: Any) -> Expr:
    """A constant broadcast to the table's length."""

    def fn(table):
        return np.full(len(table), value)

    return Expr(fn, repr(value))
