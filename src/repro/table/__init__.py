"""An in-memory columnar table engine.

The paper's analyses were run on Google BigQuery; this subpackage is the
from-scratch substrate that replaces it.  It provides typed columns over
numpy arrays, a relational :class:`Table` with select / filter / sort /
group-by / join operators, a small expression language for predicates and
derived columns, and CSV serialization (the 2011 trace's native format).

Quick tour:

>>> from repro.table import Table, col
>>> t = Table({"tier": ["prod", "beb", "beb"], "cpu": [0.5, 0.1, 0.2]})
>>> t.filter(col("tier") == "beb").column("cpu").sum()
0.30000000000000004
>>> t.group_by("tier").agg(total=("cpu", "sum")).sort("tier").column("total").to_list()
[0.30000000000000004, 0.5]
"""

from repro.table.column import Column
from repro.table.expr import Expr, col, lit
from repro.table.groupby import GroupBy
from repro.table.io_csv import read_csv, write_csv
from repro.table.table import Table, concat

__all__ = [
    "Column",
    "Expr",
    "col",
    "lit",
    "GroupBy",
    "Table",
    "concat",
    "read_csv",
    "write_csv",
]
