"""CSV serialization — the native format of the 2011 trace.

The reader infers per-column types (int, float, bool, str) from the data
and round-trips losslessly with the writer for all four supported kinds.
"""

from __future__ import annotations

import csv
import io
import os
from typing import Dict, List, Optional, Union

from repro.table.column import Column
from repro.util.errors import SchemaError

PathOrBuffer = Union[str, os.PathLike, io.TextIOBase]


def _parse_column(raw: List[str]) -> Column:
    """Infer the best type for a column of raw strings."""
    if all(v in ("True", "False") for v in raw) and raw:
        return Column([v == "True" for v in raw])
    try:
        return Column([int(v) for v in raw])
    except ValueError:
        pass
    try:
        return Column([float(v) for v in raw])
    except ValueError:
        pass
    return Column(raw)


def read_csv(source: PathOrBuffer, columns: Optional[List[str]] = None):
    """Read a CSV file (with header row) into a :class:`Table`.

    ``columns``, if given, selects and orders a subset of columns.
    """
    from repro.table.table import Table

    if isinstance(source, io.TextIOBase):
        return _read(source, columns)
    with open(source, "r", newline="") as f:
        return _read(f, columns)


def _read(f, columns):
    from repro.table.table import Table

    reader = csv.reader(f)
    try:
        header = next(reader)
    except StopIteration:
        raise SchemaError("CSV file is empty (no header row)") from None
    raw: Dict[str, List[str]] = {name: [] for name in header}
    for lineno, row in enumerate(reader, start=2):
        if len(row) != len(header):
            raise SchemaError(
                f"CSV line {lineno}: expected {len(header)} fields, got {len(row)}"
            )
        for name, value in zip(header, row):
            raw[name].append(value)
    wanted = columns or header
    for name in wanted:
        if name not in raw:
            raise SchemaError(f"CSV has no column {name!r}; header: {header}")
    return Table({name: _parse_column(raw[name]) for name in wanted})


def write_csv(table, dest: PathOrBuffer) -> None:
    """Write ``table`` to CSV with a header row."""
    if isinstance(dest, io.TextIOBase):
        _write(table, dest)
        return
    with open(dest, "w", newline="") as f:
        _write(table, f)


def _write(table, f) -> None:
    writer = csv.writer(f)
    names = table.column_names
    writer.writerow(names)
    cols = [table.column(n).values for n in names]
    for i in range(len(table)):
        writer.writerow([_format(c[i]) for c in cols])


def _format(value) -> str:
    import numpy as np

    if isinstance(value, (float, np.floating)):
        # repr of a builtin float is the shortest lossless decimal form.
        return repr(float(value))
    return str(value)
