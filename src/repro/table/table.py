"""The relational :class:`Table` — the workhorse of every analysis.

A table is an ordered mapping of column names to equal-length
:class:`~repro.table.column.Column` objects.  All operators return new
tables; nothing mutates in place.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.table.column import Column
from repro.table.expr import Expr
from repro.util.errors import SchemaError

FilterArg = Union[Expr, np.ndarray, Sequence[bool]]


class Table:
    """An immutable-by-convention columnar table."""

    def __init__(self, columns: Mapping[str, Union[Column, Sequence, np.ndarray]] = ()):
        self._columns: Dict[str, Column] = {}
        length: Optional[int] = None
        for name, values in dict(columns).items():
            if not isinstance(name, str) or not name:
                raise SchemaError(f"column names must be non-empty strings, got {name!r}")
            column = values if isinstance(values, Column) else Column(values)
            if length is None:
                length = len(column)
            elif len(column) != length:
                raise SchemaError(
                    f"column {name!r} has {len(column)} rows, expected {length}"
                )
            self._columns[name] = column
        self._length = length or 0

    # -- construction --------------------------------------------------------

    @classmethod
    def from_rows(cls, rows: Iterable[Mapping[str, object]], columns: Optional[List[str]] = None) -> "Table":
        """Build a table from an iterable of row dicts.

        All rows must share the same keys; ``columns`` fixes the column
        order (and is required for an empty iterable with a known schema).
        """
        rows = list(rows)
        if not rows:
            return cls({name: [] for name in (columns or [])})
        names = columns or list(rows[0].keys())
        data: Dict[str, list] = {name: [] for name in names}
        for i, row in enumerate(rows):
            if set(row.keys()) != set(names):
                raise SchemaError(f"row {i} keys {sorted(row)} != expected {sorted(names)}")
            for name in names:
                data[name].append(row[name])
        return cls(data)

    # -- basic protocol --------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    @property
    def column_names(self) -> List[str]:
        return list(self._columns)

    def column(self, name: str) -> Column:
        """The named column; raises :class:`SchemaError` if absent."""
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r}; available: {sorted(self._columns)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> Column:
        return self.column(name)

    def row(self, i: int) -> Dict[str, object]:
        """Row ``i`` as a dict (supports negative indices)."""
        if not -self._length <= i < self._length:
            raise IndexError(f"row {i} out of range for table of {self._length} rows")
        return {name: c.values[i] for name, c in self._columns.items()}

    def iter_rows(self) -> Iterator[Dict[str, object]]:
        for i in range(self._length):
            yield self.row(i)

    # -- relational operators ------------------------------------------------

    def select(self, *names: str) -> "Table":
        """Keep only the named columns, in the given order."""
        return Table({name: self.column(name) for name in names})

    def drop(self, *names: str) -> "Table":
        """Remove the named columns."""
        for name in names:
            self.column(name)  # raise early on unknown names
        return Table({n: c for n, c in self._columns.items() if n not in names})

    def rename(self, mapping: Mapping[str, str]) -> "Table":
        """Rename columns; unknown source names are an error."""
        for src in mapping:
            self.column(src)
        return Table({mapping.get(n, n): c for n, c in self._columns.items()})

    def _resolve_mask(self, predicate: FilterArg) -> np.ndarray:
        mask = predicate.evaluate(self) if isinstance(predicate, Expr) else np.asarray(predicate)
        if mask.dtype != bool:
            raise SchemaError(f"filter predicate must be boolean, got dtype {mask.dtype}")
        if len(mask) != self._length:
            raise SchemaError(f"filter mask has {len(mask)} rows, table has {self._length}")
        return mask

    def filter(self, predicate: FilterArg) -> "Table":
        """Rows for which the predicate holds."""
        mask = self._resolve_mask(predicate)
        return Table({n: Column(c.values[mask]) for n, c in self._columns.items()})

    def take(self, indices: Union[np.ndarray, Sequence[int]]) -> "Table":
        """Rows at the given positions, in the given order."""
        idx = np.asarray(indices, dtype=np.int64)
        return Table({n: Column(c.values[idx]) for n, c in self._columns.items()})

    def head(self, n: int = 10) -> "Table":
        return self.take(np.arange(min(n, self._length)))

    def with_column(self, name: str, values: Union[Expr, Column, Sequence, np.ndarray]) -> "Table":
        """Return a copy with ``name`` added (or replaced)."""
        if isinstance(values, Expr):
            values = Column(values.evaluate(self))
        column = values if isinstance(values, Column) else Column(values)
        if len(column) != self._length:
            raise SchemaError(
                f"new column {name!r} has {len(column)} rows, table has {self._length}"
            )
        data = dict(self._columns)
        data[name] = column
        return Table(data)

    def sort(self, *names: str, descending: bool = False) -> "Table":
        """Stable sort by one or more columns."""
        if not names:
            raise SchemaError("sort requires at least one column name")
        # numpy lexsort uses the *last* key as primary; feed keys reversed.
        keys = []
        for name in reversed(names):
            values = self.column(name).values
            keys.append(values if values.dtype != object else np.asarray([str(v) for v in values]))
        order = np.lexsort(keys)
        if descending:
            order = order[::-1]
        return self.take(order)

    def distinct(self, *names: str) -> "Table":
        """Unique rows (by the named columns, or all columns)."""
        subset = names or tuple(self._columns)
        seen = set()
        keep: List[int] = []
        cols = [self.column(n).values for n in subset]
        for i in range(self._length):
            key = tuple(c[i] for c in cols)
            if key not in seen:
                seen.add(key)
                keep.append(i)
        return self.take(np.asarray(keep, dtype=np.int64))

    def group_by(self, *names: str) -> "GroupBy":  # noqa: F821
        """Start a group-by over the named key columns."""
        from repro.table.groupby import GroupBy

        return GroupBy(self, list(names))

    def join(self, other: "Table", on: Union[str, Sequence[str]], how: str = "inner",
             suffix: str = "_right") -> "Table":
        """Hash join with ``other`` on shared key column(s)."""
        from repro.table.join import join as _join

        return _join(self, other, on=on, how=how, suffix=suffix)

    # -- output ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, List]:
        return {n: c.to_list() for n, c in self._columns.items()}

    def to_string(self, max_rows: int = 20) -> str:
        """A fixed-width text rendering (used by the report driver)."""
        names = self.column_names
        if not names:
            return "(empty table)"
        shown = min(self._length, max_rows)

        def fmt(v) -> str:
            if isinstance(v, (float, np.floating)):
                return f"{v:.6g}"
            return str(v)

        rows = [[fmt(self._columns[n].values[i]) for n in names] for i in range(shown)]
        widths = [max(len(n), *(len(r[j]) for r in rows)) if rows else len(n)
                  for j, n in enumerate(names)]
        lines = ["  ".join(n.ljust(w) for n, w in zip(names, widths))]
        lines.append("  ".join("-" * w for w in widths))
        for r in rows:
            lines.append("  ".join(v.ljust(w) for v, w in zip(r, widths)))
        if shown < self._length:
            lines.append(f"... ({self._length - shown} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Table({self._length} rows x {len(self._columns)} cols: {self.column_names})"


def concat(tables: Sequence[Table]) -> Table:
    """Vertically stack tables with identical schemas."""
    tables = [t for t in tables if t is not None]
    if not tables:
        return Table()
    names = tables[0].column_names
    for t in tables[1:]:
        if t.column_names != names:
            raise SchemaError(
                f"concat schema mismatch: {t.column_names} != {names}"
            )
    data = {}
    for name in names:
        parts = [t.column(name).values for t in tables]
        if any(p.dtype == object for p in parts):
            merged = np.concatenate([p.astype(object) for p in parts])
        else:
            merged = np.concatenate(parts)
        data[name] = Column(merged)
    return Table(data)
