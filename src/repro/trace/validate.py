"""Automated trace validation (paper section 9).

The authors describe checking "a raft of logical invariants" — e.g. "the
total resource usage of all instances on a machine should be smaller
than the machine's capacity", "a submit event should happen before any
termination event" — and note that a repeatable, automated pipeline beat
their initial one-off scripts.  This module is that pipeline for our
traces: each invariant is a named check returning violations, and
:func:`validate_trace` runs them all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.sim.priority import tier_of_priority_2011, tier_of_priority_2019
from repro.trace.dataset import TraceDataset
from repro.trace.schema import EVENT_TABLES
from repro.util.errors import ValidationError

TERMINAL = ("EVICT", "FAIL", "FINISH", "KILL")


@dataclass(frozen=True)
class Violation:
    """One invariant violation."""

    invariant: str
    detail: str

    def __str__(self) -> str:
        return f"{self.invariant}: {self.detail}"


def _check_times_in_window(trace: TraceDataset) -> List[Violation]:
    """Every event timestamp lies within [0, horizon]."""
    out = []
    for name in EVENT_TABLES:
        times = trace.tables[name].column("time").values
        if len(times) == 0:
            continue
        bad = np.flatnonzero((times < 0) | (times > trace.horizon))
        for i in bad[:5]:
            out.append(Violation(
                "event-time-in-window",
                f"{name}[{i}] time={times[i]} outside [0, {trace.horizon}]",
            ))
    return out


def _check_submit_before_terminal(trace: TraceDataset) -> List[Violation]:
    """A collection's SUBMIT precedes any terminal event."""
    ce = trace.collection_events
    out = []
    submit: Dict[int, float] = {}
    ids = ce.column("collection_id").values
    types = ce.column("type").values
    times = ce.column("time").values
    for i in range(len(ce)):
        if types[i] == "SUBMIT":
            cid = int(ids[i])
            if cid not in submit or times[i] < submit[cid]:
                submit[cid] = float(times[i])
    for i in range(len(ce)):
        if types[i] in TERMINAL:
            cid = int(ids[i])
            if cid not in submit:
                out.append(Violation(
                    "submit-before-terminal",
                    f"collection {cid} terminates at {times[i]} without a SUBMIT",
                ))
            elif times[i] < submit[cid]:
                out.append(Violation(
                    "submit-before-terminal",
                    f"collection {cid} terminates at {times[i]} before its "
                    f"SUBMIT at {submit[cid]}",
                ))
    return out


def _check_single_terminal_per_collection(trace: TraceDataset) -> List[Violation]:
    """A collection terminates at most once."""
    ce = trace.collection_events
    ids = ce.column("collection_id").values
    types = ce.column("type").values
    seen: Dict[int, int] = {}
    out = []
    for i in range(len(ce)):
        if types[i] in TERMINAL:
            cid = int(ids[i])
            seen[cid] = seen.get(cid, 0) + 1
    for cid, count in seen.items():
        if count > 1:
            out.append(Violation(
                "single-terminal-event",
                f"collection {cid} has {count} terminal events",
            ))
    return out


def _check_machine_usage_within_capacity(trace: TraceDataset) -> List[Violation]:
    """Per 5-minute window, machine usage stays within physical capacity.

    CPU is work-conserving so a modest overage is legal (we allow 1.2x);
    memory is a hard bound (we allow 1.02x for sampling noise).
    """
    iu = trace.instance_usage
    if len(iu) == 0:
        return []
    attrs = trace.machine_attributes
    cap_cpu = dict(zip(attrs.column("machine_id").values.tolist(),
                       attrs.column("cpu_capacity").values.tolist()))
    cap_mem = dict(zip(attrs.column("machine_id").values.tolist(),
                       attrs.column("mem_capacity").values.tolist()))
    machine = iu.column("machine_id").values
    window = iu.column("start_time").values
    cpu = iu.column("avg_cpu").values
    mem = iu.column("avg_mem").values
    key = machine.astype(np.int64) * 10_000_000 + (window / trace.sample_period).astype(np.int64)
    order = np.argsort(key)
    k = key[order]
    bounds = np.concatenate([[0], np.flatnonzero(np.diff(k)) + 1])
    cpu_sums = np.add.reduceat(cpu[order], bounds)
    mem_sums = np.add.reduceat(mem[order], bounds)
    machines = machine[order][bounds]
    out = []
    for i in range(len(bounds)):
        m = int(machines[i])
        if m in cap_cpu and cpu_sums[i] > cap_cpu[m] * 1.2 + 1e-9:
            out.append(Violation(
                "machine-cpu-usage-within-capacity",
                f"machine {m}: window CPU usage {cpu_sums[i]:.3f} exceeds "
                f"capacity {cap_cpu[m]:.3f} (x1.2 allowance)",
            ))
        if m in cap_mem and mem_sums[i] > cap_mem[m] * 1.02 + 1e-9:
            out.append(Violation(
                "machine-mem-usage-within-capacity",
                f"machine {m}: window memory usage {mem_sums[i]:.3f} exceeds "
                f"capacity {cap_mem[m]:.3f}",
            ))
        if len(out) >= 20:
            break
    return out


def _check_usage_within_limits(trace: TraceDataset) -> List[Violation]:
    """Memory usage never exceeds its limit; CPU respects work-conserving slack."""
    iu = trace.instance_usage
    if len(iu) == 0:
        return []
    out = []
    mem_over = np.flatnonzero(iu.column("avg_mem").values
                              > iu.column("limit_mem").values * 1.001 + 1e-12)
    for i in mem_over[:5]:
        out.append(Violation(
            "memory-usage-within-limit",
            f"usage row {i}: avg_mem exceeds limit_mem",
        ))
    cpu_over = np.flatnonzero(iu.column("max_cpu").values
                              > iu.column("limit_cpu").values * 1.5 + 1e-9)
    for i in cpu_over[:5]:
        out.append(Violation(
            "cpu-usage-within-work-conserving-bound",
            f"usage row {i}: max_cpu exceeds 1.5x limit_cpu",
        ))
    return out


def _check_priorities_match_tiers(trace: TraceDataset) -> List[Violation]:
    """The tier column agrees with the era's priority banding."""
    tier_of = tier_of_priority_2011 if trace.era == "2011" else tier_of_priority_2019
    ce = trace.collection_events
    if len(ce) == 0:
        return []
    out = []
    priorities = ce.column("priority").values
    tiers = ce.column("tier").values
    for i in range(len(ce)):
        expected = tier_of(int(priorities[i])).value
        got = tiers[i]
        # Monitoring is merged into prod by the paper's convention, so
        # either label is acceptable for monitoring-band priorities.
        if got != expected and not (expected == "monitoring" and got == "prod"):
            out.append(Violation(
                "priority-tier-consistency",
                f"collection_events[{i}]: priority {priorities[i]} implies "
                f"tier {expected!r}, trace says {got!r}",
            ))
            if len(out) >= 5:
                break
    return out


def _check_constraints_respected(trace: TraceDataset) -> List[Violation]:
    """Scheduled instances of constrained collections sit on machines of
    the required platform."""
    ce = trace.collection_events
    if len(ce) == 0 or "constraint" not in ce:
        return []
    constraint_of: Dict[int, str] = {}
    c_ids = ce.column("collection_id").values
    c_constraints = ce.column("constraint").values
    for i in range(len(ce)):
        if c_constraints[i]:
            constraint_of[int(c_ids[i])] = c_constraints[i]
    if not constraint_of:
        return []
    attrs = trace.machine_attributes
    platform_of = dict(zip(attrs.column("machine_id").values.tolist(),
                           attrs.column("platform").values.tolist()))
    ie = trace.instance_events
    ids = ie.column("collection_id").values
    types = ie.column("type").values
    machines = ie.column("machine_id").values
    out: List[Violation] = []
    for i in range(len(ie)):
        if types[i] != "SCHEDULE":
            continue
        required = constraint_of.get(int(ids[i]))
        if required is None:
            continue
        platform = platform_of.get(int(machines[i]))
        if platform is not None and platform != required:
            out.append(Violation(
                "constraint-respected",
                f"instance_events[{i}]: collection {ids[i]} requires "
                f"platform {required!r} but ran on {platform!r}",
            ))
            if len(out) >= 5:
                break
    return out


def _check_schedule_has_machine(trace: TraceDataset) -> List[Violation]:
    """SCHEDULE events carry a machine id."""
    ie = trace.instance_events
    if len(ie) == 0:
        return []
    types = ie.column("type").values
    machines = ie.column("machine_id").values
    bad = [i for i in range(len(ie)) if types[i] == "SCHEDULE" and machines[i] < 0]
    return [Violation("schedule-has-machine",
                      f"instance_events[{i}] SCHEDULE without machine") for i in bad[:5]]


#: The named invariant suite, in execution order.
INVARIANTS: Dict[str, Callable[[TraceDataset], List[Violation]]] = {
    "event-time-in-window": _check_times_in_window,
    "submit-before-terminal": _check_submit_before_terminal,
    "single-terminal-event": _check_single_terminal_per_collection,
    "machine-usage-within-capacity": _check_machine_usage_within_capacity,
    "usage-within-limits": _check_usage_within_limits,
    "priority-tier-consistency": _check_priorities_match_tiers,
    "schedule-has-machine": _check_schedule_has_machine,
    "constraint-respected": _check_constraints_respected,
}


def validate_trace(trace: TraceDataset, raise_on_violation: bool = False,
                   only: Optional[List[str]] = None) -> List[Violation]:
    """Run the invariant suite; return (or raise on) violations found."""
    names = only or list(INVARIANTS)
    unknown = set(names) - set(INVARIANTS)
    if unknown:
        raise ValueError(f"unknown invariants: {sorted(unknown)}")
    violations: List[Violation] = []
    for name in names:
        violations.extend(INVARIANTS[name](trace))
    if violations and raise_on_violation:
        raise ValidationError(violations[0].invariant, violations[0].detail)
    return violations
