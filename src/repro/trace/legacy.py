"""Conversion to the 2011 trace layout.

The 2011 trace shipped CSV files named ``job_events``, ``task_events``,
``task_usage`` and ``machine_events``, with priorities remapped to the
dense 0-11 bands and no alloc/dependency/autopilot columns (that
machinery either did not exist or was elided — paper section 3).
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.sim.priority import RAW_PRIORITIES_2011
from repro.table import Column, Table
from repro.trace.dataset import TraceDataset


def band_of_raw_priority(priority: int) -> int:
    """Map a raw priority to the 2011 trace's 0-11 band.

    The 2011 trace mapped its twelve distinct raw priority values to the
    integers 0-11; any other value maps to the band of the largest
    tabulated priority not exceeding it.
    """
    band = 0
    for i, raw in enumerate(RAW_PRIORITIES_2011):
        if priority >= raw:
            band = i
    return band


def to_2011_tables(trace: TraceDataset) -> Dict[str, Table]:
    """Re-encode a dataset in the 2011 CSV layout.

    For a trace generated with ``era == "2011"`` the priorities are
    already bands and pass through unchanged; a 2019-era trace gets its
    raw priorities collapsed into bands (losing information, exactly as
    a 2011-style export would).
    """
    already_banded = trace.era == "2011"

    def bands(column) -> Column:
        values = column.values
        if already_banded:
            return Column(values)
        return Column(np.asarray([band_of_raw_priority(int(p)) for p in values],
                                 dtype=np.int64))

    ce = trace.collection_events
    job_events = Table({
        "time": ce.column("time"),
        "job_id": ce.column("collection_id"),
        "event_type": ce.column("type"),
        "user": ce.column("user"),
        "priority": bands(ce.column("priority")),
        "num_tasks": ce.column("num_instances"),
    })

    ie = trace.instance_events
    task_events = Table({
        "time": ie.column("time"),
        "job_id": ie.column("collection_id"),
        "task_index": ie.column("instance_index"),
        "event_type": ie.column("type"),
        "machine_id": ie.column("machine_id"),
        "priority": bands(ie.column("priority")),
        "cpu_request": ie.column("resource_request_cpu"),
        "memory_request": ie.column("resource_request_mem"),
    })

    iu = trace.instance_usage
    task_usage = Table({
        "start_time": iu.column("start_time"),
        "end_time": Column(iu.column("start_time").values
                           + iu.column("duration").values),
        "job_id": iu.column("collection_id"),
        "task_index": iu.column("instance_index"),
        "machine_id": iu.column("machine_id"),
        "mean_cpu_usage": iu.column("avg_cpu"),
        "max_cpu_usage": iu.column("max_cpu"),
        "mean_memory_usage": iu.column("avg_mem"),
        "max_memory_usage": iu.column("max_mem"),
    })

    me = trace.machine_events
    machine_events = Table({
        "time": me.column("time"),
        "machine_id": me.column("machine_id"),
        "event_type": me.column("type"),
        "cpu_capacity": me.column("cpu_capacity"),
        "memory_capacity": me.column("mem_capacity"),
    })

    return {
        "job_events": job_events,
        "task_events": task_events,
        "task_usage": task_usage,
        "machine_events": machine_events,
    }
