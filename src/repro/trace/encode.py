"""Encode a simulation result into trace tables.

Each builder maps schema columns to value arrays; :func:`_build` orders
the mapping through :func:`repro.trace.schema.ordered_columns`, so a
builder that drifts from the canonical schema (missing, extra, or
reordered columns) fails loudly here instead of producing a malformed
trace for some later reader to trip over.
"""

from __future__ import annotations

import numpy as np

from repro.sim.cell import CellResult
from repro.sim.usage import AUTOPILOT_FROM_CODE, TIER_FROM_CODE
from repro.table import Column, Table
from repro.trace.dataset import TraceDataset
from repro.trace.schema import empty_table, ordered_columns


def _build(name: str, values: dict) -> Table:
    """Schema-ordered :class:`Table` (typed empty when there are no rows)."""
    table = Table(ordered_columns(name, values))
    if len(table) == 0:
        return empty_table(name)
    return table


def _collection_events_table(result: CellResult) -> Table:
    events = result.events.collection_events
    return _build("collection_events", {
        "time": [e.time for e in events],
        "collection_id": [e.collection_id for e in events],
        "type": [e.event.value for e in events],
        "collection_type": [e.collection_type for e in events],
        "priority": [e.priority for e in events],
        "tier": [e.tier for e in events],
        "user": [e.user for e in events],
        "scheduler": [e.scheduler for e in events],
        "parent_collection_id": [e.parent_id for e in events],
        "alloc_collection_id": [e.alloc_collection_id for e in events],
        "vertical_scaling": [e.autopilot_mode for e in events],
        "constraint": [e.constraint for e in events],
        "num_instances": [e.num_instances for e in events],
    })


def _instance_events_table(result: CellResult) -> Table:
    events = result.events.instance_events
    return _build("instance_events", {
        "time": [e.time for e in events],
        "collection_id": [e.collection_id for e in events],
        "instance_index": [e.instance_index for e in events],
        "type": [e.event.value for e in events],
        "machine_id": [e.machine_id for e in events],
        "priority": [e.priority for e in events],
        "tier": [e.tier for e in events],
        "resource_request_cpu": [e.cpu_request for e in events],
        "resource_request_mem": [e.mem_request for e in events],
        "is_new": [e.is_new for e in events],
    })


def _instance_usage_table(result: CellResult) -> Table:
    u = result.usage
    n = len(u["window_start"])
    tier_strings = np.empty(n, dtype=object)
    for code, tier in TIER_FROM_CODE.items():
        tier_strings[u["tier_code"] == code] = tier.value
    autopilot_strings = np.empty(n, dtype=object)
    for code, mode in AUTOPILOT_FROM_CODE.items():
        autopilot_strings[u["autopilot_code"] == code] = mode
    return _build("instance_usage", {
        "start_time": Column(u["window_start"]),
        "duration": Column(u["duration"]),
        "collection_id": Column(u["collection_id"].astype(np.int64)),
        "instance_index": Column(u["instance_index"].astype(np.int64)),
        "machine_id": Column(u["machine_id"].astype(np.int64)),
        "tier": Column(tier_strings),
        "vertical_scaling": Column(autopilot_strings),
        "in_alloc": Column(u["in_alloc"].astype(bool)),
        "avg_cpu": Column(u["avg_cpu"]),
        "max_cpu": Column(u["max_cpu"]),
        "avg_mem": Column(u["avg_mem"]),
        "max_mem": Column(u["max_mem"]),
        "limit_cpu": Column(u["cpu_limit"]),
        "limit_mem": Column(u["mem_limit"]),
    })


def _machine_events_table(result: CellResult) -> Table:
    events = result.events.machine_events
    return _build("machine_events", {
        "time": [e.time for e in events],
        "machine_id": [e.machine_id for e in events],
        "type": [e.event for e in events],
        "cpu_capacity": [e.cpu_capacity for e in events],
        "mem_capacity": [e.mem_capacity for e in events],
    })


def _machine_attributes_table(result: CellResult) -> Table:
    machines = result.machines
    return _build("machine_attributes", {
        "machine_id": [m.machine_id for m in machines],
        "cpu_capacity": [m.capacity.cpu for m in machines],
        "mem_capacity": [m.capacity.mem for m in machines],
        "platform": [m.platform for m in machines],
        "utc_offset_hours": [m.utc_offset_hours for m in machines],
    })


def encode_cell(result: CellResult) -> TraceDataset:
    """Build the five trace tables from one cell's simulation result.

    The empty-trace case (a cell that ran no work) still yields tables
    with the full schema, so downstream queries never special-case it.
    """
    capacity = result.capacity
    tables = {
        "collection_events": _collection_events_table(result),
        "instance_events": _instance_events_table(result),
        "instance_usage": _instance_usage_table(result),
        "machine_events": _machine_events_table(result),
        "machine_attributes": _machine_attributes_table(result),
    }
    return TraceDataset(
        cell=result.config.name,
        era=result.config.era,
        horizon=result.config.horizon,
        sample_period=result.config.sample_period,
        utc_offset_hours=result.config.utc_offset_hours,
        capacity_cpu=capacity.cpu,
        capacity_mem=capacity.mem,
        tables=tables,
    )
