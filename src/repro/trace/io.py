"""Trace persistence: CSV-per-table directories and chunked stores.

Two on-disk formats share one API:

* ``format="csv"`` — one CSV per table plus a JSON metadata sidecar (the
  2011 trace's native shape).  Human-readable, diff-able, slow at scale.
* ``format="store"`` — the chunked columnar layout of
  :mod:`repro.store`: row-group chunks with manifest statistics,
  predicate-pushdown scans, and parallel aggregation (the 2019 trace's
  BigQuery shape).  ``load_trace`` returns a *lazily* backed dataset for
  this format — tables decode on first access.

Both writers stage into a temp directory and rename atomically, so a
killed run never leaves a half-written trace behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import List, Optional, Union

from repro.store.manifest import MANIFEST_FILE
from repro.store.reader import TraceStore
from repro.store.writer import DEFAULT_CHUNK_ROWS, write_store
from repro.table import read_csv, write_csv
from repro.trace.dataset import SCHEMA_2019, TraceDataset
from repro.util.errors import SchemaError
from repro.util.fs import atomic_directory

_META_FILE = "metadata.json"
FORMATS = ("csv", "store")


def _trace_meta(trace: TraceDataset) -> dict:
    return {
        "cell": trace.cell,
        "era": trace.era,
        "horizon": trace.horizon,
        "sample_period": trace.sample_period,
        "utc_offset_hours": trace.utc_offset_hours,
        "capacity_cpu": trace.capacity_cpu,
        "capacity_mem": trace.capacity_mem,
    }


def save_trace(trace: TraceDataset, directory: Union[str, os.PathLike],
               format: str = "csv",
               chunk_rows: int = DEFAULT_CHUNK_ROWS) -> None:
    """Write ``trace`` under ``directory`` (replaced atomically).

    The whole trace is staged in a hidden sibling directory and renamed
    into place on success, so readers only ever see complete traces.
    """
    if format not in FORMATS:
        raise ValueError(f"unknown trace format {format!r}; use one of {FORMATS}")
    if format == "store":
        write_store(trace, directory, chunk_rows=chunk_rows)
        return
    with atomic_directory(directory) as tmp:
        for name, table in trace.tables.items():
            write_csv(table, tmp / f"{name}.csv")
        with open(tmp / _META_FILE, "w") as f:
            json.dump(_trace_meta(trace), f, indent=2)


def detect_format(directory: Union[str, os.PathLike]) -> Optional[str]:
    """Which trace format lives at ``directory`` (None when neither)."""
    path = Path(directory)
    if (path / MANIFEST_FILE).exists():
        return "store"
    if (path / _META_FILE).exists():
        return "csv"
    return None


def load_trace(directory: Union[str, os.PathLike],
               format: Optional[str] = None,
               cache_chunks: int = 64,
               use_mmap: Optional[bool] = None) -> TraceDataset:
    """Read a trace previously written by :func:`save_trace`.

    The format is auto-detected unless forced.  Store-backed traces come
    back as a lazy :class:`~repro.store.reader.StoreBackedTraceDataset`
    (tables decode on first access); CSV traces load eagerly.
    ``use_mmap`` selects the store's zero-copy mmap read path (``None``
    defers to the module default; ignored for CSV traces).
    """
    path = Path(directory)
    if format is None:
        format = detect_format(path)
        if format is None:
            raise SchemaError(
                f"no trace at {path} (neither {_META_FILE} nor {MANIFEST_FILE})"
            )
    elif format not in FORMATS:
        raise ValueError(f"unknown trace format {format!r}; use one of {FORMATS}")
    if format == "store":
        return TraceStore(path, cache_chunks=cache_chunks,
                          use_mmap=use_mmap).to_dataset()

    meta_path = path / _META_FILE
    if not meta_path.exists():
        raise SchemaError(f"no trace metadata at {meta_path}")
    with open(meta_path) as f:
        meta = json.load(f)
    tables = {}
    problems: List[str] = []
    for name, columns in SCHEMA_2019.items():
        csv_path = path / f"{name}.csv"
        if not csv_path.exists():
            problems.append(f"missing table file {csv_path.name}")
            continue
        table = read_csv(csv_path)
        if table.column_names != columns:
            problems.append(
                f"{csv_path.name}: columns {table.column_names} != schema {columns}"
            )
            continue
        tables[name] = table
    if problems:
        raise SchemaError(
            f"{path}: {len(problems)} table(s) failed to load: "
            + "; ".join(problems)
        )
    return TraceDataset(tables=tables, **meta)
