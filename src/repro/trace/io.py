"""Trace persistence: one directory per cell, CSV per table + metadata.

The real 2011 trace shipped as CSV files; we keep that format for both
eras (the 2019 BigQuery tables are relational anyway) plus a small JSON
metadata sidecar for the cell-level attributes.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Union

from repro.table import read_csv, write_csv
from repro.trace.dataset import SCHEMA_2019, TraceDataset
from repro.util.errors import SchemaError

_META_FILE = "metadata.json"


def save_trace(trace: TraceDataset, directory: Union[str, os.PathLike]) -> None:
    """Write all tables and metadata under ``directory`` (created if needed)."""
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    for name, table in trace.tables.items():
        write_csv(table, path / f"{name}.csv")
    meta = {
        "cell": trace.cell,
        "era": trace.era,
        "horizon": trace.horizon,
        "sample_period": trace.sample_period,
        "utc_offset_hours": trace.utc_offset_hours,
        "capacity_cpu": trace.capacity_cpu,
        "capacity_mem": trace.capacity_mem,
    }
    with open(path / _META_FILE, "w") as f:
        json.dump(meta, f, indent=2)


def load_trace(directory: Union[str, os.PathLike]) -> TraceDataset:
    """Read a trace previously written by :func:`save_trace`."""
    path = Path(directory)
    meta_path = path / _META_FILE
    if not meta_path.exists():
        raise SchemaError(f"no trace metadata at {meta_path}")
    with open(meta_path) as f:
        meta = json.load(f)
    tables = {}
    for name, columns in SCHEMA_2019.items():
        csv_path = path / f"{name}.csv"
        if not csv_path.exists():
            raise SchemaError(f"missing trace table {csv_path}")
        table = read_csv(csv_path)
        if table.column_names != columns:
            raise SchemaError(
                f"{csv_path}: columns {table.column_names} != schema {columns}"
            )
        tables[name] = table
    return TraceDataset(tables=tables, **meta)
