"""The in-memory trace dataset: five tables plus cell metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.table import Table
from repro.trace.schema import TABLE_COLUMNS, empty_table
from repro.util.timeutil import HOUR_SECONDS

#: Schema of each 2019-style table (column name order is canonical).
#: Kept as a name for compatibility; the declaration lives in
#: :mod:`repro.trace.schema`.
SCHEMA_2019 = TABLE_COLUMNS


@dataclass
class TraceDataset:
    """One cell's trace: the five 2019-style tables plus metadata.

    ``era`` is "2011" or "2019"; 2011-era datasets use the same table
    shapes (priorities are then 0-11 bands) and can be converted to the
    legacy CSV layout with :func:`repro.trace.legacy.to_2011_tables`.
    """

    cell: str
    era: str
    horizon: float
    sample_period: float
    utc_offset_hours: float
    capacity_cpu: float
    capacity_mem: float
    tables: Dict[str, Table] = field(default_factory=dict)

    def __post_init__(self):
        for name, columns in SCHEMA_2019.items():
            if name not in self.tables:
                self.tables[name] = empty_table(name)
            got = self.tables[name].column_names
            if got != columns:
                raise ValueError(
                    f"table {name!r} has columns {got}, expected {columns}"
                )

    @property
    def collection_events(self) -> Table:
        return self.tables["collection_events"]

    @property
    def instance_events(self) -> Table:
        return self.tables["instance_events"]

    @property
    def instance_usage(self) -> Table:
        return self.tables["instance_usage"]

    @property
    def machine_events(self) -> Table:
        return self.tables["machine_events"]

    @property
    def machine_attributes(self) -> Table:
        return self.tables["machine_attributes"]

    @property
    def horizon_hours(self) -> float:
        return self.horizon / HOUR_SECONDS

    def __repr__(self) -> str:
        sizes = {name: len(t) for name, t in self.tables.items()}
        return f"TraceDataset(cell={self.cell!r}, era={self.era}, rows={sizes})"
