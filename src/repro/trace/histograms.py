"""Per-sample CPU-utilization histograms (paper section 3).

"The 2019 trace adds a 21-element histogram of CPU utilization for each
5 minute sampling period, biased towards high percentiles."

Our usage samples carry (average, maximum) per window; this module
reconstructs the full 21-point percentile summary from them with a
deterministic parametric model: within-window readings are taken as
lognormal around the average with the dispersion solved so that the
window's extreme quantile lands on the recorded maximum.  The result is
exactly the encoding the real trace ships (values at the
:data:`~repro.stats.histogram.CPU_HISTOGRAM_PERCENTILES` positions), and
is consistent with the sample by construction: mean ≈ avg, top = max.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy.special import ndtri

from repro.stats.histogram import CPU_HISTOGRAM_PERCENTILES
from repro.trace.dataset import TraceDataset

#: The quantile mapped onto the recorded window maximum.
_MAX_QUANTILE_Z = float(ndtri(0.999))


def _sigma_for_ratio(ratio: np.ndarray) -> np.ndarray:
    """Lognormal sigma such that the 99.9th-percentile reading is
    ``ratio`` times the mean.

    For X = mean * exp(sigma * Z - sigma^2/2):
        q999 / mean = exp(sigma * z999 - sigma^2 / 2)
    Solving the quadratic for sigma (taking the smaller root so sigma
    grows smoothly from 0 as the ratio leaves 1):
        sigma = z999 - sqrt(z999^2 - 2 ln(ratio)).
    """
    log_ratio = np.log(np.maximum(ratio, 1.0))
    # Cap at the solvable range (ratio <= exp(z^2/2) ~ 118x).
    log_ratio = np.minimum(log_ratio, _MAX_QUANTILE_Z**2 / 2.0 - 1e-9)
    return _MAX_QUANTILE_Z - np.sqrt(_MAX_QUANTILE_Z**2 - 2.0 * log_ratio)


def synthesize_cpu_histograms(trace: TraceDataset,
                              max_rows: Optional[int] = None) -> np.ndarray:
    """The (n_rows, 21) per-window CPU percentile summaries.

    Row *i* corresponds to row *i* of ``trace.instance_usage`` (the first
    ``max_rows`` of them when given — the full table can be millions of
    rows).  Deterministic: no randomness is involved, so the histograms
    are a pure function of the trace.
    """
    iu = trace.instance_usage
    n = len(iu) if max_rows is None else min(max_rows, len(iu))
    avg = iu.column("avg_cpu").values[:n]
    peak = iu.column("max_cpu").values[:n]
    return histogram_from_avg_max(avg, peak)


def histogram_from_avg_max(avg: np.ndarray, peak: np.ndarray) -> np.ndarray:
    """Vectorized percentile reconstruction from (average, maximum) pairs."""
    avg = np.asarray(avg, dtype=float)
    peak = np.asarray(peak, dtype=float)
    if avg.shape != peak.shape:
        raise ValueError(f"shape mismatch: {avg.shape} vs {peak.shape}")
    n = avg.shape[0]
    out = np.zeros((n, len(CPU_HISTOGRAM_PERCENTILES)))
    positive = avg > 0
    if not positive.any():
        return out
    a = avg[positive]
    m = np.maximum(peak[positive], a)
    sigma = _sigma_for_ratio(m / a)

    z = ndtri(np.clip(np.asarray(CPU_HISTOGRAM_PERCENTILES) / 100.0,
                      1e-6, 1.0 - 1e-6))
    # X_q = a * exp(sigma * z_q - sigma^2 / 2), clipped into [0, max].
    values = a[:, None] * np.exp(sigma[:, None] * z[None, :]
                                 - (sigma**2)[:, None] / 2.0)
    values = np.minimum(values, m[:, None])
    # The final element is the percentile-100 reading: the recorded max.
    values[:, -1] = m
    out[positive] = values
    return out


def overload_fraction(trace: TraceDataset, percentile_index: int = 18,
                      max_rows: Optional[int] = None) -> float:
    """Fraction of windows whose high-percentile reading exceeds the limit.

    ``percentile_index`` defaults to 18 — the 99th percentile position —
    the signal overload detectors (and Autopilot) watch.  CPU is work
    conserving, so exceeding the limit is legal but indicates throttling
    risk.
    """
    if not 0 <= percentile_index < len(CPU_HISTOGRAM_PERCENTILES):
        raise ValueError(f"percentile_index must be in [0, 21), got "
                         f"{percentile_index}")
    iu = trace.instance_usage
    n = len(iu) if max_rows is None else min(max_rows, len(iu))
    if n == 0:
        return 0.0
    histograms = synthesize_cpu_histograms(trace, max_rows=n)
    limits = iu.column("limit_cpu").values[:n]
    with_limit = limits > 0
    if not with_limit.any():
        return 0.0
    return float((histograms[with_limit, percentile_index]
                  > limits[with_limit]).mean())
