"""Trace sampling: carve a faithful subset out of a large trace.

The real 2019 trace is 2.8 TiB — the authors moved it to BigQuery partly
"to obviate the need to download so much data" (section 9).  The
analogous tool here: sample a trace down to a fraction of its jobs while
preserving the statistics that matter.  Uniform job sampling would
destroy the heavy tail (the top 1% carry >99% of the load and would
mostly be dropped); :func:`sample_trace` therefore samples *stratified by
size*: every hog is kept, mice are thinned, and analyses can re-weight
by the recorded sampling rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

import numpy as np

from repro.table import Table
from repro.trace.dataset import TraceDataset


@dataclass(frozen=True)
class SampleInfo:
    """What the sampler kept."""

    kept_collections: int
    total_collections: int
    hogs_kept: int
    mouse_sampling_rate: float


def _filter_by_collection(table: Table, keep: Set[int]) -> Table:
    ids = table.column("collection_id").values
    mask = np.fromiter((int(i) in keep for i in ids), dtype=bool,
                       count=len(table))
    return table.filter(mask)


def sample_trace(trace: TraceDataset, mouse_fraction: float = 0.1,
                 hog_quantile: float = 0.99, seed: int = 0,
                 ) -> "tuple[TraceDataset, SampleInfo]":
    """Return a size-stratified sample of ``trace`` plus its bookkeeping.

    * Every collection above the ``hog_quantile`` of NCU-hours is kept
      (hogs are irreplaceable: they *are* the load).
    * Alloc sets are always kept (jobs may reference them).
    * Remaining jobs ("mice") are kept independently with probability
      ``mouse_fraction``.

    Count statistics over the sample must be re-weighted by
    ``1 / mouse_sampling_rate`` for the mice; load statistics are almost
    unaffected because the hogs carry the load.
    """
    if not 0 < mouse_fraction <= 1:
        raise ValueError(f"mouse_fraction must be in (0, 1], got {mouse_fraction}")
    if not 0.5 <= hog_quantile < 1:
        raise ValueError(f"hog_quantile must be in [0.5, 1), got {hog_quantile}")
    rng = np.random.default_rng(seed)

    # Imported here, not at module top: analysis.common imports
    # repro.trace.dataset, whose package init imports this module —
    # a top-level import makes `import repro.analysis` (and the CLI's
    # cold start) fail with a partially-initialized-module error.
    from repro.analysis.common import job_usage_integrals

    integrals = job_usage_integrals(trace, include_alloc_sets=True)
    hours = integrals.column("ncu_hours").values
    ids = integrals.column("collection_id").values
    threshold = float(np.quantile(hours, hog_quantile)) if len(hours) else 0.0

    ce = trace.collection_events
    submits = ce.filter(ce.column("type") == "SUBMIT").distinct("collection_id")
    all_ids = [int(i) for i in submits.column("collection_id").values]
    kinds = dict(zip(
        (int(i) for i in submits.column("collection_id").values),
        submits.column("collection_type").values,
    ))
    hog_ids = {int(cid) for cid, h in zip(ids, hours) if h >= threshold and h > 0}

    keep: Set[int] = set()
    hogs_kept = 0
    for cid in all_ids:
        if kinds.get(cid) == "alloc_set":
            keep.add(cid)
        elif cid in hog_ids:
            keep.add(cid)
            hogs_kept += 1
        elif rng.random() < mouse_fraction:
            keep.add(cid)

    tables = {
        "collection_events": _filter_by_collection(trace.collection_events, keep),
        "instance_events": _filter_by_collection(trace.instance_events, keep),
        "instance_usage": _filter_by_collection(trace.instance_usage, keep),
        "machine_events": trace.machine_events,
        "machine_attributes": trace.machine_attributes,
    }
    sampled = TraceDataset(
        cell=f"{trace.cell}-sample",
        era=trace.era,
        horizon=trace.horizon,
        sample_period=trace.sample_period,
        utc_offset_hours=trace.utc_offset_hours,
        capacity_cpu=trace.capacity_cpu,
        capacity_mem=trace.capacity_mem,
        tables=tables,
    )
    info = SampleInfo(
        kept_collections=len(keep),
        total_collections=len(all_ids),
        hogs_kept=hogs_kept,
        mouse_sampling_rate=mouse_fraction,
    )
    return sampled, info
