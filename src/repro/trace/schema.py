"""The canonical trace-table schemas (single source of truth).

Every consumer of the five 2019-style tables — the encoder that builds
them, the validator that checks them, the CSV and chunked-store writers,
and the :mod:`repro.lint` static checker — reads column names, kinds and
ordering from this module.  Nothing else in the repo may spell out a
table's column list; that duplication is exactly what rule RPR001
(schema-consistency) exists to prevent.

Two derived views are computed from the same declaration:

* :data:`TABLE_COLUMNS` — name -> ordered tuple of column names;
* :data:`TIME_COLUMNS` — name -> the column that orders the table in
  time (used for store clustering and the event-time invariants).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.table.column import Column
from repro.table.table import Table

_EMPTY_DTYPES = {"float": np.float64, "int": np.int64, "bool": np.bool_,
                 "str": object}

#: Per-table column declarations: ``name -> ((column, kind), ...)``.
#: Order is canonical — writers emit and readers verify this order.
#: Kinds are the four :class:`repro.table.column.Column` storage kinds.
TABLE_SCHEMAS: Dict[str, Tuple[Tuple[str, str], ...]] = {
    "collection_events": (
        ("time", "float"),
        ("collection_id", "int"),
        ("type", "str"),
        ("collection_type", "str"),
        ("priority", "int"),
        ("tier", "str"),
        ("user", "str"),
        ("scheduler", "str"),
        ("parent_collection_id", "int"),
        ("alloc_collection_id", "int"),
        ("vertical_scaling", "str"),
        ("constraint", "str"),
        ("num_instances", "int"),
    ),
    "instance_events": (
        ("time", "float"),
        ("collection_id", "int"),
        ("instance_index", "int"),
        ("type", "str"),
        ("machine_id", "int"),
        ("priority", "int"),
        ("tier", "str"),
        ("resource_request_cpu", "float"),
        ("resource_request_mem", "float"),
        ("is_new", "bool"),
    ),
    "instance_usage": (
        ("start_time", "float"),
        ("duration", "float"),
        ("collection_id", "int"),
        ("instance_index", "int"),
        ("machine_id", "int"),
        ("tier", "str"),
        ("vertical_scaling", "str"),
        ("in_alloc", "bool"),
        ("avg_cpu", "float"),
        ("max_cpu", "float"),
        ("avg_mem", "float"),
        ("max_mem", "float"),
        ("limit_cpu", "float"),
        ("limit_mem", "float"),
    ),
    "machine_events": (
        ("time", "float"),
        ("machine_id", "int"),
        ("type", "str"),
        ("cpu_capacity", "float"),
        ("mem_capacity", "float"),
    ),
    "machine_attributes": (
        ("machine_id", "int"),
        ("cpu_capacity", "float"),
        ("mem_capacity", "float"),
        ("platform", "str"),
        ("utc_offset_hours", "float"),
    ),
}

#: ``table -> ordered column names`` (the shape SCHEMA_2019 always had).
TABLE_COLUMNS: Dict[str, List[str]] = {
    name: [column for column, _ in columns]
    for name, columns in TABLE_SCHEMAS.items()
}

#: ``table -> {column: kind}``.
COLUMN_KINDS: Dict[str, Dict[str, str]] = {
    name: {column: kind for column, kind in columns}
    for name, columns in TABLE_SCHEMAS.items()
}

#: The column that orders each table in time.  Tables without one
#: (machine_attributes is a dimension table) are absent.
TIME_COLUMNS: Dict[str, str] = {
    name: ("start_time" if "start_time" in TABLE_COLUMNS[name] else "time")
    for name in TABLE_SCHEMAS
    if "time" in TABLE_COLUMNS[name] or "start_time" in TABLE_COLUMNS[name]
}

#: Tables carrying a plain event ``time`` column, in schema order.
EVENT_TABLES: Tuple[str, ...] = tuple(
    name for name, col in TIME_COLUMNS.items() if col == "time"
)


def columns_of(table: str) -> List[str]:
    """The canonical, ordered column names of ``table``."""
    try:
        return list(TABLE_COLUMNS[table])
    except KeyError:
        raise KeyError(
            f"unknown trace table {table!r}; known: {sorted(TABLE_SCHEMAS)}"
        ) from None


def has_column(table: str, column: str) -> bool:
    """Whether ``table`` declares ``column``."""
    return column in COLUMN_KINDS.get(table, ())


def time_column_of(table: str) -> Optional[str]:
    """The time-ordering column of ``table`` (None for dimension tables)."""
    return TIME_COLUMNS.get(table)


def empty_table(table: str) -> Table:
    """A zero-row table for ``table`` with correctly-kinded columns.

    Bare ``Table({c: [] for c in columns})`` would coerce every empty
    column to the float kind; this keeps int/str/bool columns typed so
    empty tables round-trip through the store with their declared kinds.
    """
    return Table({
        column: Column(np.empty(0, dtype=_EMPTY_DTYPES[kind]))
        for column, kind in TABLE_SCHEMAS[table]
    })


def ordered_columns(table: str, values: Mapping[str, object]) -> Dict[str, object]:
    """Reorder ``values`` (column -> payload) into canonical schema order.

    Raises if ``values`` does not cover exactly the declared columns, so
    an encoder that drifts from the schema fails loudly at build time
    rather than producing a malformed trace.
    """
    declared = columns_of(table)
    got = set(values)
    missing = [c for c in declared if c not in got]
    extra = sorted(got - set(declared))
    if missing or extra:
        raise ValueError(
            f"table {table!r}: columns do not match schema"
            + (f"; missing {missing}" if missing else "")
            + (f"; unexpected {extra}" if extra else "")
        )
    return {column: values[column] for column in declared}
