"""The trace-generation pipeline (paper section 9).

Converts a :class:`~repro.sim.cell.CellResult` into relational trace
tables mirroring the published datasets:

* 2019-style (BigQuery tables): ``collection_events``,
  ``instance_events``, ``instance_usage``, ``machine_events``,
  ``machine_attributes``.
* 2011-style (CSV files): the same information under the older
  ``job_events`` / ``task_events`` / ``task_usage`` names with
  priorities as 0-11 bands.

Plus the automated invariant validator the authors wished they had
started with ("at this scale, paranoia is a helpful default").
"""

from repro.trace.dataset import TraceDataset
from repro.trace.encode import encode_cell
from repro.trace.histograms import (
    histogram_from_avg_max,
    overload_fraction,
    synthesize_cpu_histograms,
)
from repro.trace.io import load_trace, save_trace
from repro.trace.legacy import to_2011_tables
from repro.trace.sample import SampleInfo, sample_trace
from repro.trace.validate import Violation, validate_trace

__all__ = [
    "TraceDataset",
    "encode_cell",
    "histogram_from_avg_max",
    "overload_fraction",
    "synthesize_cpu_histograms",
    "load_trace",
    "save_trace",
    "to_2011_tables",
    "SampleInfo",
    "sample_trace",
    "Violation",
    "validate_trace",
]
