"""ASCII chart rendering.

A small, dependency-free plotting surface: multi-series line charts with
optional log axes (enough for the paper's CCDFs, including the log-log
figure 12), stacked tier time series (figures 2/4), and labeled bar
charts (figures 3/5).
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

import numpy as np

#: Per-series markers, assigned in insertion order.
MARKERS = "ox*+#@%&"


def _transform(values: np.ndarray, log: bool, what: str) -> np.ndarray:
    if not log:
        return values
    if (values <= 0).any():
        raise ValueError(f"log-scale {what} requires positive values")
    return np.log10(values)


def _ticks(lo: float, hi: float, log: bool, count: int = 5) -> List[float]:
    if log:
        return list(np.logspace(lo, hi, count))
    return list(np.linspace(lo, hi, count))


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 1000 or abs(value) < 0.01:
        return f"{value:.1e}"
    return f"{value:.3g}"


def line_chart(series: Mapping[str, Tuple[Sequence[float], Sequence[float]]],
               width: int = 64, height: int = 16,
               logx: bool = False, logy: bool = False,
               title: str = "", x_label: str = "x",
               y_label: str = "y") -> str:
    """Render (x, y) series as a character grid with axes and a legend.

    >>> print(line_chart({"f": ([1, 2, 3], [3, 2, 1])}, width=20, height=5))
    ... # doctest: +SKIP
    """
    if not series:
        raise ValueError("line_chart requires at least one series")
    if width < 16 or height < 4:
        raise ValueError("chart too small: need width >= 16, height >= 4")

    prepared = {}
    for name, (xs, ys) in series.items():
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if xs.shape != ys.shape or xs.size == 0:
            raise ValueError(f"series {name!r}: x/y must be equal-length, non-empty")
        prepared[name] = (_transform(xs, logx, "x"), _transform(ys, logy, "y"))

    all_x = np.concatenate([xs for xs, _ in prepared.values()])
    all_y = np.concatenate([ys for _, ys in prepared.values()])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, (xs, ys)), marker in zip(prepared.items(), MARKERS):
        cols = np.clip(((xs - x_lo) / (x_hi - x_lo) * (width - 1)).round(),
                       0, width - 1).astype(int)
        rows = np.clip(((ys - y_lo) / (y_hi - y_lo) * (height - 1)).round(),
                       0, height - 1).astype(int)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = marker

    lines: List[str] = []
    if title:
        lines.append(title)
    y_ticks = _ticks(y_lo, y_hi, logy)
    label_width = max(len(_fmt(t)) for t in y_ticks) + 1
    for i, row in enumerate(grid):
        # Label the top, middle and bottom rows.
        frac = 1.0 - i / (height - 1)
        if i in (0, height // 2, height - 1):
            value = y_lo + frac * (y_hi - y_lo)
            if logy:
                value = 10**value
            label = _fmt(value).rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |" + "".join(row))
    lines.append(" " * label_width + "+" + "-" * width)
    x_ticks = _ticks(x_lo, x_hi, logx, count=3)
    if logx:
        tick_text = "  ".join(_fmt(t) for t in x_ticks)
    else:
        tick_text = "  ".join(_fmt(t) for t in x_ticks)
    lines.append(" " * (label_width + 1) + tick_text + f"   [{x_label}]")
    legend = "  ".join(f"{marker}={name}" for (name, _), marker
                       in zip(prepared.items(), MARKERS))
    lines.append(f"{y_label} vs {x_label}; {legend}")
    return "\n".join(lines)


def ccdf_chart(ccdfs: Mapping[str, "Ccdf"], width: int = 64,  # noqa: F821
               height: int = 16, logx: bool = False, logy: bool = False,
               title: str = "", max_points: int = 200) -> str:
    """Render CCDFs (``repro.stats.Ccdf``) as a line chart.

    Zero-probability tail points are dropped under ``logy``; dense CCDFs
    are decimated to ``max_points`` per series.
    """
    series = {}
    for name, ccdf in ccdfs.items():
        xs, ps = ccdf.as_series()
        if logy:
            keep = ps > 0
            xs, ps = xs[keep], ps[keep]
        if logx:
            keep = xs > 0
            xs, ps = xs[keep], ps[keep]
        if xs.size == 0:
            continue
        if xs.size > max_points:
            idx = np.linspace(0, xs.size - 1, max_points).astype(int)
            xs, ps = xs[idx], ps[idx]
        series[name] = (xs, ps)
    if not series:
        raise ValueError("no drawable CCDF points (all filtered by log axes)")
    return line_chart(series, width=width, height=height, logx=logx,
                      logy=logy, title=title, x_label="x",
                      y_label="Pr(X > x)")


def stacked_series_chart(series: Mapping[str, Sequence[float]],
                         width: int = 64, height: int = 16,
                         title: str = "", x_label: str = "hour") -> str:
    """Stacked area chart of per-tier series (figures 2 and 4).

    Each column shows the cumulative stack; each band is filled with its
    tier's marker character.
    """
    if not series:
        raise ValueError("stacked_series_chart requires at least one series")
    arrays = {name: np.asarray(v, dtype=float) for name, v in series.items()}
    n = {len(a) for a in arrays.values()}
    if len(n) != 1:
        raise ValueError("all series must have equal length")
    n = n.pop()
    if n == 0:
        raise ValueError("series are empty")
    total = sum(arrays.values())
    peak = float(np.max(total))
    if peak <= 0:
        raise ValueError("nothing to stack: total is zero everywhere")

    grid = [[" "] * width for _ in range(height)]
    cols = np.clip((np.arange(n) / max(n - 1, 1) * (width - 1)).round(),
                   0, width - 1).astype(int)
    for col_group in range(width):
        hours = np.flatnonzero(cols == col_group)
        if hours.size == 0:
            continue
        h = int(hours[0])
        base = 0.0
        for (name, values), marker in zip(arrays.items(), MARKERS):
            top = base + float(values[h])
            r_lo = int(round(base / peak * (height - 1)))
            r_hi = int(round(top / peak * (height - 1)))
            for r in range(r_lo, max(r_hi, r_lo + (1 if values[h] > 0 else 0))):
                grid[height - 1 - min(r, height - 1)][col_group] = marker
            base = top

    lines = []
    if title:
        lines.append(title)
    label_width = len(_fmt(peak)) + 1
    for i, row in enumerate(grid):
        frac = 1.0 - i / (height - 1)
        if i in (0, height // 2, height - 1):
            label = _fmt(frac * peak).rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |" + "".join(row))
    lines.append(" " * label_width + "+" + "-" * width)
    lines.append(" " * (label_width + 1) + f"0 .. {n - 1} [{x_label}]")
    legend = "  ".join(f"{marker}={name}" for (name, _), marker
                       in zip(arrays.items(), MARKERS))
    lines.append("stack: " + legend)
    return "\n".join(lines)


def bar_chart(values: Mapping[str, float], width: int = 50,
              title: str = "") -> str:
    """Horizontal labeled bar chart (figures 3 and 5 style)."""
    if not values:
        raise ValueError("bar_chart requires at least one bar")
    peak = max(abs(v) for v in values.values())
    if peak == 0:
        peak = 1.0
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for name, value in values.items():
        filled = int(round(abs(value) / peak * width))
        lines.append(f"{name.rjust(label_width)} |{'#' * filled}"
                     f"{' ' * (width - filled)}| {_fmt(value)}")
    return "\n".join(lines)
