"""Terminal plotting: render the paper's figures as ASCII charts.

No plotting stack is assumed (or available offline); these renderers
draw CCDFs, time series and bar charts straight into text, which is how
the examples and the report driver visualize results.
"""

from repro.plot.ascii import (
    bar_chart,
    ccdf_chart,
    line_chart,
    stacked_series_chart,
)

__all__ = ["bar_chart", "ccdf_chart", "line_chart", "stacked_series_chart"]
