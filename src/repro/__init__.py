"""repro — a reproduction of "Borg: the Next Generation" (EuroSys 2020).

The package rebuilds the paper's full stack from scratch:

* ``repro.sim`` — a discrete-event Borg-cell simulator (tiers,
  preemption, batch queueing, alloc sets, dependencies, Autopilot).
* ``repro.workload`` — synthetic workloads calibrated to the paper's
  published 2011 and 2019 statistics, including the eight 2019 cells.
* ``repro.trace`` — the trace-generation pipeline: 2019 BigQuery-style
  and 2011 CSV-style schemas, plus the section-9 invariant validator.
* ``repro.table`` — an in-memory columnar query engine (the BigQuery
  substitute all analyses run on).
* ``repro.stats`` / ``repro.queueing`` — CCDFs, Pareto tail fits, C²,
  hogs-and-mice decomposition, M/G/1 Pollaczek-Khinchine analysis.
* ``repro.analysis`` — one module per paper figure/table.

Quickstart::

    from repro.workload import small_test_scenario
    from repro.trace import encode_cell
    from repro.analysis import consumption

    result = small_test_scenario(seed=1).run()
    trace = encode_cell(result)
    report = consumption.resource_hours_summary(trace)
"""

__version__ = "1.0.0"
