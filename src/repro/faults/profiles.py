"""Named fault profiles: the presets scenarios and campaigns select by name.

A profile is just a :class:`FaultParams` value; the names are the
vocabulary shared by ``small_test_scenario(faults=...)``, the campaign
``faults`` grid axis, and the CLI ``--faults`` flag:

* ``off`` — no fault injection at all (``None``; the default
  everywhere, so untouched scenarios and goldens never change).
* ``light`` — occasional rack crashes plus weekly-ish maintenance:
  roughly the background failure level the baseline per-machine
  maintenance already approximates, but correlated.
* ``heavy`` — frequent rack and power-domain crashes, maintenance, and
  rolling upgrades, with resubmission on: the failure-heavy scenario
  the determinism sweep and the CI smoke job run.
* ``storm`` — ``heavy`` with aggressive resubmission (short backoff,
  deep chains, loose budgets): the resubmission-storm stress case.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

from repro.faults.schedule import FaultParams, ResubmitPolicy

FAULT_PROFILES: Dict[str, Optional[FaultParams]] = {
    "off": None,
    "light": FaultParams(
        rack_crash_rate_per_day=0.02,
        power_outage_rate_per_day=0.004,
        maintenance_interval_days=7.0,
    ),
    "heavy": FaultParams(
        rack_crash_rate_per_day=0.25,
        power_outage_rate_per_day=0.05,
        maintenance_interval_days=2.0,
        upgrade_period_hours=8.0,
        resubmit=ResubmitPolicy(),
    ),
    "storm": FaultParams(
        rack_crash_rate_per_day=0.25,
        power_outage_rate_per_day=0.05,
        maintenance_interval_days=2.0,
        upgrade_period_hours=8.0,
        resubmit=ResubmitPolicy(base_delay=15.0, multiplier=1.7,
                                max_delay=900.0, max_attempts=8,
                                user_retry_budget=1000, refail_prob=0.75),
    ),
}


def fault_profile(name: str, rate_scale: float = 1.0) -> Optional[FaultParams]:
    """Resolve a profile name, optionally scaling its unplanned rates."""
    if name not in FAULT_PROFILES:
        known = ", ".join(sorted(FAULT_PROFILES))
        raise ValueError(f"unknown fault profile {name!r} (known: {known})")
    params = FAULT_PROFILES[name]
    if params is None:
        return None
    return params.scaled(rate_scale)


def resolve_faults(faults: Union[str, FaultParams, None],
                   rate_scale: float = 1.0) -> Optional[FaultParams]:
    """Normalize a scenario/campaign ``faults`` knob to ``FaultParams``.

    Accepts ``None`` (off), a profile name, or explicit
    :class:`FaultParams`; ``rate_scale`` multiplies unplanned rates in
    every case.
    """
    if faults is None:
        return None
    if isinstance(faults, str):
        return fault_profile(faults, rate_scale)
    if isinstance(faults, FaultParams):
        return faults.scaled(rate_scale)
    raise TypeError(
        f"faults must be None, a profile name, or FaultParams, "
        f"got {type(faults).__name__}")
