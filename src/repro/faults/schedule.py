"""Fault-event schedules and the resubmission policy.

Three correlated outage kinds over a :class:`FailureDomains` topology:

* **crash** — unplanned: a rack (switch dies) or a whole power domain
  (feed trips) drops instantly.  Poisson per domain.  Everything on the
  machines is evicted, production tiers included.
* **maintenance** — planned: each rack gets a periodic maintenance
  window with a random phase.  Production work is drained ahead of the
  outage (no EVICT), exactly like the baseline per-machine maintenance.
* **upgrade** — planned: rolling kernel/firmware pushes sweep the cell
  rack by rack, one rack every ``upgrade_step`` seconds, repeating
  every ``upgrade_period_hours``.

All times come from the single RNG generator the caller passes in (the
cell's ``"faults"`` stream) and the generation loop iterates domains in
a fixed order, so the schedule is a pure function of
``(params, domains, horizon, seed)``.

The :class:`ResubmitPolicy` half models the Deep Dive's resubmission
behavior: a failed job re-enters the cell after a bounded exponential
backoff, retried at most ``max_attempts`` times per chain and at most
``user_retry_budget`` times per user per run (the storm brake).  The
backoff is deliberately jitter-free — ``delay(k)`` strictly increases
with ``k`` until it clamps at ``max_delay``, an invariant the
property-based suite checks against the event log.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Tuple

import numpy as np

from repro.faults.domains import FailureDomains
from repro.util.timeutil import HOUR_SECONDS

DAY_SECONDS = 24 * HOUR_SECONDS

#: Fault kinds, in the order used for deterministic schedule sorting.
FAULT_KINDS = ("crash", "maintenance", "upgrade")


class FaultEvent(NamedTuple):
    """One correlated outage: a block of machines down for a while."""

    time: float
    kind: str                       # "crash" | "maintenance" | "upgrade"
    scope: str                      # "rack" | "power"
    domain_id: int                  # rack or power-domain index
    machine_indices: Tuple[int, ...]
    duration: float


@dataclass(frozen=True)
class ResubmitPolicy:
    """Bounded-exponential-backoff resubmission for failed jobs."""

    #: First retry lands this many seconds after the failure.
    base_delay: float = 60.0
    #: Backoff multiplier per attempt.
    multiplier: float = 2.0
    #: Backoff clamp: delays never exceed this.
    max_delay: float = HOUR_SECONDS
    #: A chain dies after this many resubmissions of the original job.
    max_attempts: int = 5
    #: Per-user cap on resubmissions per run — the storm brake.  The
    #: Deep Dive observes a handful of users generating most
    #: resubmission traffic; without a budget, one crash-looping
    #: framework floods the pending queue forever.
    user_retry_budget: int = 200
    #: Probability a resubmitted job fails again (crash loops).
    refail_prob: float = 0.6

    def __post_init__(self):
        if self.base_delay <= 0:
            raise ValueError("base_delay must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay < self.base_delay:
            raise ValueError("max_delay must be >= base_delay")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.user_retry_budget < 0:
            raise ValueError("user_retry_budget must be >= 0")
        if not 0.0 <= self.refail_prob <= 1.0:
            raise ValueError("refail_prob must be in [0, 1]")

    def delay(self, attempt: int) -> float:
        """Backoff before resubmission ``attempt`` (1-based).

        Strictly increasing in ``attempt`` until it clamps at
        ``max_delay`` (for ``multiplier > 1``).
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return float(min(self.base_delay * self.multiplier ** (attempt - 1),
                         self.max_delay))


@dataclass(frozen=True)
class FaultParams:
    """Everything that parameterizes a cell's correlated-fault model."""

    #: Topology knobs (see :class:`FailureDomains`).
    machines_per_rack: int = 8
    racks_per_power_domain: int = 4

    #: Unplanned rack crashes per rack per day (Poisson).
    rack_crash_rate_per_day: float = 0.05
    #: Rack-crash outage duration, seconds.
    crash_duration: float = 600.0
    #: Unplanned whole-power-domain outages per domain per day (Poisson).
    power_outage_rate_per_day: float = 0.01
    #: Power-outage duration, seconds.
    power_outage_duration: float = 1800.0

    #: Planned per-rack maintenance cadence, days (0 disables).
    maintenance_interval_days: float = 0.0
    #: Maintenance-window duration, seconds.
    maintenance_duration: float = 900.0

    #: Rolling-upgrade sweep cadence, hours (0 disables).
    upgrade_period_hours: float = 0.0
    #: Seconds between consecutive racks within one sweep.
    upgrade_step: float = 120.0
    #: Per-rack outage during an upgrade, seconds.
    upgrade_duration: float = 300.0

    #: Resubmission behavior for failed jobs (None disables).
    resubmit: Optional[ResubmitPolicy] = None

    def __post_init__(self):
        if self.machines_per_rack <= 0:
            raise ValueError("machines_per_rack must be positive")
        if self.racks_per_power_domain <= 0:
            raise ValueError("racks_per_power_domain must be positive")
        for name in ("rack_crash_rate_per_day", "power_outage_rate_per_day",
                     "maintenance_interval_days", "upgrade_period_hours"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        for name in ("crash_duration", "power_outage_duration",
                     "maintenance_duration", "upgrade_step",
                     "upgrade_duration"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")

    def scaled(self, rate_scale: float) -> "FaultParams":
        """A copy with all *unplanned* fault rates multiplied.

        This is the campaign's ``fault_rate`` axis: one multiplier
        sweeps the crash intensity while planned windows (maintenance,
        upgrades) and the topology stay fixed.
        """
        if rate_scale <= 0:
            raise ValueError("rate_scale must be positive")
        if rate_scale == 1.0:
            return self
        return dataclasses.replace(
            self,
            rack_crash_rate_per_day=self.rack_crash_rate_per_day * rate_scale,
            power_outage_rate_per_day=(self.power_outage_rate_per_day
                                       * rate_scale),
        )

    def domains_for(self, n_machines: int) -> FailureDomains:
        return FailureDomains(n_machines, self.machines_per_rack,
                              self.racks_per_power_domain)


def _poisson_times(rng: np.random.Generator, rate_per_day: float,
                   horizon: float) -> List[float]:
    """Poisson arrival times in ``[0, horizon)`` at ``rate_per_day``."""
    times: List[float] = []
    if rate_per_day <= 0:
        return times
    mean_gap = DAY_SECONDS / rate_per_day
    t = float(rng.exponential(mean_gap))
    while t < horizon:
        times.append(t)
        t += float(rng.exponential(mean_gap))
    return times


def generate_fault_schedule(params: FaultParams, domains: FailureDomains,
                            horizon: float,
                            rng: np.random.Generator) -> List[FaultEvent]:
    """The cell's full fault schedule, sorted by (time, kind, domain).

    Iteration order is fixed (racks ascending, then power domains, then
    maintenance, then upgrade sweeps), so the same ``(params, domains,
    horizon)`` and generator state always yield the same schedule.
    """
    events: List[FaultEvent] = []

    for rack in range(domains.n_racks):
        members = domains.rack_members(rack)
        for t in _poisson_times(rng, params.rack_crash_rate_per_day, horizon):
            events.append(FaultEvent(t, "crash", "rack", rack, members,
                                     params.crash_duration))

    for domain in range(domains.n_power_domains):
        members = domains.power_domain_members(domain)
        for t in _poisson_times(rng, params.power_outage_rate_per_day,
                                horizon):
            events.append(FaultEvent(t, "crash", "power", domain, members,
                                     params.power_outage_duration))

    if params.maintenance_interval_days > 0:
        interval = params.maintenance_interval_days * DAY_SECONDS
        for rack in range(domains.n_racks):
            members = domains.rack_members(rack)
            # Random phase spreads rack windows over the cadence so the
            # cell never loses every rack at once to planned work.
            t = float(rng.uniform(0.0, interval))
            while t < horizon:
                events.append(FaultEvent(t, "maintenance", "rack", rack,
                                         members, params.maintenance_duration))
                t += interval

    if params.upgrade_period_hours > 0:
        period = params.upgrade_period_hours * HOUR_SECONDS
        sweep_start = float(rng.uniform(0.0, period))
        while sweep_start < horizon:
            for rack in range(domains.n_racks):
                t = sweep_start + rack * params.upgrade_step
                if t < horizon:
                    events.append(FaultEvent(t, "upgrade", "rack", rack,
                                             domains.rack_members(rack),
                                             params.upgrade_duration))
            sweep_start += period

    events.sort(key=lambda e: (e.time, FAULT_KINDS.index(e.kind),
                               e.scope, e.domain_id))
    return events
