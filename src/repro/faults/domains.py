"""Failure domains: the fleet's rack and power-domain topology.

Machines do not fail independently — a top-of-rack switch takes its
whole rack offline, and a power feed takes several racks at once.  The
topology here is deterministic given the fleet size and the grouping
knobs: machine ``i`` sits in rack ``i // machines_per_rack``, and rack
``r`` draws power from domain ``r // racks_per_power_domain``.  Block
assignment (rather than a random shuffle) keeps the mapping a pure
function of the config, so fault schedules never consume RNG deciding
*where* a fault lands — only *when*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class FailureDomains:
    """Rack / power-domain grouping over machine *indices* ``0..n-1``.

    Indices are positions in the cell's machine list (the same order
    :class:`~repro.sim.fleet.FleetState` mirrors), not machine ids.
    """

    n_machines: int
    machines_per_rack: int
    racks_per_power_domain: int

    def __post_init__(self):
        if self.n_machines <= 0:
            raise ValueError("n_machines must be positive")
        if self.machines_per_rack <= 0:
            raise ValueError("machines_per_rack must be positive")
        if self.racks_per_power_domain <= 0:
            raise ValueError("racks_per_power_domain must be positive")

    @property
    def n_racks(self) -> int:
        return -(-self.n_machines // self.machines_per_rack)

    @property
    def n_power_domains(self) -> int:
        return -(-self.n_racks // self.racks_per_power_domain)

    def rack_of(self, machine_index: int) -> int:
        if not 0 <= machine_index < self.n_machines:
            raise ValueError(f"machine index {machine_index} out of range")
        return machine_index // self.machines_per_rack

    def power_domain_of_rack(self, rack: int) -> int:
        if not 0 <= rack < self.n_racks:
            raise ValueError(f"rack {rack} out of range")
        return rack // self.racks_per_power_domain

    def rack_members(self, rack: int) -> Tuple[int, ...]:
        """Machine indices in ``rack``, ascending."""
        if not 0 <= rack < self.n_racks:
            raise ValueError(f"rack {rack} out of range")
        lo = rack * self.machines_per_rack
        hi = min(lo + self.machines_per_rack, self.n_machines)
        return tuple(range(lo, hi))

    def power_domain_members(self, domain: int) -> Tuple[int, ...]:
        """Machine indices in power ``domain``, ascending."""
        if not 0 <= domain < self.n_power_domains:
            raise ValueError(f"power domain {domain} out of range")
        out: List[int] = []
        lo_rack = domain * self.racks_per_power_domain
        hi_rack = min(lo_rack + self.racks_per_power_domain, self.n_racks)
        for rack in range(lo_rack, hi_rack):
            out.extend(self.rack_members(rack))
        return tuple(out)
