"""Correlated fault injection: failure domains, schedules, resubmission.

The 2019 trace is shaped as much by *failures* as by the scheduler:
machine crashes and maintenance remove capacity in correlated blocks
(racks share a switch, power domains share a feed), and failed jobs
come back — users and frameworks resubmit with backoff, occasionally
as storms ("A Deep Dive into the Google Cluster Workload Traces").

This package models both, deterministically:

* :class:`FailureDomains` — the fleet's rack / power-domain topology
  (:mod:`repro.faults.domains`).
* :class:`FaultParams` + :func:`generate_fault_schedule` — crash,
  maintenance-window and rolling-upgrade event schedules over those
  domains (:mod:`repro.faults.schedule`).
* :class:`ResubmitPolicy` — bounded exponential backoff with per-user
  retry budgets for failed jobs (:mod:`repro.faults.schedule`).
* :func:`fault_profile` — named presets ("light", "heavy", "storm")
  used by scenarios, the campaign grid and the CLI
  (:mod:`repro.faults.profiles`).

Determinism contract: every draw comes from the cell's own
``rng.stream("faults")`` / ``rng.stream("resubmit")`` streams, and a
cell configured *without* faults performs **zero** extra RNG draws and
pushes **zero** extra events — baseline runs stay byte-identical (the
golden-figure safety property; see DESIGN.md §14).
"""

from repro.faults.domains import FailureDomains
from repro.faults.profiles import FAULT_PROFILES, fault_profile, resolve_faults
from repro.faults.schedule import (
    FaultEvent,
    FaultParams,
    ResubmitPolicy,
    generate_fault_schedule,
)

__all__ = [
    "FailureDomains",
    "FaultEvent",
    "FaultParams",
    "ResubmitPolicy",
    "generate_fault_schedule",
    "FAULT_PROFILES",
    "fault_profile",
    "resolve_faults",
]
