"""User archetypes: composable behavioral workload generators.

The per-user clustering literature on the Google traces ("Analysis and
Clustering of Workload in Google Cluster Trace based on Resource
Usage") finds a handful of recurring behavior classes.  This module
models four of them as *additive* generators layered on top of the
calibrated base workload:

* **hog** — a few users submitting a few wide, long, heavy jobs; the
  per-user face of the hogs that carry most of the load.
* **mouse** — many users, many tiny single-task jobs.
* **cron** — periodic submitters: the same small job on a fixed cadence
  with a per-user phase (the cron/pipeline framework signature).
* **bursty** — jobs arriving in tight clusters separated by silence.

Archetype users are named ``<kind>_<index>`` (``hog_0000``,
``cron_0003``, ...), so analyses can attribute usage to archetypes from
the trace alone — no side channel.

Determinism: all draws come from the single generator the scenario
passes in (its ``"archetypes"`` stream) and users are generated in a
fixed order (hogs, mice, cron, bursty; index ascending), so the output
is a pure function of ``(era, capacity, horizon, seed, mix)``.  With no
mix configured the scenario never creates this generator, so baseline
workloads are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

import numpy as np

from repro.sim.entities import Collection, EndReason
from repro.sim.priority import Tier
from repro.sim.resources import Resources
from repro.util.timeutil import HOUR_SECONDS
from repro.workload.jobs import build_simple_job
from repro.workload.params import EraParams

#: Generation (and naming) order of the archetype kinds.
ARCHETYPE_KINDS = ("hog", "mouse", "cron", "bursty")


@dataclass(frozen=True)
class ArchetypeMix:
    """How many users of each archetype a scenario adds."""

    hogs: int = 0
    mice: int = 0
    cron: int = 0
    bursty: int = 0

    def __post_init__(self):
        for name in ("hogs", "mice", "cron", "bursty"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    @property
    def n_users(self) -> int:
        return self.hogs + self.mice + self.cron + self.bursty


#: Named presets — the vocabulary of ``archetype_mix=`` knobs, the
#: campaign grid axis, and the CLI flag.
ARCHETYPE_MIXES: Dict[str, ArchetypeMix] = {
    "mixed": ArchetypeMix(hogs=2, mice=16, cron=4, bursty=3),
    "hog_heavy": ArchetypeMix(hogs=5, mice=4),
    "mice_swarm": ArchetypeMix(mice=40),
    "cron_farm": ArchetypeMix(cron=10, mice=4),
    "bursty": ArchetypeMix(bursty=6, mice=4),
}


def resolve_archetype_mix(mix: Union[str, ArchetypeMix, None]
                          ) -> Optional[ArchetypeMix]:
    """Normalize a scenario/campaign ``archetype_mix`` knob."""
    if mix is None:
        return None
    if isinstance(mix, str):
        if mix not in ARCHETYPE_MIXES:
            known = ", ".join(sorted(ARCHETYPE_MIXES))
            raise ValueError(f"unknown archetype mix {mix!r} (known: {known})")
        return ARCHETYPE_MIXES[mix]
    if isinstance(mix, ArchetypeMix):
        return mix
    raise TypeError(f"archetype_mix must be None, a mix name, or "
                    f"ArchetypeMix, got {type(mix).__name__}")


class ArchetypeWorkload:
    """Generates the archetype users' jobs for one cell."""

    def __init__(self, era: EraParams, capacity: Resources, horizon: float,
                 rng: np.random.Generator, id_offset: int):
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.era = era
        self.capacity = capacity
        self.horizon = horizon
        self._rng = rng
        self._next_id = id_offset

    # ------------------------------------------------------------- plumbing

    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _tier(self, *preferred: Tier) -> Tier:
        """The first era-supported tier of ``preferred`` (BEB fallback)."""
        for tier in preferred:
            if tier in self.era.tiers:
                return tier
        return Tier.BEB

    def _priority(self, tier: Tier) -> int:
        return int(self._rng.choice(self.era.tiers[tier].priorities))

    def _end(self, fail_prob: float) -> EndReason:
        return (EndReason.FAIL if self._rng.random() < fail_prob
                else EndReason.FINISH)

    def _job(self, *, tier: Tier, user: str, submit_time: float,
             n_tasks: int, duration: float, cpu_usage: float,
             fail_prob: float) -> Collection:
        params = self.era.tiers[tier]
        return build_simple_job(
            collection_id=self._new_id(), tier=tier, user=user,
            submit_time=submit_time, priority=self._priority(tier),
            n_tasks=n_tasks, duration=duration,
            cpu_usage=cpu_usage,
            mem_usage=cpu_usage * self.era.mem_cpu_ratio_median,
            cpu_fraction=params.cpu_usage_fraction,
            mem_fraction=params.mem_usage_fraction,
            planned_end=self._end(fail_prob),
            batch_queueing=self.era.batch_queueing,
        )

    # ----------------------------------------------------------- archetypes

    def _hog_jobs(self, user: str) -> List[Collection]:
        """A few wide, long, heavy jobs."""
        tier = self._tier(Tier.BEB)
        out = []
        for _ in range(1 + int(self._rng.integers(0, 2))):
            out.append(self._job(
                tier=tier, user=user,
                submit_time=float(self._rng.uniform(0.0, 0.5 * self.horizon)),
                n_tasks=int(self._rng.integers(16, 48)),
                duration=float(self._rng.uniform(0.3, 0.6) * self.horizon),
                cpu_usage=float(self._rng.uniform(0.015, 0.04)),
                fail_prob=0.05,
            ))
        return out

    def _mouse_jobs(self, user: str) -> List[Collection]:
        """Many tiny, short, single-task jobs."""
        tier = self._tier(Tier.FREE, Tier.BEB)
        out = []
        for _ in range(1 + int(self._rng.poisson(3.0))):
            out.append(self._job(
                tier=tier, user=user,
                submit_time=float(self._rng.uniform(0.0, self.horizon)),
                n_tasks=1,
                duration=float(self._rng.uniform(60.0, 900.0)),
                cpu_usage=float(self._rng.uniform(0.002, 0.006)),
                fail_prob=0.08,
            ))
        return out

    def _cron_jobs(self, user: str) -> List[Collection]:
        """The same small job on a fixed cadence with a per-user phase."""
        tier = self._tier(Tier.MID, Tier.BEB)
        period = float(self._rng.choice((0.25, 0.5, 1.0))) * HOUR_SECONDS
        phase = float(self._rng.uniform(0.0, period))
        duration = float(self._rng.uniform(0.1, 0.4)) * period
        n_tasks = int(self._rng.integers(1, 3))
        cpu_usage = float(self._rng.uniform(0.003, 0.008))
        out = []
        t = phase
        while t < self.horizon:
            out.append(self._job(
                tier=tier, user=user, submit_time=t, n_tasks=n_tasks,
                duration=duration, cpu_usage=cpu_usage, fail_prob=0.05,
            ))
            t += period
        return out

    def _bursty_jobs(self, user: str) -> List[Collection]:
        """Clusters of near-simultaneous jobs separated by silence."""
        tier = self._tier(Tier.BEB)
        n_bursts = 1 + int(self._rng.poisson(
            self.horizon / (4.0 * HOUR_SECONDS)))
        out = []
        for _ in range(n_bursts):
            burst_at = float(self._rng.uniform(0.0, self.horizon))
            for _ in range(4 + int(self._rng.integers(0, 8))):
                out.append(self._job(
                    tier=tier, user=user,
                    submit_time=burst_at + float(self._rng.uniform(0.0, 120.0)),
                    n_tasks=int(self._rng.integers(1, 3)),
                    duration=float(self._rng.uniform(120.0, 1200.0)),
                    cpu_usage=float(self._rng.uniform(0.003, 0.008)),
                    fail_prob=0.25,
                ))
        return out

    # ------------------------------------------------------------- generate

    def generate(self, mix: ArchetypeMix) -> List[Collection]:
        """All archetype jobs for ``mix``, sorted by submit time."""
        generators = (("hog", mix.hogs, self._hog_jobs),
                      ("mouse", mix.mice, self._mouse_jobs),
                      ("cron", mix.cron, self._cron_jobs),
                      ("bursty", mix.bursty, self._bursty_jobs))
        out: List[Collection] = []
        for kind, count, make in generators:
            for index in range(count):
                out.extend(make(f"{kind}_{index:04d}"))
        out = [c for c in out if c.submit_time < self.horizon]
        out.sort(key=lambda c: c.submit_time)
        return out


def archetype_of_user(user: str) -> Optional[str]:
    """The archetype kind encoded in a user name, or None.

    ``hog_0002`` → ``"hog"``; the base workload's ``user_0017`` → None.
    """
    kind = user.split("_", 1)[0]
    return kind if kind in ARCHETYPE_KINDS else None
