"""Trace-driven workload replay: turn a trace back into a simulable workload.

The classic systems-research loop the public traces enable: take a
recorded workload and replay it against a *modified* system to answer
what-if questions ("what if this cell didn't over-commit?", "what if the
batch queue were removed?").  :func:`workload_from_trace` reconstructs
collections — shapes, tiers, timings, outcomes, dependencies, alloc
links, constraints — from a :class:`~repro.trace.TraceDataset`, and
:func:`replay_components` packages everything needed to re-run the cell.

Reconstruction caveats (inherent to any trace replay):

* durations come from observed SUBMIT→terminal spans; collections still
  running at the horizon are replayed as running to the horizon;
* usage fractions are re-estimated from the usage table per collection;
* the original's evictions/restarts are *not* replayed — they re-emerge
  from the replay cell's own hazards, which is the point of a what-if.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sim.cell import CellConfig
from repro.sim.entities import (
    Collection,
    CollectionType,
    EndReason,
    Instance,
    SchedulerKind,
)
from repro.sim.machine import Machine
from repro.sim.priority import Tier
from repro.sim.resources import Resources
from repro.trace.dataset import TraceDataset

_END_REASON = {
    "FINISH": EndReason.FINISH,
    "KILL": EndReason.KILL,
    "FAIL": EndReason.FAIL,
    "EVICT": EndReason.EVICT,
}

#: Fallback usage fractions when a collection left no usage samples.
_DEFAULT_FRACTION = 0.5


def _usage_fractions(trace: TraceDataset) -> Dict[int, Tuple[float, float]]:
    """Per-collection (cpu, mem) usage/limit ratios from the usage table."""
    iu = trace.instance_usage
    if len(iu) == 0:
        return {}
    ids = iu.column("collection_id").values
    cpu_used = iu.column("avg_cpu").values * iu.column("duration").values
    cpu_lim = iu.column("limit_cpu").values * iu.column("duration").values
    mem_used = iu.column("avg_mem").values * iu.column("duration").values
    mem_lim = iu.column("limit_mem").values * iu.column("duration").values
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    starts = np.concatenate([[0], np.flatnonzero(np.diff(sorted_ids)) + 1])
    out: Dict[int, Tuple[float, float]] = {}
    cu = np.add.reduceat(cpu_used[order], starts)
    cl = np.add.reduceat(cpu_lim[order], starts)
    mu = np.add.reduceat(mem_used[order], starts)
    ml = np.add.reduceat(mem_lim[order], starts)
    uids = sorted_ids[starts]
    for i, cid in enumerate(uids):
        cpu_frac = float(np.clip(cu[i] / cl[i], 0.05, 0.95)) if cl[i] > 0 \
            else _DEFAULT_FRACTION
        mem_frac = float(np.clip(mu[i] / ml[i], 0.05, 0.95)) if ml[i] > 0 \
            else _DEFAULT_FRACTION
        out[int(cid)] = (cpu_frac, mem_frac)
    return out


def workload_from_trace(trace: TraceDataset) -> List[Collection]:
    """Reconstruct the trace's collections as a fresh simulable workload."""
    ce = trace.collection_events
    ie = trace.instance_events

    # First SCHEDULE per collection: durations run from first start.
    first_run: Dict[int, float] = {}
    requests: Dict[Tuple[int, int], Tuple[float, float]] = {}
    i_ids = ie.column("collection_id").values
    i_idx = ie.column("instance_index").values
    i_types = ie.column("type").values
    i_times = ie.column("time").values
    i_cpu = ie.column("resource_request_cpu").values
    i_mem = ie.column("resource_request_mem").values
    for i in range(len(ie)):
        cid = int(i_ids[i])
        if i_types[i] == "SCHEDULE":
            t = float(i_times[i])
            if cid not in first_run or t < first_run[cid]:
                first_run[cid] = t
        elif i_types[i] == "SUBMIT":
            key = (cid, int(i_idx[i]))
            if key not in requests:
                requests[key] = (float(i_cpu[i]), float(i_mem[i]))

    fractions = _usage_fractions(trace)

    collections: Dict[int, Collection] = {}
    end_info: Dict[int, Tuple[float, EndReason]] = {}
    c_ids = ce.column("collection_id").values
    c_types = ce.column("type").values
    c_times = ce.column("time").values
    c_kinds = ce.column("collection_type").values
    c_priorities = ce.column("priority").values
    c_tiers = ce.column("tier").values
    c_users = ce.column("user").values
    c_scheds = ce.column("scheduler").values
    c_parents = ce.column("parent_collection_id").values
    c_allocs = ce.column("alloc_collection_id").values
    c_scaling = ce.column("vertical_scaling").values
    c_constraints = ce.column("constraint").values
    c_counts = ce.column("num_instances").values

    for i in range(len(ce)):
        cid = int(c_ids[i])
        event = c_types[i]
        if event == "SUBMIT" and cid not in collections:
            cpu_frac, mem_frac = fractions.get(cid, (_DEFAULT_FRACTION,
                                                     _DEFAULT_FRACTION))
            collection = Collection(
                collection_id=cid,
                collection_type=(CollectionType.ALLOC_SET
                                 if c_kinds[i] == "alloc_set"
                                 else CollectionType.JOB),
                priority=int(c_priorities[i]),
                tier=Tier(c_tiers[i]),
                user=c_users[i],
                submit_time=float(c_times[i]),
                scheduler=SchedulerKind(c_scheds[i]),
                parent_id=int(c_parents[i]) if c_parents[i] >= 0 else None,
                alloc_collection_id=(int(c_allocs[i]) if c_allocs[i] >= 0
                                     else None),
                autopilot_mode=c_scaling[i],
                constraint=c_constraints[i],
                cpu_usage_fraction=cpu_frac,
                mem_usage_fraction=mem_frac,
            )
            for idx in range(int(c_counts[i])):
                cpu, mem = requests.get((cid, idx), (0.05, 0.05))
                collection.instances.append(Instance(
                    collection=collection, index=idx,
                    request=Resources(cpu, mem),
                ))
            collections[cid] = collection
        elif event in _END_REASON:
            end_info[cid] = (float(c_times[i]), _END_REASON[event])

    for cid, collection in collections.items():
        start = first_run.get(cid, collection.submit_time)
        if cid in end_info:
            end_time, reason = end_info[cid]
            # Evictions at the collection level replay as kills (the
            # replay cell makes its own eviction decisions).
            collection.planned_end = (EndReason.KILL if reason is EndReason.EVICT
                                      else reason)
            collection.planned_duration = max(30.0, end_time - start)
        else:
            # Censored: ran to the horizon; keep it running in the replay.
            collection.planned_end = EndReason.KILL
            collection.planned_duration = max(30.0, 2.0 * (trace.horizon - start))

    return sorted(collections.values(), key=lambda c: c.submit_time)


def machines_from_trace(trace: TraceDataset) -> List[Machine]:
    """Rebuild the machine fleet from the trace's machine attributes."""
    attrs = trace.machine_attributes
    machines = []
    ids = attrs.column("machine_id").values
    cpus = attrs.column("cpu_capacity").values
    mems = attrs.column("mem_capacity").values
    platforms = attrs.column("platform").values
    offsets = attrs.column("utc_offset_hours").values
    for i in range(len(attrs)):
        machines.append(Machine(
            machine_id=int(ids[i]),
            capacity=Resources(float(cpus[i]), float(mems[i])),
            platform=platforms[i],
            utc_offset_hours=float(offsets[i]),
        ))
    return machines


@dataclass
class ReplayComponents:
    """Everything needed to re-run a traced cell (possibly modified)."""

    config: CellConfig
    machines: List[Machine]
    workload: List[Collection]


def replay_components(trace: TraceDataset,
                      config: Optional[CellConfig] = None) -> ReplayComponents:
    """Package a trace as a runnable cell.

    Pass a ``config`` to run the what-if variant (different over-commit,
    batch queueing, hazards, ...); the default reuses the trace's
    metadata with the standard knobs for its era.
    """
    if config is None:
        config = CellConfig(
            name=f"replay-{trace.cell}",
            era=trace.era,
            utc_offset_hours=trace.utc_offset_hours,
            horizon=trace.horizon,
            sample_period=trace.sample_period,
            batch_queueing=trace.era == "2019",
        )
    return ReplayComponents(
        config=config,
        machines=machines_from_trace(trace),
        workload=workload_from_trace(trace),
    )
