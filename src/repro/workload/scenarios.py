"""Cell presets: the 2011 cell and the eight 2019 cells (a-h).

Each preset bundles a :class:`~repro.sim.cell.CellConfig`, a machine
fleet and a generated workload into a runnable :class:`CellScenario`.
The per-cell tier multipliers encode the inter-cell variation the paper
highlights (figures 3 and 5): cell b is batch-heavy, cell a production-
heavy, cell h mid-tier-heavy, cell c over-allocates best-effort batch
memory hardest, and cell g lives in Singapore (UTC+8) — the source of
the diurnal offset remarked on in section 4.1.

Scale note: real cells have ~12k machines and month-long traces; presets
default to laptop-scale fleets and multi-day horizons.  All calibration
is scale-free (see DESIGN.md section 6), so rates, mixes and tail
exponents are preserved; pass bigger ``machines_per_cell`` /
``horizon_hours`` for heavier runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.faults import FaultParams, resolve_faults
from repro.sim.batch import BatchParams
from repro.sim.cell import CellConfig, CellResult, CellSim
from repro.sim.machine import Machine
from repro.sim.priority import Tier
from repro.sim.resources import Resources
from repro.sim.scheduler import SchedulerParams
from repro.sim.entities import Collection
from repro.util.rng import RngFactory
from repro.util.timeutil import HOUR_SECONDS
from repro.workload.archetypes import (
    ArchetypeMix,
    ArchetypeWorkload,
    resolve_archetype_mix,
)
from repro.workload.fleet import build_machines, fleet_2011, fleet_2019
from repro.workload.jobs import WorkloadGenerator
from repro.workload.params import EraParams, era_2011, era_2019

#: Scenario knob types: a profile/mix name, the explicit value, or None.
FaultsKnob = Union[str, FaultParams, None]
ArchetypeKnob = Union[str, ArchetypeMix, None]

#: (utc_offset_hours, usage multipliers {tier: (cpu, mem)}, usage-fraction
#: multipliers {tier: (cpu, mem)}) per 2019 cell.  Usage multipliers move a
#: tier's *consumption*; fraction multipliers below 1 inflate its
#: *allocation* relative to usage (cell c's 140%-of-capacity beb memory
#: allocation is requests, not consumption).
CELL_PROFILES_2019: Dict[str, Tuple[float, Dict[Tier, Tuple[float, float]],
                                    Dict[Tier, Tuple[float, float]]]] = {
    "a": (-7.0, {Tier.PROD: (1.3, 1.6), Tier.BEB: (0.7, 0.7)}, {}),
    "b": (-7.0, {Tier.BEB: (1.6, 1.5)}, {}),
    "c": (-5.0, {Tier.BEB: (1.3, 1.4)}, {Tier.BEB: (1.0, 0.45)}),
    "d": (-6.0, {}, {}),
    "e": (-4.0, {Tier.FREE: (2.0, 2.0), Tier.PROD: (0.9, 0.9)}, {}),
    "f": (-7.0, {Tier.MID: (1.8, 1.8), Tier.BEB: (0.8, 0.8)}, {}),
    "g": (8.0, {Tier.PROD: (1.1, 1.0)}, {}),
    "h": (-5.0, {Tier.MID: (2.5, 2.8), Tier.PROD: (0.8, 1.2)}, {}),
}


@dataclass
class CellScenario:
    """A runnable cell: config + fleet + workload."""

    name: str
    era: EraParams
    config: CellConfig
    machines: List[Machine]
    workload: List[Collection]
    seed: int

    @property
    def capacity(self) -> Resources:
        return Resources(
            sum(m.capacity.cpu for m in self.machines),
            sum(m.capacity.mem for m in self.machines),
        )

    def run(self, recorder=None) -> CellResult:
        """Simulate the cell to its horizon.

        ``recorder`` is an optional
        :class:`repro.obs.recorder.CellRecorder`; when given, the
        simulator emits streaming flight-recorder frames on the
        recorder's simulated-time cadence.
        """
        rng = RngFactory(self.seed).child(f"sim-{self.name}")
        return CellSim(self.config, self.machines, self.workload, rng,
                       recorder=recorder).run()


def _scheduler_params(era: EraParams) -> SchedulerParams:
    if era.era == "2011":
        # 2011: CPU over-committed aggressively, memory barely; slower
        # scheduling rounds (higher median delay in figure 10).
        return SchedulerParams(overcommit_cpu=1.6, overcommit_mem=1.1,
                               round_interval=10.0, round_capacity=3000)
    return SchedulerParams(overcommit_cpu=1.9, overcommit_mem=1.8,
                           round_interval=5.0, round_capacity=4000)


def _build_scenario(name: str, era: EraParams, seed: int, machines_per_cell: int,
                    horizon_hours: float, arrival_scale: float,
                    utc_offset_hours: float,
                    tier_multipliers: Optional[Dict[Tier, Tuple[float, float]]],
                    sample_period: float, id_offset: int,
                    tier_fraction_multipliers: Optional[Dict[Tier, Tuple[float, float]]] = None,
                    faults: Optional[FaultParams] = None,
                    archetype_mix: Optional[ArchetypeMix] = None,
                    queue: Optional[str] = None,
                    ) -> CellScenario:
    rng = RngFactory(seed).child(f"cell-{name}")
    shapes = fleet_2011() if era.era == "2011" else fleet_2019()
    machines = build_machines(shapes, machines_per_cell, rng.stream("fleet"),
                              utc_offset_hours=utc_offset_hours)
    capacity = Resources(
        sum(m.capacity.cpu for m in machines),
        sum(m.capacity.mem for m in machines),
    )
    horizon = horizon_hours * HOUR_SECONDS
    # Constraints target platforms with a meaningful fleet share; a
    # constraint on a one-machine platform would be near-unplaceable.
    platform_counts: Dict[str, int] = {}
    for m in machines:
        platform_counts[m.platform] = platform_counts.get(m.platform, 0) + 1
    common_platforms = [p for p, n in platform_counts.items()
                        if n >= max(3, 0.05 * len(machines))]
    generator = WorkloadGenerator(
        era=era, capacity=capacity, horizon=horizon, rng=rng,
        arrival_scale=arrival_scale, utc_offset_hours=utc_offset_hours,
        tier_multipliers=tier_multipliers,
        tier_fraction_multipliers=tier_fraction_multipliers,
        platforms=common_platforms,
        id_offset=id_offset,
    )
    # Batch-queue budget: generous relative to the cell's beb allocation
    # demand, so it smooths bursts without capping steady-state load (cell
    # c's beb *memory* allocation alone exceeds cell capacity — figure 5).
    beb = era.tiers.get(Tier.BEB)
    mults = (tier_multipliers or {}).get(Tier.BEB, (1.0, 1.0))
    f_mults = (tier_fraction_multipliers or {}).get(Tier.BEB, (1.0, 1.0))
    batch_params = BatchParams()
    if beb is not None:
        demand_cpu = (beb.target_cpu_usage * mults[0]
                      / (beb.cpu_usage_fraction * f_mults[0]))
        demand_mem = (beb.target_mem_usage * mults[1]
                      / (beb.mem_usage_fraction * f_mults[1]))
        batch_params = BatchParams(
            beb_cpu_allocation_target=max(0.5, 1.4 * demand_cpu),
            beb_mem_allocation_target=max(0.5, 1.4 * demand_mem),
        )
    config = CellConfig(
        name=name,
        era=era.era,
        utc_offset_hours=utc_offset_hours,
        horizon=horizon,
        scheduler=_scheduler_params(era),
        batch=batch_params,
        sample_period=sample_period,
        batch_queueing=era.batch_queueing,
        eviction_rate_per_hour=dict(era.eviction_rate_per_hour),
        restart_rate_per_hour=era.restart_rate_per_hour,
        faults=faults,
        queue=queue,
    )
    workload = generator.generate()
    if archetype_mix is not None and archetype_mix.n_users > 0:
        # Archetype jobs ride on ids far above the calibrated workload's
        # range (uniqueness is per-cell) and draw from their own stream,
        # so the base workload's bytes never move.
        archetypes = ArchetypeWorkload(
            era=era, capacity=capacity, horizon=horizon,
            rng=rng.stream("archetypes"), id_offset=id_offset + 5_000_000)
        workload = workload + archetypes.generate(archetype_mix)
        workload.sort(key=lambda c: c.submit_time)
    return CellScenario(name=name, era=era, config=config, machines=machines,
                        workload=workload, seed=seed)


def scenario_2011(seed: int = 0, machines_per_cell: int = 100,
                  horizon_hours: float = 96.0, arrival_scale: float = 0.02,
                  sample_period: float = 900.0,
                  faults: FaultsKnob = None, fault_rate: float = 1.0,
                  archetype_mix: ArchetypeKnob = None,
                  queue: Optional[str] = None) -> CellScenario:
    """The single 2011 cell."""
    return _build_scenario(
        name="2011", era=era_2011(), seed=seed,
        machines_per_cell=machines_per_cell, horizon_hours=horizon_hours,
        arrival_scale=arrival_scale, utc_offset_hours=-7.0,
        tier_multipliers=None, sample_period=sample_period, id_offset=0,
        faults=resolve_faults(faults, fault_rate),
        archetype_mix=resolve_archetype_mix(archetype_mix),
        queue=queue,
    )


def scenarios_2019(seed: int = 0, machines_per_cell: int = 100,
                   horizon_hours: float = 96.0, arrival_scale: float = 0.02,
                   sample_period: float = 900.0,
                   cells: Optional[List[str]] = None,
                   faults: FaultsKnob = None, fault_rate: float = 1.0,
                   archetype_mix: ArchetypeKnob = None,
                   queue: Optional[str] = None) -> List[CellScenario]:
    """The eight 2019 cells a-h (or a subset via ``cells``)."""
    wanted = cells or sorted(CELL_PROFILES_2019)
    unknown = set(wanted) - set(CELL_PROFILES_2019)
    if unknown:
        raise ValueError(f"unknown 2019 cells: {sorted(unknown)}")
    fault_params = resolve_faults(faults, fault_rate)
    mix = resolve_archetype_mix(archetype_mix)
    out = []
    for i, name in enumerate(wanted):
        offset, multipliers, fraction_multipliers = CELL_PROFILES_2019[name]
        out.append(_build_scenario(
            name=name, era=era_2019(), seed=seed,
            machines_per_cell=machines_per_cell, horizon_hours=horizon_hours,
            arrival_scale=arrival_scale, utc_offset_hours=offset,
            tier_multipliers=multipliers, sample_period=sample_period,
            id_offset=(i + 1) * 10_000_000,
            tier_fraction_multipliers=fraction_multipliers,
            faults=fault_params, archetype_mix=mix, queue=queue,
        ))
    return out


def small_test_scenario(seed: int = 0, era: str = "2019",
                        machines_per_cell: int = 24,
                        horizon_hours: float = 12.0,
                        arrival_scale: float = 0.012,
                        faults: FaultsKnob = None, fault_rate: float = 1.0,
                        archetype_mix: ArchetypeKnob = None,
                        queue: Optional[str] = None) -> CellScenario:
    """A seconds-fast scenario for unit tests and quick exploration.

    ``faults``/``archetype_mix`` default to off, so every pre-existing
    fixture and golden built on this scenario is byte-identical to the
    pre-fault-injection library.
    """
    if era == "2011":
        return scenario_2011(seed=seed, machines_per_cell=machines_per_cell,
                             horizon_hours=horizon_hours,
                             arrival_scale=arrival_scale * 3.5,
                             sample_period=300.0, faults=faults,
                             fault_rate=fault_rate,
                             archetype_mix=archetype_mix, queue=queue)
    return scenarios_2019(seed=seed, machines_per_cell=machines_per_cell,
                          horizon_hours=horizon_hours,
                          arrival_scale=arrival_scale,
                          sample_period=300.0, cells=["d"], faults=faults,
                          fault_rate=fault_rate,
                          archetype_mix=archetype_mix, queue=queue)[0]
