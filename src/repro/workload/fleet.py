"""Machine fleets: the paper's hardware heterogeneity (Table 1, Figure 1).

The 2011 trace had 3 hardware platforms and ~10 machine shapes; 2019 has
7 platforms and 21 shapes with a wider CPU:memory ratio spread.  Shapes
are expressed in the trace's normalized units where the largest machine
is 1.0 on each dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.sim.machine import Machine
from repro.sim.resources import Resources


@dataclass(frozen=True)
class MachineShape:
    """One (CPU, memory) configuration and its share of the fleet."""

    cpu: float
    mem: float
    weight: float
    platform: str

    def __post_init__(self):
        if not 0 < self.cpu <= 1 or not 0 < self.mem <= 1:
            raise ValueError(f"shape must be in (0, 1]: cpu={self.cpu}, mem={self.mem}")
        if self.weight <= 0:
            raise ValueError(f"weight must be positive, got {self.weight}")


def fleet_2011() -> List[MachineShape]:
    """The 2011 cell's 10 shapes on 3 platforms (dominated by one config)."""
    return [
        MachineShape(0.50, 0.50, 0.53, "A"),
        MachineShape(0.50, 0.25, 0.31, "A"),
        MachineShape(0.50, 0.75, 0.08, "A"),
        MachineShape(1.00, 1.00, 0.01, "B"),
        MachineShape(0.25, 0.25, 0.03, "B"),
        MachineShape(0.50, 0.12, 0.02, "B"),
        MachineShape(0.50, 0.03, 0.005, "B"),
        MachineShape(0.50, 0.97, 0.005, "C"),
        MachineShape(1.00, 0.50, 0.005, "C"),
        MachineShape(0.25, 0.50, 0.005, "C"),
    ]


def fleet_2019() -> List[MachineShape]:
    """The 2019 fleet's 21 shapes on 7 platforms (Figure 1's spread)."""
    return [
        MachineShape(0.25, 0.25, 0.22, "P1"),
        MachineShape(0.35, 0.25, 0.13, "P1"),
        MachineShape(0.35, 0.50, 0.12, "P2"),
        MachineShape(0.50, 0.50, 0.11, "P2"),
        MachineShape(0.50, 0.25, 0.09, "P2"),
        MachineShape(0.60, 0.50, 0.07, "P3"),
        MachineShape(0.60, 1.00, 0.05, "P3"),
        MachineShape(0.70, 0.50, 0.04, "P3"),
        MachineShape(1.00, 1.00, 0.03, "P4"),
        MachineShape(1.00, 0.50, 0.03, "P4"),
        MachineShape(0.25, 0.50, 0.025, "P4"),
        MachineShape(0.30, 0.12, 0.02, "P5"),
        MachineShape(0.60, 0.25, 0.02, "P5"),
        MachineShape(0.70, 1.00, 0.015, "P5"),
        MachineShape(0.40, 0.75, 0.015, "P6"),
        MachineShape(0.50, 0.75, 0.012, "P6"),
        MachineShape(0.25, 0.12, 0.01, "P6"),
        MachineShape(0.85, 0.75, 0.008, "P7"),
        MachineShape(0.85, 0.25, 0.006, "P7"),
        MachineShape(0.35, 1.00, 0.005, "P7"),
        MachineShape(0.15, 0.06, 0.004, "P7"),
    ]


def build_machines(shapes: Sequence[MachineShape], count: int,
                   rng: np.random.Generator,
                   utc_offset_hours: float = 0.0,
                   id_offset: int = 0) -> List[Machine]:
    """Instantiate ``count`` machines sampled from ``shapes`` by weight."""
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    weights = np.asarray([s.weight for s in shapes], dtype=float)
    weights = weights / weights.sum()
    picks = rng.choice(len(shapes), size=count, p=weights)
    machines = []
    for i, pick in enumerate(picks):
        shape = shapes[pick]
        machines.append(Machine(
            machine_id=id_offset + i,
            capacity=Resources(shape.cpu, shape.mem),
            platform=shape.platform,
            utc_offset_hours=utc_offset_hours,
        ))
    return machines
