"""Calibration parameters for the 2011 and 2019 workloads.

Every constant here traces back to a number in the paper (see DESIGN.md
section 5 for the full list).  The two era presets, :func:`era_2011` and
:func:`era_2019`, encode the longitudinal story: 3.5x job arrival
growth, the free-tier-to-batch-tier migration, heavier resource-hour
tails, more churn, comparable CPU/memory over-commit in 2019 versus
CPU-heavy over-commit in 2011, and Autopilot adoption (2019 only).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.sim.priority import Tier


@dataclass(frozen=True)
class SizeMixture:
    """The job resource-hours distribution: lognormal body + Pareto tail.

    With probability ``tail_prob`` a job is a "hog candidate" drawn from a
    bounded Pareto(alpha) on [tail_x_min, tail_x_max]; otherwise it is a
    "mouse" from a wide lognormal body.  The paper's Table 2 percentiles
    pin the body (median, 90%%ile) and the tail (alpha, the top-1%% load
    share); ``tail_x_max`` is scaled to the simulation horizon.
    """

    body_log_median: float
    body_log_sigma: float
    tail_prob: float
    tail_alpha: float
    tail_x_min: float = 1.0
    tail_x_max: float = 2000.0

    def __post_init__(self):
        if not 0 <= self.tail_prob < 1:
            raise ValueError(f"tail_prob must be in [0, 1), got {self.tail_prob}")
        if self.tail_alpha <= 0:
            raise ValueError(f"tail_alpha must be positive, got {self.tail_alpha}")
        if not 0 < self.tail_x_min < self.tail_x_max:
            raise ValueError("need 0 < tail_x_min < tail_x_max")

    def mean(self) -> float:
        """Closed-form mean of the mixture (used to solve arrival rates)."""
        body_mean = math.exp(math.log(self.body_log_median)
                             + self.body_log_sigma**2 / 2.0)
        a, lo, hi = self.tail_alpha, self.tail_x_min, self.tail_x_max
        if abs(a - 1.0) < 1e-9:
            tail_mean = lo * math.log(hi / lo) / (1.0 - lo / hi)
        else:
            norm = 1.0 - (lo / hi) ** a
            tail_mean = (a * lo**a / (1.0 - a)) * (hi ** (1.0 - a) - lo ** (1.0 - a)) / norm
        return (1.0 - self.tail_prob) * body_mean + self.tail_prob * tail_mean


@dataclass(frozen=True)
class TaskCountModel:
    """Tasks-per-job: a point mass at 1 plus a bounded-Pareto remainder.

    Calibrated to the paper's figure 11 percentiles (80%%ile of 25 tasks
    for best-effort batch; 95%%iles of 498/67/21/3 for beb/mid/free/prod).
    """

    single_task_prob: float
    alpha: float
    max_tasks: int

    def __post_init__(self):
        if not 0 <= self.single_task_prob <= 1:
            raise ValueError("single_task_prob must be in [0, 1]")
        if self.alpha <= 0 or self.max_tasks < 1:
            raise ValueError("alpha must be positive and max_tasks >= 1")


@dataclass(frozen=True)
class TierParams:
    """Per-tier workload composition."""

    #: Fraction of job arrivals in this tier.
    arrival_share: float
    #: Target average usage as a fraction of cell CPU capacity.
    target_cpu_usage: float
    #: Target average usage as a fraction of cell memory capacity.
    target_mem_usage: float
    #: Median fraction of the CPU limit a task actually uses
    #: (usage / allocation; paper section 4 quotes ~30% for prod CPU).
    cpu_usage_fraction: float
    #: Median fraction of the memory limit actually used.
    mem_usage_fraction: float
    tasks: TaskCountModel
    #: Raw priority values to draw from (era-appropriate).
    priorities: Tuple[int, ...]
    #: P(job ends in kill | no parent) etc.; must sum to 1.
    end_finish: float
    end_kill: float
    end_fail: float

    def __post_init__(self):
        total = self.end_finish + self.end_kill + self.end_fail
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"end probabilities must sum to 1, got {total}")


@dataclass(frozen=True)
class EraParams:
    """The complete workload description for one trace generation."""

    era: str
    #: Mean job submissions per hour per cell (pre-scaling).
    jobs_per_hour: float
    tiers: Dict[Tier, TierParams]
    sizes: SizeMixture
    #: Median of the per-job NMU-hours / NCU-hours ratio (figure 13).
    mem_cpu_ratio_median: float
    mem_cpu_ratio_sigma: float
    #: Diurnal amplitude of the arrival process.
    diurnal_amplitude: float
    #: P(a job has a parent job).
    parent_prob: float
    #: P(kill | has parent) — the section 5.2 87% statistic.
    kill_prob_with_parent: float
    #: Fraction of collections that are alloc sets (section 5.1: 2%).
    alloc_set_fraction: float
    #: Fraction of jobs that run inside an alloc set (section 5.1: 15%).
    jobs_in_alloc_fraction: float
    #: Of jobs in allocs, the fraction that are production tier (95%).
    alloc_jobs_prod_fraction: float
    #: Memory usage fraction for jobs inside allocs (73% vs 41% outside).
    mem_usage_fraction_in_alloc: float
    #: Autopilot mode probabilities (none, fully, constrained).
    autopilot_probs: Tuple[float, float, float]
    #: Task crash/restart hazard per running-hour (figure 9 churn).
    restart_rate_per_hour: float
    #: Infrastructure eviction hazard by tier, per running-hour.
    eviction_rate_per_hour: Dict[Tier, float] = field(default_factory=dict)
    #: P(a job carries a machine-platform placement constraint).
    constraint_prob: float = 0.0
    #: Number of distinct users submitting work.
    n_users: int = 120
    #: beb jobs go through the batch scheduler queue (2019 only).
    batch_queueing: bool = True

    def __post_init__(self):
        share = sum(t.arrival_share for t in self.tiers.values())
        if abs(share - 1.0) > 1e-6:
            raise ValueError(f"tier arrival shares must sum to 1, got {share}")
        if abs(sum(self.autopilot_probs) - 1.0) > 1e-9:
            raise ValueError("autopilot_probs must sum to 1")


def era_2011() -> EraParams:
    """The 2011 single-cell workload (Table 1 / section 3 era)."""
    tiers = {
        Tier.FREE: TierParams(
            arrival_share=0.35, target_cpu_usage=0.12, target_mem_usage=0.10,
            cpu_usage_fraction=0.45, mem_usage_fraction=0.50,
            tasks=TaskCountModel(0.70, 0.60, 100),
            priorities=(0, 1),
            end_finish=0.40, end_kill=0.42, end_fail=0.18,
        ),
        Tier.BEB: TierParams(
            arrival_share=0.45, target_cpu_usage=0.10, target_mem_usage=0.08,
            cpu_usage_fraction=0.40, mem_usage_fraction=0.50,
            tasks=TaskCountModel(0.50, 0.45, 200),
            priorities=(2, 4, 6, 8),
            end_finish=0.42, end_kill=0.40, end_fail=0.18,
        ),
        Tier.PROD: TierParams(
            arrival_share=0.20, target_cpu_usage=0.25, target_mem_usage=0.24,
            cpu_usage_fraction=0.35, mem_usage_fraction=0.55,
            tasks=TaskCountModel(0.75, 2.30, 50),
            priorities=(9, 10, 11),
            end_finish=0.50, end_kill=0.40, end_fail=0.10,
        ),
    }
    return EraParams(
        era="2011",
        jobs_per_hour=964.0,
        tiers=tiers,
        sizes=SizeMixture(
            body_log_median=1.5e-4, body_log_sigma=4.1,
            tail_prob=0.025, tail_alpha=0.77, tail_x_max=1500.0,
        ),
        mem_cpu_ratio_median=1.0, mem_cpu_ratio_sigma=0.5,
        diurnal_amplitude=0.30,
        parent_prob=0.08,
        kill_prob_with_parent=0.80,
        alloc_set_fraction=0.0,          # alloc data was elided from the 2011 trace
        jobs_in_alloc_fraction=0.0,
        alloc_jobs_prod_fraction=0.0,
        mem_usage_fraction_in_alloc=0.0,
        autopilot_probs=(1.0, 0.0, 0.0),  # no Autopilot in 2011
        restart_rate_per_hour=0.12,
        eviction_rate_per_hour={
            Tier.FREE: 0.0018, Tier.BEB: 0.0012, Tier.MID: 0.0,
            Tier.PROD: 0.00005, Tier.MONITORING: 0.00002,
        },
        constraint_prob=0.04,
        batch_queueing=False,
    )


def era_2019() -> EraParams:
    """The 2019 per-cell workload baseline (cells a-h modulate this)."""
    tiers = {
        Tier.FREE: TierParams(
            arrival_share=0.22, target_cpu_usage=0.05, target_mem_usage=0.04,
            cpu_usage_fraction=0.60, mem_usage_fraction=0.40,
            tasks=TaskCountModel(0.70, 0.60, 100),
            priorities=(0, 25, 99),
            end_finish=0.40, end_kill=0.42, end_fail=0.18,
        ),
        Tier.BEB: TierParams(
            arrival_share=0.38, target_cpu_usage=0.25, target_mem_usage=0.24,
            cpu_usage_fraction=0.55, mem_usage_fraction=0.45,
            tasks=TaskCountModel(0.45, 0.30, 500),
            priorities=(110, 112, 115),
            end_finish=0.45, end_kill=0.38, end_fail=0.17,
        ),
        Tier.MID: TierParams(
            arrival_share=0.10, target_cpu_usage=0.07, target_mem_usage=0.06,
            cpu_usage_fraction=0.75, mem_usage_fraction=0.70,
            tasks=TaskCountModel(0.55, 0.52, 200),
            priorities=(116, 117, 119),
            end_finish=0.48, end_kill=0.37, end_fail=0.15,
        ),
        Tier.PROD: TierParams(
            arrival_share=0.30, target_cpu_usage=0.23, target_mem_usage=0.32,
            cpu_usage_fraction=0.30, mem_usage_fraction=0.60,
            tasks=TaskCountModel(0.75, 2.30, 50),
            priorities=(120, 200, 359, 360, 450),
            end_finish=0.52, end_kill=0.39, end_fail=0.09,
        ),
    }
    return EraParams(
        era="2019",
        jobs_per_hour=3360.0,
        tiers=tiers,
        sizes=SizeMixture(
            body_log_median=5.0e-5, body_log_sigma=3.6,
            tail_prob=0.012, tail_alpha=0.69, tail_x_max=2500.0,
        ),
        mem_cpu_ratio_median=0.60, mem_cpu_ratio_sigma=0.5,
        diurnal_amplitude=0.25,
        parent_prob=0.12,
        kill_prob_with_parent=0.87,
        alloc_set_fraction=0.02,
        jobs_in_alloc_fraction=0.15,
        alloc_jobs_prod_fraction=0.95,
        mem_usage_fraction_in_alloc=0.73,
        autopilot_probs=(0.75, 0.15, 0.10),
        restart_rate_per_hour=0.62,
        eviction_rate_per_hour={
            Tier.FREE: 0.0012, Tier.BEB: 0.0008, Tier.MID: 0.0005,
            Tier.PROD: 0.00002, Tier.MONITORING: 0.00001,
        },
        constraint_prob=0.08,
        batch_queueing=True,
    )
