"""Synthetic workload generation calibrated to the paper's statistics.

The real traces are multi-TiB and unavailable offline; this package
replaces them with generators whose *distributions* match the published
numbers: arrival rates and their 2011-to-2019 growth, per-tier mixes,
tasks-per-job distributions, Pareto resource-hour tails with the
published exponents, termination-reason probabilities (including the
parent-kill effect), alloc-set shares, and autopilot adoption.
``repro.workload.scenarios`` assembles full cell presets — the single
2011 cell and the eight 2019 cells a-h with their inter-cell variation.
"""

from repro.workload.fleet import MachineShape, build_machines, fleet_2011, fleet_2019
from repro.workload.params import (
    EraParams,
    SizeMixture,
    TaskCountModel,
    TierParams,
    era_2011,
    era_2019,
)
from repro.workload.jobs import WorkloadGenerator, build_simple_job
from repro.workload.archetypes import (
    ARCHETYPE_MIXES,
    ArchetypeMix,
    ArchetypeWorkload,
    archetype_of_user,
)
from repro.workload.replay import (
    ReplayComponents,
    machines_from_trace,
    replay_components,
    workload_from_trace,
)
from repro.workload.scenarios import (
    CellScenario,
    scenario_2011,
    scenarios_2019,
    small_test_scenario,
)

__all__ = [
    "MachineShape",
    "build_machines",
    "fleet_2011",
    "fleet_2019",
    "EraParams",
    "SizeMixture",
    "TaskCountModel",
    "TierParams",
    "era_2011",
    "era_2019",
    "WorkloadGenerator",
    "build_simple_job",
    "ARCHETYPE_MIXES",
    "ArchetypeMix",
    "ArchetypeWorkload",
    "archetype_of_user",
    "ReplayComponents",
    "machines_from_trace",
    "replay_components",
    "workload_from_trace",
    "CellScenario",
    "scenario_2011",
    "scenarios_2019",
    "small_test_scenario",
]
