"""The workload generator: collections calibrated to the paper's statistics.

Given an :class:`~repro.workload.params.EraParams`, a cell capacity and a
horizon, :class:`WorkloadGenerator` produces the full list of
collections (alloc sets and jobs, with tasks, sizes, planned outcomes,
parent links and autopilot modes) to feed a :class:`~repro.sim.cell.CellSim`.

The central calibration identity: for each tier,

    arrival_rate * E[job NCU-hours] = target_usage * cell CPU capacity

so the per-tier size multiplier is solved from the mixture's closed-form
mean.  Multiplying a Pareto-tailed variable by a constant preserves its
tail exponent, so Table 2's alphas survive the scaling.
"""

from __future__ import annotations

import gc
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.special import ndtri as _ndtri

from repro.sim.entities import Collection, CollectionType, EndReason, Instance, SchedulerKind
from repro.sim.priority import Tier
from repro.sim.resources import Resources
from repro.sim.usage import diurnal_rate_factor
from repro.stats.distributions import (
    bounded_pareto_quantile,
    bounded_pareto_sample,
    stratified_uniforms,
)
from repro.util.rng import RngFactory
from repro.util.timeutil import HOUR_SECONDS
from repro.workload.params import EraParams

#: Planned job durations are clamped to at least this (seconds).
MIN_DURATION = 30.0
#: A single job's simultaneous *usage* footprint is capped at this
#: fraction of cell capacity, keeping scaled-down cells schedulable.
JOB_FOOTPRINT_CAP = 0.08
#: A single job's simultaneous *request* (limit) footprint cap.
REQUEST_FOOTPRINT_CAP = 0.16
#: Per-task requests never exceed this: tasks are much smaller than
#: machines (most 2019 machines are 0.25-0.5 on each dimension), and a
#: request bigger than a typical machine would be permanently unplaceable.
MAX_TASK_REQUEST = 0.35
#: Cap on a single task's *average usage* per dimension.
MAX_TASK_USAGE = 0.08


@dataclass
class _AllocSetInfo:
    collection: Collection
    instance_size: Resources


def build_simple_job(*, collection_id: int, tier: Tier, user: str,
                     submit_time: float, priority: int, n_tasks: int,
                     duration: float, cpu_usage: float, mem_usage: float,
                     cpu_fraction: float, mem_fraction: float,
                     planned_end: EndReason,
                     batch_queueing: bool) -> Collection:
    """Construct one job from an explicit shape (no calibration).

    The archetype generators (:mod:`repro.workload.archetypes`) and
    tests describe jobs directly — per-task usage, a limit fraction, a
    duration — instead of deriving them from the era's size mixture.
    This helper applies the same per-task caps and request backing-out
    as the calibrated path so hand-shaped jobs stay schedulable on
    scaled-down cells.
    """
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    cpu_usage = min(max(cpu_usage, 1e-4), MAX_TASK_USAGE)
    mem_usage = min(max(mem_usage, 1e-5), MAX_TASK_USAGE)
    cpu_fraction = min(max(cpu_fraction, 0.05), 0.95)
    mem_fraction = min(max(mem_fraction, 0.05), 0.95)
    cpu_request = min(max(cpu_usage / cpu_fraction, cpu_usage), MAX_TASK_REQUEST)
    mem_request = min(max(mem_usage / mem_fraction, mem_usage), MAX_TASK_REQUEST)
    scheduler = (SchedulerKind.BATCH
                 if tier is Tier.BEB and batch_queueing
                 else SchedulerKind.BORG)
    collection = Collection(
        collection_id=collection_id,
        collection_type=CollectionType.JOB,
        priority=priority,
        tier=tier,
        user=user,
        submit_time=submit_time,
        scheduler=scheduler,
        planned_duration=max(duration, MIN_DURATION),
        planned_end=planned_end,
        cpu_usage_fraction=min(cpu_usage / cpu_request, 0.95),
        mem_usage_fraction=min(mem_usage / mem_request, 0.95),
    )
    request = Resources(cpu_request, mem_request)
    for index in range(n_tasks):
        collection.instances.append(Instance(
            collection=collection, index=index, request=request,
        ))
    return collection


class WorkloadGenerator:
    """Generates one cell's workload."""

    def __init__(self, era: EraParams, capacity: Resources, horizon: float,
                 rng: RngFactory, arrival_scale: float = 1.0,
                 utc_offset_hours: float = 0.0,
                 tier_multipliers: Optional[Dict[Tier, Tuple[float, float]]] = None,
                 tier_fraction_multipliers: Optional[Dict[Tier, Tuple[float, float]]] = None,
                 platforms: Optional[Sequence[str]] = None,
                 id_offset: int = 0):
        if arrival_scale <= 0:
            raise ValueError(f"arrival_scale must be positive, got {arrival_scale}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        self.era = era
        self.capacity = capacity
        self.horizon = horizon
        self.arrival_scale = arrival_scale
        self.utc_offset_hours = utc_offset_hours
        self.tier_multipliers = tier_multipliers or {}
        #: Per-tier (cpu, mem) multipliers on the usage *fractions* —
        #: lowering a fraction raises the tier's allocation without
        #: changing its usage (how cell c over-allocates beb memory).
        self.tier_fraction_multipliers = tier_fraction_multipliers or {}
        #: (platform, fleet share) pairs for placement-constraint draws;
        #: constrained jobs prefer common platforms (a rare-platform
        #: constraint would mostly sit unplaceable).
        self.platforms = sorted(platforms) if platforms else []
        self._rng = rng.stream("workload")
        self._next_id = id_offset
        self._alloc_sets: List[_AllocSetInfo] = []
        #: (submit_time, est_end_time, collection) of recent parent candidates.
        self._controllers: List[Tuple[float, float, Collection]] = []
        #: Largest resource-hours integral a single job can realize: its
        #: footprint is capped and it cannot outlive the horizon.
        self.max_job_hours = (JOB_FOOTPRINT_CAP * capacity.cpu
                              * horizon / HOUR_SECONDS)

    # -------------------------------------------------------------- plumbing

    def _new_id(self) -> int:
        self._next_id += 1
        return self._next_id

    def _mults(self, tier: Tier) -> Tuple[float, float]:
        return self.tier_multipliers.get(tier, (1.0, 1.0))

    def _tier_rate_per_hour(self, tier: Tier) -> float:
        return self.era.jobs_per_hour * self.arrival_scale * self.era.tiers[tier].arrival_share

    def _mem_multiplier(self, tier: Tier) -> float:
        """Median NMU-hours per NCU-hour for this tier (hits the mem target)."""
        params = self.era.tiers[tier]
        cpu_mult, mem_mult = self._mults(tier)
        cpu_side = params.target_cpu_usage * cpu_mult * self.capacity.cpu
        mem_side = params.target_mem_usage * mem_mult * self.capacity.mem
        if cpu_side <= 0:
            return self.era.mem_cpu_ratio_median
        return mem_side / cpu_side

    # -------------------------------------------------------------- arrivals

    def _arrival_times(self, rate_per_hour: float) -> np.ndarray:
        """Nonhomogeneous Poisson arrivals via thinning (diurnal cycle).

        Arrivals are generated from ``-horizon`` so the cell starts in
        steady state: pre-window jobs still alive at t=0 carry over their
        remaining work (see :meth:`_make_job`), exactly like the residual
        workload a real trace window opens onto.
        """
        if rate_per_hour <= 0:
            return np.empty(0)
        peak_rate = rate_per_hour * (1.0 + self.era.diurnal_amplitude) / HOUR_SECONDS
        times: List[float] = []
        t = -self.horizon + float(self._rng.exponential(1.0 / peak_rate))
        while t < self.horizon:
            factor = diurnal_rate_factor(t, self.utc_offset_hours,
                                         self.era.diurnal_amplitude)
            accept_prob = (rate_per_hour / HOUR_SECONDS) * factor / peak_rate
            if self._rng.random() < accept_prob:
                times.append(t)
            t += float(self._rng.exponential(1.0 / peak_rate))
        return np.asarray(times)

    # ------------------------------------------------------------ sizing

    def _plan_tier(self, tier: Tier, times: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Assign a size (NCU-hours) and hog flag to every arrival slot.

        Sizes come from the era's body+tail mixture via stratified
        quantiles, scaled by one factor — solved on the planted sample —
        so the tier's *delivered-in-window* NCU-hours hit its target share
        of cell capacity.  Two variance-control rules make this exact
        rather than hopeful (a handful of Pareto hogs carry ~99% of the
        load, so iid placement would make realized tier load a coin flip):

        * Body jobs land on every slot (warm-up and window); by
          stationarity they deliver half their span total in-window.
        * Tail jobs ("hogs") land only on in-window slots early enough
          that the whole hog fits before the horizon at its footprint
          cap, so each delivers its entire size in-window.

        Scaling a Pareto variable preserves its exponent, so Table 2's
        alpha survives the normalization.

        Returns (sizes, is_hog) aligned with ``times``.
        """
        m = len(times)
        if m == 0:
            return np.empty(0), np.empty(0, dtype=bool)
        mixture = self.era.sizes
        window_idx = np.flatnonzero(times >= 0)
        n_tail = int(round(m * mixture.tail_prob))
        n_tail = min(max(n_tail, 1 if m >= 20 else 0), len(window_idx))
        n_body = m - n_tail

        tail = np.sort(bounded_pareto_quantile(
            stratified_uniforms(self._rng, n_tail),
            mixture.tail_alpha, mixture.tail_x_min, mixture.tail_x_max,
        ))[::-1] if n_tail else np.empty(0)
        z = _ndtri(np.clip(stratified_uniforms(self._rng, n_body), 1e-12, 1 - 1e-12))
        body = np.exp(math.log(mixture.body_log_median) + mixture.body_log_sigma * z)

        params = self.era.tiers[tier]
        cpu_mult, _ = self._mults(tier)
        horizon_hours = self.horizon / HOUR_SECONDS
        need_window = (params.target_cpu_usage * cpu_mult
                       * self.capacity.cpu * horizon_hours)
        cap = self.max_job_hours
        if need_window >= (0.5 * n_body + n_tail) * cap * 0.98:
            raise ValueError(
                f"tier {tier}: target load {need_window:.1f} NCU-hours cannot be "
                f"carried by {m} jobs capped at {cap:.1f} each; increase the "
                "arrival scale or the horizon"
            )
        lo, hi = 1e-9, 1e12
        for _ in range(80):
            mid = math.sqrt(lo * hi)
            delivered = (0.5 * float(np.minimum(mid * body, cap).sum())
                         + float(np.minimum(mid * tail, cap).sum()))
            if delivered < need_window:
                lo = mid
            else:
                hi = mid
        c = math.sqrt(lo * hi)
        body_sizes = np.minimum(c * body, cap)
        tail_sizes = np.minimum(c * tail, cap)  # still descending

        # Place hogs: each needs `size / footprint_cap` hours before the
        # horizon, so draw its start uniformly over the feasible prefix.
        sizes_out = np.empty(m)
        is_hog = np.zeros(m, dtype=bool)
        footprint = JOB_FOOTPRINT_CAP * self.capacity.cpu
        available = [int(i) for i in window_idx]  # ascending in time
        for size in tail_sizes:  # largest first: most constrained choice
            required_h = 1.2 * size / footprint
            latest = max(0.0, self.horizon - required_h * HOUR_SECONDS)
            eligible = np.searchsorted([times[i] for i in available], latest,
                                       side="right")
            j = int(self._rng.integers(0, max(int(eligible), 1)))
            slot = available.pop(min(j, len(available) - 1))
            sizes_out[slot] = size
            is_hog[slot] = True
        self._rng.shuffle(body_sizes)
        free = np.flatnonzero(~is_hog)
        sizes_out[free] = body_sizes
        return sizes_out, is_hog

    def _draw_task_count(self, tier: Tier) -> int:
        model = self.era.tiers[tier].tasks
        if model.max_tasks == 1 or self._rng.random() < model.single_task_prob:
            return 1
        extra = bounded_pareto_sample(self._rng, model.alpha, 1.0,
                                      float(model.max_tasks), 1)[0]
        return min(model.max_tasks, 1 + int(extra))

    def _shape_job(self, tier: Tier, h_cpu: float, n_tasks: int,
                   in_alloc: bool, alloc_size: Optional[Resources],
                   forced_duration: Optional[float] = None) -> Tuple[
                       float, Resources, float, float]:
        """Decompose NCU-hours into (duration, per-task request, fractions).

        Returns (duration_seconds, request, cpu_fraction, mem_fraction).
        """
        params = self.era.tiers[tier]
        max_duration = self.horizon
        footprint_cap = JOB_FOOTPRINT_CAP * self.capacity.cpu
        if forced_duration is not None:
            # The duration is externally fixed (e.g. a child that will be
            # cascade-killed when its parent exits): back the usage rate
            # out of the resource-hours budget instead.
            duration_h = max(forced_duration, MIN_DURATION) / HOUR_SECONDS
            u0 = min(h_cpu / (n_tasks * duration_h), MAX_TASK_USAGE,
                     footprint_cap / n_tasks)
            u0 = max(u0, 1e-4)
        else:
            # Nominal per-task average CPU usage.
            u0 = float(self._rng.lognormal(math.log(0.015), 1.0))
            u0 = min(max(u0, 0.002), MAX_TASK_USAGE)
            u0 = min(u0, footprint_cap / n_tasks)

            duration_h = h_cpu / (n_tasks * u0)
            if duration_h * HOUR_SECONDS < MIN_DURATION:
                duration_h = MIN_DURATION / HOUR_SECONDS
                u0 = h_cpu / (n_tasks * duration_h)
            elif duration_h * HOUR_SECONDS > max_duration:
                duration_h = max_duration / HOUR_SECONDS
                u0 = min(h_cpu / (n_tasks * duration_h), MAX_TASK_USAGE,
                         footprint_cap / n_tasks)

        # Memory integral, correlated with CPU through the shared duration.
        ratio = self._mem_multiplier(tier) * float(self._rng.lognormal(
            0.0, self.era.mem_cpu_ratio_sigma
        )) / math.exp(self.era.mem_cpu_ratio_sigma**2 / 2.0)
        m0 = (h_cpu * ratio) / (n_tasks * duration_h)
        mem_footprint_cap = JOB_FOOTPRINT_CAP * self.capacity.mem
        m0 = min(max(m0, 1e-5), MAX_TASK_USAGE, mem_footprint_cap / n_tasks)

        # Requests (limits) back out from usage via the tier's usage fraction.
        f_cpu_mult, f_mem_mult = self.tier_fraction_multipliers.get(tier, (1.0, 1.0))
        if in_alloc:
            mem_fraction = self.era.mem_usage_fraction_in_alloc
        else:
            mem_fraction = params.mem_usage_fraction * f_mem_mult
        cpu_fraction = params.cpu_usage_fraction * f_cpu_mult
        cpu_fraction = float(np.clip(cpu_fraction * self._rng.lognormal(0.0, 0.20),
                                     0.05, 0.95))
        mem_fraction = float(np.clip(mem_fraction * self._rng.lognormal(0.0, 0.15),
                                     0.05, 0.95))

        cpu_request = min(u0 / cpu_fraction, MAX_TASK_REQUEST)
        mem_request = min(m0 / mem_fraction, MAX_TASK_REQUEST)
        if in_alloc and alloc_size is not None:
            cpu_request = min(cpu_request, 0.5 * alloc_size.cpu)
            mem_request = min(mem_request, 0.5 * alloc_size.mem)
        cpu_request = max(cpu_request, u0, 1e-4)
        mem_request = max(mem_request, m0, 1e-5)
        # Cap the job's total limit footprint so one hog cannot reserve a
        # third of the cell (or monopolize the batch-admission budget).
        cpu_request = min(cpu_request, REQUEST_FOOTPRINT_CAP * self.capacity.cpu / n_tasks)
        mem_request = min(mem_request, REQUEST_FOOTPRINT_CAP * self.capacity.mem / n_tasks)
        cpu_request = max(cpu_request, u0, 1e-4)
        mem_request = max(mem_request, m0, 1e-5)
        # Keep the realized fractions consistent with any caps applied.
        cpu_fraction = min(u0 / cpu_request, 0.95)
        mem_fraction = min(m0 / mem_request, 0.95)

        return duration_h * HOUR_SECONDS, Resources(cpu_request, mem_request), \
            cpu_fraction, mem_fraction

    # ------------------------------------------------------- terminations

    def _draw_end_reason(self, tier: Tier, has_parent: bool) -> EndReason:
        params = self.era.tiers[tier]
        if has_parent:
            # Children that outlive their parent are cascade-killed by the
            # simulator anyway; this draw covers children that end first.
            if self._rng.random() < self.era.kill_prob_with_parent * 0.6:
                return EndReason.KILL
        r = self._rng.random()
        if r < params.end_finish:
            return EndReason.FINISH
        if r < params.end_finish + params.end_kill:
            return EndReason.KILL
        return EndReason.FAIL

    # ------------------------------------------------------------ alloc sets

    def _make_alloc_sets(self, expected_jobs: int) -> None:
        """Create the alloc-set population (section 5.1's 2% of collections)."""
        frac = self.era.alloc_set_fraction
        if frac <= 0 or expected_jobs == 0:
            return
        n_sets = max(1, int(round(expected_jobs * frac / (1.0 - frac))))
        # Total reserved footprint sized so alloc sets are ~20% of CPU
        # allocations (section 5.1).
        total_cpu = 0.28 * self.capacity.cpu
        total_mem = 0.25 * self.capacity.mem
        for _ in range(n_sets):
            n_instances = int(self._rng.integers(4, 16))
            cpu_each = total_cpu / n_sets / n_instances
            mem_each = total_mem / n_sets / n_instances
            cpu_each = float(np.clip(cpu_each * self._rng.lognormal(0.0, 0.3),
                                     0.02, MAX_TASK_REQUEST))
            mem_each = float(np.clip(mem_each * self._rng.lognormal(0.0, 0.3),
                                     0.02, MAX_TASK_REQUEST))
            submit = float(self._rng.uniform(0.0, 0.5 * self.horizon))
            collection = Collection(
                collection_id=self._new_id(),
                collection_type=CollectionType.ALLOC_SET,
                priority=int(self._rng.choice((120, 200, 359))),
                tier=Tier.PROD,
                user=self._draw_user(),
                submit_time=submit,
                scheduler=SchedulerKind.BORG,
                planned_duration=2.0 * self.horizon,  # alive to the horizon
                planned_end=EndReason.KILL,
            )
            size = Resources(cpu_each, mem_each)
            for idx in range(n_instances):
                collection.instances.append(Instance(
                    collection=collection, index=idx, request=size,
                ))
            self._alloc_sets.append(_AllocSetInfo(collection, size))

    def _pick_alloc_set(self, t: float) -> Optional[_AllocSetInfo]:
        live = [a for a in self._alloc_sets if a.collection.submit_time < t]
        if not live:
            return None
        return live[int(self._rng.integers(0, len(live)))]

    # ---------------------------------------------------------------- users

    def _draw_user(self) -> str:
        # Zipf-ish user popularity: a few heavy submitters, a long tail.
        zipf = int(self._rng.zipf(1.6))
        return f"user_{min(zipf, self.era.n_users) - 1:04d}"

    # ------------------------------------------------------------- parents

    def _pick_parent(self, t: float, tier: Tier) -> Optional[Tuple[float, Collection]]:
        """A still-alive controller job to attach a child to."""
        self._controllers = [c for c in self._controllers if c[1] > t]
        candidates = [c for c in self._controllers if c[2].tier == tier] or self._controllers
        if not candidates:
            return None
        submit, est_end, parent = candidates[int(self._rng.integers(0, len(candidates)))]
        return est_end, parent

    # ------------------------------------------------------------- generate

    def generate(self) -> List[Collection]:
        """Produce the cell's full workload, sorted by submit time."""
        # Same GC deferral as CellSim.run: generation builds one big live
        # graph of collections and instances, so cyclic-GC passes during
        # it scan everything and reclaim nothing.
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            return self._generate()
        finally:
            if was_enabled:
                gc.enable()

    def _generate(self) -> List[Collection]:
        arrivals: List[Tuple[float, Tier, float, bool]] = []
        for tier in self.era.tiers:
            times = self._arrival_times(self._tier_rate_per_hour(tier))
            sizes, hog_flags = self._plan_tier(tier, times)
            for t, h, hog in zip(times, sizes, hog_flags):
                arrivals.append((float(t), tier, float(h), bool(hog)))
        arrivals.sort(key=lambda a: a[0])

        n_in_window = sum(1 for t, _, _, _ in arrivals if t >= 0)
        self._make_alloc_sets(n_in_window)
        collections: List[Collection] = [a.collection for a in self._alloc_sets]

        for t, tier, h_cpu, is_hog in arrivals:
            job = self._make_job(t, tier, h_cpu, is_hog)
            if job is not None:
                collections.append(job)

        collections.sort(key=lambda c: c.submit_time)
        return collections

    def _make_job(self, t: float, tier: Tier, h_cpu: float,
                  is_hog: bool = False) -> Optional[Collection]:
        """Create one job arriving at ``t`` (may be before the window).

        Pre-window jobs (t < 0) that would still be alive at t=0 enter the
        trace at the window open with their remaining duration — the warm
        start; ones that would have ended already return None.
        """
        params = self.era.tiers[tier]
        era = self.era

        # Alloc-set membership (mostly production jobs; section 5.1).
        # Hogs stay outside allocs: alloc instances are far smaller than a
        # hog's footprint.
        in_alloc = False
        alloc_info: Optional[_AllocSetInfo] = None
        if era.jobs_in_alloc_fraction > 0 and self._alloc_sets and not is_hog:
            prod_share = era.tiers[Tier.PROD].arrival_share
            if tier is Tier.PROD:
                p = era.jobs_in_alloc_fraction * era.alloc_jobs_prod_fraction / prod_share
            else:
                p = (era.jobs_in_alloc_fraction * (1.0 - era.alloc_jobs_prod_fraction)
                     / max(1e-9, 1.0 - prod_share))
            if self._rng.random() < min(p, 1.0):
                alloc_info = self._pick_alloc_set(t)
                in_alloc = alloc_info is not None

        # Parent-child dependencies (section 5.2).  Hogs are excluded:
        # their delivered load must not depend on a parent's lifetime.
        parent_est_end: Optional[float] = None
        parent: Optional[Collection] = None
        if not is_hog and self._rng.random() < era.parent_prob:
            picked = self._pick_parent(t, tier)
            if picked is not None:
                parent_est_end, parent = picked

        # The hours this job can actually run: hogs were planted early
        # enough to deliver their full size before the horizon.
        available_hours = (max(self.horizon - t, MIN_DURATION)
                           if is_hog else self.horizon) / HOUR_SECONDS

        n_tasks = self._draw_task_count(tier)
        # Hogs are wide: a job must have enough tasks to realize its
        # resource-hours in its available time at the per-task usage cap.
        min_tasks = int(math.ceil(h_cpu / (MAX_TASK_USAGE * available_hours)))
        n_tasks = max(n_tasks, min_tasks)

        # Children's effective lifetime is bounded by their parent: a child
        # that will be cascade-killed is *sized* for the time it actually
        # gets (so its resource-hours budget is delivered, not evaporated),
        # while its nominal planned duration stays longer so the cascade
        # kill is what ends it.
        forced_duration: Optional[float] = None
        planned_override: Optional[float] = None
        if parent is not None and parent_est_end is not None:
            remaining = max(60.0, parent_est_end - t)
            if self._rng.random() < 0.70:
                forced_duration = remaining
                planned_override = remaining * float(self._rng.uniform(1.1, 3.0))
            else:
                forced_duration = max(MIN_DURATION,
                                      remaining * float(self._rng.uniform(0.1, 0.9)))
        elif is_hog:
            # Deliver the whole hog before the horizon (minus a placement
            # margin), at a usage rate backed out from its size.
            forced_duration = available_hours * HOUR_SECONDS * 0.70

        duration, request, cpu_frac, mem_frac = self._shape_job(
            tier, h_cpu, n_tasks, in_alloc,
            alloc_info.instance_size if alloc_info else None,
            forced_duration=forced_duration,
        )
        if planned_override is not None:
            duration = planned_override

        if t < 0:
            if t + duration <= 0:
                return None
            duration = t + duration
            t = float(self._rng.uniform(0.0, 120.0))
        if parent is not None and t < parent.submit_time:
            # Warm-start remapping can reorder submits; a child never
            # predates its parent.
            t = parent.submit_time + 1.0

        constraint = ""
        if (self.platforms and not is_hog and not in_alloc
                and self._rng.random() < era.constraint_prob):
            constraint = str(self.platforms[int(self._rng.integers(
                0, len(self.platforms)))])

        autopilot = str(self._rng.choice(
            ("none", "fully", "constrained"), p=era.autopilot_probs
        ))
        scheduler = (SchedulerKind.BATCH
                     if tier is Tier.BEB and era.batch_queueing
                     else SchedulerKind.BORG)

        collection = Collection(
            collection_id=self._new_id(),
            collection_type=CollectionType.JOB,
            priority=int(self._rng.choice(params.priorities)),
            tier=tier,
            user=self._draw_user(),
            submit_time=t,
            scheduler=scheduler,
            parent_id=parent.collection_id if parent is not None else None,
            alloc_collection_id=(alloc_info.collection.collection_id
                                 if alloc_info else None),
            autopilot_mode=autopilot,
            constraint=constraint,
            planned_duration=duration,
            planned_end=self._draw_end_reason(tier, parent is not None),
            cpu_usage_fraction=cpu_frac,
            mem_usage_fraction=mem_frac,
        )
        if parent is not None:
            parent.child_ids.append(collection.collection_id)
        for idx in range(n_tasks):
            collection.instances.append(Instance(
                collection=collection, index=idx, request=request,
            ))

        # Long-enough jobs become controller candidates for later children.
        if duration >= 600.0 and parent is None:
            self._controllers.append((t, t + duration, collection))
            if len(self._controllers) > 500:
                self._controllers = self._controllers[-250:]
        return collection
