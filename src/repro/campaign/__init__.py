"""``repro.campaign`` — declarative what-if sweeps with cached points.

The layer between the simulator and the analyses (DESIGN.md §12): a
JSON spec (:mod:`~repro.campaign.spec`) expands a parameter grid into
evaluation points, a content-addressed cache
(:mod:`~repro.campaign.cache_key`) makes re-runs incremental, a
fault-tolerant parallel runner (:mod:`~repro.campaign.runner`) fans the
misses across processes, and the summary/report layer
(:mod:`~repro.campaign.summary` / :mod:`~repro.campaign.report`)
renders trade-study tables plus the utilization / eviction / queueing
Pareto front.  Driven by ``borg-repro campaign run|status|report``.
"""

from repro.campaign.cache_key import (
    CACHE_SCHEMA_VERSION,
    canonical_json,
    normalize,
    point_key,
)
from repro.campaign.report import (
    REPORT_SCHEMA,
    build_report,
    render_report,
    render_report_json,
)
from repro.campaign.runner import (
    CAMPAIGN_FRAMES_SCHEMA,
    RESULT_SCHEMA,
    CampaignRunResult,
    campaign_status,
    evaluate_point,
    load_campaign_results,
    load_point_result,
    run_campaign,
    write_point_result,
)
from repro.campaign.spec import (
    CampaignSpec,
    CampaignSpecError,
    EvalPoint,
    load_spec,
    parse_spec,
)
from repro.campaign.summary import (
    OBJECTIVES,
    aggregate_points,
    pareto_front,
    point_metrics,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CAMPAIGN_FRAMES_SCHEMA",
    "OBJECTIVES",
    "REPORT_SCHEMA",
    "RESULT_SCHEMA",
    "CampaignRunResult",
    "CampaignSpec",
    "CampaignSpecError",
    "EvalPoint",
    "aggregate_points",
    "build_report",
    "campaign_status",
    "canonical_json",
    "evaluate_point",
    "load_campaign_results",
    "load_point_result",
    "load_spec",
    "normalize",
    "parse_spec",
    "pareto_front",
    "point_key",
    "point_metrics",
    "render_report",
    "render_report_json",
    "run_campaign",
    "write_point_result",
]
