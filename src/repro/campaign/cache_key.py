"""Content-addressed cache keys for campaign evaluation points.

A campaign is incremental because each evaluation point is addressed by
a *stable* hash of everything that determines its result: the fully
resolved point parameters, the seed, and a schema version naming the
code-relevant contract (which parameters exist, what the metrics mean).
Two specs that describe the same point — different JSON key order,
whitespace, ``1.0`` vs ``1`` — must map to the same key, so re-running
a reformatted spec skips every point; any *semantic* change (a
parameter value, the seed, a schema bump) must change the key, so stale
results can never be served for a different configuration.

Normalization rules (:func:`normalize`):

* mappings sort by key; insertion order never reaches the hash,
* sequences keep their order (a grid value list IS ordered data),
* floats with integral values collapse to ints (``1.0`` == ``1``),
* booleans stay booleans (``True`` is not ``1`` here),
* non-finite floats are rejected — a NaN in a spec is a bug, and NaN
  would also break ``x == x`` round-tripping through JSON.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any

#: Bump when the point-parameter contract or the metrics layout changes
#: incompatibly; every cached result becomes a miss.
CACHE_SCHEMA_VERSION = "repro.campaign.point/1"

#: Hex digits of the SHA-256 kept as the on-disk key (directory name).
KEY_LENGTH = 16


def normalize(value: Any) -> Any:
    """Canonicalize ``value`` for hashing (see module docstring)."""
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError(f"non-finite number in campaign config: {value!r}")
        if value.is_integer():
            return int(value)
        return value
    if isinstance(value, dict):
        out = {}
        for key in sorted(value):
            if not isinstance(key, str):
                raise ValueError(
                    f"campaign config keys must be strings, got {key!r}")
            out[key] = normalize(value[key])
        return out
    if isinstance(value, (list, tuple)):
        return [normalize(v) for v in value]
    raise ValueError(
        f"unsupported campaign config value of type {type(value).__name__}: "
        f"{value!r}")


def canonical_json(value: Any) -> str:
    """The stable serialized form actually hashed (useful for debugging)."""
    return json.dumps(normalize(value), sort_keys=True,
                      separators=(",", ":"), ensure_ascii=True)


def point_key(params: dict, seed: int,
              schema_version: str = CACHE_SCHEMA_VERSION) -> str:
    """The content-addressed key of one evaluation point.

    ``params`` is the point's fully *resolved* parameter mapping (base
    defaults merged with its grid assignment) — resolving before
    hashing is what makes a spec that spells a default explicitly hash
    identically to one that omits it.
    """
    payload = {
        "schema": schema_version,
        "params": normalize(params),
        "seed": int(seed),
    }
    digest = hashlib.sha256(
        canonical_json(payload).encode("ascii")).hexdigest()
    return digest[:KEY_LENGTH]
