"""The campaign runner: cached, fault-tolerant, parallel point evaluation.

Execution model
---------------
:func:`run_campaign` expands nothing itself — it takes a validated
:class:`~repro.campaign.spec.CampaignSpec` and walks its points:

1. **Cache probe.**  Each point's result lives at
   ``<out>/<key>/result.json`` (one JSONL line, schema
   ``repro.campaign.result/1``).  A probe first runs
   :func:`repro.obs.recorder.recover_jsonl` — a run killed mid-write
   leaves a truncated line, which recovery discards so the point simply
   re-runs instead of poisoning the cache — then accepts the payload
   only if its schema and embedded key match.  ``status == "error"``
   results are *kept* for reporting but never count as hits: transient
   failures retry on the next run.
2. **Fan-out.**  Cache misses run across a ``multiprocessing`` pool
   (``workers``), reusing the fork-safety pattern of
   :func:`repro.sim.driver.run_cells`: each worker evaluates its point
   inside a fresh scoped :mod:`repro.obs` registry and ships the
   metrics snapshot home with the payload; the parent merges each
   snapshot exactly once, in task order.  Inside a worker the point's
   cells run through ``run_cells`` itself (serially — the pool is the
   parallelism), so a campaign point is exactly a ``simulate``
   invocation with overrides.
3. **Fault isolation.**  A point whose evaluation raises records an
   ``error`` result (the exception is printed to stderr worker-side)
   and the campaign keeps going; the run summary's ``errors`` count is
   what the CLI turns into a partial-failure exit code.
4. **Progress.**  Every completed point appends one frame (schema
   ``repro.campaign.frames/1``) to ``<out>/frames.jsonl`` through the
   flight recorder's :class:`~repro.obs.recorder.FrameSink` — opened in
   append mode, so the frames file is a crash-safe journal of the whole
   campaign across resumes.

Determinism: a point's result payload is a pure function of its params
and seed (the simulators derive all randomness from the scenario seed),
and results are keyed by content address, so the on-disk state — and
every report built from it — is identical between serial and
``--workers N`` runs.
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro import obs
from repro.campaign.spec import CampaignSpec, EvalPoint
from repro.campaign.summary import point_metrics
from repro.obs.recorder import FrameSink, StatusLine, recover_jsonl
from repro.sim.driver import run_cells
from repro.workload.scenarios import CellScenario, scenario_2011, scenarios_2019

#: Per-point result schema (one JSONL line per ``result.json``).
RESULT_SCHEMA = "repro.campaign.result/1"

#: Campaign progress-frame schema (``<out>/frames.jsonl``).
CAMPAIGN_FRAMES_SCHEMA = "repro.campaign.frames/1"

#: File name of a point's cached result under ``<out>/<key>/``.
RESULT_FILENAME = "result.json"


def build_scenarios(params: Dict[str, object], seed: int
                    ) -> List[CellScenario]:
    """Materialize one point's cell scenarios from its resolved params.

    Over-commit overrides are applied by rebuilding the (frozen) cell
    config with a replaced :class:`~repro.sim.scheduler.SchedulerParams`
    — the era preset stays the source of every knob the point does not
    override.
    """
    machines = int(params["machines"])
    hours = float(params["hours"])
    scale = float(params["scale"])
    sample_period = float(params["sample_period"])
    faults = params.get("faults")
    fault_rate = float(params.get("fault_rate", 1.0))
    archetype_mix = params.get("archetype_mix")
    if params["era"] == "2011":
        scenarios = [scenario_2011(seed=seed, machines_per_cell=machines,
                                   horizon_hours=hours, arrival_scale=scale,
                                   sample_period=sample_period,
                                   faults=faults, fault_rate=fault_rate,
                                   archetype_mix=archetype_mix)]
    else:
        scenarios = scenarios_2019(seed=seed, machines_per_cell=machines,
                                   horizon_hours=hours, arrival_scale=scale,
                                   sample_period=sample_period,
                                   cells=list(params["cells"]),
                                   faults=faults, fault_rate=fault_rate,
                                   archetype_mix=archetype_mix)
    overrides = {}
    if params.get("overcommit_cpu") is not None:
        overrides["overcommit_cpu"] = float(params["overcommit_cpu"])
    if params.get("overcommit_mem") is not None:
        overrides["overcommit_mem"] = float(params["overcommit_mem"])
    if overrides:
        for scenario in scenarios:
            scheduler = dataclasses.replace(scenario.config.scheduler,
                                            **overrides)
            scenario.config = dataclasses.replace(scenario.config,
                                                  scheduler=scheduler)
    return scenarios


def evaluate_point(point: EvalPoint) -> dict:
    """Run one point to a result payload (never raises for sim errors)."""
    t0 = time.perf_counter()
    payload = {
        "schema": RESULT_SCHEMA,
        "key": point.key,
        "point_id": point.point_id,
        "params": dict(point.params),
        "grid": dict(point.grid_values),
        "seed": point.seed,
        "status": "ok",
        "metrics": {},
        "error": None,
    }
    try:
        scenarios = build_scenarios(point.params, point.seed)
        results = run_cells(scenarios)
        payload["metrics"] = point_metrics(results)
        obs.inc("campaign.points_ok")
    except Exception as exc:
        print(f"campaign: point {point.key} ({point.describe()}) failed: "
              f"{type(exc).__name__}: {exc}", file=sys.stderr)
        payload["status"] = "error"
        payload["error"] = f"{type(exc).__name__}: {exc}"
        obs.inc("campaign.points_failed")
    # Wall-clock lives under the single volatile key, mirroring the
    # flight-recorder frame contract: reports must never read it.
    payload["wall"] = {"elapsed_s": round(time.perf_counter() - t0, 6)}
    return payload


def pooled_point_task(point: EvalPoint) -> Tuple[dict, obs.Snapshot]:
    """Worker body: evaluate inside a fresh scoped registry and return
    the metrics delta for the parent to merge exactly once."""
    with obs.scoped_registry() as registry:
        payload = evaluate_point(point)
    return payload, registry.snapshot()


# ---------------------------------------------------------------------------
# cache
# ---------------------------------------------------------------------------

def result_path(out_dir: Union[str, os.PathLike], key: str) -> Path:
    return Path(out_dir) / key / RESULT_FILENAME


def load_point_result(out_dir: Union[str, os.PathLike],
                      key: str) -> Optional[dict]:
    """The recovered, validated cached payload for ``key``, or None.

    Recovery (:func:`recover_jsonl`) truncates a partial trailing line
    first; a file that recovers to nothing, fails to parse, or carries
    the wrong schema/key is discarded — deleted so the next writer
    starts clean — and the point re-runs.
    """
    path = result_path(out_dir, key)
    if not path.exists():
        return None
    recover_jsonl(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return None
    line = text.strip().splitlines()[0] if text.strip() else ""
    payload: Optional[dict] = None
    if line:
        try:
            decoded = json.loads(line)
        except ValueError:
            decoded = None
        if isinstance(decoded, dict) and decoded.get("schema") == RESULT_SCHEMA \
                and decoded.get("key") == key:
            payload = decoded
    if payload is None:
        path.unlink(missing_ok=True)
        obs.inc("campaign.cache_discarded")
    return payload


def write_point_result(out_dir: Union[str, os.PathLike],
                       payload: dict) -> Path:
    """Persist one payload as its point's single-line result file."""
    path = result_path(out_dir, payload["key"])
    with FrameSink(path, buffer_frames=1) as sink:
        sink.append(payload)
    return path


# ---------------------------------------------------------------------------
# orchestration
# ---------------------------------------------------------------------------

@dataclass
class CampaignRunResult:
    """What one ``campaign run`` did: counts plus per-point payloads."""

    campaign: str
    out_dir: Path
    total: int = 0
    hits: int = 0
    ran: int = 0
    errors: int = 0
    elapsed_s: float = 0.0
    #: Result payloads in spec point order (cache hits included).
    results: List[dict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.errors == 0

    def to_dict(self) -> dict:
        return {"campaign": self.campaign, "out": str(self.out_dir),
                "points": self.total, "hits": self.hits, "ran": self.ran,
                "errors": self.errors,
                "elapsed_s": round(self.elapsed_s, 3)}

    def render(self) -> str:
        return (f"campaign {self.campaign}: {self.total} point(s) — "
                f"{self.hits} cache hit(s), {self.ran} run, "
                f"{self.errors} error(s) in {self.elapsed_s:.1f}s")


def _progress_frame(seq: int, payload: dict, cached: bool) -> dict:
    return {
        "schema": CAMPAIGN_FRAMES_SCHEMA,
        "kind": "point",
        "seq": seq,
        "point_id": payload["point_id"],
        "key": payload["key"],
        "seed": payload["seed"],
        "status": payload["status"],
        "cached": cached,
        "wall": {"elapsed_s": (payload.get("wall") or {}).get("elapsed_s")},
    }


def run_campaign(spec: CampaignSpec, out_dir: Union[str, os.PathLike],
                 workers: Optional[int] = None, force: bool = False,
                 status: Optional[StatusLine] = None) -> CampaignRunResult:
    """Evaluate every point of ``spec``, incrementally and in parallel."""
    t0 = time.perf_counter()
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    status = status if status is not None else StatusLine()
    summary = CampaignRunResult(campaign=spec.name, out_dir=out,
                                total=len(spec.points))
    obs.inc("campaign.runs")
    obs.gauge("campaign.points_total", len(spec.points))

    # Phase 1: probe the cache; keep hit payloads, queue the misses.
    by_point: Dict[int, dict] = {}  # index in spec.points -> payload
    misses: List[Tuple[int, EvalPoint]] = []
    for i, point in enumerate(spec.points):
        payload = None if force else load_point_result(out, point.key)
        if payload is not None and payload.get("status") == "ok":
            by_point[i] = payload
            summary.hits += 1
            obs.inc("campaign.cache_hits")
        else:
            misses.append((i, point))
        status.update(f"[campaign {spec.name}] probing cache "
                      f"{i + 1}/{len(spec.points)} ({summary.hits} hit(s))")

    # Phase 2: evaluate the misses, journaling each completion.
    frames = FrameSink(out / "frames.jsonl", append=True)
    seq = 0
    try:
        for i, payload in by_point.items():
            frames.append(_progress_frame(seq, payload, cached=True))
            seq += 1

        def _absorb(i: int, point: EvalPoint, payload: dict) -> None:
            nonlocal seq
            by_point[i] = payload
            write_point_result(out, payload)
            frames.append(_progress_frame(seq, payload, cached=False))
            seq += 1
            summary.ran += 1
            if payload["status"] != "ok":
                summary.errors += 1
                print(f"campaign: recorded error result for point "
                      f"{point.key} ({point.describe()}): "
                      f"{payload['error']}", file=sys.stderr)
            done = summary.hits + summary.ran
            status.update(f"[campaign {spec.name}] {done}/{summary.total} "
                          f"point(s) ({summary.errors} error(s)) "
                          f"last: {point.describe()}")

        n = min(workers or 1, len(misses))
        if n <= 1:
            for i, point in misses:
                _absorb(i, point, evaluate_point(point))
        else:
            obs.gauge("campaign.pool_workers", n)
            obs.inc("campaign.parallel_batches")
            registry = obs.get_registry()
            with multiprocessing.Pool(processes=n) as pool:
                for (i, point), (payload, snapshot) in zip(
                        misses, pool.imap(pooled_point_task,
                                          [p for _, p in misses],
                                          chunksize=1)):
                    registry.merge_snapshot(snapshot)
                    _absorb(i, point, payload)

        summary.elapsed_s = time.perf_counter() - t0
        frames.append({
            "schema": CAMPAIGN_FRAMES_SCHEMA,
            "kind": "final",
            "seq": seq,
            "campaign": spec.name,
            "points": summary.total,
            "hits": summary.hits,
            "ran": summary.ran,
            "errors": summary.errors,
            "wall": {"elapsed_s": round(summary.elapsed_s, 6)},
        })
    finally:
        frames.close()
        status.close()
    summary.results = [by_point[i] for i in sorted(by_point)]
    return summary


def campaign_status(spec: CampaignSpec, out_dir: Union[str, os.PathLike]
                    ) -> List[dict]:
    """Probe every point's cache state without running anything.

    Returns one record per point, in spec order: ``state`` is ``"hit"``
    (a valid ``ok`` result), ``"error"`` (a recorded failure that will
    retry), or ``"missing"``.
    """
    records = []
    for point in spec.points:
        payload = load_point_result(out_dir, point.key)
        if payload is None:
            state = "missing"
        elif payload.get("status") == "ok":
            state = "hit"
        else:
            state = "error"
        records.append({"point_id": point.point_id, "key": point.key,
                        "seed": point.seed, "grid": dict(point.grid_values),
                        "state": state})
    return records


def load_campaign_results(spec: CampaignSpec,
                          out_dir: Union[str, os.PathLike]) -> List[dict]:
    """Every cached payload of ``spec`` (ok or error), in spec order."""
    payloads = []
    for point in spec.points:
        payload = load_point_result(out_dir, point.key)
        if payload is not None:
            payloads.append(payload)
    return payloads
