"""Per-point metric extraction and cross-point trade-study aggregation.

One evaluation point simulates one or more cells; this module reduces
those :class:`~repro.sim.cell.CellResult` objects to the campaign's
headline metrics — reusing the existing analysis reducers rather than
re-deriving them:

* ``cpu_utilization`` / ``mem_utilization`` — whole-trace average usage
  fraction (:func:`repro.analysis.utilization.total_usage_fraction`),
  averaged across the point's cells,
* ``p95_queueing_delay_s`` — the 95th percentile of per-job scheduling
  delay (:func:`repro.analysis.sched_delay.scheduling_delays`), pooled
  across cells,
* ``evictions_per_machine_hour`` — infrastructure + preemption
  evictions normalized by fleet size and horizon, so points with
  different cell sizes or horizons stay comparable.

:func:`aggregate_points` then folds per-seed results into one row per
grid assignment (mean across seeds) and :func:`pareto_front` marks the
non-dominated rows of the utilization / eviction / delay trade-off.
Everything here is a pure function of the result payloads, so reports
are identical between serial and parallel campaign runs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.analysis.sched_delay import scheduling_delays
from repro.analysis.utilization import total_usage_fraction
from repro.sim.cell import CellResult
from repro.trace import encode_cell
from repro.util.timeutil import HOUR_SECONDS

#: The trade-study objectives: (metric name, direction).  Direction is
#: "max" (bigger is better) or "min"; :func:`pareto_front` uses these.
OBJECTIVES: Tuple[Tuple[str, str], ...] = (
    ("cpu_utilization", "max"),
    ("evictions_per_machine_hour", "min"),
    ("p95_queueing_delay_s", "min"),
)

#: The delay percentile the campaign reports (0..1).
DELAY_PERCENTILE = 0.95


def point_metrics(results: Sequence[CellResult]) -> Dict[str, float]:
    """Reduce one point's cell results to the campaign metric dict."""
    if not results:
        raise ValueError("point_metrics requires at least one cell result")
    traces = [encode_cell(result) for result in results]
    cpu = [total_usage_fraction(t, resource="cpu") for t in traces]
    mem = [total_usage_fraction(t, resource="mem") for t in traces]
    delays = [scheduling_delays(t).column("delay").values for t in traces]
    pooled = np.concatenate(delays) if delays else np.zeros(0)
    p95 = float(np.quantile(pooled, DELAY_PERCENTILE)) if pooled.size else 0.0
    evictions = sum(r.counters.evictions for r in results)
    machine_hours = sum(
        len(r.machines) * r.config.horizon / HOUR_SECONDS for r in results)
    return {
        "cpu_utilization": float(np.mean(cpu)),
        "mem_utilization": float(np.mean(mem)),
        "p95_queueing_delay_s": p95,
        "evictions_per_machine_hour":
            evictions / machine_hours if machine_hours > 0 else 0.0,
        "jobs_submitted": float(sum(r.counters.jobs_submitted
                                    for r in results)),
        "tasks_created": float(sum(r.counters.tasks_created
                                   for r in results)),
        "evictions": float(evictions),
        "jobs_measured": float(pooled.size),
    }


def aggregate_points(results: Sequence[dict],
                     grid_axes: Sequence[str]) -> List[dict]:
    """Fold per-(point, seed) result payloads into per-grid-point rows.

    ``results`` are decoded ``repro.campaign.result/1`` payloads (see
    :mod:`repro.campaign.runner`).  Rows come back in first-seen order
    — the spec's expansion order when results are fed in point order —
    each with the grid assignment, mean metrics over its ``ok`` seeds,
    and the seed/error bookkeeping the report prints.
    """
    rows: List[dict] = []
    index: Dict[tuple, dict] = {}
    for payload in results:
        assignment = {axis: payload["params"][axis] for axis in grid_axes}
        group = tuple((axis, repr(assignment[axis])) for axis in grid_axes)
        row = index.get(group)
        if row is None:
            row = {"grid": assignment, "params": dict(payload["params"]),
                   "seeds": [], "errors": [], "_metric_samples": {}}
            index[group] = row
            rows.append(row)
        if payload.get("status") == "ok":
            row["seeds"].append(payload["seed"])
            for name, value in payload.get("metrics", {}).items():
                row["_metric_samples"].setdefault(name, []).append(value)
        else:
            row["errors"].append(payload["seed"])
    for row in rows:
        samples = row.pop("_metric_samples")
        row["metrics"] = {name: float(np.mean(values))
                          for name, values in sorted(samples.items())}
        row["seeds"].sort()
        row["errors"].sort()
    return rows


def _dominates(a: Dict[str, float], b: Dict[str, float],
               objectives: Sequence[Tuple[str, str]]) -> bool:
    """True when ``a`` is at least as good as ``b`` everywhere and
    strictly better somewhere."""
    strictly_better = False
    for name, direction in objectives:
        va, vb = a.get(name, 0.0), b.get(name, 0.0)
        if direction == "max":
            if va < vb:
                return False
            strictly_better = strictly_better or va > vb
        else:
            if va > vb:
                return False
            strictly_better = strictly_better or va < vb
    return strictly_better


def pareto_front(rows: Sequence[dict],
                 objectives: Sequence[Tuple[str, str]] = OBJECTIVES,
                 ) -> List[int]:
    """Indices of the non-dominated rows (rows without ``ok`` seeds are
    never on the front — they have no metrics to trade)."""
    front: List[int] = []
    for i, row in enumerate(rows):
        if not row["seeds"]:
            continue
        dominated = any(
            j != i and other["seeds"]
            and _dominates(other["metrics"], row["metrics"], objectives)
            for j, other in enumerate(rows))
        if not dominated:
            front.append(i)
    return front
