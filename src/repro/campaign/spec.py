"""Declarative campaign specs: a JSON grid expanded into evaluation points.

A campaign spec is one JSON object::

    {
      "campaign": "overcommit-ab",
      "description": "A/B CPU/memory over-commit on cell d",
      "base": {"cells": ["d"], "machines": 16, "hours": 4.0},
      "grid": {"overcommit_cpu": [1.2, 1.9], "overcommit_mem": [1.1, 1.8]},
      "seeds": [0, 1]
    }

``base`` overrides the built-in defaults (:data:`DEFAULT_PARAMS`);
``grid`` maps parameter names to value lists whose cartesian product —
crossed with ``seeds`` — is the campaign's point set.  Every point
carries fully resolved parameters, so the content-addressed key
(:mod:`repro.campaign.cache_key`) is independent of which side of the
base/grid split a value came from.

Expansion order is deterministic: grid axes iterate in sorted parameter
name order, values in their listed order, seeds innermost in listed
order.  Point ids number that sequence from zero and stay stable for a
given spec, which is what makes status/report output comparable across
runs and between serial and ``--workers N`` execution.
"""

from __future__ import annotations

import itertools
import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple, Union

from repro.campaign.cache_key import point_key
from repro.faults import FAULT_PROFILES
from repro.workload.archetypes import ARCHETYPE_MIXES
from repro.workload.scenarios import CELL_PROFILES_2019


class CampaignSpecError(ValueError):
    """A campaign spec that fails validation (bad key, type, or value)."""


#: Fully resolved defaults for every point parameter.  ``overcommit_*``
#: default to ``None`` — "use the era's scheduler preset".
DEFAULT_PARAMS: Dict[str, Union[str, int, float, List[str], None]] = {
    "era": "2019",
    "cells": ["d"],
    "machines": 24,
    "hours": 6.0,
    "scale": 0.012,
    "sample_period": 900.0,
    "overcommit_cpu": None,
    "overcommit_mem": None,
    "faults": None,
    "fault_rate": 1.0,
    "archetype_mix": None,
}

#: Parameters whose values must be positive numbers.
_POSITIVE = ("machines", "hours", "scale", "sample_period", "fault_rate")

#: Over-commit factors below 1 would *under*-commit below capacity.
_OVERCOMMIT_MIN = 1.0

#: Hard cap on expanded points: a fat-fingered grid should fail fast,
#: not quietly queue a month of simulation.
MAX_POINTS = 4096


def _validate_param(name: str, value) -> Union[str, int, float, List[str], None]:
    """Type/range-check one resolved parameter value; return it normalized."""
    if name not in DEFAULT_PARAMS:
        known = ", ".join(sorted(DEFAULT_PARAMS))
        raise CampaignSpecError(
            f"unknown campaign parameter {name!r} (known: {known})")
    if name == "era":
        if value not in ("2011", "2019"):
            raise CampaignSpecError(f"era must be '2011' or '2019', got {value!r}")
        return value
    if name == "cells":
        if isinstance(value, str):
            value = [c for c in value.split(",") if c]
        if not isinstance(value, list) or not value or \
                not all(isinstance(c, str) for c in value):
            raise CampaignSpecError(
                f"cells must be a non-empty list of cell names, got {value!r}")
        return value
    if name == "machines":
        # Integral floats are accepted (JSON tooling often emits 16.0);
        # they normalize to the same cache key as the int spelling.
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        if isinstance(value, bool) or not isinstance(value, int) or value <= 0:
            raise CampaignSpecError(
                f"machines must be a positive integer, got {value!r}")
        return value
    if name in _POSITIVE:
        if isinstance(value, bool) or not isinstance(value, (int, float)) \
                or value <= 0:
            raise CampaignSpecError(
                f"{name} must be a positive number, got {value!r}")
        return float(value)
    if name == "faults":
        if value is None:
            return None
        if not isinstance(value, str) or value not in FAULT_PROFILES:
            known = ", ".join(sorted(FAULT_PROFILES))
            raise CampaignSpecError(
                f"faults must be a profile name ({known}) or null, "
                f"got {value!r}")
        return value
    if name == "archetype_mix":
        if value is None:
            return None
        if not isinstance(value, str) or value not in ARCHETYPE_MIXES:
            known = ", ".join(sorted(ARCHETYPE_MIXES))
            raise CampaignSpecError(
                f"archetype_mix must be a mix name ({known}) or null, "
                f"got {value!r}")
        return value
    # overcommit_cpu / overcommit_mem
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)) \
            or value < _OVERCOMMIT_MIN:
        raise CampaignSpecError(
            f"{name} must be a number >= {_OVERCOMMIT_MIN:g} (or null), "
            f"got {value!r}")
    return float(value)


def _validate_cells_for_era(params: dict) -> None:
    if params["era"] == "2011":
        if params["cells"] != ["2011"]:
            raise CampaignSpecError(
                "era 2011 has exactly one cell; use \"cells\": [\"2011\"], "
                f"got {params['cells']!r}")
        return
    unknown = [c for c in params["cells"] if c not in CELL_PROFILES_2019]
    if unknown:
        raise CampaignSpecError(
            f"unknown 2019 cells {unknown!r} "
            f"(known: {sorted(CELL_PROFILES_2019)})")


@dataclass(frozen=True)
class EvalPoint:
    """One expanded evaluation: resolved parameters + seed + cache key."""

    point_id: int
    params: Dict[str, object]
    grid_values: Dict[str, object]  # the point's grid assignment only
    seed: int
    key: str

    def describe(self) -> str:
        """Short human label: the grid assignment plus the seed."""
        parts = [f"{k}={v}" for k, v in self.grid_values.items()]
        parts.append(f"seed={self.seed}")
        return " ".join(parts)


@dataclass(frozen=True)
class CampaignSpec:
    """A validated campaign: name, base params, grid axes, seed list."""

    name: str
    description: str
    base: Dict[str, object]
    grid: Dict[str, List[object]]
    seeds: Tuple[int, ...]
    source: str = "<spec>"
    points: Tuple[EvalPoint, ...] = field(default_factory=tuple)

    @property
    def grid_axes(self) -> List[str]:
        """Grid parameter names in expansion (sorted) order."""
        return sorted(self.grid)

    def iter_points(self) -> Iterator[EvalPoint]:
        return iter(self.points)


def _expand_points(base: Dict[str, object], grid: Dict[str, List[object]],
                   seeds: Tuple[int, ...]) -> Tuple[EvalPoint, ...]:
    axes = sorted(grid)
    value_lists = [grid[axis] for axis in axes]
    points: List[EvalPoint] = []
    point_id = 0
    for combo in itertools.product(*value_lists) if axes else [()]:
        assignment = dict(zip(axes, combo))
        params = dict(base)
        params.update(assignment)
        _validate_cells_for_era(params)
        for seed in seeds:
            points.append(EvalPoint(
                point_id=point_id,
                params=params,
                grid_values=assignment,
                seed=seed,
                key=point_key(params, seed),
            ))
            point_id += 1
    return tuple(points)


def parse_spec(payload: dict, source: str = "<spec>") -> CampaignSpec:
    """Validate a decoded spec object and expand its point set."""
    if not isinstance(payload, dict):
        raise CampaignSpecError(f"{source}: spec must be a JSON object")
    unknown = set(payload) - {"campaign", "description", "base", "grid", "seeds"}
    if unknown:
        raise CampaignSpecError(
            f"{source}: unknown spec keys {sorted(unknown)} "
            "(expected campaign, description, base, grid, seeds)")
    name = payload.get("campaign")
    if not isinstance(name, str) or not name:
        raise CampaignSpecError(
            f"{source}: 'campaign' must be a non-empty string name")
    description = payload.get("description", "")
    if not isinstance(description, str):
        raise CampaignSpecError(f"{source}: 'description' must be a string")

    base_in = payload.get("base", {})
    if not isinstance(base_in, dict):
        raise CampaignSpecError(f"{source}: 'base' must be an object")
    base = dict(DEFAULT_PARAMS)
    for key, value in base_in.items():
        base[key] = _validate_param(key, value)

    grid_in = payload.get("grid", {})
    if not isinstance(grid_in, dict):
        raise CampaignSpecError(f"{source}: 'grid' must be an object")
    grid: Dict[str, List[object]] = {}
    for key, values in grid_in.items():
        if not isinstance(values, list) or not values:
            raise CampaignSpecError(
                f"{source}: grid axis {key!r} must be a non-empty list "
                f"of values, got {values!r}")
        grid[key] = [_validate_param(key, v) for v in values]

    seeds_in = payload.get("seeds", [0])
    if not isinstance(seeds_in, list) or not seeds_in or \
            any(isinstance(s, bool) or not isinstance(s, int) for s in seeds_in):
        raise CampaignSpecError(
            f"{source}: 'seeds' must be a non-empty list of integers")
    if len(set(seeds_in)) != len(seeds_in):
        raise CampaignSpecError(f"{source}: duplicate seeds {seeds_in!r}")
    seeds = tuple(seeds_in)

    n_points = len(seeds)
    for values in grid.values():
        n_points *= len(values)
    if n_points > MAX_POINTS:
        raise CampaignSpecError(
            f"{source}: grid expands to {n_points} points "
            f"(limit {MAX_POINTS}); shrink the grid or the seed list")

    points = _expand_points(base, grid, seeds)
    return CampaignSpec(name=name, description=description, base=base,
                        grid=grid, seeds=seeds, source=source, points=points)


def load_spec(path: Union[str, os.PathLike]) -> CampaignSpec:
    """Read and validate a campaign spec file."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            payload = json.load(f)
    except ValueError as exc:
        raise CampaignSpecError(f"{path}: not valid JSON ({exc})") from exc
    return parse_spec(payload, source=str(path))
