"""Trade-study rendering: the campaign's tables and Pareto front.

The report is a pure function of the cached result payloads (see
:mod:`repro.campaign.runner`), so it can be rendered at any time —
mid-campaign over whatever points exist, or after completion — and is
byte-identical between serial and parallel runs of the same spec.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple

from repro.campaign.spec import CampaignSpec
from repro.campaign.summary import OBJECTIVES, aggregate_points, pareto_front

#: Machine-readable report schema.
REPORT_SCHEMA = "repro.campaign.report/1"

#: Metrics printed as table columns, with short headers and formats.
_METRIC_COLUMNS: Tuple[Tuple[str, str, str], ...] = (
    ("cpu_utilization", "cpu_util", "{:.4f}"),
    ("mem_utilization", "mem_util", "{:.4f}"),
    ("evictions_per_machine_hour", "evict/m-h", "{:.4f}"),
    ("p95_queueing_delay_s", "p95_delay_s", "{:.2f}"),
)


def build_report(spec: CampaignSpec, results: Sequence[dict]) -> dict:
    """Aggregate payloads into the machine-readable report object."""
    rows = aggregate_points(results, spec.grid_axes)
    front = pareto_front(rows)
    return {
        "schema": REPORT_SCHEMA,
        "campaign": spec.name,
        "description": spec.description,
        "grid_axes": list(spec.grid_axes),
        "seeds": list(spec.seeds),
        "objectives": [{"metric": name, "direction": direction}
                       for name, direction in OBJECTIVES],
        "results": len(results),
        "rows": rows,
        "pareto_front": front,
    }


def _fmt_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:g}"
    if isinstance(value, list):
        return ",".join(str(v) for v in value)
    return str(value)


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return lines


def render_report(report: dict) -> str:
    """The human-readable trade study (text)."""
    rows: List[Dict] = report["rows"]
    front = set(report["pareto_front"])
    axes: List[str] = report["grid_axes"]
    lines: List[str] = []
    lines.append(f"campaign {report['campaign']}  "
                 f"({report['results']} result(s), {len(rows)} grid "
                 f"point(s), seeds {report['seeds']})")
    if report.get("description"):
        lines.append(report["description"])
    lines.append("")
    lines.append("trade study (metrics are means over ok seeds; "
                 "* marks the Pareto front):")
    headers = [""] + axes + [h for _, h, _ in _METRIC_COLUMNS] \
        + ["seeds", "errors"]
    body: List[List[str]] = []
    for i, row in enumerate(rows):
        cells = ["*" if i in front else ""]
        cells += [_fmt_cell(row["grid"].get(axis)) for axis in axes]
        for name, _, fmt in _METRIC_COLUMNS:
            value = row["metrics"].get(name)
            cells.append(fmt.format(value) if value is not None else "-")
        cells.append(str(len(row["seeds"])))
        cells.append(str(len(row["errors"])))
        body.append(cells)
    lines += ["  " + line for line in _table(headers, body)]
    lines.append("")
    objectives = ", ".join(f"{o['direction']} {o['metric']}"
                           for o in report["objectives"])
    lines.append(f"Pareto front ({objectives}):")
    if not front:
        lines.append("  (empty — no grid point has an ok result)")
    for i in sorted(front):
        row = rows[i]
        assignment = " ".join(f"{axis}={_fmt_cell(row['grid'].get(axis))}"
                              for axis in axes) or "(single point)"
        metrics = "  ".join(
            f"{h}={fmt.format(row['metrics'].get(name, 0.0))}"
            for name, h, fmt in _METRIC_COLUMNS)
        lines.append(f"  {assignment}: {metrics}")
    return "\n".join(lines) + "\n"


def render_report_json(report: dict) -> str:
    return json.dumps(report, indent=2, sort_keys=True) + "\n"
