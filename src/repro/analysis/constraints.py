"""Placement-constraint analysis (a new 2019 trace feature, paper §1/§3).

The 2019 trace exposes machine-attribute placement constraints.  This
module measures their prevalence, verifies satisfaction (every scheduled
task of a constrained job runs on a matching platform), and quantifies
their scheduling cost: constrained jobs can only use a slice of the
cell, so they queue longer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.sched_delay import scheduling_delays
from repro.trace.dataset import TraceDataset


@dataclass(frozen=True)
class ConstraintReport:
    """Prevalence, satisfaction, and delay impact of constraints."""

    constrained_job_fraction: float
    constraints_by_platform: Dict[str, int]
    satisfied_fraction: float
    median_delay_constrained: float
    median_delay_unconstrained: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "jobs with a placement constraint": self.constrained_job_fraction,
            "constrained placements satisfied": self.satisfied_fraction,
            "median delay, constrained (s)": self.median_delay_constrained,
            "median delay, unconstrained (s)": self.median_delay_unconstrained,
        }


def _constraints_of(trace: TraceDataset) -> Dict[int, str]:
    ce = trace.collection_events
    out: Dict[int, str] = {}
    ids = ce.column("collection_id").values
    types = ce.column("type").values
    constraints = ce.column("constraint").values
    kinds = ce.column("collection_type").values
    for i in range(len(ce)):
        if types[i] == "SUBMIT" and kinds[i] == "job" and constraints[i]:
            out[int(ids[i])] = constraints[i]
    return out


def constraint_report(traces: Sequence[TraceDataset]) -> ConstraintReport:
    n_jobs = 0
    by_platform: Dict[str, int] = {}
    satisfied = 0
    total_placements = 0
    delays_constrained: List[float] = []
    delays_unconstrained: List[float] = []

    for trace in traces:
        constrained = _constraints_of(trace)
        ce = trace.collection_events
        submits = ((ce.column("type").values == "SUBMIT")
                   & (ce.column("collection_type").values == "job"))
        n_jobs += int(submits.sum())
        for platform in constrained.values():
            by_platform[platform] = by_platform.get(platform, 0) + 1

        attrs = trace.machine_attributes
        platform_of = dict(zip(attrs.column("machine_id").values.tolist(),
                               attrs.column("platform").values.tolist()))
        ie = trace.instance_events
        ids = ie.column("collection_id").values
        types = ie.column("type").values
        machines = ie.column("machine_id").values
        for i in range(len(ie)):
            if types[i] != "SCHEDULE":
                continue
            required = constrained.get(int(ids[i]))
            if required is None:
                continue
            total_placements += 1
            if platform_of.get(int(machines[i])) == required:
                satisfied += 1

        delays = scheduling_delays(trace)
        d_ids = delays.column("collection_id").values
        d_vals = delays.column("delay").values
        for cid, delay in zip(d_ids, d_vals):
            if int(cid) in constrained:
                delays_constrained.append(float(delay))
            else:
                delays_unconstrained.append(float(delay))

    n_constrained = sum(by_platform.values())
    return ConstraintReport(
        constrained_job_fraction=n_constrained / n_jobs if n_jobs else 0.0,
        constraints_by_platform=by_platform,
        satisfied_fraction=(satisfied / total_placements
                            if total_placements else 1.0),
        median_delay_constrained=(float(np.median(delays_constrained))
                                  if delays_constrained else 0.0),
        median_delay_unconstrained=(float(np.median(delays_unconstrained))
                                    if delays_unconstrained else 0.0),
    )
