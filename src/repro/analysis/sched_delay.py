"""Job scheduling delay (paper figure 10, section 6.3).

The metric: time from a job becoming *ready* (entering the pending
state — after any deliberate batch-queue delay) to its **first** task
running.  The paper picked first-task latency because Borg starts a job
as soon as any task runs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.common import merge_monitoring_tier
from repro.stats.ccdf import Ccdf, empirical_ccdf
from repro.table import Table
from repro.trace.dataset import TraceDataset
from repro.util.timeutil import HOUR_SECONDS


def scheduling_delays(trace: TraceDataset,
                      skip_warmup_hours: float = 1.0) -> Table:
    """Per-job (collection_id, tier, delay_seconds).

    Ready time is the ENABLE event when one exists (batch-queued jobs)
    and the SUBMIT event otherwise; first-running is the earliest
    SCHEDULE among the job's instances.  Jobs submitted in the first
    ``skip_warmup_hours`` are dropped (warm-start artifacts), as are
    jobs that never started.
    """
    ce = trace.collection_events
    ie = trace.instance_events
    ready: Dict[int, float] = {}
    tier_of: Dict[int, str] = {}
    is_job: Dict[int, bool] = {}
    c_ids = ce.column("collection_id").values
    c_types = ce.column("type").values
    c_times = ce.column("time").values
    c_kinds = ce.column("collection_type").values
    c_tiers = merge_monitoring_tier(ce.column("tier").values)
    for i in range(len(ce)):
        cid = int(c_ids[i])
        if c_types[i] == "SUBMIT":
            ready.setdefault(cid, float(c_times[i]))
            tier_of[cid] = c_tiers[i]
            is_job[cid] = c_kinds[i] == "job"
        elif c_types[i] == "ENABLE":
            # ENABLE supersedes SUBMIT: the batch queue wait is deliberate
            # and excluded from the metric.
            ready[cid] = float(c_times[i])

    first_run: Dict[int, float] = {}
    i_ids = ie.column("collection_id").values
    i_types = ie.column("type").values
    i_times = ie.column("time").values
    for i in range(len(ie)):
        if i_types[i] == "SCHEDULE":
            cid = int(i_ids[i])
            t = float(i_times[i])
            if cid not in first_run or t < first_run[cid]:
                first_run[cid] = t

    cutoff = skip_warmup_hours * HOUR_SECONDS
    rows = {"collection_id": [], "tier": [], "delay": []}
    for cid, t_ready in ready.items():
        if not is_job.get(cid, False) or cid not in first_run:
            continue
        if t_ready < cutoff:
            continue
        rows["collection_id"].append(cid)
        rows["tier"].append(tier_of[cid])
        rows["delay"].append(max(0.0, first_run[cid] - t_ready))
    return Table(rows)


def delay_ccdf(trace: TraceDataset) -> Ccdf:
    """Figure 10a: one cell's job scheduling delay CCDF."""
    delays = scheduling_delays(trace).column("delay").values
    if len(delays) == 0:
        raise ValueError(f"cell {trace.cell}: no schedulable jobs to measure")
    return empirical_ccdf(delays)


def delay_ccdf_by_tier(traces: Sequence[TraceDataset]) -> Dict[str, Ccdf]:
    """Figure 10b: delay CCDF per tier, aggregated across cells."""
    pooled: Dict[str, List[float]] = {}
    for trace in traces:
        table = scheduling_delays(trace)
        tiers = table.column("tier").values
        delays = table.column("delay").values
        for tier, delay in zip(tiers, delays):
            pooled.setdefault(tier, []).append(float(delay))
    return {tier: empirical_ccdf(values) for tier, values in pooled.items()
            if len(values) > 0}


def median_delay(trace: TraceDataset) -> float:
    """Median first-task scheduling delay for one cell, seconds."""
    delays = scheduling_delays(trace).column("delay").values
    return float(np.median(delays)) if len(delays) else 0.0
