"""Alloc-set statistics (paper section 5.1).

The paper: 2% of collections are alloc sets; they carry 20% of CPU and
18% of RAM allocations; 15% of jobs run inside an alloc, 95% of which
are production tier; jobs inside allocs use 73% of their memory limits
versus 41% outside.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.analysis.common import alloc_set_ids, collection_metadata
from repro.trace.dataset import TraceDataset
from repro.util.timeutil import HOUR_SECONDS


@dataclass(frozen=True)
class AllocSetReport:
    """Section 5.1's statistics."""

    alloc_set_fraction_of_collections: float
    alloc_cpu_allocation_share: float
    alloc_mem_allocation_share: float
    jobs_in_alloc_fraction: float
    in_alloc_prod_fraction: float
    mem_utilization_in_alloc: float
    mem_utilization_outside: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "alloc sets / collections": self.alloc_set_fraction_of_collections,
            "alloc share of CPU allocations": self.alloc_cpu_allocation_share,
            "alloc share of RAM allocations": self.alloc_mem_allocation_share,
            "jobs running in allocs": self.jobs_in_alloc_fraction,
            "of which production tier": self.in_alloc_prod_fraction,
            "memory utilization inside allocs": self.mem_utilization_in_alloc,
            "memory utilization outside allocs": self.mem_utilization_outside,
        }


def alloc_set_report(traces: Sequence[TraceDataset]) -> AllocSetReport:
    """Compute section 5.1's statistics pooled across cells."""
    n_collections = 0
    n_alloc_sets = 0
    n_jobs = 0
    n_jobs_in_alloc = 0
    n_jobs_in_alloc_prod = 0
    alloc_cpu_hours = 0.0
    total_cpu_hours = 0.0
    alloc_mem_hours = 0.0
    total_mem_hours = 0.0
    mem_used_in = mem_limit_in = 0.0
    mem_used_out = mem_limit_out = 0.0

    for trace in traces:
        meta = collection_metadata(trace)
        kinds = meta.column("collection_type").values
        tiers = meta.column("tier").values
        alloc_ids = meta.column("alloc_collection_id").values
        n_collections += len(meta)
        for i in range(len(meta)):
            if kinds[i] == "alloc_set":
                n_alloc_sets += 1
            else:
                n_jobs += 1
                if alloc_ids[i] >= 0:
                    n_jobs_in_alloc += 1
                    if tiers[i] in ("prod", "monitoring"):
                        n_jobs_in_alloc_prod += 1

        iu = trace.instance_usage
        if len(iu) == 0:
            continue
        hours = iu.column("duration").values / HOUR_SECONDS
        limit_cpu = iu.column("limit_cpu").values * hours
        limit_mem = iu.column("limit_mem").values * hours
        used_mem = iu.column("avg_mem").values * hours
        in_alloc = iu.column("in_alloc").values
        ids = iu.column("collection_id").values
        allocs = alloc_set_ids(trace)
        is_alloc_row = np.asarray([int(i) in allocs for i in ids], dtype=bool)

        # Allocation shares: alloc reservations vs everything that books
        # machine room (alloc rows + direct task rows; in-alloc task rows
        # are inside the reservation, so excluded from the denominator).
        direct = ~in_alloc
        total_cpu_hours += float(limit_cpu[direct].sum())
        total_mem_hours += float(limit_mem[direct].sum())
        alloc_cpu_hours += float(limit_cpu[is_alloc_row].sum())
        alloc_mem_hours += float(limit_mem[is_alloc_row].sum())

        task_rows = ~is_alloc_row
        mem_used_in += float(used_mem[task_rows & in_alloc].sum())
        mem_limit_in += float(limit_mem[task_rows & in_alloc].sum())
        mem_used_out += float(used_mem[task_rows & ~in_alloc].sum())
        mem_limit_out += float(limit_mem[task_rows & ~in_alloc].sum())

    def ratio(a: float, b: float) -> float:
        return a / b if b > 0 else 0.0

    return AllocSetReport(
        alloc_set_fraction_of_collections=ratio(n_alloc_sets, n_collections),
        alloc_cpu_allocation_share=ratio(alloc_cpu_hours, total_cpu_hours),
        alloc_mem_allocation_share=ratio(alloc_mem_hours, total_mem_hours),
        jobs_in_alloc_fraction=ratio(n_jobs_in_alloc, n_jobs),
        in_alloc_prod_fraction=ratio(n_jobs_in_alloc_prod, n_jobs_in_alloc),
        mem_utilization_in_alloc=ratio(mem_used_in, mem_limit_in),
        mem_utilization_outside=ratio(mem_used_out, mem_limit_out),
    )
