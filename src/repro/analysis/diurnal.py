"""Diurnal load cycles (paper section 4.1's timezone observation).

"The load at midnight PDT was much higher in cell g in Singapore where
it was 3pm, than in the others where it was 2 or 3am locally."  The
cells' workloads follow local wall-clock time, so a fixed-UTC snapshot
catches them at different points of their daily cycle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.trace.dataset import TraceDataset
from repro.util.timeutil import HOUR_SECONDS


def usage_by_local_hour(trace: TraceDataset, resource: str = "cpu") -> np.ndarray:
    """Mean usage (fraction of capacity) for each local hour-of-day (24 bins)."""
    if resource not in ("cpu", "mem"):
        raise ValueError(f"resource must be 'cpu' or 'mem', got {resource!r}")
    iu = trace.instance_usage
    capacity = trace.capacity_cpu if resource == "cpu" else trace.capacity_mem
    sums = np.zeros(24)
    seconds = np.zeros(24)
    if len(iu) == 0 or capacity <= 0:
        return sums
    column = "avg_cpu" if resource == "cpu" else "avg_mem"
    start = iu.column("start_time").values
    local_hour = ((start / HOUR_SECONDS + trace.utc_offset_hours) % 24.0).astype(np.int64)
    weights = iu.column(column).values * iu.column("duration").values
    sums = np.bincount(local_hour, weights=weights, minlength=24)
    # Normalize by how much wall-clock time the trace spends in each bin.
    n_hours = int(trace.horizon / HOUR_SECONDS)
    trace_hours = np.arange(n_hours)
    bin_of_hour = ((trace_hours + trace.utc_offset_hours) % 24).astype(np.int64)
    seconds = np.bincount(bin_of_hour, minlength=24) * HOUR_SECONDS
    out = np.zeros(24)
    nonzero = seconds > 0
    out[nonzero] = sums[nonzero] / seconds[nonzero] / capacity
    return out


def peak_local_hour(trace: TraceDataset, resource: str = "cpu") -> int:
    """The local hour-of-day at which the cell's load peaks."""
    return int(np.argmax(usage_by_local_hour(trace, resource)))


@dataclass(frozen=True)
class UtcSnapshot:
    """Load of every cell at one fixed UTC hour (the section 4.1 contrast)."""

    utc_hour: float
    load_by_cell: Dict[str, float]
    local_hour_by_cell: Dict[str, float]


def load_at_utc_hour(traces: Sequence[TraceDataset], utc_hour: float = 7.0,
                     resource: str = "cpu") -> UtcSnapshot:
    """Each cell's mean load during a fixed UTC hour-of-day.

    The default 07:00 UTC is midnight PDT — the paper's example, where
    Singapore (cell g) is at 3pm and busy while US cells sleep.
    """
    load: Dict[str, float] = {}
    local: Dict[str, float] = {}
    for trace in traces:
        by_local = usage_by_local_hour(trace, resource)
        local_hour = (utc_hour + trace.utc_offset_hours) % 24.0
        load[trace.cell] = float(by_local[int(local_hour) % 24])
        local[trace.cell] = local_hour
    return UtcSnapshot(utc_hour=utc_hour, load_by_cell=load,
                       local_hour_by_cell=local)


def diurnal_amplitude(trace: TraceDataset, resource: str = "cpu") -> float:
    """(peak - trough) / mean of the local-hour profile; 0 for flat load."""
    profile = usage_by_local_hour(trace, resource)
    mean = profile.mean()
    if mean <= 0:
        return 0.0
    return float((profile.max() - profile.min()) / mean)
