"""Failure, resubmission and archetype analyses (the scenario-pack figures).

Three views of a fault-injected run, grounded in "A Deep Dive into the
Google Cluster Workload Traces" (failure characteristics, resubmission
behavior) and the per-user clustering literature:

* :func:`failure_rates_by_tier` — terminal instance-event rates per
  tier, normalized per task-hour: the Deep Dive's headline that
  low-tier work fails and is evicted far more often than production.
* :func:`resubmission_interval_ccdf` / :func:`resubmission_report` —
  the distribution of failure-to-resubmission delays and the chain
  structure (attempts, depths, per-user concentration).  These consume
  :class:`~repro.sim.cell.CellResult` objects: resubmission provenance
  lives in the simulator's :class:`~repro.sim.events.ResubmitEvent`
  side stream, deliberately *not* a trace table — the real traces do
  not label resubmissions either (chains must be inferred there), so
  the trace schema stays faithful.
* :func:`archetype_usage_shares` — NCU-hours share per user archetype,
  attributed purely from user names (``hog_0001``, ``cron_0002``, ...;
  see :func:`repro.workload.archetypes.archetype_of_user`).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro import obs
from repro.analysis.users import usage_per_user
from repro.sim.cell import CellResult
from repro.workload.archetypes import archetype_of_user
from repro.stats.ccdf import Ccdf, empirical_ccdf
from repro.trace.dataset import TraceDataset
from repro.util.timeutil import HOUR_SECONDS

#: Terminal instance-event types, in reporting order.
TERMINAL_TYPES = ("EVICT", "FAIL", "FINISH", "KILL")


@obs.traced("analysis.failure_rates_by_tier")
def failure_rates_by_tier(traces: Sequence[TraceDataset]
                          ) -> Dict[str, Dict[str, float]]:
    """Terminal instance-event rates per tier, per task-hour.

    For each tier: the number of EVICT/FAIL/FINISH/KILL instance events
    divided by the tier's total task running hours (from the usage
    table), plus the raw task-hours and new-task counts the rates are
    built from.  Pooled across cells.
    """
    event_counts: Dict[str, Dict[str, int]] = {}
    new_tasks: Dict[str, int] = {}
    task_hours: Dict[str, float] = {}
    for trace in traces:
        ie = trace.instance_events
        tiers = ie.column("tier").values
        types = ie.column("type").values
        is_new = ie.column("is_new").values
        for kind in TERMINAL_TYPES:
            mask = types == kind
            for tier in np.unique(tiers[mask]):
                per_tier = event_counts.setdefault(str(tier), {})
                tier_mask = mask & (tiers == tier)
                per_tier[kind] = per_tier.get(kind, 0) + int(tier_mask.sum())
        submit_mask = (types == "SUBMIT") & is_new
        for tier in np.unique(tiers[submit_mask]):
            count = int((submit_mask & (tiers == tier)).sum())
            new_tasks[str(tier)] = new_tasks.get(str(tier), 0) + count
        iu = trace.instance_usage
        u_tiers = iu.column("tier").values
        durations = iu.column("duration").values
        for tier in np.unique(u_tiers):
            hours = float(durations[u_tiers == tier].sum()) / HOUR_SECONDS
            task_hours[str(tier)] = task_hours.get(str(tier), 0.0) + hours

    out: Dict[str, Dict[str, float]] = {}
    for tier in sorted(set(event_counts) | set(new_tasks) | set(task_hours)):
        hours = task_hours.get(tier, 0.0)
        counts = event_counts.get(tier, {})
        row: Dict[str, float] = {
            "task_hours": hours,
            "new_tasks": float(new_tasks.get(tier, 0)),
        }
        for kind in TERMINAL_TYPES:
            count = counts.get(kind, 0)
            row[f"{kind.lower()}_events"] = float(count)
            row[f"{kind.lower()}_per_task_hour"] = (
                count / hours if hours > 0 else 0.0)
        out[tier] = row
    return out


@obs.traced("analysis.resubmission_intervals")
def resubmission_intervals(results: Sequence[CellResult]) -> np.ndarray:
    """Every resubmission's backoff delay (seconds), pooled across cells."""
    delays = [event.delay
              for result in results
              for event in result.events.resubmit_events]
    return np.asarray(delays, dtype=float)


def resubmission_interval_ccdf(results: Sequence[CellResult]) -> Ccdf:
    """CCDF of failure-to-resubmission delays (the Deep Dive figure)."""
    intervals = resubmission_intervals(results)
    if intervals.size == 0:
        raise ValueError("no resubmissions in these results "
                         "(faults off, or no resubmit policy)")
    return empirical_ccdf(intervals)


@obs.traced("analysis.resubmission_report")
def resubmission_report(results: Sequence[CellResult]) -> dict:
    """Chain structure of resubmissions: attempts, depths, concentration."""
    attempts: Dict[int, int] = {}
    chain_depth: Dict[int, int] = {}
    per_user: Dict[str, int] = {}
    per_tier: Dict[str, int] = {}
    for result in results:
        for event in result.events.resubmit_events:
            attempts[event.attempt] = attempts.get(event.attempt, 0) + 1
            root = event.root_collection_id
            chain_depth[root] = max(chain_depth.get(root, 0), event.attempt)
            per_user[event.user] = per_user.get(event.user, 0) + 1
            per_tier[event.tier] = per_tier.get(event.tier, 0) + 1
    total = sum(attempts.values())
    top_users = sorted(per_user.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
    return {
        "resubmissions": total,
        "chains": len(chain_depth),
        "max_chain_depth": max(chain_depth.values(), default=0),
        "mean_chain_depth": (sum(chain_depth.values()) / len(chain_depth)
                             if chain_depth else 0.0),
        "attempts_histogram": {str(k): attempts[k] for k in sorted(attempts)},
        "by_tier": {tier: per_tier[tier] for tier in sorted(per_tier)},
        "top_users": [{"user": user, "resubmissions": count}
                      for user, count in top_users],
    }


@obs.traced("analysis.archetype_usage_shares")
def archetype_usage_shares(traces: Sequence[TraceDataset]
                           ) -> Dict[str, float]:
    """NCU-hours share per user archetype (``base`` = calibrated workload).

    Shares sum to 1 over all users with nonzero usage; attribution is
    purely by user-name prefix, so it works on any trace — including
    re-loaded ones — with no simulator state.
    """
    by_archetype: Dict[str, float] = {}
    for user, hours in usage_per_user(traces).items():
        kind = archetype_of_user(user) or "base"
        by_archetype[kind] = by_archetype.get(kind, 0.0) + hours
    total = sum(by_archetype.values())
    if total <= 0:
        return {}
    return {kind: by_archetype[kind] / total
            for kind in sorted(by_archetype)}


@obs.traced("analysis.machine_availability")
def machine_availability(traces: Sequence[TraceDataset],
                         horizon: float) -> Dict[str, float]:
    """Fleet availability under the machine-event log.

    Pairs each machine's REMOVE with its next ADD to integrate downtime
    (an unmatched REMOVE counts to the horizon), pooled across cells.
    """
    total_machine_seconds = 0.0
    down_seconds = 0.0
    outages = 0
    for trace in traces:
        n_machines = len(trace.machine_attributes)
        total_machine_seconds += n_machines * horizon
        me = trace.machine_events
        times = me.column("time").values
        machine_ids = me.column("machine_id").values
        types = me.column("type").values
        down_since: Dict[int, float] = {}
        order = np.lexsort((types, times))
        for i in order:
            machine, kind = int(machine_ids[i]), str(types[i])
            if kind == "REMOVE":
                down_since.setdefault(machine, float(times[i]))
            elif kind == "ADD" and machine in down_since:
                down_seconds += float(times[i]) - down_since.pop(machine)
                outages += 1
        for start in down_since.values():
            down_seconds += horizon - start
            outages += 1
    return {
        "outages": float(outages),
        "down_machine_hours": down_seconds / HOUR_SECONDS,
        "availability": (1.0 - down_seconds / total_machine_seconds
                         if total_machine_seconds > 0 else 1.0),
    }
