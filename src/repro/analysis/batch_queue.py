"""Batch-queue behavior (paper sections 3 and 6.3's queued-state note).

Figure 10 deliberately measures scheduling delay from the *ready* state,
excluding the batch scheduler's deliberate queueing; this module
measures what was excluded: how long best-effort-batch jobs wait in the
QUEUED state, how many jobs queue at all, and the queue depth over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.stats.ccdf import Ccdf, empirical_ccdf
from repro.trace.dataset import TraceDataset
from repro.util.timeutil import HOUR_SECONDS


def queue_waits(trace: TraceDataset) -> np.ndarray:
    """QUEUE -> ENABLE wait per batch-queued collection, seconds.

    Collections still queued at the horizon are censored (excluded),
    like every duration statistic over a finite trace window.
    """
    ce = trace.collection_events
    queued: Dict[int, float] = {}
    waits = []
    ids = ce.column("collection_id").values
    types = ce.column("type").values
    times = ce.column("time").values
    for i in range(len(ce)):
        cid = int(ids[i])
        if types[i] == "QUEUE":
            queued[cid] = float(times[i])
        elif types[i] == "ENABLE" and cid in queued:
            waits.append(float(times[i]) - queued.pop(cid))
    return np.asarray(waits)


def queue_wait_ccdf(traces: Sequence[TraceDataset]) -> Ccdf:
    """Pooled CCDF of batch-queue waits across cells."""
    pooled = [queue_waits(t) for t in traces]
    pooled = [w for w in pooled if w.size]
    if not pooled:
        raise ValueError("no batch-queued collections in these traces")
    return empirical_ccdf(np.concatenate(pooled))


def queue_depth_series(trace: TraceDataset) -> np.ndarray:
    """Number of collections sitting in the queue, sampled hourly."""
    ce = trace.collection_events
    n_hours = int(np.ceil(trace.horizon / HOUR_SECONDS))
    delta = np.zeros(n_hours + 1)
    ids = ce.column("collection_id").values
    types = ce.column("type").values
    times = ce.column("time").values
    enter: Dict[int, float] = {}
    for i in range(len(ce)):
        cid = int(ids[i])
        if types[i] == "QUEUE":
            enter[cid] = float(times[i])
        elif cid in enter and types[i] in ("ENABLE", "KILL", "FINISH",
                                           "FAIL", "EVICT"):
            start_h = int(enter.pop(cid) / HOUR_SECONDS)
            end_h = min(int(times[i] / HOUR_SECONDS), n_hours - 1)
            delta[start_h] += 1
            delta[end_h + 1] -= 1
    # Still-queued collections occupy the queue to the horizon.
    for t in enter.values():
        delta[int(t / HOUR_SECONDS)] += 1
    return np.cumsum(delta[:n_hours])


@dataclass(frozen=True)
class BatchQueueReport:
    """Headline batch-queue statistics for a set of cells."""

    queued_fraction_of_beb_jobs: float
    median_wait_seconds: float
    p90_wait_seconds: float
    max_queue_depth: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "beb jobs that waited in the queue": self.queued_fraction_of_beb_jobs,
            "median queue wait (s)": self.median_wait_seconds,
            "90%ile queue wait (s)": self.p90_wait_seconds,
            "max queue depth (collections)": self.max_queue_depth,
        }


def batch_queue_report(traces: Sequence[TraceDataset]) -> BatchQueueReport:
    n_beb = 0
    n_queued = 0
    waits = []
    depth = 0.0
    for trace in traces:
        ce = trace.collection_events
        types = ce.column("type").values
        tiers = ce.column("tier").values
        kinds = ce.column("collection_type").values
        n_beb += int(((types == "SUBMIT") & (tiers == "beb")
                      & (kinds == "job")).sum())
        n_queued += int((types == "QUEUE").sum())
        w = queue_waits(trace)
        if w.size:
            waits.append(w)
        series = queue_depth_series(trace)
        if series.size:
            depth = max(depth, float(series.max()))
    pooled = np.concatenate(waits) if waits else np.zeros(1)
    return BatchQueueReport(
        queued_fraction_of_beb_jobs=n_queued / n_beb if n_beb else 0.0,
        median_wait_seconds=float(np.median(pooled)),
        p90_wait_seconds=float(np.percentile(pooled, 90)),
        max_queue_depth=depth,
    )
