"""Trace comparison summary (paper Table 1)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Union

from repro import obs
from repro.analysis.machines import fleet_summary
from repro.trace.dataset import TraceDataset
from repro.util.timeutil import DAY_SECONDS

Value = Union[int, float, str, bool]


def _priority_range(traces: Sequence[TraceDataset]) -> str:
    lo, hi = None, None
    for trace in traces:
        priorities = trace.collection_events.column("priority").values
        if len(priorities) == 0:
            continue
        p_lo, p_hi = int(priorities.min()), int(priorities.max())
        lo = p_lo if lo is None else min(lo, p_lo)
        hi = p_hi if hi is None else max(hi, p_hi)
    if lo is None:
        return "n/a"
    return f"{lo}-{hi}"


def era_summary(traces: Sequence[TraceDataset]) -> Dict[str, Value]:
    """One column of Table 1 for a set of same-era cells."""
    if not traces:
        raise ValueError("era_summary requires at least one trace")
    eras = {t.era for t in traces}
    if len(eras) != 1:
        raise ValueError(f"mixed eras: {sorted(eras)}")
    era = traces[0].era
    fleet = fleet_summary(traces)
    has_allocs = any(
        "alloc_set" in set(t.collection_events.column("collection_type").values.tolist())
        for t in traces
    )
    has_parents = any(
        len(t.collection_events) > 0
        and (t.collection_events.column("parent_collection_id").values >= 0).any()
        for t in traces
    )
    has_queueing = any(
        "QUEUE" in set(t.collection_events.column("type").values.tolist())
        for t in traces
    )
    has_autoscaling = any(
        len(set(t.collection_events.column("vertical_scaling").values.tolist())
            - {"none"}) > 0
        for t in traces
    )
    return {
        "era": era,
        "duration_days": traces[0].horizon / DAY_SECONDS,
        "cells": len(traces),
        "machines": int(fleet["machines"]),
        "machines_per_cell": round(fleet["machines_per_cell"], 1),
        "hardware_platforms": int(fleet["hardware_platforms"]),
        "machine_shapes": int(fleet["machine_shapes"]),
        "priority_values": _priority_range(traces),
        "alloc_sets": has_allocs,
        "job_dependencies": has_parents,
        "batch_queueing": has_queueing,
        "vertical_scaling": has_autoscaling,
    }


@obs.traced("analysis.table1")
def table1(traces_2011: Sequence[TraceDataset],
           traces_2019: Sequence[TraceDataset]) -> List[Dict[str, Value]]:
    """Both Table 1 columns."""
    return [era_summary(traces_2011), era_summary(traces_2019)]
