"""Render every paper figure/table as text from a pair of trace sets.

``full_report`` is what the quickstart example and the benchmark harness
print; each section mirrors one paper artifact so paper-vs-measured
comparison (EXPERIMENTS.md) is a side-by-side read.
"""

from __future__ import annotations

import io
from typing import Dict, Sequence

import numpy as np

from repro import obs
from repro.analysis import (
    allocation,
    allocsets,
    autoscaling,
    batch_queue,
    constraints,
    consumption,
    diurnal,
    correlation,
    machine_util,
    machines,
    sched_delay,
    submission,
    summary,
    tasks_per_job,
    terminations,
    transitions,
    users,
    utilization,
)
from repro.analysis.common import TIER_ORDER
from repro.trace.dataset import TraceDataset


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _section(out: io.StringIO, title: str) -> None:
    out.write(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n")


def render_table1(out: io.StringIO, traces_2011, traces_2019) -> None:
    _section(out, "Table 1: trace comparison")
    columns = summary.table1(traces_2011, traces_2019)
    keys = list(columns[0].keys())
    for key in keys:
        out.write(f"{key:22s} {_fmt(columns[0][key]):>16s} {_fmt(columns[1][key]):>16s}\n")


def render_fig1(out: io.StringIO, traces_2019) -> None:
    _section(out, "Figure 1: machine shapes (top 12 by frequency)")
    for p in machines.machine_shapes(traces_2019)[:12]:
        out.write(f"  cpu={p.cpu:.2f} mem={p.mem:.2f}  machines={p.count}\n")


def _render_tier_series(out: io.StringIO, series: Dict[str, np.ndarray],
                        step_hours: int = 6) -> None:
    n = max((len(v) for v in series.values()), default=0)
    out.write("  hour   " + "  ".join(f"{t:>6s}" for t in TIER_ORDER) + "   total\n")
    for h in range(0, n, step_hours):
        values = [float(series.get(t, np.zeros(n))[h]) for t in TIER_ORDER]
        out.write(f"  {h:4d}   " + "  ".join(f"{v:6.3f}" for v in values)
                  + f"   {sum(values):5.3f}\n")


def render_fig2(out: io.StringIO, traces_2011, traces_2019) -> None:
    for resource in ("cpu", "mem"):
        _section(out, f"Figure 2: hourly {resource} usage by tier (fraction of capacity)")
        out.write("2011:\n")
        _render_tier_series(out, utilization.usage_timeseries(traces_2011[0], resource))
        out.write("2019 (mean of cells):\n")
        _render_tier_series(out, utilization.mean_usage_timeseries(traces_2019, resource))


def render_fig3(out: io.StringIO, traces_2011, traces_2019) -> None:
    _section(out, "Figure 3: average usage by tier per cell")
    for resource in ("cpu", "mem"):
        out.write(f"[{resource}]\n")
        cells = {"2011": utilization.usage_by_cell(traces_2011, resource)["2011"]}
        cells.update(utilization.usage_by_cell(traces_2019, resource))
        for cell, fractions in cells.items():
            parts = "  ".join(f"{t}={fractions.get(t, 0.0):.3f}" for t in TIER_ORDER)
            out.write(f"  cell {cell:>4s}: {parts}  total={sum(fractions.values()):.3f}\n")


def render_fig4(out: io.StringIO, traces_2011, traces_2019) -> None:
    for resource in ("cpu", "mem"):
        _section(out, f"Figure 4: hourly {resource} allocation by tier (fraction of capacity)")
        out.write("2011:\n")
        _render_tier_series(out, allocation.allocation_timeseries(traces_2011[0], resource))
        out.write("2019 (mean of cells):\n")
        _render_tier_series(out, allocation.mean_allocation_timeseries(traces_2019, resource))


def render_fig5(out: io.StringIO, traces_2011, traces_2019) -> None:
    _section(out, "Figure 5: average allocation by tier per cell")
    for resource in ("cpu", "mem"):
        out.write(f"[{resource}]\n")
        cells = {"2011": allocation.allocation_by_cell(traces_2011, resource)["2011"]}
        cells.update(allocation.allocation_by_cell(traces_2019, resource))
        for cell, fractions in cells.items():
            parts = "  ".join(f"{t}={fractions.get(t, 0.0):.3f}" for t in TIER_ORDER)
            out.write(f"  cell {cell:>4s}: {parts}  total={sum(fractions.values()):.3f}\n")


def render_fig6(out: io.StringIO, traces_2011, traces_2019) -> None:
    _section(out, "Figure 6: machine utilization CCDF snapshot (same local time)")
    grid = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]
    for resource in ("cpu", "mem"):
        out.write(f"[{resource}]  Pr(util > x) at x = {grid}\n")
        for trace in list(traces_2019) + list(traces_2011):
            ccdf = machine_util.machine_utilization_ccdf(trace, resource=resource)
            values = "  ".join(f"{ccdf.at(x):5.2f}" for x in grid)
            out.write(f"  {trace.cell:>4s}: {values}\n")


def render_fig7(out: io.StringIO, traces_2019) -> None:
    _section(out, "Figure 7: state transitions (cell g when present)")
    by_name = {t.cell: t for t in traces_2019}
    trace = by_name.get("g", traces_2019[0])
    out.write(f"cell {trace.cell}: (from -> to, collections, instances)\n")
    for src, dst, n_coll, n_inst in transitions.transition_table(trace):
        out.write(f"  {src:>14s} -> {dst:<14s}  coll={n_coll:8d}  inst={n_inst:9d}\n")


def render_fig8(out: io.StringIO, traces_2011, traces_2019) -> None:
    _section(out, "Figure 8: job submission rate (jobs/hour)")
    s11 = submission.summarize_submissions(traces_2011[0])
    out.write(f"  2011:   mean={s11.mean_jobs_per_hour:.1f} median={s11.median_jobs_per_hour:.1f}\n")
    for trace in traces_2019:
        s = submission.summarize_submissions(trace)
        out.write(f"  2019 {trace.cell}: mean={s.mean_jobs_per_hour:.1f} "
                  f"median={s.median_jobs_per_hour:.1f}\n")
    growth = submission.growth_factors(traces_2011[0], traces_2019)
    out.write(f"  growth: mean={growth['mean_job_rate_growth']:.2f}x "
              f"median={growth['median_job_rate_growth']:.2f}x  (paper: 3.5x / 3.7x)\n")


def render_fig9(out: io.StringIO, traces_2011, traces_2019) -> None:
    _section(out, "Figure 9: task submission rate (tasks/hour), new vs all")
    growth = submission.growth_factors(traces_2011[0], traces_2019)
    s11 = submission.summarize_submissions(traces_2011[0])
    out.write(f"  2011: median new={s11.median_new_tasks_per_hour:.0f} "
              f"all={s11.median_all_tasks_per_hour:.0f} "
              f"resubmit:new={s11.resubmit_to_new_ratio:.2f} (paper 0.66)\n")
    for trace in traces_2019:
        s = submission.summarize_submissions(trace)
        out.write(f"  2019 {trace.cell}: median new={s.median_new_tasks_per_hour:.0f} "
                  f"all={s.median_all_tasks_per_hour:.0f} "
                  f"resubmit:new={s.resubmit_to_new_ratio:.2f}\n")
    out.write(f"  all-task median growth: "
              f"{growth['median_all_task_rate_growth']:.2f}x (paper ~3.6x); "
              f"2019 resubmit:new mean {growth['resubmit_ratio_2019']:.2f} (paper 2.26)\n")


def render_fig10(out: io.StringIO, traces_2011, traces_2019) -> None:
    _section(out, "Figure 10: job scheduling delay CCDF")
    grid = [1, 2, 5, 10, 20, 30, 60]
    out.write(f"  Pr(delay > x) at x seconds = {grid}\n")
    for label, traces in (("2011", traces_2011), ("2019", traces_2019)):
        pooled = sched_delay.delay_ccdf_by_tier(traces)
        for tier in TIER_ORDER:
            if tier not in pooled:
                continue
            values = "  ".join(f"{pooled[tier].at(x):5.2f}" for x in grid)
            out.write(f"  {label} {tier:>5s}: {values}\n")
    med11 = sched_delay.median_delay(traces_2011[0])
    med19 = np.mean([sched_delay.median_delay(t) for t in traces_2019])
    out.write(f"  medians: 2011={med11:.1f}s  2019={med19:.1f}s "
              "(paper: 2019 median decreased)\n")


def render_fig11(out: io.StringIO, traces_2019) -> None:
    _section(out, "Figure 11: tasks per job by tier")
    pct = tasks_per_job.width_percentiles(traces_2019, (80, 95))
    for tier in TIER_ORDER:
        if tier not in pct:
            continue
        out.write(f"  {tier:>5s}: 80%ile={pct[tier][80]:.0f}  95%ile={pct[tier][95]:.0f}\n")
    out.write("  (paper 95%iles: beb=498 mid=67 free=21 prod=3)\n")


def render_table2(out: io.StringIO, traces_2011, traces_2019) -> None:
    _section(out, "Table 2: per-job resource-hour distribution")
    reports = consumption.table2(traces_2011, traces_2019)
    # Union of keys across reports (a scaled-down run may lack a Pareto
    # fit for one era), preserving first-seen order.
    keys: list = []
    for rep in reports.values():
        for key in rep.as_dict():
            if key not in keys:
                keys.append(key)
    out.write(f"{'measure':28s}" + "".join(f"{n:>14s}" for n in reports) + "\n")
    for key in keys:
        row = f"{key:28s}"
        for rep in reports.values():
            value = rep.as_dict().get(key)
            row += f"{_fmt(value) if value is not None else '-':>14s}"
        out.write(row + "\n")


def render_fig12(out: io.StringIO, traces_2011, traces_2019) -> None:
    _section(out, "Figure 12: CCDF of per-job resource-hours (log-log)")
    grid = [1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100]
    out.write(f"  Pr(usage > x) at x = {grid}\n")
    for label, traces in (("2011", traces_2011), ("2019", traces_2019)):
        for resource in ("cpu", "mem"):
            ccdf = consumption.usage_ccdf(traces, resource)
            values = "  ".join(f"{ccdf.at(x):8.2e}" for x in grid)
            out.write(f"  {label} {resource}: {values}\n")


def render_fig13(out: io.StringIO, traces_2019) -> None:
    _section(out, "Figure 13: CPU vs memory consumption correlation")
    rep = correlation.cpu_mem_correlation(traces_2019)
    out.write(f"  jobs={rep.n_jobs}  buckets={len(rep.bucket_centers)}  "
              f"Pearson r={rep.pearson_r:.3f} (paper 0.97)\n")
    for c, m in list(zip(rep.bucket_centers, rep.median_nmu_hours))[:10]:
        out.write(f"    {c:8.1f} NCU-h -> median {m:8.2f} NMU-h\n")


def render_fig14(out: io.StringIO, traces_2019) -> None:
    _section(out, "Figure 14: peak NCU slack by autoscaling mode")
    ccdfs = autoscaling.slack_ccdf_by_mode(traces_2019)
    grid = [10, 20, 30, 40, 50, 60, 70, 80, 90]
    out.write(f"  Pr(slack% > x) at x = {grid}\n")
    for mode in autoscaling.MODES:
        if mode not in ccdfs:
            continue
        values = "  ".join(f"{ccdfs[mode].at(x):5.2f}" for x in grid)
        out.write(f"  {mode:>11s}: {values}\n")
    slack = autoscaling.summarize_slack(traces_2019)
    out.write(f"  median slack: {slack.median_slack}\n")


def render_sec51(out: io.StringIO, traces_2019) -> None:
    _section(out, "Section 5.1: alloc sets")
    rep = allocsets.alloc_set_report(traces_2019)
    for key, value in rep.as_dict().items():
        out.write(f"  {key:38s} {value:.3f}\n")


def render_sec52(out: io.StringIO, traces_2019) -> None:
    _section(out, "Section 5.2: terminations")
    rep = terminations.termination_report(traces_2019)
    for key, value in rep.as_dict().items():
        out.write(f"  {key:42s} {value:.4g}\n")


def render_extras(out: io.StringIO, traces_2011, traces_2019) -> None:
    """Sections beyond the paper's figures: batch-queue waits, placement
    constraints, user concentration, diurnal cycles."""
    _section(out, "Extra: batch-queue waits (excluded from figure 10)")
    try:
        rep = batch_queue.batch_queue_report(traces_2019)
        for key, value in rep.as_dict().items():
            out.write(f"  {key:40s} {value:.4g}\n")
    except ValueError as exc:
        out.write(f"  (skipped: {exc})\n")

    _section(out, "Extra: placement constraints (new 2019 trace feature)")
    rep = constraints.constraint_report(traces_2019)
    for key, value in rep.as_dict().items():
        out.write(f"  {key:40s} {value:.4g}\n")

    _section(out, "Extra: per-user concentration")
    try:
        rep = users.user_report(traces_2019)
        for key, value in rep.as_dict().items():
            out.write(f"  {key:40s} {value:.4g}\n")
    except ValueError as exc:
        out.write(f"  (skipped: {exc})\n")

    _section(out, "Extra: diurnal cycle (section 4.1's timezone note)")
    snap = diurnal.load_at_utc_hour(traces_2019, utc_hour=7.0)
    out.write("  load at 07:00 UTC (midnight PDT):\n")
    for cell, load in snap.load_by_cell.items():
        local = snap.local_hour_by_cell[cell]
        out.write(f"    cell {cell:>4s}: load={load:.3f} (local {local:4.1f}h)\n")


@obs.traced("analysis.full_report")
def full_report(traces_2011: Sequence[TraceDataset],
                traces_2019: Sequence[TraceDataset]) -> str:
    """Every figure and table of the paper, as one text document."""
    out = io.StringIO()
    render_table1(out, traces_2011, traces_2019)
    render_fig1(out, traces_2019)
    render_fig2(out, traces_2011, traces_2019)
    render_fig3(out, traces_2011, traces_2019)
    render_fig4(out, traces_2011, traces_2019)
    render_fig5(out, traces_2011, traces_2019)
    render_fig6(out, traces_2011, traces_2019)
    render_fig7(out, traces_2019)
    render_fig8(out, traces_2011, traces_2019)
    render_fig9(out, traces_2011, traces_2019)
    render_fig10(out, traces_2011, traces_2019)
    render_fig11(out, traces_2019)
    render_table2(out, traces_2011, traces_2019)
    render_fig12(out, traces_2011, traces_2019)
    render_fig13(out, traces_2019)
    render_fig14(out, traces_2019)
    render_sec51(out, traces_2019)
    render_sec52(out, traces_2019)
    render_extras(out, traces_2011, traces_2019)
    return out.getvalue()
