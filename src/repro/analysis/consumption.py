"""Per-job resource consumption integrals (paper section 7).

The paper's deepest result: NCU-hours and NMU-hours per job follow
Pareto(alpha < 1) distributions with squared coefficients of variation
in the tens of thousands; the top 1% of jobs ("hogs") carry over 99% of
the load.  This module computes Table 2 and the figure 12 CCDFs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence


from repro import obs
from repro.analysis.common import job_usage_integrals
from repro.stats.ccdf import Ccdf, empirical_ccdf
from repro.stats.moments import DistributionSummary, summarize
from repro.stats.pareto import ParetoFit, fit_pareto_ccdf
from repro.table import Table, concat
from repro.trace.dataset import TraceDataset


def pooled_job_integrals(traces: Sequence[TraceDataset]) -> Table:
    """Per-job integrals pooled across cells."""
    tables = [job_usage_integrals(t) for t in traces]
    return concat([t for t in tables if len(t) > 0])


@dataclass(frozen=True)
class ConsumptionReport:
    """One Table 2 column (for one era and one resource)."""

    resource: str
    summary: DistributionSummary
    pareto: Optional[ParetoFit]

    def as_dict(self) -> Dict[str, float]:
        out = self.summary.as_dict()
        if self.pareto is not None:
            out["Pareto(alpha)"] = self.pareto.alpha
            out["R^2"] = self.pareto.r_squared
        return out


def consumption_report(traces: Sequence[TraceDataset], resource: str = "cpu",
                       pareto_x_min: float = 1.0,
                       pareto_upper_quantile: float = 0.9999) -> ConsumptionReport:
    """Table 2's statistics for one era.

    The Pareto fit follows the paper's protocol: jobs above 1
    resource-hour, excluding the extreme top 0.01% outliers.  The fit is
    omitted (None) when the tail has too few samples for a meaningful
    regression, which can happen in aggressively scaled-down runs.
    """
    if resource not in ("cpu", "mem"):
        raise ValueError(f"resource must be 'cpu' or 'mem', got {resource!r}")
    table = pooled_job_integrals(traces)
    column = "ncu_hours" if resource == "cpu" else "nmu_hours"
    values = table.column(column).values
    values = values[values > 0]
    if values.size < 2:
        raise ValueError("not enough jobs with nonzero usage")
    fit: Optional[ParetoFit]
    try:
        fit = fit_pareto_ccdf(values, x_min=pareto_x_min,
                              upper_quantile=pareto_upper_quantile)
    except ValueError:
        fit = None
    return ConsumptionReport(
        resource=resource,
        summary=summarize(values),
        pareto=fit,
    )


@obs.traced("analysis.fig12.usage_ccdf")
def usage_ccdf(traces: Sequence[TraceDataset], resource: str = "cpu") -> Ccdf:
    """Figure 12: CCDF of per-job resource-hours (plot on log-log axes)."""
    table = pooled_job_integrals(traces)
    column = "ncu_hours" if resource == "cpu" else "nmu_hours"
    values = table.column(column).values
    values = values[values > 0]
    return empirical_ccdf(values)


def table2(traces_2011: Sequence[TraceDataset],
           traces_2019: Sequence[TraceDataset]) -> Dict[str, ConsumptionReport]:
    """All four Table 2 columns keyed '<era> <resource>'."""
    return {
        "2011 cpu": consumption_report(traces_2011, "cpu"),
        "2019 cpu": consumption_report(traces_2019, "cpu"),
        "2011 mem": consumption_report(traces_2011, "mem"),
        "2019 mem": consumption_report(traces_2019, "mem"),
    }
