"""Collection/instance state-transition counts (paper figure 7).

Figure 7 annotates the lifecycle state machine with how often each
transition was exercised in cell g, noting that "common paths are many
orders of magnitude more frequently exercised than the rarer ones".  We
rebuild the diagram by replaying each instance's (and collection's)
event sequence and counting state changes.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Tuple

from repro.trace.dataset import TraceDataset

#: State entered after each event type.
_EVENT_TO_STATE = {
    "SUBMIT": "PENDING",
    "QUEUE": "QUEUED",
    "ENABLE": "PENDING",
    "SCHEDULE": "RUNNING",
    "EVICT": "DEAD",    # instances are resubmitted afterwards
    "FAIL": "DEAD",
    "FINISH": "DEAD",
    "KILL": "DEAD",
    "UPDATE_RUNNING": "RUNNING",
}

Transition = Tuple[str, str]


def _count_stream(ids: List[Tuple[int, ...]], events: List[str],
                  times: List[float]) -> Counter:
    """Count state transitions within each entity's time-ordered events."""
    per_entity: Dict[Tuple[int, ...], List[Tuple[float, int, str]]] = defaultdict(list)
    for seq, (key, event, t) in enumerate(zip(ids, events, times)):
        per_entity[key].append((t, seq, event))
    counts: Counter = Counter()
    for entries in per_entity.values():
        entries.sort()
        state = "NONE"
        for _, __, event in entries:
            nxt = _EVENT_TO_STATE.get(event)
            if nxt is None:
                continue
            # Terminal events name the cause, not just DEAD, so figure 7's
            # per-cause arrows are reconstructible.  An evicted instance's
            # follow-up SUBMIT produces the DEAD(evict) -> PENDING
            # resubmission arc naturally.
            label = nxt if nxt != "DEAD" else f"DEAD({event.lower()})"
            if label != state:
                counts[(state, label)] += 1
            state = label
    return counts


def collection_transitions(trace: TraceDataset) -> Counter:
    """Transition counts over collection lifecycles."""
    ce = trace.collection_events
    ids = [(int(i),) for i in ce.column("collection_id").values]
    return _count_stream(ids, list(ce.column("type").values),
                         list(ce.column("time").values))


def instance_transitions(trace: TraceDataset) -> Counter:
    """Transition counts over instance lifecycles (figure 7's bulk)."""
    ie = trace.instance_events
    ids = list(zip(ie.column("collection_id").values.tolist(),
                   ie.column("instance_index").values.tolist()))
    return _count_stream([tuple(i) for i in ids],
                         list(ie.column("type").values),
                         list(ie.column("time").values))


def transition_table(trace: TraceDataset) -> List[Tuple[str, str, int, int]]:
    """(from, to, collection_count, instance_count) rows, most common first."""
    coll = collection_transitions(trace)
    inst = instance_transitions(trace)
    keys = set(coll) | set(inst)
    rows = [(src, dst, coll.get((src, dst), 0), inst.get((src, dst), 0))
            for src, dst in keys]
    # Tie-break on the labels: ``keys`` is a set, so count-only sorting
    # would leave equal-total rows in hash-randomized order across runs.
    rows.sort(key=lambda r: (-(r[2] + r[3]), r[0], r[1]))
    return [r for r in rows if r[2] + r[3] > 0]
