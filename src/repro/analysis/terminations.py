"""Termination analysis (paper section 5.2).

The paper's correction to the literature: most 2011-trace "failures"
were user-triggered kills, much of it parent-exit cascades.  Key
numbers: 87% of jobs *with* a parent end in a kill versus 41% without;
only 3.2% of collections ever see an instance eviction, 96.6% of those
in non-production tiers; <0.2% of production collections are evicted
and 52% of those only once.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Sequence

from repro.trace.dataset import TraceDataset

TERMINAL = ("FINISH", "EVICT", "KILL", "FAIL")


@dataclass(frozen=True)
class TerminationReport:
    """Section 5.2's statistics."""

    end_reason_counts: Dict[str, int]
    kill_rate_with_parent: float
    kill_rate_without_parent: float
    collections_with_evictions_fraction: float
    evicted_collections_nonprod_fraction: float
    prod_collections_evicted_fraction: float
    prod_evicted_single_eviction_fraction: float

    def as_dict(self) -> Dict[str, float]:
        out = {f"jobs ending in {k.lower()}": float(v)
               for k, v in sorted(self.end_reason_counts.items())}
        out.update({
            "kill rate (jobs with parent)": self.kill_rate_with_parent,
            "kill rate (jobs without parent)": self.kill_rate_without_parent,
            "collections with >=1 instance eviction": self.collections_with_evictions_fraction,
            "evicted collections in non-prod tiers": self.evicted_collections_nonprod_fraction,
            "prod collections with any eviction": self.prod_collections_evicted_fraction,
            "of those, exactly one eviction": self.prod_evicted_single_eviction_fraction,
        })
        return out


def termination_report(traces: Sequence[TraceDataset]) -> TerminationReport:
    """Compute section 5.2's statistics pooled across cells."""
    end_counts: Counter = Counter()
    killed_with_parent = total_with_parent = 0
    killed_without_parent = total_without_parent = 0
    n_collections = 0
    eviction_counts: Dict[int, int] = defaultdict(int)
    collection_tier: Dict[int, str] = {}

    for trace in traces:
        ce = trace.collection_events
        ids = ce.column("collection_id").values
        types = ce.column("type").values
        parents = ce.column("parent_collection_id").values
        tiers = ce.column("tier").values
        has_parent: Dict[int, bool] = {}
        for i in range(len(ce)):
            cid = int(ids[i])
            if types[i] == "SUBMIT":
                if cid not in has_parent:
                    n_collections += 1
                has_parent[cid] = parents[i] >= 0
                collection_tier[cid] = tiers[i]
            elif types[i] in TERMINAL:
                end_counts[types[i]] += 1
                if has_parent.get(cid, False):
                    total_with_parent += 1
                    if types[i] == "KILL":
                        killed_with_parent += 1
                else:
                    total_without_parent += 1
                    if types[i] == "KILL":
                        killed_without_parent += 1

        ie = trace.instance_events
        i_ids = ie.column("collection_id").values
        i_types = ie.column("type").values
        for i in range(len(ie)):
            if i_types[i] == "EVICT":
                eviction_counts[int(i_ids[i])] += 1

    evicted = set(eviction_counts)
    evicted_nonprod = sum(1 for cid in evicted
                          if collection_tier.get(cid) not in ("prod", "monitoring"))
    prod_ids = {cid for cid, tier in collection_tier.items()
                if tier in ("prod", "monitoring")}
    prod_evicted = evicted & prod_ids
    prod_single = sum(1 for cid in prod_evicted if eviction_counts[cid] == 1)

    def ratio(a: float, b: float) -> float:
        return a / b if b > 0 else 0.0

    return TerminationReport(
        end_reason_counts=dict(end_counts),
        kill_rate_with_parent=ratio(killed_with_parent, total_with_parent),
        kill_rate_without_parent=ratio(killed_without_parent, total_without_parent),
        collections_with_evictions_fraction=ratio(len(evicted), n_collections),
        evicted_collections_nonprod_fraction=ratio(evicted_nonprod, len(evicted)),
        prod_collections_evicted_fraction=ratio(len(prod_evicted), len(prod_ids)),
        prod_evicted_single_eviction_fraction=ratio(prod_single, len(prod_evicted)),
    )
