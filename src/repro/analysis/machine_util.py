"""Machine-level utilization CCDFs (paper figure 6, section 4.1).

The paper snapshots every machine's CPU and memory utilization (usage ÷
machine size) at the *same local time* on day 15 of the trace — 1pm
local, noon for the Singapore cell — and plots the per-cell CCDFs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro import obs
from repro.stats.ccdf import Ccdf, empirical_ccdf
from repro.trace.dataset import TraceDataset
from repro.util.timeutil import DAY_SECONDS, HOUR_SECONDS


def snapshot_window_start(trace: TraceDataset, day: int = 15,
                          local_hour: float = 13.0) -> float:
    """Trace time of the sampling window at ``local_hour`` on ``day``.

    The trace origin is midnight UTC; the cell's ``utc_offset_hours``
    shifts the wall clock.  If the requested day exceeds the (scaled-
    down) horizon, the midpoint day is used instead so scaled runs work
    out of the box.
    """
    horizon_days = trace.horizon / DAY_SECONDS
    if day >= horizon_days:
        day = max(0, int(horizon_days / 2))
    t = day * DAY_SECONDS + (local_hour - trace.utc_offset_hours) * HOUR_SECONDS
    t = t % max(trace.horizon, trace.sample_period)
    return float(np.floor(t / trace.sample_period) * trace.sample_period)


def machine_utilization_at(trace: TraceDataset, window_start: float,
                           resource: str = "cpu") -> Dict[int, float]:
    """Per-machine utilization (usage / machine size) in one sample window.

    Machines with no usage rows in the window are reported at 0.0 —
    an idle machine is a data point, not a gap.
    """
    column = "avg_cpu" if resource == "cpu" else "avg_mem"
    cap_column = "cpu_capacity" if resource == "cpu" else "mem_capacity"
    attrs = trace.machine_attributes
    capacity = dict(zip(attrs.column("machine_id").values.tolist(),
                        attrs.column(cap_column).values.tolist()))
    out = {int(m): 0.0 for m in capacity}
    iu = trace.instance_usage
    if len(iu) == 0:
        return out
    starts = iu.column("start_time").values
    mask = np.abs(starts - window_start) < 1e-6
    machines = iu.column("machine_id").values[mask]
    usage = iu.column(column).values[mask]
    for m, u in zip(machines, usage):
        m = int(m)
        if m in out:
            out[m] += float(u)
    for m in out:
        cap = capacity.get(m, 0.0)
        out[m] = out[m] / cap if cap > 0 else 0.0
    return out


@obs.traced("analysis.fig6.machine_utilization_ccdf")
def machine_utilization_ccdf(trace: TraceDataset, resource: str = "cpu",
                             day: int = 15, local_hour: float = 13.0,
                             window_start: Optional[float] = None) -> Ccdf:
    """The figure 6 CCDF for one cell."""
    if window_start is None:
        window_start = snapshot_window_start(trace, day=day, local_hour=local_hour)
    utilization = machine_utilization_at(trace, window_start, resource=resource)
    return empirical_ccdf(list(utilization.values()))


@dataclass(frozen=True)
class MachineUtilSummary:
    """Comparable summary statistics for one cell's snapshot."""

    cell: str
    resource: str
    median: float
    p90: float
    fraction_above_80pct: float


def summarize_machine_utilization(trace: TraceDataset,
                                  resource: str = "cpu",
                                  day: int = 15,
                                  local_hour: float = 13.0) -> MachineUtilSummary:
    """Median / 90%ile / >80% share — the quantities section 4.1 compares."""
    window = snapshot_window_start(trace, day=day, local_hour=local_hour)
    values = np.asarray(list(machine_utilization_at(trace, window,
                                                    resource=resource).values()))
    return MachineUtilSummary(
        cell=trace.cell,
        resource=resource,
        median=float(np.median(values)) if values.size else 0.0,
        p90=float(np.percentile(values, 90)) if values.size else 0.0,
        fraction_above_80pct=float((values > 0.8).mean()) if values.size else 0.0,
    )
