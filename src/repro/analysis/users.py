"""Per-user workload analysis.

Both traces attribute every collection to a (hashed) user, "used for
accounting and authentication purposes" (paper section 2).  The
submission population is itself heavy-tailed: a few internal frameworks
submit most jobs.  This module measures that concentration — a per-user
analogue of the hogs-and-mice story.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.analysis.common import job_usage_integrals
from repro.trace.dataset import TraceDataset


def jobs_per_user(traces: Sequence[TraceDataset]) -> Dict[str, int]:
    """Number of jobs submitted per user, pooled across cells."""
    out: Dict[str, int] = {}
    for trace in traces:
        ce = trace.collection_events
        mask = ((ce.column("type").values == "SUBMIT")
                & (ce.column("collection_type").values == "job"))
        for user in ce.column("user").values[mask]:
            out[user] = out.get(user, 0) + 1
    return out


def usage_per_user(traces: Sequence[TraceDataset]) -> Dict[str, float]:
    """NCU-hours consumed per user, pooled across cells."""
    out: Dict[str, float] = {}
    for trace in traces:
        table = job_usage_integrals(trace)
        if len(table) == 0:
            continue
        # Attribute each job's integral to its submitting user.
        ce = trace.collection_events
        submits = ce.filter(ce.column("type") == "SUBMIT").distinct("collection_id")
        user_of = dict(zip(submits.column("collection_id").values.tolist(),
                           submits.column("user").values.tolist()))
        ids = table.column("collection_id").values
        hours = table.column("ncu_hours").values
        for cid, h in zip(ids, hours):
            user = user_of.get(int(cid))
            if user is not None:
                out[user] = out.get(user, 0.0) + float(h)
    return out


def zipf_exponent(counts: Sequence[int]) -> float:
    """Slope of log(count) vs log(rank): the submission-popularity tail.

    A value near -1 is the classic Zipf law.  Requires at least five
    distinct contributors.
    """
    arr = np.sort(np.asarray(list(counts), dtype=float))[::-1]
    arr = arr[arr > 0]
    if arr.size < 5:
        raise ValueError("zipf_exponent needs at least 5 nonzero counts")
    ranks = np.arange(1, arr.size + 1, dtype=float)
    slope, _ = np.polyfit(np.log(ranks), np.log(arr), deg=1)
    return float(slope)


@dataclass(frozen=True)
class UserReport:
    """Submission/usage concentration statistics."""

    n_users: int
    top_user_job_share: float
    top10_user_job_share: float
    top10_user_usage_share: float
    zipf_slope: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "distinct users": self.n_users,
            "top user's share of jobs": self.top_user_job_share,
            "top-10 users' share of jobs": self.top10_user_job_share,
            "top-10 users' share of NCU-hours": self.top10_user_usage_share,
            "zipf slope (log count vs log rank)": self.zipf_slope,
        }


def user_report(traces: Sequence[TraceDataset]) -> UserReport:
    jobs = jobs_per_user(traces)
    usage = usage_per_user(traces)
    if not jobs:
        raise ValueError("no jobs in these traces")
    job_counts = np.sort(np.asarray(list(jobs.values()), dtype=float))[::-1]
    total_jobs = job_counts.sum()
    usage_values = np.sort(np.asarray(list(usage.values()), dtype=float))[::-1]
    total_usage = usage_values.sum()
    return UserReport(
        n_users=len(jobs),
        top_user_job_share=float(job_counts[0] / total_jobs),
        top10_user_job_share=float(job_counts[:10].sum() / total_jobs),
        top10_user_usage_share=(float(usage_values[:10].sum() / total_usage)
                                if total_usage > 0 else 0.0),
        zipf_slope=zipf_exponent(job_counts) if len(job_counts) >= 5 else 0.0,
    )
