"""Resource allocation (sum of limits) by tier — figures 4 and 5.

The headline of section 4: by 2019 both CPU and memory are consistently
allocated *above 100%* of deployed capacity (statistical multiplexing /
over-commit), where 2011 over-committed CPU much more than memory.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.analysis.common import average_tier_fractions, hourly_tier_series
from repro.trace.dataset import TraceDataset


def allocation_timeseries(trace: TraceDataset,
                          resource: str = "cpu") -> Dict[str, np.ndarray]:
    """Hourly per-tier allocated limits as a fraction of capacity (figure 4)."""
    return hourly_tier_series(trace, resource=resource, quantity="allocation")


def mean_allocation_timeseries(traces: Sequence[TraceDataset],
                               resource: str = "cpu") -> Dict[str, np.ndarray]:
    """Figure 4's 2019 panels: allocation averaged across cells."""
    if not traces:
        raise ValueError("mean_allocation_timeseries requires at least one trace")
    acc: Dict[str, np.ndarray] = {}
    for trace in traces:
        series = allocation_timeseries(trace, resource=resource)
        for tier, values in series.items():
            acc[tier] = acc.get(tier, 0) + values
    return {tier: values / len(traces) for tier, values in acc.items()}


def allocation_by_cell(traces: Sequence[TraceDataset],
                       resource: str = "cpu") -> Dict[str, Dict[str, float]]:
    """Figure 5's bars: average allocation fraction by tier, per cell."""
    return {t.cell: average_tier_fractions(t, resource=resource,
                                           quantity="allocation")
            for t in traces}


def total_allocation_fraction(trace: TraceDataset, resource: str = "cpu") -> float:
    """Whole-trace average allocation across tiers (>1 means over-commit)."""
    fractions = average_tier_fractions(trace, resource=resource,
                                       quantity="allocation")
    return float(sum(fractions.values()))


def overcommit_ratio(trace: TraceDataset) -> Dict[str, float]:
    """CPU and memory allocation-to-capacity ratios for one cell."""
    return {
        "cpu": total_allocation_fraction(trace, "cpu"),
        "mem": total_allocation_fraction(trace, "mem"),
    }
