"""Resource utilization by tier (paper figures 2 and 3, section 4)."""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.common import TIER_ORDER, average_tier_fractions, hourly_tier_series
from repro.trace.dataset import TraceDataset
from repro.util.timeutil import HOUR_SECONDS


def usage_timeseries(trace: TraceDataset, resource: str = "cpu") -> Dict[str, np.ndarray]:
    """Hourly per-tier usage as a fraction of cell capacity (figure 2)."""
    return hourly_tier_series(trace, resource=resource, quantity="usage")


def mean_usage_timeseries(traces: Sequence[TraceDataset],
                          resource: str = "cpu") -> Dict[str, np.ndarray]:
    """Figure 2's 2019 panels: per-tier series averaged across cells.

    Cells must share a horizon (the presets guarantee this).
    """
    if not traces:
        raise ValueError("mean_usage_timeseries requires at least one trace")
    lengths = {int(np.ceil(t.horizon / HOUR_SECONDS)) for t in traces}
    if len(lengths) != 1:
        raise ValueError(f"traces have different horizons: {sorted(lengths)}")
    acc: Dict[str, np.ndarray] = {}
    for trace in traces:
        series = usage_timeseries(trace, resource=resource)
        for tier, values in series.items():
            acc[tier] = acc.get(tier, 0) + values
    return {tier: values / len(traces) for tier, values in acc.items()}


def usage_by_cell(traces: Sequence[TraceDataset],
                  resource: str = "cpu") -> Dict[str, Dict[str, float]]:
    """Figure 3's bars: average usage fraction by tier, per cell."""
    return {t.cell: average_tier_fractions(t, resource=resource, quantity="usage")
            for t in traces}


def total_usage_fraction(trace: TraceDataset, resource: str = "cpu") -> float:
    """Whole-trace average usage across all tiers (one number per cell)."""
    fractions = average_tier_fractions(trace, resource=resource, quantity="usage")
    return float(sum(fractions.values()))


def stacked_rows(series: Dict[str, np.ndarray]) -> List[Dict[str, float]]:
    """Render a tier series as rows (hour, free, beb, mid, prod, total)."""
    n = max((len(v) for v in series.values()), default=0)
    rows = []
    for h in range(n):
        row = {"hour": float(h)}
        total = 0.0
        for tier in TIER_ORDER:
            value = float(series.get(tier, np.zeros(n))[h])
            row[tier] = value
            total += value
        row["total"] = total
        rows.append(row)
    return rows
