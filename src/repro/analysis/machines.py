"""Machine fleet analysis (paper figure 1 and part of Table 1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.trace.dataset import TraceDataset


@dataclass(frozen=True)
class ShapePoint:
    """One bubble of figure 1: a (CPU, memory) shape and its frequency."""

    cpu: float
    mem: float
    count: int


def machine_shapes(traces: Sequence[TraceDataset]) -> List[ShapePoint]:
    """Figure 1: frequency of each distinct machine shape across cells."""
    counts: Dict[Tuple[float, float], int] = {}
    for trace in traces:
        attrs = trace.machine_attributes
        cpus = attrs.column("cpu_capacity").values
        mems = attrs.column("mem_capacity").values
        for cpu, mem in zip(cpus, mems):
            key = (round(float(cpu), 4), round(float(mem), 4))
            counts[key] = counts.get(key, 0) + 1
    points = [ShapePoint(cpu=k[0], mem=k[1], count=v) for k, v in counts.items()]
    points.sort(key=lambda p: -p.count)
    return points


def fleet_summary(traces: Sequence[TraceDataset]) -> Dict[str, float]:
    """Machines / shapes / platforms counts (Table 1 rows)."""
    total = 0
    shapes = set()
    platforms = set()
    for trace in traces:
        attrs = trace.machine_attributes
        total += len(attrs)
        cpus = attrs.column("cpu_capacity").values
        mems = attrs.column("mem_capacity").values
        for cpu, mem in zip(cpus, mems):
            shapes.add((round(float(cpu), 4), round(float(mem), 4)))
        for p in attrs.column("platform").values:
            platforms.add(p)
    return {
        "machines": total,
        "machines_per_cell": total / max(len(traces), 1),
        "machine_shapes": len(shapes),
        "hardware_platforms": len(platforms),
    }
