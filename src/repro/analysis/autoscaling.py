"""Autopilot effectiveness: peak NCU slack (paper figure 14, section 8).

    peak NCU slack = max(0, limit - peak usage) / limit

computed per 5-minute sample per task.  The paper finds fully-autoscaled
jobs clearly beat constrained autoscaling, which beats manual limits —
"reducing the peak NCU slack by more than 25% for the vast majority of
jobs".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.stats.ccdf import Ccdf, empirical_ccdf
from repro.trace.dataset import TraceDataset

#: Figure 14's three lines.
MODES = ("fully", "constrained", "none")


def peak_slack_samples(trace: TraceDataset) -> Dict[str, np.ndarray]:
    """Per-sample peak CPU slack fractions, grouped by autoscaling mode.

    Alloc-set reservation rows (zero usage by construction) are excluded
    — slack is a per-task quantity.
    """
    iu = trace.instance_usage
    out: Dict[str, np.ndarray] = {mode: np.empty(0) for mode in MODES}
    if len(iu) == 0:
        return out
    limits = iu.column("limit_cpu").values
    peaks = iu.column("max_cpu").values
    modes = iu.column("vertical_scaling").values
    # Rows with zero usage and zero peak are alloc reservations.
    task_rows = (peaks > 0) & (limits > 0)
    slack = np.zeros(len(iu))
    slack[task_rows] = np.maximum(0.0, limits[task_rows] - peaks[task_rows]) / limits[task_rows]
    for mode in MODES:
        mask = task_rows & (modes == mode)
        out[mode] = slack[mask]
    return out


def slack_ccdf_by_mode(traces: Sequence[TraceDataset]) -> Dict[str, Ccdf]:
    """Figure 14: CCDF of percentage peak slack per autoscaling mode."""
    pooled: Dict[str, list] = {mode: [] for mode in MODES}
    for trace in traces:
        for mode, values in peak_slack_samples(trace).items():
            if values.size:
                pooled[mode].append(values)
    return {mode: empirical_ccdf(np.concatenate(chunks) * 100.0)
            for mode, chunks in pooled.items() if chunks}


@dataclass(frozen=True)
class SlackSummary:
    """Median slack per mode plus the headline saving."""

    median_slack: Dict[str, float]

    @property
    def fully_vs_manual_saving(self) -> float:
        """Median slack reduction of full autoscaling vs manual limits."""
        manual = self.median_slack.get("none", 0.0)
        fully = self.median_slack.get("fully", 0.0)
        return manual - fully


def summarize_slack(traces: Sequence[TraceDataset]) -> SlackSummary:
    ccdfs = slack_ccdf_by_mode(traces)
    medians = {mode: ccdf.quantile_of_exceedance(0.5) / 100.0
               for mode, ccdf in ccdfs.items()}
    return SlackSummary(median_slack=medians)
