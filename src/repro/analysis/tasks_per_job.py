"""Tasks per job by tier (paper figure 11).

Best-effort batch and mid-tier jobs are far wider than free/production
jobs: the paper's 95%%iles are 498 (beb), 67 (mid), 21 (free), 3 (prod),
which is its explanation for their longer scheduling delays.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.analysis.common import merge_monitoring_tier
from repro.stats.ccdf import Ccdf, empirical_ccdf
from repro.trace.dataset import TraceDataset


def tasks_per_job(trace: TraceDataset) -> Dict[str, np.ndarray]:
    """Per-tier arrays of job widths (number of tasks), jobs only."""
    ce = trace.collection_events
    out: Dict[str, List[int]] = {}
    types = ce.column("type").values
    kinds = ce.column("collection_type").values
    tiers = merge_monitoring_tier(ce.column("tier").values)
    counts = ce.column("num_instances").values
    seen = set()
    ids = ce.column("collection_id").values
    for i in range(len(ce)):
        if types[i] != "SUBMIT" or kinds[i] != "job":
            continue
        cid = int(ids[i])
        if cid in seen:
            continue
        seen.add(cid)
        out.setdefault(tiers[i], []).append(int(counts[i]))
    return {tier: np.asarray(values) for tier, values in out.items()}


def tasks_per_job_ccdf(traces: Sequence[TraceDataset]) -> Dict[str, Ccdf]:
    """Figure 11: CCDF of tasks/job per tier, pooled across cells."""
    pooled: Dict[str, List[np.ndarray]] = {}
    for trace in traces:
        for tier, values in tasks_per_job(trace).items():
            pooled.setdefault(tier, []).append(values)
    return {tier: empirical_ccdf(np.concatenate(chunks))
            for tier, chunks in pooled.items()}


def width_percentiles(traces: Sequence[TraceDataset],
                      percentiles: Sequence[float] = (80, 95)) -> Dict[str, Dict[float, float]]:
    """The quoted per-tier percentiles (80%%ile and 95%%ile by default)."""
    ccdfs = tasks_per_job_ccdf(traces)
    out: Dict[str, Dict[float, float]] = {}
    for tier, ccdf in ccdfs.items():
        out[tier] = {p: ccdf.quantile_of_exceedance(1.0 - p / 100.0)
                     for p in percentiles}
    return out
