"""CPU-memory consumption correlation (paper figure 13, section 7.2).

Jobs are bucketed by NCU-hours into 1-hour bins; the median NMU-hours
per bin tracks the bin center almost linearly (Pearson 0.97 in the
paper) — the hogs hog both resources, so isolation policies need not
treat CPU and memory separately (section 7.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.consumption import pooled_job_integrals
from repro.stats.correlation import bucketed_medians, pearson
from repro.trace.dataset import TraceDataset


@dataclass(frozen=True)
class CorrelationReport:
    """Figure 13's content."""

    bucket_centers: np.ndarray
    median_nmu_hours: np.ndarray
    pearson_r: float
    n_jobs: int


def cpu_mem_correlation(traces: Sequence[TraceDataset],
                        bucket_width: float = 1.0,
                        min_bucket_count: int = 3) -> CorrelationReport:
    """Bucket jobs by NCU-hours; correlate bucket center with median NMU-hours."""
    table = pooled_job_integrals(traces)
    ncu = table.column("ncu_hours").values
    nmu = table.column("nmu_hours").values
    mask = (ncu > 0) & (nmu > 0)
    ncu, nmu = ncu[mask], nmu[mask]
    if ncu.size < 10:
        raise ValueError("too few jobs for a correlation analysis")
    centers, medians = bucketed_medians(ncu, nmu, bucket_width=bucket_width,
                                        min_bucket_count=min_bucket_count)
    if centers.size < 3:
        # Not enough populated buckets at this width; fall back to raw
        # per-job correlation (equivalent signal, no bucketing).
        return CorrelationReport(
            bucket_centers=centers, median_nmu_hours=medians,
            pearson_r=pearson(ncu, nmu), n_jobs=int(ncu.size),
        )
    return CorrelationReport(
        bucket_centers=centers,
        median_nmu_hours=medians,
        pearson_r=pearson(centers, medians),
        n_jobs=int(ncu.size),
    )
