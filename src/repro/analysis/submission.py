"""Job and task submission rates (paper figures 8 and 9, section 6).

Figure 8: CCDF of jobs submitted per hour per cell; the 2019 median grew
3.7x over 2011.  Figure 9: tasks per hour, split into *new* tasks
(members of newly-submitted jobs) and *all* tasks (including
reschedules of previously-running work); the resubmitted:new ratio grew
from 0.66:1 to 2.26:1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro import obs
from repro.stats.ccdf import Ccdf, empirical_ccdf
from repro.trace.dataset import TraceDataset
from repro.util.timeutil import HOUR_SECONDS


def _hourly_counts(times: np.ndarray, horizon: float,
                   skip_warmup_hours: int = 1) -> np.ndarray:
    """Events per hour, dropping the first hour(s).

    The warm-start convention front-loads carried-over jobs into the
    first seconds of the window, which would distort rate statistics.
    """
    n_hours = int(np.ceil(horizon / HOUR_SECONDS))
    hours = np.clip((times / HOUR_SECONDS).astype(np.int64), 0, n_hours - 1)
    counts = np.bincount(hours, minlength=n_hours)
    return counts[skip_warmup_hours:] if n_hours > skip_warmup_hours else counts


def job_submission_counts(trace: TraceDataset) -> np.ndarray:
    """Jobs (not alloc sets) submitted per hour."""
    ce = trace.collection_events
    if len(ce) == 0:
        return np.zeros(0)
    mask = ((ce.column("type").values == "SUBMIT")
            & (ce.column("collection_type").values == "job"))
    return _hourly_counts(ce.column("time").values[mask], trace.horizon)


@obs.traced("analysis.fig8.job_submission_ccdf")
def job_submission_ccdf(trace: TraceDataset) -> Ccdf:
    """Figure 8: CCDF of the per-hour job submission rate for one cell."""
    return empirical_ccdf(job_submission_counts(trace))


def aggregate_job_submission_ccdf(traces: Sequence[TraceDataset]) -> Ccdf:
    """Figure 8's '2019 - aggregate' line: mean rate across cells per hour."""
    counts = [job_submission_counts(t) for t in traces]
    n = min(len(c) for c in counts)
    stacked = np.vstack([c[:n] for c in counts])
    return empirical_ccdf(stacked.mean(axis=0))


def task_submission_counts(trace: TraceDataset, which: str = "all") -> np.ndarray:
    """Task-scheduling submissions per hour.

    ``which``: ``"new"`` counts first-time task submissions only;
    ``"all"`` also counts re-submissions of previously-running tasks
    (eviction reschedules and crash restarts — the system's churn).
    """
    if which not in ("new", "all"):
        raise ValueError(f"which must be 'new' or 'all', got {which!r}")
    ie = trace.instance_events
    if len(ie) == 0:
        return np.zeros(0)
    mask = ie.column("type").values == "SUBMIT"
    if which == "new":
        mask = mask & ie.column("is_new").values
    return _hourly_counts(ie.column("time").values[mask], trace.horizon)


def task_submission_ccdf(trace: TraceDataset, which: str = "all") -> Ccdf:
    """Figure 9: CCDF of tasks submitted per hour."""
    return empirical_ccdf(task_submission_counts(trace, which=which))


@dataclass(frozen=True)
class SubmissionSummary:
    """The numbers section 6 quotes."""

    cell: str
    mean_jobs_per_hour: float
    median_jobs_per_hour: float
    median_new_tasks_per_hour: float
    median_all_tasks_per_hour: float

    @property
    def resubmit_to_new_ratio(self) -> float:
        """Median resubmitted-task rate over median new-task rate."""
        if self.median_new_tasks_per_hour == 0:
            return 0.0
        return ((self.median_all_tasks_per_hour - self.median_new_tasks_per_hour)
                / self.median_new_tasks_per_hour)


def summarize_submissions(trace: TraceDataset) -> SubmissionSummary:
    jobs = job_submission_counts(trace)
    new = task_submission_counts(trace, "new")
    all_tasks = task_submission_counts(trace, "all")
    return SubmissionSummary(
        cell=trace.cell,
        mean_jobs_per_hour=float(jobs.mean()) if jobs.size else 0.0,
        median_jobs_per_hour=float(np.median(jobs)) if jobs.size else 0.0,
        median_new_tasks_per_hour=float(np.median(new)) if new.size else 0.0,
        median_all_tasks_per_hour=float(np.median(all_tasks)) if all_tasks.size else 0.0,
    )


def growth_factors(trace_2011: TraceDataset,
                   traces_2019: Sequence[TraceDataset]) -> Dict[str, float]:
    """The longitudinal 2019/2011 ratios the paper headlines."""
    s11 = summarize_submissions(trace_2011)
    s19 = [summarize_submissions(t) for t in traces_2019]
    mean19 = float(np.mean([s.mean_jobs_per_hour for s in s19]))
    median19 = float(np.mean([s.median_jobs_per_hour for s in s19]))
    tasks19 = float(np.mean([s.median_all_tasks_per_hour for s in s19]))
    return {
        "mean_job_rate_growth": mean19 / max(s11.mean_jobs_per_hour, 1e-9),
        "median_job_rate_growth": median19 / max(s11.median_jobs_per_hour, 1e-9),
        "median_all_task_rate_growth": tasks19 / max(s11.median_all_tasks_per_hour, 1e-9),
        "resubmit_ratio_2011": s11.resubmit_to_new_ratio,
        "resubmit_ratio_2019": float(np.mean([s.resubmit_to_new_ratio for s in s19])),
    }
