"""The paper's analyses, one module per figure/table.

Every function here consumes :class:`~repro.trace.TraceDataset` objects
(one per cell) and returns plain tables/arrays — the same quantities the
paper plots.  The mapping to the paper:

==================  ==========================================
Module              Paper content
==================  ==========================================
``summary``         Table 1 (trace comparison)
``machines``        Figure 1 (machine shapes)
``utilization``     Figures 2 & 3 (usage by tier)
``allocation``      Figures 4 & 5 (allocation / over-commit)
``machine_util``    Figure 6 (machine utilization CCDFs)
``transitions``     Figure 7 (state transition counts)
``submission``      Figures 8 & 9 (job/task submission rates)
``sched_delay``     Figure 10 (scheduling delay CCDFs)
``tasks_per_job``   Figure 11 (tasks per job by tier)
``consumption``     Table 2 & Figure 12 (resource-hours, Pareto)
``correlation``     Figure 13 (CPU-memory correlation)
``autoscaling``     Figure 14 (Autopilot peak slack)
``allocsets``       Section 5.1 (alloc-set statistics)
``terminations``    Section 5.2 (kill/evict analysis)
``report``          renders everything as text
==================  ==========================================
"""

from repro.analysis import (  # noqa: F401
    allocation,
    allocsets,
    autoscaling,
    batch_queue,
    common,
    constraints,
    consumption,
    correlation,
    diurnal,
    failures,
    machine_util,
    machines,
    report,
    sched_delay,
    submission,
    summary,
    tasks_per_job,
    terminations,
    users,
    transitions,
    utilization,
)

__all__ = [
    "allocation", "allocsets", "autoscaling", "batch_queue", "common", "constraints", "consumption",
    "correlation", "diurnal", "failures", "machine_util", "machines", "report", "sched_delay",
    "submission", "summary", "tasks_per_job", "terminations", "transitions", "users",
    "utilization",
]
