"""Shared analysis primitives: per-job integrals, hourly tier series.

All heavy lifting is vectorized over the usage table's numpy columns —
the month-scale tables have millions of rows.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.table import Table
from repro.trace.dataset import TraceDataset
from repro.util.timeutil import HOUR_SECONDS

#: Paper tier stacking order (monitoring merged into prod upstream).
TIER_ORDER: Tuple[str, ...] = ("free", "beb", "mid", "prod")


def merge_monitoring_tier(tiers: np.ndarray) -> np.ndarray:
    """Fold 'monitoring' labels into 'prod' (the paper's convention)."""
    out = tiers.copy()
    out[out == "monitoring"] = "prod"
    return out


def alloc_set_ids(trace: TraceDataset) -> Set[int]:
    """Collection ids that are alloc sets."""
    ce = trace.collection_events
    ids = ce.column("collection_id").values
    kinds = ce.column("collection_type").values
    return {int(ids[i]) for i in range(len(ce)) if kinds[i] == "alloc_set"}


def group_reduce(keys: np.ndarray, values: np.ndarray,
                 reducer=np.add.reduceat) -> Tuple[np.ndarray, np.ndarray]:
    """Reduce ``values`` per unique key; returns (unique_keys, reduced)."""
    if len(keys) == 0:
        return np.empty(0, dtype=keys.dtype), np.empty(0)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    starts = np.concatenate([[0], np.flatnonzero(np.diff(sorted_keys)) + 1])
    return sorted_keys[starts], reducer(values[order], starts)


def job_usage_integrals(trace: TraceDataset,
                        include_alloc_sets: bool = False) -> Table:
    """Per-collection resource-hour integrals (the section 7 quantity).

    Returns a table with ``collection_id``, ``tier``, ``in_alloc``,
    ``vertical_scaling``, ``ncu_hours`` and ``nmu_hours``.  Alloc sets
    are excluded by default because the paper's job-size analysis is
    about jobs.
    """
    iu = trace.instance_usage
    if len(iu) == 0:
        return Table({"collection_id": [], "tier": [], "in_alloc": [],
                      "vertical_scaling": [], "ncu_hours": [], "nmu_hours": []})
    ids = iu.column("collection_id").values
    hours = iu.column("duration").values / HOUR_SECONDS
    ncu = iu.column("avg_cpu").values * hours
    nmu = iu.column("avg_mem").values * hours

    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    starts = np.concatenate([[0], np.flatnonzero(np.diff(sorted_ids)) + 1])
    unique_ids = sorted_ids[starts]
    ncu_sums = np.add.reduceat(ncu[order], starts)
    nmu_sums = np.add.reduceat(nmu[order], starts)
    rep = order[starts]
    tiers = merge_monitoring_tier(iu.column("tier").values[rep])
    in_alloc = iu.column("in_alloc").values[rep]
    scaling = iu.column("vertical_scaling").values[rep]

    if not include_alloc_sets:
        allocs = alloc_set_ids(trace)
        keep = np.asarray([int(i) not in allocs for i in unique_ids], dtype=bool)
    else:
        keep = np.ones(len(unique_ids), dtype=bool)
    return Table({
        "collection_id": unique_ids[keep],
        "tier": tiers[keep],
        "in_alloc": in_alloc[keep],
        "vertical_scaling": scaling[keep],
        "ncu_hours": ncu_sums[keep],
        "nmu_hours": nmu_sums[keep],
    })


def hourly_tier_series(trace: TraceDataset, resource: str = "cpu",
                       quantity: str = "usage") -> Dict[str, np.ndarray]:
    """Per-tier hourly series as fractions of cell capacity (figures 2/4).

    ``quantity`` is ``"usage"`` (average observed usage) or
    ``"allocation"`` (sum of limits).  For allocation, usage rows of
    tasks running *inside* alloc sets are excluded — their reservation is
    already counted through the alloc instance's limit, and counting both
    would double-book the machine.

    Returns {tier: array of length horizon_hours}.
    """
    if resource not in ("cpu", "mem"):
        raise ValueError(f"resource must be 'cpu' or 'mem', got {resource!r}")
    if quantity not in ("usage", "allocation"):
        raise ValueError(f"quantity must be 'usage' or 'allocation', got {quantity!r}")
    n_hours = int(np.ceil(trace.horizon / HOUR_SECONDS))
    capacity = trace.capacity_cpu if resource == "cpu" else trace.capacity_mem
    out = {tier: np.zeros(n_hours) for tier in TIER_ORDER}
    iu = trace.instance_usage
    if len(iu) == 0 or capacity <= 0:
        return out

    column = {"usage": {"cpu": "avg_cpu", "mem": "avg_mem"},
              "allocation": {"cpu": "limit_cpu", "mem": "limit_mem"}}[quantity][resource]
    values = iu.column(column).values * (iu.column("duration").values / HOUR_SECONDS)
    hour = (iu.column("start_time").values / HOUR_SECONDS).astype(np.int64)
    hour = np.clip(hour, 0, n_hours - 1)
    tiers = merge_monitoring_tier(iu.column("tier").values)
    mask_base = np.ones(len(iu), dtype=bool)
    if quantity == "allocation":
        mask_base = ~iu.column("in_alloc").values
    for tier in TIER_ORDER:
        mask = mask_base & (tiers == tier)
        if not mask.any():
            continue
        out[tier] = np.bincount(hour[mask], weights=values[mask],
                                minlength=n_hours) / capacity
    return out


def average_tier_fractions(trace: TraceDataset, resource: str = "cpu",
                           quantity: str = "usage") -> Dict[str, float]:
    """Whole-trace average of the hourly tier series (figures 3/5 bars)."""
    series = hourly_tier_series(trace, resource=resource, quantity=quantity)
    return {tier: float(np.mean(values)) for tier, values in series.items()}


def first_event_times(trace: TraceDataset, event: str,
                      instance_level: bool = False) -> Dict[int, float]:
    """Earliest time of ``event`` per collection (or per instance's collection)."""
    table = trace.instance_events if instance_level else trace.collection_events
    ids = table.column("collection_id").values
    types = table.column("type").values
    times = table.column("time").values
    out: Dict[int, float] = {}
    for i in range(len(table)):
        if types[i] == event:
            cid = int(ids[i])
            t = float(times[i])
            if cid not in out or t < out[cid]:
                out[cid] = t
    return out


def collection_metadata(trace: TraceDataset) -> Table:
    """One row per collection from its SUBMIT event (id, tier, type, ...)."""
    ce = trace.collection_events
    if len(ce) == 0:
        return ce.head(0)
    submits = ce.filter(ce.column("type") == "SUBMIT")
    return submits.distinct("collection_id")
