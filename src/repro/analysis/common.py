"""Shared analysis primitives: per-job integrals, hourly tier series.

All heavy lifting is vectorized over the usage table's numpy columns —
the month-scale tables have millions of rows.  Each hot reducer also has
a ``*_store`` variant that runs against a chunked
:class:`~repro.store.reader.TraceStore` without materializing the table:
chunks stream through picklable per-chunk partial functions (optionally
across worker processes) and the partials merge associatively.
"""

from __future__ import annotations

import functools
from typing import Dict, Optional, Set, Tuple

import numpy as np

from repro import obs
from repro.table import Table
from repro.trace.dataset import TraceDataset
from repro.util.timeutil import HOUR_SECONDS

#: Paper tier stacking order (monitoring merged into prod upstream).
TIER_ORDER: Tuple[str, ...] = ("free", "beb", "mid", "prod")


def merge_monitoring_tier(tiers: np.ndarray) -> np.ndarray:
    """Fold 'monitoring' labels into 'prod' (the paper's convention)."""
    out = tiers.copy()
    out[out == "monitoring"] = "prod"
    return out


def alloc_set_ids(trace: TraceDataset) -> Set[int]:
    """Collection ids that are alloc sets."""
    ce = trace.collection_events
    ids = ce.column("collection_id").values
    kinds = ce.column("collection_type").values
    return {int(ids[i]) for i in range(len(ce)) if kinds[i] == "alloc_set"}


def group_reduce(keys: np.ndarray, values: np.ndarray,
                 reducer=np.add.reduceat) -> Tuple[np.ndarray, np.ndarray]:
    """Reduce ``values`` per unique key; returns (unique_keys, reduced)."""
    if len(keys) == 0:
        return np.empty(0, dtype=keys.dtype), np.empty(0)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    starts = np.concatenate([[0], np.flatnonzero(np.diff(sorted_keys)) + 1])
    return sorted_keys[starts], reducer(values[order], starts)


@obs.traced("analysis.job_usage_integrals")
def job_usage_integrals(trace: TraceDataset,
                        include_alloc_sets: bool = False) -> Table:
    """Per-collection resource-hour integrals (the section 7 quantity).

    Returns a table with ``collection_id``, ``tier``, ``in_alloc``,
    ``vertical_scaling``, ``ncu_hours`` and ``nmu_hours``.  Alloc sets
    are excluded by default because the paper's job-size analysis is
    about jobs.
    """
    iu = trace.instance_usage
    if len(iu) == 0:
        return Table({"collection_id": [], "tier": [], "in_alloc": [],
                      "vertical_scaling": [], "ncu_hours": [], "nmu_hours": []})
    ids = iu.column("collection_id").values
    hours = iu.column("duration").values / HOUR_SECONDS
    ncu = iu.column("avg_cpu").values * hours
    nmu = iu.column("avg_mem").values * hours

    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    starts = np.concatenate([[0], np.flatnonzero(np.diff(sorted_ids)) + 1])
    unique_ids = sorted_ids[starts]
    ncu_sums = np.add.reduceat(ncu[order], starts)
    nmu_sums = np.add.reduceat(nmu[order], starts)
    rep = order[starts]
    tiers = merge_monitoring_tier(iu.column("tier").values[rep])
    in_alloc = iu.column("in_alloc").values[rep]
    scaling = iu.column("vertical_scaling").values[rep]

    if not include_alloc_sets:
        allocs = alloc_set_ids(trace)
        keep = np.asarray([int(i) not in allocs for i in unique_ids], dtype=bool)
    else:
        keep = np.ones(len(unique_ids), dtype=bool)
    return Table({
        "collection_id": unique_ids[keep],
        "tier": tiers[keep],
        "in_alloc": in_alloc[keep],
        "vertical_scaling": scaling[keep],
        "ncu_hours": ncu_sums[keep],
        "nmu_hours": nmu_sums[keep],
    })


@obs.traced("analysis.hourly_tier_series")
def hourly_tier_series(trace: TraceDataset, resource: str = "cpu",
                       quantity: str = "usage") -> Dict[str, np.ndarray]:
    """Per-tier hourly series as fractions of cell capacity (figures 2/4).

    ``quantity`` is ``"usage"`` (average observed usage) or
    ``"allocation"`` (sum of limits).  For allocation, usage rows of
    tasks running *inside* alloc sets are excluded — their reservation is
    already counted through the alloc instance's limit, and counting both
    would double-book the machine.

    Returns {tier: array of length horizon_hours}.
    """
    if resource not in ("cpu", "mem"):
        raise ValueError(f"resource must be 'cpu' or 'mem', got {resource!r}")
    if quantity not in ("usage", "allocation"):
        raise ValueError(f"quantity must be 'usage' or 'allocation', got {quantity!r}")
    n_hours = int(np.ceil(trace.horizon / HOUR_SECONDS))
    capacity = trace.capacity_cpu if resource == "cpu" else trace.capacity_mem
    out = {tier: np.zeros(n_hours) for tier in TIER_ORDER}
    iu = trace.instance_usage
    if len(iu) == 0 or capacity <= 0:
        return out

    column = {"usage": {"cpu": "avg_cpu", "mem": "avg_mem"},
              "allocation": {"cpu": "limit_cpu", "mem": "limit_mem"}}[quantity][resource]
    values = iu.column(column).values * (iu.column("duration").values / HOUR_SECONDS)
    hour = (iu.column("start_time").values / HOUR_SECONDS).astype(np.int64)
    hour = np.clip(hour, 0, n_hours - 1)
    tiers = merge_monitoring_tier(iu.column("tier").values)
    mask_base = np.ones(len(iu), dtype=bool)
    if quantity == "allocation":
        mask_base = ~iu.column("in_alloc").values
    for tier in TIER_ORDER:
        mask = mask_base & (tiers == tier)
        if not mask.any():
            continue
        out[tier] = np.bincount(hour[mask], weights=values[mask],
                                minlength=n_hours) / capacity
    return out


def average_tier_fractions(trace: TraceDataset, resource: str = "cpu",
                           quantity: str = "usage") -> Dict[str, float]:
    """Whole-trace average of the hourly tier series (figures 3/5 bars)."""
    series = hourly_tier_series(trace, resource=resource, quantity=quantity)
    return {tier: float(np.mean(values)) for tier, values in series.items()}


def first_event_times(trace: TraceDataset, event: str,
                      instance_level: bool = False) -> Dict[int, float]:
    """Earliest time of ``event`` per collection (or per instance's collection)."""
    table = trace.instance_events if instance_level else trace.collection_events
    ids = table.column("collection_id").values
    types = table.column("type").values
    times = table.column("time").values
    out: Dict[int, float] = {}
    for i in range(len(table)):
        if types[i] == event:
            cid = int(ids[i])
            t = float(times[i])
            if cid not in out or t < out[cid]:
                out[cid] = t
    return out


def collection_metadata(trace: TraceDataset) -> Table:
    """One row per collection from its SUBMIT event (id, tier, type, ...)."""
    ce = trace.collection_events
    if len(ce) == 0:
        return ce.head(0)
    submits = ce.filter(ce.column("type") == "SUBMIT")
    return submits.distinct("collection_id")


# -- store-aware variants -----------------------------------------------------
#
# These take a repro.store.TraceStore and compute the same results as the
# in-memory reducers above, but one chunk at a time: projection pushdown
# keeps the decode narrow, per-chunk partials are picklable so they can
# fan out over ``workers`` processes, and nothing ever holds the full
# table.  The per-chunk map functions live at module scope (not closures)
# because worker processes import them by name.

def alloc_set_ids_store(store, workers: Optional[int] = None) -> Set[int]:
    """Store-backed :func:`alloc_set_ids`: pushes the alloc-set filter
    and a two-column projection into the scan."""
    # Imported here, not at module top: repro.store's package init pulls
    # in repro.trace, whose sample module imports this module.
    from repro.store.predicates import Compare

    table = (store.scan("collection_events")
                  .where(Compare("collection_type", "==", "alloc_set"))
                  .select("collection_id")
                  .to_table(workers=workers))
    return {int(v) for v in table.column("collection_id").values}


def _usage_integral_partial(table: Table) -> Tuple[np.ndarray, ...]:
    """One chunk's per-collection partial sums (+ first-row metadata)."""
    ids = table.column("collection_id").values
    hours = table.column("duration").values / HOUR_SECONDS
    ncu = table.column("avg_cpu").values * hours
    nmu = table.column("avg_mem").values * hours
    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    starts = np.concatenate([[0], np.flatnonzero(np.diff(sorted_ids)) + 1]) \
        if len(ids) else np.empty(0, dtype=np.int64)
    unique_ids = sorted_ids[starts] if len(ids) else sorted_ids
    rep = order[starts] if len(ids) else order
    return (
        unique_ids,
        np.add.reduceat(ncu[order], starts) if len(ids) else ncu,
        np.add.reduceat(nmu[order], starts) if len(ids) else nmu,
        merge_monitoring_tier(table.column("tier").values[rep]),
        table.column("in_alloc").values[rep],
        table.column("vertical_scaling").values[rep],
    )


@obs.traced("analysis.job_usage_integrals_store")
def job_usage_integrals_store(store, include_alloc_sets: bool = False,
                              workers: Optional[int] = None) -> Table:
    """Store-backed :func:`job_usage_integrals` (identical output)."""
    scan = store.scan("instance_usage").select(
        "collection_id", "duration", "avg_cpu", "avg_mem",
        "tier", "in_alloc", "vertical_scaling")
    partials = scan.map_reduce(_usage_integral_partial, workers=workers)
    partials = [p for p in partials if len(p[0])]
    if not partials:
        return Table({"collection_id": [], "tier": [], "in_alloc": [],
                      "vertical_scaling": [], "ncu_hours": [], "nmu_hours": []})
    ids = np.concatenate([p[0] for p in partials])
    ncu = np.concatenate([p[1] for p in partials])
    nmu = np.concatenate([p[2] for p in partials])
    tiers = np.concatenate([p[3].astype(object) for p in partials])
    in_alloc = np.concatenate([p[4] for p in partials])
    scaling = np.concatenate([p[5].astype(object) for p in partials])

    order = np.argsort(ids, kind="stable")
    sorted_ids = ids[order]
    starts = np.concatenate([[0], np.flatnonzero(np.diff(sorted_ids)) + 1])
    unique_ids = sorted_ids[starts]
    rep = order[starts]  # earliest chunk wins, matching row-order semantics

    if not include_alloc_sets:
        allocs = alloc_set_ids_store(store, workers=workers)
        keep = np.asarray([int(i) not in allocs for i in unique_ids], dtype=bool)
    else:
        keep = np.ones(len(unique_ids), dtype=bool)
    return Table({
        "collection_id": unique_ids[keep],
        "tier": tiers[rep][keep],
        "in_alloc": in_alloc[rep][keep],
        "vertical_scaling": scaling[rep][keep],
        "ncu_hours": np.add.reduceat(ncu[order], starts)[keep],
        "nmu_hours": np.add.reduceat(nmu[order], starts)[keep],
    })


def _hourly_tier_partial(table: Table, column: str, n_hours: int,
                         allocation: bool) -> Dict[str, np.ndarray]:
    """One chunk's per-tier hourly resource-hour sums (not yet scaled)."""
    values = table.column(column).values * (table.column("duration").values
                                            / HOUR_SECONDS)
    hour = (table.column("start_time").values / HOUR_SECONDS).astype(np.int64)
    hour = np.clip(hour, 0, n_hours - 1)
    tiers = merge_monitoring_tier(table.column("tier").values)
    mask_base = ~table.column("in_alloc").values if allocation \
        else np.ones(len(table), dtype=bool)
    out = {}
    for tier in TIER_ORDER:
        mask = mask_base & (tiers == tier)
        if mask.any():
            out[tier] = np.bincount(hour[mask], weights=values[mask],
                                    minlength=n_hours)
    return out


def _merge_tier_series(a: Dict[str, np.ndarray],
                       b: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
    out = dict(a)
    for tier, series in b.items():
        out[tier] = out[tier] + series if tier in out else series
    return out


@obs.traced("analysis.hourly_tier_series_store")
def hourly_tier_series_store(store, resource: str = "cpu",
                             quantity: str = "usage",
                             workers: Optional[int] = None) -> Dict[str, np.ndarray]:
    """Store-backed :func:`hourly_tier_series` (identical output)."""
    if resource not in ("cpu", "mem"):
        raise ValueError(f"resource must be 'cpu' or 'mem', got {resource!r}")
    if quantity not in ("usage", "allocation"):
        raise ValueError(f"quantity must be 'usage' or 'allocation', got {quantity!r}")
    meta = store.meta
    n_hours = int(np.ceil(meta["horizon"] / HOUR_SECONDS))
    capacity = meta["capacity_cpu"] if resource == "cpu" else meta["capacity_mem"]
    out = {tier: np.zeros(n_hours) for tier in TIER_ORDER}
    if store.rows("instance_usage") == 0 or capacity <= 0:
        return out
    column = {"usage": {"cpu": "avg_cpu", "mem": "avg_mem"},
              "allocation": {"cpu": "limit_cpu", "mem": "limit_mem"}}[quantity][resource]
    scan = store.scan("instance_usage").select(
        "start_time", "duration", "tier", "in_alloc", column)
    map_fn = functools.partial(_hourly_tier_partial, column=column,
                               n_hours=n_hours,
                               allocation=quantity == "allocation")
    merged = scan.map_reduce(map_fn, _merge_tier_series, workers=workers) or {}
    for tier, series in merged.items():
        out[tier] = series / capacity
    return out


def average_tier_fractions_store(store, resource: str = "cpu",
                                 quantity: str = "usage",
                                 workers: Optional[int] = None) -> Dict[str, float]:
    """Store-backed :func:`average_tier_fractions` (identical output)."""
    series = hourly_tier_series_store(store, resource=resource,
                                      quantity=quantity, workers=workers)
    return {tier: float(np.mean(values)) for tier, values in series.items()}
