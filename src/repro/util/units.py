"""Resource-unit helpers.

Both traces normalize CPU (Normalized Compute Units, NCUs) and memory
(Normalized Memory Units, NMUs) to the 0-1 range by dividing by the
largest machine in the trace.  The helpers here implement that scaling
and the small arithmetic guards used throughout the analyses.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def clamp(x: float, lo: float = 0.0, hi: float = 1.0) -> float:
    """Clamp ``x`` into [lo, hi]."""
    if lo > hi:
        raise ValueError(f"empty clamp range [{lo}, {hi}]")
    return min(hi, max(lo, x))


def safe_div(num: float, den: float, default: float = 0.0) -> float:
    """``num / den`` with a default for a zero denominator."""
    if den == 0:
        return default
    return num / den


def normalize(values: Sequence[float]) -> np.ndarray:
    """Rescale ``values`` so the maximum becomes 1.0 (trace NCU/NMU scaling).

    An all-zero input is returned unchanged rather than producing NaNs —
    it corresponds to a trace with no resources, which downstream
    analyses handle as empty.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        return arr
    peak = float(arr.max())
    if peak <= 0:
        return arr.copy()
    return arr / peak
