"""Filesystem helpers: crash-safe directory replacement.

Trace directories (CSV or store) are written in full into a hidden
sibling temp directory and then renamed into place, so a run killed
mid-write can never leave a half-written trace that a later
``load_trace`` mis-parses: readers either see the complete old contents
or the complete new contents.
"""

from __future__ import annotations

import contextlib
import os
import shutil
import uuid
from pathlib import Path
from typing import Iterator, Union


@contextlib.contextmanager
def atomic_directory(final: Union[str, os.PathLike]) -> Iterator[Path]:
    """Yield a temp directory that replaces ``final`` on clean exit.

    On an exception the temp directory is removed and ``final`` is left
    untouched.  Replacement is two renames (old aside, new in place), so
    the window where ``final`` is missing is as small as the OS allows;
    the displaced old contents are deleted last.
    """
    final = Path(final)
    final.parent.mkdir(parents=True, exist_ok=True)
    token = uuid.uuid4().hex[:8]
    tmp = final.parent / f".{final.name}.tmp-{token}"
    tmp.mkdir(parents=True)
    try:
        yield tmp
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    old = final.parent / f".{final.name}.old-{token}"
    if final.exists():
        os.rename(final, old)
    try:
        os.rename(tmp, final)
    except BaseException:
        if old.exists():  # roll the previous contents back into place
            os.rename(old, final)
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    shutil.rmtree(old, ignore_errors=True)
