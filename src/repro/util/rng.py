"""Deterministic named random-number streams.

Each stochastic component of the library (arrival process, job sizing,
usage model, failure injection, ...) draws from its own named stream so
that adding randomness to one component never perturbs another.  Streams
are derived from a single root seed with ``numpy.random.SeedSequence``
spawning, which guarantees independence between streams.
"""

from __future__ import annotations

from typing import Dict

import numpy as np


class RngFactory:
    """Produce independent, reproducible ``numpy.random.Generator`` streams.

    >>> f = RngFactory(seed=7)
    >>> a = f.stream("arrivals")
    >>> b = f.stream("sizes")
    >>> a is f.stream("arrivals")   # streams are cached by name
    True

    Two factories built from the same seed hand out identical streams for
    identical names, which is the property every test in this repository
    leans on.
    """

    def __init__(self, seed: int = 0):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The root seed this factory was created with."""
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The same name always maps to the same underlying bit stream for a
        given root seed, regardless of the order in which streams are
        requested.
        """
        if name not in self._streams:
            # Hash the name into the seed sequence entropy so stream
            # identity depends only on (seed, name), not request order.
            entropy = [self._seed] + [ord(c) for c in name]
            self._streams[name] = np.random.default_rng(np.random.SeedSequence(entropy))
        return self._streams[name]

    def child(self, name: str) -> "RngFactory":
        """Derive a sub-factory, e.g. one per simulated cell.

        The child's streams are independent of the parent's and of any
        sibling's, but fully determined by (root seed, child name).
        """
        entropy = self._seed * 1_000_003 + sum(ord(c) * 31 ** (i % 8) for i, c in enumerate(name))
        return RngFactory(seed=entropy % (2**63))

    def __repr__(self) -> str:
        return f"RngFactory(seed={self._seed}, streams={sorted(self._streams)})"
