"""Time constants and bucketing helpers.

All simulator and trace timestamps are **seconds since trace start** as
floats.  The paper's analyses aggregate into 1-hour windows (figures 2
and 4) and sample usage every 5 minutes (CPU histograms, Autopilot
slack); the constants here are the single source of truth for those
window sizes.
"""

from __future__ import annotations

import math

MINUTE_SECONDS = 60.0
HOUR_SECONDS = 3600.0
DAY_SECONDS = 86400.0

#: The 2019 trace samples per-instance usage every 5 minutes.
SAMPLE_PERIOD_SECONDS = 300.0


def hours(n: float) -> float:
    """Convert hours to seconds."""
    return n * HOUR_SECONDS


def days(n: float) -> float:
    """Convert days to seconds."""
    return n * DAY_SECONDS


def hour_index(t: float) -> int:
    """The 1-hour aggregation bucket containing time ``t`` (seconds)."""
    if t < 0:
        raise ValueError(f"negative timestamp: {t}")
    return int(t // HOUR_SECONDS)


def sample_index(t: float) -> int:
    """The 5-minute usage-sampling bucket containing time ``t``."""
    if t < 0:
        raise ValueError(f"negative timestamp: {t}")
    return int(t // SAMPLE_PERIOD_SECONDS)


def overlap(a_start: float, a_end: float, b_start: float, b_end: float) -> float:
    """Length of the intersection of intervals [a_start, a_end) and [b_start, b_end)."""
    lo = max(a_start, b_start)
    hi = min(a_end, b_end)
    return max(0.0, hi - lo)


def local_hour(t: float, utc_offset_hours: float) -> float:
    """Local wall-clock hour-of-day in [0, 24) for trace time ``t``.

    The trace origin is taken to be midnight UTC; cells carry a
    ``utc_offset_hours`` (e.g. Singapore = +8, US Pacific = -7 in May,
    which observes daylight saving).  Used to reproduce the figure 6
    same-local-time machine-utilization snapshot and the diurnal load
    cycle remarked on in section 4.1.
    """
    h = (t / HOUR_SECONDS + utc_offset_hours) % 24.0
    # Guard against -0.0 and floating point drift at the boundary.
    return math.fmod(h + 24.0, 24.0)
