"""Exception hierarchy for the repro library.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without
swallowing programming errors such as ``TypeError``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """A table or trace did not match the expected schema.

    Raised by the columnar engine for mismatched column lengths or unknown
    column names, and by trace readers for malformed trace files.
    """


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state.

    This always indicates a bug in the simulator or an impossible
    configuration (for example, a task larger than every machine), never a
    legitimate workload outcome.
    """


class ValidationError(ReproError):
    """A trace invariant (see paper section 9) was violated."""

    def __init__(self, invariant: str, detail: str = ""):
        self.invariant = invariant
        self.detail = detail
        message = invariant if not detail else f"{invariant}: {detail}"
        super().__init__(message)
