"""Shared utilities: deterministic RNG streams, time helpers, units, errors.

These are deliberately small and dependency-free (numpy only) so that every
other subpackage — the table engine, the simulator, the workload generators
and the analyses — can rely on them without import cycles.
"""

from repro.util.errors import ReproError, SchemaError, SimulationError, ValidationError
from repro.util.rng import RngFactory
from repro.util.timeutil import (
    DAY_SECONDS,
    HOUR_SECONDS,
    MINUTE_SECONDS,
    SAMPLE_PERIOD_SECONDS,
    hour_index,
    hours,
    sample_index,
)
from repro.util.units import clamp, normalize, safe_div

__all__ = [
    "ReproError",
    "SchemaError",
    "SimulationError",
    "ValidationError",
    "RngFactory",
    "DAY_SECONDS",
    "HOUR_SECONDS",
    "MINUTE_SECONDS",
    "SAMPLE_PERIOD_SECONDS",
    "hour_index",
    "hours",
    "sample_index",
    "clamp",
    "normalize",
    "safe_div",
]
