"""Noise-aware performance-regression detection over benchmark history.

``BENCH_simulator.json`` (written by the ``simulator-bench`` CI job
since PR 4) records the simulator's throughput, but until this module
nothing ever *read* it — the perf trajectory was ungated.  ``borg-repro
bench compare`` closes the loop: it diffs the current benchmark run
against a committed history (``BENCH_history/``) and exits nonzero on a
regression, so a slowdown fails CI instead of silently accumulating.

Methodology (DESIGN.md §11):

* **Minimum-of-rounds statistic.**  Wall-clock benchmark numbers on
  shared machines are the true cost plus nonnegative noise (scheduler
  preemption, thermal drift, cache pollution), so the *minimum* over a
  run's interleaved rounds is the best available estimator of the true
  cost; means and medians move with the noise floor.  The comparison
  statistic is ``min(current rounds)`` against ``min over history of
  min(rounds)`` — the same interleaved-minima discipline PR 4 used for
  its A/B measurements, applied across commits.
* **Relative threshold with a noise band.**  A benchmark regresses when
  ``current_min > baseline_min * (1 + threshold)``.  The threshold is
  the larger of the configured relative threshold (default 10%) and the
  observed historical spread of that benchmark's minima scaled by a
  noise factor — the gate never fires inside the band the history
  itself demonstrates to be noise.  An injected 20% slowdown is flagged
  at the default settings; an unchanged re-run passes.
* **Compact history entries.**  History files store only what the
  comparison needs (per-benchmark round data and summary stats, commit
  id, timestamp) in the ``repro.bench/1`` schema, so a growing history
  stays reviewable in diffs; ``bench append`` compacts a raw
  pytest-benchmark JSON into the next numbered entry.

Exit-code contract (the CI gate): 0 pass, 1 regression, 2 bad input.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

#: Compact history-entry schema (bump on incompatible layout changes).
BENCH_SCHEMA = "repro.bench/1"

#: Verdict JSON schema (the CI artifact).
VERDICT_SCHEMA = "repro.bench.verdict/1"

#: Default relative regression threshold (10%): trips on a 20% slowdown,
#: tolerates round-to-round jitter on an unchanged build.
DEFAULT_THRESHOLD = 0.10

#: Historical spread is scaled by this factor when widening the band.
DEFAULT_NOISE_FACTOR = 1.5

#: History filenames: ``00012-abc1234.json`` (index, short label).
_HISTORY_RE = re.compile(r"^(\d{5})-(.+)\.json$")


class BenchDataError(ValueError):
    """A benchmark file that cannot be read or has no usable stats."""


# ---------------------------------------------------------------------------
# loading / compaction
# ---------------------------------------------------------------------------

def _normalize(payload: dict, source: str) -> dict:
    """Either accepted format -> ``{name: {"min":…, "data": […]}}`` map.

    Accepts raw pytest-benchmark JSON (a ``benchmarks`` list of objects
    with ``stats``) and the compact ``repro.bench/1`` form; everything
    else is a :class:`BenchDataError`.
    """
    if payload.get("schema") == BENCH_SCHEMA:
        benchmarks = payload.get("benchmarks")
        if not isinstance(benchmarks, dict) or not benchmarks:
            raise BenchDataError(f"{source}: compact entry has no benchmarks")
        return {str(k): dict(v) for k, v in benchmarks.items()}
    entries = payload.get("benchmarks")
    if not isinstance(entries, list) or not entries:
        raise BenchDataError(
            f"{source}: neither a pytest-benchmark JSON nor a "
            f"{BENCH_SCHEMA} entry (no benchmarks found)")
    out: Dict[str, dict] = {}
    for entry in entries:
        stats = entry.get("stats") or {}
        name = entry.get("name") or entry.get("fullname")
        if not name or "min" not in stats:
            continue
        out[str(name)] = {
            "min": float(stats["min"]),
            "median": float(stats.get("median", stats["min"])),
            "mean": float(stats.get("mean", stats["min"])),
            "stddev": float(stats.get("stddev", 0.0)),
            "rounds": int(stats.get("rounds", len(stats.get("data", [])) or 1)),
            "data": [float(x) for x in stats.get("data", [])],
        }
    if not out:
        raise BenchDataError(f"{source}: no benchmark entries with stats")
    return out


def load_bench(path: Union[str, os.PathLike]) -> dict:
    """Load a benchmark file (either format) into the normalized map."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise BenchDataError(f"{path}: {exc}") from exc
    except ValueError as exc:
        raise BenchDataError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(payload, dict):
        raise BenchDataError(f"{path}: not a JSON object")
    return _normalize(payload, str(path))


def compact_bench(path: Union[str, os.PathLike],
                  label: Optional[str] = None) -> dict:
    """A raw benchmark JSON compacted into a ``repro.bench/1`` entry."""
    path = Path(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    commit = (payload.get("commit_info") or {}).get("id", "")
    return {
        "schema": BENCH_SCHEMA,
        "label": label or (commit[:7] if commit else path.stem),
        "commit": commit,
        "datetime": payload.get("datetime", ""),
        "machine": (payload.get("machine_info") or {}).get("node", ""),
        "benchmarks": _normalize(payload, str(path)),
    }


def history_entries(directory: Union[str, os.PathLike]) -> List[Path]:
    """The history files of ``directory``, oldest first (by index)."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    entries = []
    for path in directory.iterdir():
        match = _HISTORY_RE.match(path.name)
        if match:
            entries.append((int(match.group(1)), path))
    return [path for _, path in sorted(entries)]


def load_history(directory: Union[str, os.PathLike],
                 last: int = 0) -> List[dict]:
    """Normalized benchmark maps of the (last N) history entries."""
    paths = history_entries(directory)
    if last > 0:
        paths = paths[-last:]
    return [load_bench(path) for path in paths]


def append_history(directory: Union[str, os.PathLike],
                   bench_path: Union[str, os.PathLike],
                   label: Optional[str] = None) -> Path:
    """Compact ``bench_path`` into the next numbered history entry."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    existing = history_entries(directory)
    next_index = 1
    if existing:
        next_index = int(_HISTORY_RE.match(existing[-1].name).group(1)) + 1
    entry = compact_bench(bench_path, label=label)
    out = directory / f"{next_index:05d}-{entry['label']}.json"
    out.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    return out


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------

def robust_min(stats: dict) -> float:
    """The run's comparison statistic: minimum over its rounds."""
    data = stats.get("data") or []
    if data:
        return min(float(x) for x in data)
    return float(stats["min"])


@dataclass
class BenchVerdict:
    """One benchmark's comparison outcome."""

    name: str
    status: str  # "ok" | "regression" | "improvement" | "new" | "missing"
    current_min: Optional[float] = None
    baseline_min: Optional[float] = None
    ratio: Optional[float] = None
    threshold: Optional[float] = None
    history_runs: int = 0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "status": self.status,
            "current_min": self.current_min,
            "baseline_min": self.baseline_min,
            "ratio": self.ratio,
            "threshold": self.threshold,
            "history_runs": self.history_runs,
        }


@dataclass
class CompareResult:
    """The whole comparison: per-benchmark verdicts + the overall call."""

    verdicts: List[BenchVerdict] = field(default_factory=list)
    threshold: float = DEFAULT_THRESHOLD
    noise_factor: float = DEFAULT_NOISE_FACTOR
    history_runs: int = 0

    @property
    def regressions(self) -> List[BenchVerdict]:
        return [v for v in self.verdicts if v.status == "regression"]

    @property
    def passed(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        return {
            "schema": VERDICT_SCHEMA,
            "passed": self.passed,
            "threshold": self.threshold,
            "noise_factor": self.noise_factor,
            "history_runs": self.history_runs,
            "benchmarks": [v.to_dict() for v in self.verdicts],
        }

    def render(self) -> str:
        lines = [f"bench compare  ({len(self.verdicts)} benchmark(s) vs "
                 f"{self.history_runs} history run(s), "
                 f"threshold {self.threshold:.0%}, "
                 f"noise factor {self.noise_factor:g})"]
        for v in self.verdicts:
            if v.current_min is None or v.baseline_min is None:
                lines.append(f"  {v.status.upper():<11s} {v.name}")
                continue
            lines.append(
                f"  {v.status.upper():<11s} {v.name}: "
                f"{v.current_min * 1e3:.1f}ms vs baseline "
                f"{v.baseline_min * 1e3:.1f}ms "
                f"(x{v.ratio:.3f}, gate at x{1.0 + (v.threshold or 0):.3f})")
        lines.append("PASS" if self.passed else
                     f"FAIL: {len(self.regressions)} regression(s)")
        return "\n".join(lines) + "\n"


def compare(current: dict, history: Sequence[dict],
            threshold: float = DEFAULT_THRESHOLD,
            noise_factor: float = DEFAULT_NOISE_FACTOR) -> CompareResult:
    """Compare a normalized current run against normalized history runs.

    Per benchmark: the baseline is the best (smallest) minimum any
    history run achieved; the gate widens beyond ``threshold`` when the
    history's own minima are spread wider than the threshold (noise
    band).  Benchmarks new in the current run are reported ``new`` and
    never fail; benchmarks that disappeared are reported ``missing``
    and never fail (removals are reviewable in the diff that removed
    them).
    """
    if not history:
        raise BenchDataError("no history to compare against "
                             "(seed it with 'bench append')")
    result = CompareResult(threshold=threshold, noise_factor=noise_factor,
                           history_runs=len(history))
    baseline_names = set()
    for run in history:
        baseline_names.update(run.keys())
    for name in sorted(set(current) | baseline_names):
        stats = current.get(name)
        if stats is None:
            result.verdicts.append(BenchVerdict(name, "missing",
                                                history_runs=len(history)))
            continue
        mins = [robust_min(run[name]) for run in history if name in run]
        if not mins:
            result.verdicts.append(BenchVerdict(name, "new",
                                                history_runs=0))
            continue
        baseline = min(mins)
        spread = (max(mins) - min(mins)) / baseline if len(mins) > 1 else 0.0
        gate = max(threshold, noise_factor * spread)
        current_min = robust_min(stats)
        ratio = current_min / baseline
        if ratio > 1.0 + gate:
            status = "regression"
        elif ratio < 1.0 - gate:
            status = "improvement"
        else:
            status = "ok"
        result.verdicts.append(BenchVerdict(
            name, status, current_min=current_min, baseline_min=baseline,
            ratio=round(ratio, 4), threshold=round(gate, 4),
            history_runs=len(mins)))
    return result


def compare_files(current_path: Union[str, os.PathLike],
                  history_dir: Union[str, os.PathLike],
                  threshold: float = DEFAULT_THRESHOLD,
                  noise_factor: float = DEFAULT_NOISE_FACTOR,
                  last: int = 0) -> CompareResult:
    """File-level convenience wrapper used by the CLI and CI."""
    current = load_bench(current_path)
    history = load_history(history_dir, last=last)
    return compare(current, history, threshold=threshold,
                   noise_factor=noise_factor)
