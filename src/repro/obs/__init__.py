"""``repro.obs`` — zero-dependency metrics + span tracing.

The observability layer for the whole pipeline (DESIGN.md §9): a
process-local :class:`~repro.obs.registry.MetricsRegistry` of counters,
gauges and log-bucketed timing histograms (p50/p95/p99), plus nested
span tracing whose tree *structure* is deterministic for deterministic
programs.  Everything is stdlib-only and always on — recording costs a
dict lookup or an integer add, so there is no enable/disable state to
thread through the simulator, the store, or the analyses.

Usage::

    from repro import obs

    with obs.span("sim.run"):              # literal names only (RPR006)
        obs.inc("sim.events_processed")
        obs.gauge("sim.queue.pending_depth", depth)
        obs.observe("sim.round_seconds", dt)

    report = obs.run_report(command="simulate")

Fork safety: the store executor runs each worker-side chunk task inside
:func:`scoped_registry` and merges the resulting :class:`Snapshot` into
the parent exactly once (:meth:`MetricsRegistry.merge_snapshot`), so
serial and parallel runs agree on every counter.
"""

import functools

from repro.obs.profiler import PROFILE_SCHEMA, SamplingProfiler
from repro.obs.recorder import (
    FRAMES_SCHEMA,
    CellRecorder,
    FrameSchemaError,
    FrameSink,
    RunRecorder,
    StatusLine,
    frames_fingerprint,
    read_frames,
    recover_jsonl,
    render_frames,
    strip_volatile,
)
from repro.obs.registry import (
    Counter,
    MetricsRegistry,
    current_span_node,
    get_registry,
    scoped_registry,
    set_registry,
)
from repro.obs.report import (
    SCHEMA,
    load_report,
    render_report,
    run_report,
    snapshot_report,
    write_report,
)
from repro.obs.snapshot import Snapshot
from repro.obs.spans import Span, SpanNode
from repro.obs.timing import TimingHistogram


def span(name: str) -> Span:
    """``with obs.span("store.scan"):`` — record into the current registry."""
    return get_registry().span(name)


def traced(name: str):
    """Decorator form of :func:`span`: time every call of a function.

    The span name must be a literal string at the decoration site
    (RPR006), and the registry is resolved per call, so scoped
    registries see the spans of calls made inside them.
    """
    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with get_registry().span(name):
                return fn(*args, **kwargs)
        return wrapper
    return decorate


def inc(name: str, n: int = 1) -> None:
    """Increment a counter in the current registry."""
    get_registry().inc(name, n)


def counter(name: str) -> Counter:
    """A stable counter handle (bind once outside hot loops)."""
    return get_registry().counter(name)


def gauge(name: str, value: float) -> None:
    """Set a last-value gauge in the current registry."""
    get_registry().gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record one sample into a timing/value histogram."""
    get_registry().observe(name, value)


def timer(name: str) -> TimingHistogram:
    """A stable timing-histogram handle in the current registry."""
    return get_registry().timer(name)


def snapshot() -> Snapshot:
    """Plain-data snapshot of the current registry."""
    return get_registry().snapshot()


def reset() -> None:
    """Clear the current registry (tests and CLI entry points)."""
    get_registry().reset()


__all__ = [
    "CellRecorder",
    "Counter",
    "FRAMES_SCHEMA",
    "FrameSchemaError",
    "FrameSink",
    "MetricsRegistry",
    "PROFILE_SCHEMA",
    "RunRecorder",
    "SCHEMA",
    "SamplingProfiler",
    "Snapshot",
    "Span",
    "SpanNode",
    "StatusLine",
    "TimingHistogram",
    "counter",
    "current_span_node",
    "frames_fingerprint",
    "gauge",
    "get_registry",
    "inc",
    "load_report",
    "observe",
    "read_frames",
    "recover_jsonl",
    "render_frames",
    "render_report",
    "reset",
    "run_report",
    "scoped_registry",
    "set_registry",
    "snapshot",
    "snapshot_report",
    "span",
    "strip_volatile",
    "timer",
    "traced",
    "write_report",
]
