"""A zero-dependency sampling profiler with an overhead budget.

``borg-repro simulate --profile`` answers "where did the run's CPU go?"
without installing anything: a periodic sampler captures the Python
call stack, aggregates identical stacks, and produces

* a **hot-function table** (self/cumulative sample counts per
  function) that lands in the ``--obs-out`` run report and the
  ``stats`` rendering, and
* a **collapsed-stack file** (``frame;frame;frame count`` per line —
  the flamegraph.pl / speedscope interchange format) for flame graphs.

Two engines, both stdlib-only:

``signal`` (default where available)
    ``signal.setitimer(ITIMER_PROF, interval)`` delivers ``SIGPROF``
    every ``interval`` seconds of *CPU* time; the handler walks the
    interrupted frame's back-chain and counts one stack.  Sampling cost
    is proportional to wall samples, not to events — at the default
    5 ms CPU cadence the measured overhead on the simulator throughput
    benchmark is well under the 5% budget (enforced by
    ``tests/test_obs_profiler.py``).  Only usable in the main thread of
    the main interpreter (a signal constraint).

``setprofile`` (fallback)
    ``sys.setprofile`` fires on every call/return; the hook counts
    calls and captures a stack every N-th call event.  Much higher
    constant overhead (the hook itself is a Python call per event), so
    it is only selected where signals are unavailable; it exists so
    ``--profile`` degrades instead of failing on exotic platforms or
    non-main threads.

The profiler is **off by default** everywhere: no hook is installed and
no hot-path code pays anything unless ``--profile`` is given (lint rule
RPR007 additionally forbids unguarded profiler calls in simulator
loops).
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

#: The profile payload schema embedded in obs run reports.
PROFILE_SCHEMA = "repro.obs.profile/1"

#: Default sampling cadence (seconds of CPU time between SIGPROF ticks).
DEFAULT_INTERVAL = 0.005

#: Frames kept per captured stack (deeper tails are folded into the root).
MAX_STACK_DEPTH = 64

#: setprofile fallback: capture one stack every N-th call event.
SETPROFILE_STRIDE = 512


def _signal_engine_available() -> bool:
    return (hasattr(signal, "setitimer")
            and hasattr(signal, "SIGPROF")
            and threading.current_thread() is threading.main_thread())


def _frame_label(code) -> str:
    """``module:qualname`` — short, stable, flamegraph-friendly.

    Spaces are folded to underscores: the collapsed-stack format
    reserves the last space-separated field for the count, and frozen
    modules (``<frozen runpy>``) put spaces in filenames.
    """
    name = getattr(code, "co_qualname", None) or code.co_name
    return f"{Path(code.co_filename).stem}:{name}".replace(" ", "_")


class SamplingProfiler:
    """Collects stack samples; query with :meth:`hot_table` / :meth:`collapsed`.

    Use as a context manager around the region to profile::

        with SamplingProfiler() as prof:
            run()
        print(prof.hot_table(10))
    """

    def __init__(self, interval: float = DEFAULT_INTERVAL,
                 engine: str = "auto",
                 max_depth: int = MAX_STACK_DEPTH,
                 stride: int = SETPROFILE_STRIDE) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if engine not in ("auto", "signal", "setprofile"):
            raise ValueError(f"unknown profiler engine {engine!r}")
        if engine == "auto":
            engine = "signal" if _signal_engine_available() else "setprofile"
        if engine == "signal" and not _signal_engine_available():
            raise ValueError("signal engine needs setitimer/SIGPROF in the "
                             "main thread; use engine='setprofile'")
        self.engine = engine
        self.interval = float(interval)
        self.max_depth = int(max_depth)
        self.stride = max(1, int(stride))
        #: stack (root-first tuple of code objects) -> sample count.
        self._samples: Dict[Tuple, int] = {}
        self.sample_count = 0
        self.started_at: Optional[float] = None
        self.wall_seconds = 0.0
        self._running = False
        self._old_handler = None
        self._old_profile = None
        self._calls = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            raise ValueError("profiler already running")
        self._running = True
        self.started_at = time.perf_counter()
        if self.engine == "signal":
            self._old_handler = signal.signal(signal.SIGPROF, self._on_signal)
            signal.setitimer(signal.ITIMER_PROF, self.interval, self.interval)
        else:
            self._old_profile = sys.getprofile()
            sys.setprofile(self._on_profile_event)

    def stop(self) -> None:
        if not self._running:
            return
        if self.engine == "signal":
            signal.setitimer(signal.ITIMER_PROF, 0.0, 0.0)
            signal.signal(signal.SIGPROF, self._old_handler or signal.SIG_DFL)
            self._old_handler = None
        else:
            sys.setprofile(self._old_profile)
            self._old_profile = None
        self._running = False
        if self.started_at is not None:
            self.wall_seconds += time.perf_counter() - self.started_at

    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # -- capture --------------------------------------------------------------

    def _capture(self, frame) -> None:
        # Runs inside a signal handler: touch as little as possible —
        # walk code objects into a tuple, one dict update, done.
        # Labeling and aggregation happen at query time.
        stack = []
        depth = 0
        while frame is not None and depth < self.max_depth:
            stack.append(frame.f_code)
            frame = frame.f_back
            depth += 1
        stack.reverse()
        key = tuple(stack)
        self._samples[key] = self._samples.get(key, 0) + 1
        self.sample_count += 1

    def _on_signal(self, signum, frame) -> None:
        self._capture(frame)

    def _on_profile_event(self, frame, event, arg) -> None:
        if event != "call":
            return
        self._calls += 1
        if self._calls % self.stride:
            return
        self._capture(frame)

    # -- queries --------------------------------------------------------------

    def hot_table(self, top: int = 20) -> List[dict]:
        """Per-function sample aggregation, hottest self-time first.

        ``self`` counts samples where the function was the leaf (on
        CPU); ``cum`` counts samples where it appeared anywhere on the
        stack (at most once per sample).  Percentages are of total
        samples.
        """
        total = self.sample_count
        self_counts: Dict[str, int] = {}
        cum_counts: Dict[str, int] = {}
        for stack, n in self._samples.items():
            if not stack:
                continue
            leaf = _frame_label(stack[-1])
            self_counts[leaf] = self_counts.get(leaf, 0) + n
            for label in {_frame_label(code) for code in stack}:
                cum_counts[label] = cum_counts.get(label, 0) + n
        rows = [
            {
                "func": label,
                "self": n,
                "cum": cum_counts[label],
                "self_pct": round(100.0 * n / total, 1) if total else 0.0,
                "cum_pct": round(100.0 * cum_counts[label] / total, 1)
                    if total else 0.0,
            }
            for label, n in self_counts.items()
        ]
        rows.sort(key=lambda r: (-r["self"], -r["cum"], r["func"]))
        return rows[:top]

    def collapsed(self) -> List[str]:
        """Collapsed-stack lines (``a;b;c count``), sorted for stability."""
        folded: Dict[str, int] = {}
        for stack, n in self._samples.items():
            key = ";".join(_frame_label(code) for code in stack)
            folded[key] = folded.get(key, 0) + n
        return [f"{key} {n}" for key, n in sorted(folded.items())]

    def write_collapsed(self, path: Union[str, os.PathLike]) -> int:
        """Write the collapsed-stack file; returns the line count."""
        lines = self.collapsed()
        Path(path).write_text("\n".join(lines) + ("\n" if lines else ""),
                              encoding="utf-8")
        return len(lines)

    def to_dict(self, top: int = 30) -> dict:
        """The report payload: engine, cadence, totals, hot table."""
        return {
            "schema": PROFILE_SCHEMA,
            "engine": self.engine,
            "interval_s": self.interval,
            "samples": self.sample_count,
            "wall_s": round(self.wall_seconds, 3),
            "hot": self.hot_table(top),
        }
