"""Run reports: the machine-readable (and human-renderable) obs export.

``--obs-out report.json`` on the CLI writes :func:`run_report` of the
process's registry at exit; ``borg-repro stats report.json`` renders it
back as text.  The JSON groups metrics into per-subsystem *sections*
keyed by the metric name's first dotted component, and the ``sim``,
``store`` and ``analysis`` sections are always present (empty when a
command never touched that layer) so downstream trajectory tooling can
index them unconditionally.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Dict, List, Optional, TextIO, Union

from repro.obs.registry import MetricsRegistry, get_registry
from repro.obs.snapshot import Snapshot
from repro.obs.timing import TimingHistogram

#: The report schema identifier (bump on incompatible layout changes).
SCHEMA = "repro.obs/1"

#: Sections that are always present in a report, even when empty.
CORE_SECTIONS = ("sim", "store", "analysis")


def _section_of(name: str) -> str:
    return name.split(".", 1)[0] if "." in name else "other"


def _empty_section() -> dict:
    return {"counters": {}, "gauges": {}, "timers": {}}


def run_report(command: str = "", meta: Optional[dict] = None,
               registry: Optional[MetricsRegistry] = None,
               profile: Optional[dict] = None) -> dict:
    """The full run report of ``registry`` (default: the current one).

    ``profile`` is an optional sampling-profiler payload
    (:meth:`repro.obs.profiler.SamplingProfiler.to_dict`); when given it
    is embedded under the report's ``"profile"`` key and rendered as a
    hot-function table by ``borg-repro stats``.
    """
    snapshot = (registry or get_registry()).snapshot()
    sections: Dict[str, dict] = {name: _empty_section()
                                 for name in CORE_SECTIONS}
    for name, value in sorted(snapshot.counters.items()):
        sections.setdefault(_section_of(name), _empty_section())[
            "counters"][name] = value
    for name, value in sorted(snapshot.gauges.items()):
        sections.setdefault(_section_of(name), _empty_section())[
            "gauges"][name] = value
    for name, data in sorted(snapshot.timers.items()):
        summary = TimingHistogram.from_dict(data).summary()
        sections.setdefault(_section_of(name), _empty_section())[
            "timers"][name] = summary
    report = {
        "schema": SCHEMA,
        "command": command,
        "meta": dict(meta or {}),
        "sections": sections,
        "spans": snapshot.spans,
    }
    if profile is not None:
        report["profile"] = dict(profile)
    return report


def write_report(path: Union[str, os.PathLike], command: str = "",
                 meta: Optional[dict] = None,
                 registry: Optional[MetricsRegistry] = None,
                 profile: Optional[dict] = None) -> dict:
    """Write :func:`run_report` to ``path`` as stable, diffable JSON."""
    report = run_report(command=command, meta=meta, registry=registry,
                        profile=profile)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    return report


def load_report(path: Union[str, os.PathLike]) -> dict:
    """Read a report written by :func:`write_report`, checking the schema."""
    with open(path, "r", encoding="utf-8") as f:
        report = json.load(f)
    schema = report.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: not a repro.obs run report "
            f"(schema {schema!r}, expected {SCHEMA!r})")
    return report


# -- text rendering -----------------------------------------------------------

def _fmt_seconds(value: float) -> str:
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.1f}ms"
    return f"{value * 1e6:.0f}us"


def _render_span(lines: List[str], node: dict, depth: int) -> None:
    label = "  " * depth + node["name"]
    lines.append(f"  {label:<44s} count={node['count']:<8d} "
                 f"total={_fmt_seconds(node['total_s'])}")
    for child in node.get("children", []):
        _render_span(lines, child, depth + 1)


def render_report(report: dict) -> str:
    """Human-readable rendering of a run report (the ``stats`` output)."""
    lines: List[str] = []
    command = report.get("command") or "-"
    lines.append(f"repro.obs run report  (schema {report['schema']}, "
                 f"command: {command})")
    meta = report.get("meta") or {}
    if meta:
        rendered = "  ".join(f"{k}={v}" for k, v in sorted(meta.items()))
        lines.append(f"meta: {rendered}")

    profile = report.get("profile") or {}
    if profile:
        lines.append("")
        lines.append(f"profile ({profile.get('engine', '?')} engine, "
                     f"{profile.get('samples', 0)} samples, "
                     f"interval {profile.get('interval_s', 0.0):g}s):")
        lines.append(f"  {'self%':>6s} {'cum%':>6s} {'self':>7s} "
                     f"{'cum':>7s}  function")
        for row in profile.get("hot", [])[:20]:
            lines.append(f"  {row.get('self_pct', 0.0):>6.1f} "
                         f"{row.get('cum_pct', 0.0):>6.1f} "
                         f"{row.get('self', 0):>7d} {row.get('cum', 0):>7d}"
                         f"  {row.get('func', '?')}")
        if not profile.get("hot"):
            lines.append("  (no samples collected)")

    spans = report.get("spans") or {}
    children = spans.get("children", [])
    lines.append("")
    lines.append("spans (wall time per tree):")
    if children:
        for child in children:
            _render_span(lines, child, 0)
    else:
        lines.append("  (none recorded)")

    for section_name, section in report.get("sections", {}).items():
        counters = section.get("counters", {})
        gauges = section.get("gauges", {})
        timers = section.get("timers", {})
        if not (counters or gauges or timers):
            continue
        lines.append("")
        lines.append(f"[{section_name}]")
        for name, value in counters.items():
            lines.append(f"  {name:<44s} {value}")
        for name, value in gauges.items():
            lines.append(f"  {name:<44s} {value:g} (gauge)")
        for name, summary in timers.items():
            lines.append(
                f"  {name:<44s} n={summary['count']:<7d} "
                f"p50={_fmt_seconds(summary['p50'])} "
                f"p95={_fmt_seconds(summary['p95'])} "
                f"p99={_fmt_seconds(summary['p99'])} "
                f"sum={_fmt_seconds(summary['sum'])}")
    return "\n".join(lines) + "\n"


def print_report(report: dict, stream: Optional[TextIO] = None) -> None:
    (stream or sys.stdout).write(render_report(report))


def snapshot_report(snapshot: Snapshot, command: str = "") -> dict:
    """A report built from an already-taken snapshot (tests, tooling)."""
    registry = MetricsRegistry()
    registry.merge_snapshot(snapshot)
    return run_report(command=command, registry=registry)
