"""The process-local metrics registry and the module-global current one.

One :class:`MetricsRegistry` holds everything the observability layer
records in this process: monotonically-increasing **counters**,
last-value **gauges**, log-bucketed **timers** (value histograms with
p50/p95/p99), and the aggregated **span tree**.  All of it is cheap,
allocation-light, and synchronous — the hot paths it instruments (the
simulator event loop, the store chunk pipeline) pay one dict lookup or
one integer add per record.

There is always a *current* registry (:func:`get_registry`); library
code records into it unconditionally, so instrumentation has no on/off
state to thread through APIs.  :func:`scoped_registry` swaps in a fresh
registry for a ``with`` block and is the fork-safety primitive: the
store executor runs each worker-side chunk task inside one, ships the
resulting :class:`~repro.obs.snapshot.Snapshot` home with the payload,
and the parent merges it exactly once via :meth:`MetricsRegistry.merge_snapshot`.

The registry is deliberately not thread-safe: the simulator and the
store executor are single-threaded per process (parallelism is by
``multiprocessing``), and taking a lock per counter increment would
cost more than the metrics themselves.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator, Optional

from repro.obs.snapshot import Snapshot
from repro.obs.spans import Span, SpanNode, SpanTree
from repro.obs.timing import TimingHistogram


class Counter:
    """A monotonically-increasing integer; handles are stable objects so
    hot loops can bind one once and skip the name lookup per event."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:
        return f"Counter({self.value})"


class MetricsRegistry:
    """Counters + gauges + timers + the span tree for one process."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, float] = {}
        self._timers: Dict[str, TimingHistogram] = {}
        self.spans = SpanTree()

    # -- counters ------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The named counter handle (created at zero on first use)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = Counter()
            self._counters[name] = counter
        return counter

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    # -- gauges ----------------------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        """Set a last-value gauge (queue depth, pool size, ...)."""
        self._gauges[name] = float(value)

    # -- timers ----------------------------------------------------------------

    def timer(self, name: str) -> TimingHistogram:
        """The named timing histogram (created empty on first use)."""
        timer = self._timers.get(name)
        if timer is None:
            timer = TimingHistogram()
            self._timers[name] = timer
        return timer

    def observe(self, name: str, value: float) -> None:
        self.timer(name).observe(value)

    # -- spans -----------------------------------------------------------------

    def span(self, name: str) -> Span:
        """``with registry.span("sim.round"):`` — see :class:`~repro.obs.spans.Span`."""
        return Span(name, registry=self)

    # -- snapshot / merge ------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """This registry's state as plain (picklable) data."""
        return Snapshot(
            counters={name: c.value for name, c in self._counters.items()},
            gauges=dict(self._gauges),
            timers={name: t.to_dict() for name, t in self._timers.items()},
            spans=self.spans.root.to_dict(),
        )

    def merge_snapshot(self, snapshot: Snapshot) -> None:
        """Fold a child snapshot in (exactly once per snapshot).

        Counters add, gauges take the snapshot's value (merge order is
        task order, hence deterministic), timers merge bucket-wise, and
        the snapshot's span children graft under the *currently open*
        span — so work recorded by a child process appears inside the
        parent span that dispatched it.
        """
        for name, value in snapshot.counters.items():
            if value:
                self.inc(name, value)
        for name, value in snapshot.gauges.items():
            self._gauges[name] = value
        for name, data in snapshot.timers.items():
            self.timer(name).merge(TimingHistogram.from_dict(data))
        incoming = snapshot.span_root()
        target = self.spans.current
        for name, child in incoming.children.items():
            target.child(name).merge(child)

    def reset(self) -> None:
        """Drop every metric and start a fresh span tree."""
        self._counters.clear()
        self._gauges.clear()
        self._timers.clear()
        self.spans = SpanTree()


#: The module-global current registry; swap with scoped_registry().
_CURRENT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The registry all module-level helpers record into right now."""
    return _CURRENT


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as current; returns the previous one."""
    global _CURRENT
    previous = _CURRENT
    _CURRENT = registry
    return previous


@contextlib.contextmanager
def scoped_registry(registry: Optional[MetricsRegistry] = None
                    ) -> Iterator[MetricsRegistry]:
    """Swap in a fresh (or given) registry for the duration of the block.

    Used by tests that need isolation and by the store executor's
    worker-side task wrapper, where it guarantees a child task's metrics
    are exactly the delta of that task — even under ``fork`` start
    methods, where the child begins with a *copy* of the parent's
    registry that must not be re-counted on merge.
    """
    fresh = registry if registry is not None else MetricsRegistry()
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


def current_span_node() -> SpanNode:
    """The currently-open span node (the root when none is open)."""
    return _CURRENT.spans.current
