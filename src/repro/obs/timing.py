"""Log-bucketed value histograms with mergeable percentile estimates.

The registry's *timer* metric: every observed value (usually a span or
phase duration in seconds) lands in one of a fixed set of geometric
buckets — ten per decade from 1e-6 to 1e4, plus underflow and overflow —
alongside exact ``count``/``sum``/``min``/``max``.  Fixed edges make two
histograms mergeable by plain bucket-count addition, which is what lets
child-process snapshots fold into the parent registry without loss
(beyond bucket resolution) and without ordering sensitivity.

Percentiles (p50/p95/p99) are estimated by walking the cumulative bucket
counts and interpolating linearly inside the target bucket, clamped to
the exact observed ``[min, max]``; with ten buckets per decade the
relative error is bounded by ~26% of the value, plenty for spotting
order-of-magnitude regressions in phase timings.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

#: Geometric bucket grid: 10 buckets per decade over [1e-6, 1e4) seconds.
_LOG_MIN = -6.0
_LOG_MAX = 4.0
_PER_DECADE = 10
#: Interior buckets plus one underflow (index 0) and one overflow (last).
N_BUCKETS = int((_LOG_MAX - _LOG_MIN) * _PER_DECADE) + 2


def bucket_index(value: float) -> int:
    """Which bucket ``value`` falls in (0 = underflow, last = overflow)."""
    if value < 10.0 ** _LOG_MIN:
        return 0
    log = math.log10(value)
    if log >= _LOG_MAX:
        return N_BUCKETS - 1
    return 1 + int((log - _LOG_MIN) * _PER_DECADE)


def bucket_bounds(index: int) -> tuple:
    """The ``[lo, hi)`` value range of bucket ``index``."""
    if index <= 0:
        return (0.0, 10.0 ** _LOG_MIN)
    if index >= N_BUCKETS - 1:
        return (10.0 ** _LOG_MAX, math.inf)
    lo = 10.0 ** (_LOG_MIN + (index - 1) / _PER_DECADE)
    hi = 10.0 ** (_LOG_MIN + index / _PER_DECADE)
    return (lo, hi)


class TimingHistogram:
    """One mergeable histogram: fixed log buckets + exact count/sum/min/max."""

    __slots__ = ("count", "total", "min", "max", "_buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._buckets: List[int] = [0] * N_BUCKETS

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._buckets[bucket_index(value)] += 1

    # -- queries -------------------------------------------------------------

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Estimated ``p``-th percentile (``0 < p <= 100``)."""
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile must be in (0, 100], got {p}")
        if self.count == 0:
            return 0.0
        target = math.ceil(self.count * (p / 100.0))
        seen = 0
        for index, n in enumerate(self._buckets):
            if n == 0:
                continue
            if seen + n >= target:
                lo, hi = bucket_bounds(index)
                # Interpolate linearly within the bucket, clamped to the
                # exact observed range (the overflow bucket's hi is inf).
                fraction = (target - seen) / n
                hi = min(hi, self.max if self.max is not None else hi)
                lo = max(lo, self.min if self.min is not None else lo)
                if not math.isfinite(hi) or hi < lo:
                    return lo
                return lo + (hi - lo) * fraction
            seen += n
        return self.max or 0.0

    # -- merge / serialization ------------------------------------------------

    def merge(self, other: "TimingHistogram") -> None:
        """Fold ``other`` into this histogram (bucket-count addition)."""
        self.count += other.count
        self.total += other.total
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max
        for index, n in enumerate(other._buckets):
            if n:
                self._buckets[index] += n

    def to_dict(self) -> Dict[str, object]:
        """A plain-data form (picklable / JSONable); sparse bucket list."""
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": {str(i): n for i, n in enumerate(self._buckets) if n},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TimingHistogram":
        histogram = cls()
        histogram.count = int(data["count"])
        histogram.total = float(data["total"])
        histogram.min = None if data["min"] is None else float(data["min"])
        histogram.max = None if data["max"] is None else float(data["max"])
        for index, n in dict(data["buckets"]).items():
            histogram._buckets[int(index)] = int(n)
        return histogram

    def summary(self) -> Dict[str, float]:
        """The rendered form: count, sum, mean, min/max, p50/p95/p99."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }

    def __repr__(self) -> str:
        return (f"TimingHistogram(count={self.count}, mean={self.mean:.6f}, "
                f"max={self.max})")


def merge_histogram_dicts(into: Dict[str, TimingHistogram],
                          others: Sequence[Dict[str, object]]) -> None:
    """Merge serialized histogram dicts (name -> to_dict form) into live ones."""
    for data in others:
        for name, payload in data.items():
            histogram = into.get(name)
            if histogram is None:
                into[name] = TimingHistogram.from_dict(payload)
            else:
                histogram.merge(TimingHistogram.from_dict(payload))
