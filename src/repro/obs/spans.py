"""Span tracing: nested wall-time accounting with deterministic structure.

A *span* is a named region of work entered with ``with obs.span("x"):``.
Spans nest: entering a span while another is active makes it a child.
Rather than recording one node per entry (which would make trace size
proportional to event count), spans *aggregate* by position: all entries
of the same name under the same parent share one :class:`SpanNode`,
whose ``count`` and ``total`` accumulate.  The resulting tree's
**structure** — names, nesting, counts, sibling order (first-entry
order) — is a pure function of the program's control flow, so two runs
of a deterministic simulation produce identical structures even though
the recorded durations differ.  That is the contract the determinism
sweep test (and DESIGN.md §9) pins down.

Span names must be literal strings at the call site (lint rule RPR006):
a dynamic name would make the structure depend on data values and break
both the determinism contract and grep-ability.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

#: Structure form: (name, count, (child structures...)).
SpanStructure = Tuple[str, int, tuple]


class SpanNode:
    """One aggregated span: entry count, total seconds, ordered children."""

    __slots__ = ("name", "count", "total", "children")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        #: name -> child node, in first-entry order (dicts preserve it).
        self.children: Dict[str, SpanNode] = {}

    def child(self, name: str) -> "SpanNode":
        node = self.children.get(name)
        if node is None:
            node = SpanNode(name)
            self.children[name] = node
        return node

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total,
            "children": [c.to_dict() for c in self.children.values()],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SpanNode":
        node = cls(str(data["name"]))
        node.count = int(data["count"])
        node.total = float(data["total_s"])
        for child in data.get("children", []):
            node.children[str(child["name"])] = cls.from_dict(child)
        return node

    def structure(self) -> SpanStructure:
        """Durations stripped: (name, count, child structures)."""
        return (self.name, self.count,
                tuple(c.structure() for c in self.children.values()))

    def merge(self, other: "SpanNode") -> None:
        """Fold ``other`` (same name) into this node, recursively by name."""
        self.count += other.count
        self.total += other.total
        for name, child in other.children.items():
            self.child(name).merge(child)

    def __repr__(self) -> str:
        return (f"SpanNode({self.name!r}, count={self.count}, "
                f"total={self.total:.3f}s, children={list(self.children)})")


class SpanTree:
    """The live tree plus the currently-open span (a stack by parent links)."""

    def __init__(self) -> None:
        self.root = SpanNode("root")
        self._stack: List[SpanNode] = [self.root]

    @property
    def current(self) -> SpanNode:
        return self._stack[-1]

    def enter(self, name: str) -> SpanNode:
        node = self.current.child(name)
        self._stack.append(node)
        return node

    def exit(self, node: SpanNode, elapsed: float) -> None:
        if self._stack[-1] is not node:
            # Mis-nesting (an exit skipped by a non-context-manager use);
            # unwind to the matching node so the tree stays consistent.
            while len(self._stack) > 1 and self._stack[-1] is not node:
                self._stack.pop()
        if len(self._stack) > 1:
            self._stack.pop()
        node.count += 1
        node.total += elapsed


class Span:
    """The ``with obs.span("name")`` context manager.

    The registry is resolved at ``__enter__`` time, so a ``Span`` built
    before a :func:`repro.obs.scoped_registry` swap still records into
    whichever registry is current when the block actually runs.
    """

    __slots__ = ("name", "_registry", "_node", "_t0")

    def __init__(self, name: str, registry=None):
        self.name = name
        self._registry = registry
        self._node: Optional[SpanNode] = None
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        if self._registry is None:
            from repro.obs.registry import get_registry
            self._registry = get_registry()
        self._node = self._registry.spans.enter(self.name)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        elapsed = time.perf_counter() - self._t0
        self._registry.spans.exit(self._node, elapsed)
        self._registry.timer(self.name).observe(elapsed)
        self._registry = None
        self._node = None
