"""The flight recorder: streaming time-series frames of a live run.

The obs layer's report (:mod:`repro.obs.report`) is an *end-of-run*
snapshot; a 30-day simulated cell is observable only after it finishes.
The recorder closes that gap: while ``borg-repro simulate --record``
runs, it samples the live :class:`~repro.obs.registry.MetricsRegistry`
on a simulated-time cadence and appends one JSONL *frame* per sample to
a buffered, crash-safe sink — so the run can be watched, plotted, and
post-mortemed hour by hour, even if the process dies mid-flight.

Frame schema (``repro.obs.frames/1``), one JSON object per line:

* deterministic payload — ``cell``, per-cell ``seq``, the simulated
  timestamp ``t_sim`` (a frame-interval boundary), cumulative per-cell
  ``counters``, last-value ``gauges``, and live ``queues`` depths
  (pending/parked, probed from the simulator directly).  At a fixed
  seed this payload is byte-identical run to run *and* identical
  between serial and ``--workers N`` execution, because recording
  always scopes one fresh registry per cell (the driver's fork-safety
  pattern) so frames only ever see their own cell's delta.
* volatile payload — everything wall-clock-flavored lives under the
  single ``"wall"`` key (elapsed seconds, events/sec, RSS) and is
  excluded from determinism comparisons (:func:`strip_volatile`).

The run ends with one ``"final"`` frame sampled from the parent
registry after all cells merged; its cumulative counters equal the
``--obs-out`` report's counters exactly (same snapshot source).

Crash safety: the sink appends whole lines and flushes on a small
frame-count cadence; on opening an existing file it truncates a
trailing partial line (a crash mid-write) so the file is always a
valid JSONL prefix of the run.  See DESIGN.md §11.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import sys
import time
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, TextIO, Union

from repro.obs.registry import MetricsRegistry, get_registry
from repro.util.timeutil import HOUR_SECONDS

#: The frames schema identifier (bump on incompatible frame layout changes).
FRAMES_SCHEMA = "repro.obs.frames/1"

#: Frame keys that may differ between two runs of the same seed (wall
#: clock, memory, rates).  Everything else is part of the determinism
#: contract.
VOLATILE_KEYS = ("wall",)

#: Default sampling cadence: one frame per simulated hour.
DEFAULT_INTERVAL = HOUR_SECONDS

#: Frames buffered in the sink before a flush reaches the OS.
SINK_BUFFER_FRAMES = 8


class FrameSchemaError(ValueError):
    """A frames file with a missing, foreign, or unsupported schema."""


# ---------------------------------------------------------------------------
# sink
# ---------------------------------------------------------------------------

def recover_jsonl(path: Union[str, os.PathLike]) -> int:
    """Truncate a trailing partial line of ``path``; return bytes dropped.

    A process killed mid-``write`` can leave the final line of an
    append-only JSONL file incomplete (no newline, or syntactically
    broken JSON).  Every complete, newline-terminated line was written
    atomically from the writer's buffer, so recovery is: keep the
    longest prefix ending in a newline whose final line parses, drop
    the rest.  Missing files recover to nothing (0 bytes dropped).
    """
    path = Path(path)
    if not path.exists():
        return 0
    data = path.read_bytes()
    if not data:
        return 0
    keep = len(data)
    if not data.endswith(b"\n"):
        cut = data.rfind(b"\n")
        keep = cut + 1 if cut >= 0 else 0
    # The last retained line must itself parse (a crash can land exactly
    # on a flush boundary mid-buffer in pathological filesystems).
    while keep > 0:
        start = data.rfind(b"\n", 0, keep - 1) + 1
        try:
            json.loads(data[start:keep].decode("utf-8"))
            break
        except (ValueError, UnicodeDecodeError):
            keep = start
    dropped = len(data) - keep
    if dropped:
        with open(path, "r+b") as f:
            f.truncate(keep)
    return dropped


class FrameSink:
    """Buffered, crash-safe, append-only JSONL writer for frames.

    Frames are serialized to compact single-line JSON with sorted keys
    (stable, diffable output) and buffered; every
    ``SINK_BUFFER_FRAMES`` appends — and on :meth:`flush`/:meth:`close`
    — the buffer is written and flushed to the OS in one call, so a
    crash loses at most the buffered tail and never interleaves partial
    lines.  Opening a path that already exists first runs
    :func:`recover_jsonl` and then appends.
    """

    def __init__(self, path: Union[str, os.PathLike],
                 buffer_frames: int = SINK_BUFFER_FRAMES,
                 append: bool = False) -> None:
        self.path = Path(path)
        self.frames_written = 0
        self._buffer: List[str] = []
        self._buffer_frames = max(1, buffer_frames)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if append:
            self.recovered_bytes = recover_jsonl(self.path)
            self._file: Optional[TextIO] = open(self.path, "a",
                                                encoding="utf-8")
        else:
            self.recovered_bytes = 0
            self._file = open(self.path, "w", encoding="utf-8")

    def append(self, frame: dict) -> None:
        """Queue one frame; flushes on the buffering cadence."""
        if self._file is None:
            raise ValueError(f"FrameSink({self.path}) is closed")
        self._buffer.append(
            json.dumps(frame, sort_keys=True, separators=(",", ":")))
        self.frames_written += 1
        if len(self._buffer) >= self._buffer_frames:
            self.flush()

    def flush(self) -> None:
        if self._buffer and self._file is not None:
            self._file.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self.flush()
            self._file.close()
            self._file = None

    def __enter__(self) -> "FrameSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------------
# reading / determinism helpers
# ---------------------------------------------------------------------------

def strip_volatile(frame: dict) -> dict:
    """The frame's deterministic payload (volatile keys removed)."""
    return {k: v for k, v in frame.items() if k not in VOLATILE_KEYS}


def frames_fingerprint(frames: List[dict]) -> str:
    """SHA-256 over the deterministic payload of a frame sequence."""
    h = hashlib.sha256()
    for frame in frames:
        h.update(json.dumps(strip_volatile(frame), sort_keys=True,
                            separators=(",", ":")).encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def iter_frames(stream: Union[TextIO, io.TextIOBase],
                source: str = "<frames>") -> Iterator[dict]:
    """Parse frames from an open JSONL stream, validating each schema."""
    for lineno, line in enumerate(stream, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            frame = json.loads(line)
        except ValueError as exc:
            raise FrameSchemaError(
                f"{source}:{lineno}: not valid JSONL ({exc})") from exc
        if not isinstance(frame, dict):
            raise FrameSchemaError(
                f"{source}:{lineno}: frame is not a JSON object")
        schema = frame.get("schema")
        if schema != FRAMES_SCHEMA:
            raise FrameSchemaError(
                f"{source}:{lineno}: unsupported frames schema {schema!r} "
                f"(this build reads {FRAMES_SCHEMA!r})")
        yield frame


def read_frames(path: Union[str, os.PathLike]) -> List[dict]:
    """Load every frame of a ``repro.obs.frames/1`` JSONL file."""
    path = Path(path)
    with open(path, "r", encoding="utf-8") as f:
        return list(iter_frames(f, source=str(path)))


# ---------------------------------------------------------------------------
# sampling
# ---------------------------------------------------------------------------

def _read_rss_kb() -> Optional[int]:
    """Resident set size in KiB, or None where /proc is unavailable."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as f:
            for line in f:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource
        return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)
    except (ImportError, OSError, ValueError):
        return None


class CellRecorder:
    """Samples one cell's metrics on a simulated-time cadence.

    The simulator calls :meth:`tick` from its event loop (behind an
    ``if recorder is not None`` guard — lint rule RPR007) with each
    event's simulated timestamp; whenever a frame-interval boundary is
    crossed, the recorder emits one frame per crossed boundary, stamped
    at the boundary time, carrying the registry state at the sampling
    point.  :meth:`finish` emits the remaining boundaries up to the
    horizon after the cell's counters are fully exported, so the last
    cell frame holds the cell's closing cumulative state.

    Recording runs inside a per-cell scoped registry in *every*
    execution mode (see :func:`repro.sim.driver.run_cells`), so the
    sampled counters are exactly this cell's delta and frames agree
    between serial and pooled runs.
    """

    #: Queue-depth probe names, bound by ``CellSim`` at attach time.
    PROBE_NAMES = ("pending", "parked")

    def __init__(self, cell: str, interval: float = DEFAULT_INTERVAL,
                 emit: Optional[Callable[[dict], None]] = None,
                 enabled: bool = True) -> None:
        if interval <= 0:
            raise ValueError(f"record interval must be positive, got {interval}")
        self.cell = cell
        self.interval = float(interval)
        self.enabled = enabled
        self.frames: List[dict] = []
        self._emit = emit if emit is not None else self.frames.append
        #: The simulated time of the next frame boundary — read directly
        #: by the event-loop guard, so keep it a plain attribute.
        self.next_due = float(interval)
        self.seq = 0
        self._probes: Dict[str, Callable[[], int]] = {}
        self._counters_probe: Optional[Callable[[], Dict[str, int]]] = None
        self._registry: Optional[MetricsRegistry] = None
        self._wall_start = time.perf_counter()
        self._wall_last = self._wall_start
        self._events_last = 0

    # -- wiring ---------------------------------------------------------------

    def attach(self, probes: Dict[str, Callable[[], int]],
               counters_probe: Optional[Callable[[], Dict[str, int]]] = None,
               ) -> None:
        """Bind live probes and the current registry.

        Called by ``CellSim`` once, inside the scoped registry the cell
        runs under; the registry is captured here so samples read the
        cell's own delta even while other registries exist.
        ``counters_probe`` returns the simulator's live integrity
        counters (unprefixed names); the sim only bulk-exports those to
        the registry at end of run, so sampling them live is what makes
        mid-run frames show schedule/eviction/restart progress.  At the
        horizon the probe values equal the exported registry values, so
        the overlay never desynchronizes the final cell frame.
        """
        self._probes = dict(probes)
        self._counters_probe = counters_probe
        self._registry = get_registry()
        self._wall_start = time.perf_counter()
        self._wall_last = self._wall_start

    # -- sampling -------------------------------------------------------------

    def tick(self, t_sim: float) -> None:
        """Hot-loop hook: emit frames for every boundary ``<= t_sim``."""
        while t_sim >= self.next_due:
            self._sample(self.next_due)
            self.next_due += self.interval

    def finish(self, horizon: float) -> None:
        """Emit the remaining boundary frames up to ``horizon`` inclusive.

        Called after the cell's counters are exported; trailing frames
        (simulated hours after the last event) repeat the closing state,
        which keeps the per-hour table regular out to the horizon.
        """
        while self.next_due <= horizon:
            self._sample(self.next_due)
            self.next_due += self.interval

    def _sample(self, t_frame: float) -> None:
        registry = self._registry if self._registry is not None \
            else get_registry()
        snapshot = registry.snapshot()
        counters = dict(snapshot.counters)
        if self._counters_probe is not None:
            for name, value in self._counters_probe().items():
                counters["sim." + name] = int(value)
        events = counters.get("sim.events_processed", 0)
        now = time.perf_counter()
        wall_delta = now - self._wall_last
        frame = {
            "schema": FRAMES_SCHEMA,
            "kind": "frame",
            "cell": self.cell,
            "seq": self.seq,
            "t_sim": t_frame,
            "counters": dict(sorted(counters.items())),
            "gauges": dict(sorted(snapshot.gauges.items())),
            "queues": {name: int(probe())
                       for name, probe in sorted(self._probes.items())},
            "wall": {
                "elapsed_s": round(now - self._wall_start, 6),
                "events_per_s": round(
                    (events - self._events_last) / wall_delta, 1)
                    if wall_delta > 0 else 0.0,
                "rss_kb": _read_rss_kb(),
            },
        }
        self._wall_last = now
        self._events_last = events
        self.seq += 1
        self._emit(frame)


# ---------------------------------------------------------------------------
# TTY status line
# ---------------------------------------------------------------------------

class StatusLine:
    """A single self-overwriting progress line on a TTY stream.

    Inert (every call a no-op) when the stream is not a terminal, so
    recording in CI or under redirection never interleaves control
    characters into logs.
    """

    def __init__(self, stream: Optional[TextIO] = None,
                 enabled: Optional[bool] = None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        if enabled is None:
            enabled = bool(getattr(self._stream, "isatty", lambda: False)())
        self.enabled = enabled
        self._width = 0
        self._dirty = False

    def update(self, text: str) -> None:
        if not self.enabled:
            return
        pad = max(0, self._width - len(text))
        self._stream.write("\r" + text + " " * pad)
        self._stream.flush()
        self._width = len(text)
        self._dirty = True

    def close(self, keep_last: bool = False) -> None:
        """End the status line (newline if anything was drawn)."""
        if not self.enabled or not self._dirty:
            return
        if keep_last:
            self._stream.write("\n")
        else:
            self._stream.write("\r" + " " * self._width + "\r")
        self._stream.flush()
        self._dirty = False
        self._width = 0


def _fmt_count(n: float) -> str:
    if n >= 1e6:
        return f"{n / 1e6:.1f}M"
    if n >= 1e3:
        return f"{n / 1e3:.1f}k"
    return f"{n:.0f}"


# ---------------------------------------------------------------------------
# run orchestration
# ---------------------------------------------------------------------------

class RunRecorder:
    """The whole-run recorder: one sink, many cells, one final frame.

    Built by the CLI when ``--record`` is given and handed to
    :func:`repro.sim.driver.run_cells`.  In serial mode each cell's
    frames stream straight into the sink as they are sampled; in pooled
    mode each worker collects its cell's frames in memory and the
    parent appends them in task order as cells complete — either way
    the file holds each cell's frames contiguously, in scenario order,
    with identical deterministic payloads.
    """

    def __init__(self, path: Union[str, os.PathLike],
                 interval: float = DEFAULT_INTERVAL,
                 status: Optional[StatusLine] = None) -> None:
        self.interval = float(interval)
        self.sink = FrameSink(path)
        self.status = status if status is not None else StatusLine()
        self.cells_done = 0
        self._max_t_sim = 0.0

    # -- serial path ----------------------------------------------------------

    def for_cell(self, cell: str) -> CellRecorder:
        """A streaming per-cell recorder (serial execution)."""
        return CellRecorder(cell, interval=self.interval,
                            emit=self._on_frame)

    def _on_frame(self, frame: dict) -> None:
        self.sink.append(frame)
        self._max_t_sim = max(self._max_t_sim, frame.get("t_sim", 0.0))
        wall = frame.get("wall") or {}
        counters = frame.get("counters") or {}
        queues = frame.get("queues") or {}
        rss = wall.get("rss_kb")
        self.status.update(
            f"[record] cell {frame.get('cell')}  "
            f"t={frame.get('t_sim', 0.0) / HOUR_SECONDS:.1f}h  "
            f"events={_fmt_count(counters.get('sim.events_processed', 0))}  "
            f"{_fmt_count(wall.get('events_per_s') or 0)} ev/s  "
            f"pend={queues.get('pending', 0)}  "
            + (f"rss={rss // 1024}MB" if rss else ""))

    # -- pooled path ----------------------------------------------------------

    def merge_frames(self, frames: List[dict], cell: str = "") -> None:
        """Append one completed cell's frames (task order = file order)."""
        for frame in frames:
            self.sink.append(frame)
            self._max_t_sim = max(self._max_t_sim, frame.get("t_sim", 0.0))
        self.cells_done += 1
        self.status.update(f"[record] {self.cells_done} cell(s) merged"
                           + (f", last: {cell}" if cell else ""))

    # -- end of run -----------------------------------------------------------

    def finalize(self, command: str = "",
                 meta: Optional[dict] = None) -> dict:
        """Append the run-final frame (parent registry, everything merged).

        Its cumulative counters equal the ``--obs-out`` report written
        at the same point in the run — both read the same snapshot
        source — which is the property the trajectory tooling and the
        acceptance test pin down.
        """
        snapshot = get_registry().snapshot()
        frame = {
            "schema": FRAMES_SCHEMA,
            "kind": "final",
            "cell": None,
            "seq": self.cells_done,
            "t_sim": self._max_t_sim,
            "command": command,
            "meta": dict(meta or {}),
            "counters": dict(sorted(snapshot.counters.items())),
            "gauges": dict(sorted(snapshot.gauges.items())),
            "queues": {},
            "wall": {"rss_kb": _read_rss_kb()},
        }
        self.sink.append(frame)
        return frame

    def close(self) -> None:
        self.status.close()
        self.sink.close()

    def __enter__(self) -> "RunRecorder":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


# ---------------------------------------------------------------------------
# text rendering (the `stats` per-hour table)
# ---------------------------------------------------------------------------

#: (column header, counter name) pairs rendered as per-interval deltas.
_TABLE_DELTAS = (
    ("+events", "sim.events_processed"),
    ("+sched", "sim.schedule_events"),
    ("+evict", "sim.evictions"),
    ("+restart", "sim.task_restarts"),
)


def render_frames(frames: List[dict]) -> str:
    """Render a frames file as one per-hour table per cell.

    Cumulative counters are differenced frame-to-frame so each row shows
    what happened *in* that interval; queue depths are the live probe
    values at the frame boundary.
    """
    lines: List[str] = []
    cells: Dict[str, List[dict]] = {}
    final: Optional[dict] = None
    for frame in frames:
        if frame.get("kind") == "final":
            final = frame
        else:
            cells.setdefault(str(frame.get("cell")), []).append(frame)
    n_frames = sum(len(v) for v in cells.values())
    lines.append(f"repro.obs frames  (schema {FRAMES_SCHEMA}, "
                 f"{len(cells)} cell(s), {n_frames} frame(s)"
                 + (", final frame present)" if final else ")"))
    header = (f"  {'hour':>6s} {'events':>9s} "
              + " ".join(f"{h:>9s}" for h, _ in _TABLE_DELTAS)
              + f" {'pending':>8s} {'parked':>7s} {'ev/s':>8s}")
    for cell, cell_frames in cells.items():
        lines.append("")
        lines.append(f"cell {cell}:")
        lines.append(header)
        previous: Dict[str, int] = {}
        for frame in cell_frames:
            counters = frame.get("counters") or {}
            queues = frame.get("queues") or {}
            wall = frame.get("wall") or {}
            deltas = [counters.get(name, 0) - previous.get(name, 0)
                      for _, name in _TABLE_DELTAS]
            lines.append(
                f"  {frame.get('t_sim', 0.0) / HOUR_SECONDS:>6.1f} "
                f"{counters.get('sim.events_processed', 0):>9d} "
                + " ".join(f"{d:>9d}" for d in deltas)
                + f" {queues.get('pending', 0):>8d}"
                + f" {queues.get('parked', 0):>7d}"
                + f" {_fmt_count(wall.get('events_per_s') or 0):>8s}")
            previous = counters
    if final is not None:
        lines.append("")
        counters = final.get("counters") or {}
        lines.append("final frame (cumulative, all cells merged):")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<44s} {value}")
    return "\n".join(lines) + "\n"
