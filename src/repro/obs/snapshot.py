"""Plain-data snapshots of a registry: the fork-safe exchange format.

A :class:`Snapshot` is what crosses process boundaries: every field is
built-in-type data (dicts, lists, ints, floats, strings), so it pickles
cheaply and deterministically.  The store executor wraps each chunk task
in a fresh scoped registry and ships the resulting snapshot back with
the payload; the parent merges each snapshot exactly once, in task
order, which is what makes parallel and serial runs agree on every
counter (see the fork-safety test and DESIGN.md §9).

Merge semantics, per metric kind:

* counters — add (exactly-once merging is the caller's job)
* gauges — last-writer-wins in merge order (merge order is
  deterministic: task order, not completion order)
* timers — histogram merge (fixed buckets add; min/max/count/sum exact)
* spans — recursive merge by (parent path, name); child roots graft
  under the parent registry's *currently open* span
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.obs.spans import SpanNode, SpanStructure


@dataclass
class Snapshot:
    """One registry's state as plain data (picklable, JSONable)."""

    counters: Dict[str, int] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    #: name -> TimingHistogram.to_dict() form.
    timers: Dict[str, dict] = field(default_factory=dict)
    #: SpanNode.to_dict() of the root node.
    spans: dict = field(default_factory=lambda: SpanNode("root").to_dict())

    def span_root(self) -> SpanNode:
        return SpanNode.from_dict(self.spans)

    def span_structure(self) -> SpanStructure:
        """Names, nesting, counts, order — no durations.

        Two runs of the same deterministic program must produce equal
        structures; this is the object the determinism sweep compares.
        """
        return self.span_root().structure()

    def to_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {name: dict(data) for name, data in self.timers.items()},
            "spans": self.spans,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Snapshot":
        return cls(
            counters={str(k): int(v) for k, v in data.get("counters", {}).items()},
            gauges={str(k): float(v) for k, v in data.get("gauges", {}).items()},
            timers=dict(data.get("timers", {})),
            spans=data.get("spans", SpanNode("root").to_dict()),
        )
