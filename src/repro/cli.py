"""Command-line interface: simulate cells, validate traces, render reports.

Installed as ``borg-repro``; also runnable as ``python -m repro.cli``.

Subcommands
-----------
simulate
    Simulate one or more cells and write their traces to a directory.
validate
    Run the section-9 invariant pipeline over a saved trace.
report
    Load saved traces (or simulate fresh ones) and print the full
    paper-as-text report.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List

from repro.analysis.report import full_report
from repro.trace import encode_cell, load_trace, save_trace, validate_trace
from repro.workload import scenario_2011, scenarios_2019


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--machines", type=int, default=100,
                        help="machines per cell (default 100)")
    parser.add_argument("--hours", type=float, default=48.0,
                        help="trace horizon in hours (default 48)")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="arrival-rate scale vs the real clusters")
    parser.add_argument("--seed", type=int, default=0)


def _simulate(args) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    cells: List[str] = [c for c in args.cells.split(",") if c]
    for name in cells:
        t0 = time.time()
        if name == "2011":
            scenario = scenario_2011(seed=args.seed,
                                     machines_per_cell=args.machines,
                                     horizon_hours=args.hours,
                                     arrival_scale=args.scale)
        else:
            scenario = scenarios_2019(seed=args.seed,
                                      machines_per_cell=args.machines,
                                      horizon_hours=args.hours,
                                      arrival_scale=args.scale,
                                      cells=[name])[0]
        trace = encode_cell(scenario.run())
        save_trace(trace, out / name)
        print(f"cell {name}: simulated + saved in {time.time() - t0:.0f}s "
              f"({len(trace.instance_usage)} usage rows) -> {out / name}")
    return 0


def _validate(args) -> int:
    trace = load_trace(args.trace_dir)
    violations = validate_trace(trace)
    if not violations:
        print(f"{args.trace_dir}: all invariants hold "
              f"({len(trace.instance_usage)} usage rows checked)")
        return 0
    print(f"{args.trace_dir}: {len(violations)} violations")
    for v in violations[:20]:
        print(f"  {v}")
    return 1


def _report(args) -> int:
    root = Path(args.trace_root)
    dirs = sorted(p for p in root.iterdir() if (p / "metadata.json").exists())
    if not dirs:
        print(f"no traces under {root} (expected subdirectories with "
              "metadata.json; create them with 'borg-repro simulate')",
              file=sys.stderr)
        return 1
    traces_2011, traces_2019 = [], []
    for d in dirs:
        trace = load_trace(d)
        (traces_2011 if trace.era == "2011" else traces_2019).append(trace)
        print(f"loaded {d.name} (era {trace.era})", file=sys.stderr)
    if not traces_2011 or not traces_2019:
        print("the report needs at least one 2011-era and one 2019-era trace",
              file=sys.stderr)
        return 1
    text = full_report(traces_2011, traces_2019)
    if args.out:
        Path(args.out).write_text(text)
        print(f"report written to {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="borg-repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="simulate cells and save traces")
    p_sim.add_argument("--cells", default="2011,a,b,c,d,e,f,g,h",
                       help="comma-separated cells ('2011' and/or a-h)")
    p_sim.add_argument("--out", default="traces",
                       help="output directory (one subdir per cell)")
    _add_scale_args(p_sim)
    p_sim.set_defaults(func=_simulate)

    p_val = sub.add_parser("validate", help="check trace invariants")
    p_val.add_argument("trace_dir", help="directory written by 'simulate'")
    p_val.set_defaults(func=_validate)

    p_rep = sub.add_parser("report", help="render the full paper report")
    p_rep.add_argument("trace_root", help="directory containing cell subdirs")
    p_rep.add_argument("--out", default=None, help="write the report here")
    p_rep.set_defaults(func=_report)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
