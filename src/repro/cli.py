"""Command-line interface: simulate cells, validate traces, render reports.

Installed as ``borg-repro``; also runnable as ``python -m repro.cli``.

Subcommands
-----------
simulate
    Simulate one or more cells and write their traces to a directory
    (CSV or chunked-store format), optionally fanning cells out over
    worker processes with ``--workers``.
validate
    Run the section-9 invariant pipeline over a saved trace.
report
    Load saved traces (or simulate fresh ones) and print the full
    paper-as-text report.
convert
    Re-encode a CSV trace directory as a chunked columnar store (or
    back).
query
    Run a projection + predicate + aggregate against a store straight
    from the command line, optionally over multiple worker processes.
stats
    Render a ``repro.obs`` run report (written with ``--obs-out`` on
    ``simulate`` or ``query``) or a flight-recorder frames file
    (written with ``--record``) as text or JSON.
bench
    Compare the current benchmark run against the committed
    ``BENCH_history/`` (noise-aware, exits nonzero on regression), or
    append a run to the history.
campaign
    Run a declarative parameter-sweep campaign from a JSON spec
    (content-addressed point cache, parallel workers, fault-tolerant),
    probe its cache state, or render the trade-study / Pareto report.
lint
    Run the repo's AST-based static-analysis pass (schema consistency,
    determinism, fork safety, exception hygiene, unit discipline, hot-
    loop guards, plus whole-program flow rules: determinism taint,
    fork-share races, iteration-order stability) over source files or
    directories, with content-hash incremental caching.
"""

from __future__ import annotations

import argparse
import io
import json
import sys
import time
from pathlib import Path
from typing import List, Optional

from repro import obs
from repro.analysis.report import full_report
from repro.campaign import (
    CampaignSpecError,
    build_report,
    campaign_status,
    load_campaign_results,
    load_spec,
    render_report,
    render_report_json,
    run_campaign,
)
from repro.lint import DEFAULT_CACHE_DIR as LINT_CACHE_DIR
from repro.lint import lint_project
from repro.lint import render as render_lint
from repro.lint.reporting import LintRunStats
from repro.obs.profiler import SamplingProfiler
from repro.obs.recorder import (
    FRAMES_SCHEMA,
    DEFAULT_INTERVAL as DEFAULT_RECORD_INTERVAL,
    FrameSchemaError,
    RunRecorder,
    iter_frames,
    render_frames,
)
from repro.obs.regress import (
    DEFAULT_NOISE_FACTOR,
    DEFAULT_THRESHOLD,
    BenchDataError,
    append_history,
    compare_files,
)
from repro.sim.driver import run_cells
from repro.sim.eventq import QUEUE_KINDS
from repro.store import (
    Agg,
    And,
    Between,
    Compare,
    IsIn,
    convert_csv_to_store,
    convert_store_to_csv,
    open_store,
)
from repro.store.writer import DEFAULT_CHUNK_ROWS
from repro.trace import encode_cell, load_trace, save_trace, validate_trace
from repro.trace.io import detect_format
from repro.faults import FAULT_PROFILES
from repro.workload import ARCHETYPE_MIXES, scenario_2011, scenarios_2019


def _add_obs_out_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--obs-out", default=None, metavar="REPORT.json",
                        help="write the repro.obs run report (metrics + "
                             "span trees) here; render it later with "
                             "'borg-repro stats'")


def _write_obs_report(args, command: str, meta: dict,
                      profile: Optional[dict] = None) -> None:
    if not args.obs_out:
        return
    obs.write_report(args.obs_out, command=command, meta=meta, profile=profile)
    print(f"obs report written to {args.obs_out}", file=sys.stderr)


def _add_store_mmap_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store-mmap", dest="store_mmap", default=None,
                        action="store_true",
                        help="serve store chunk reads as zero-copy read-only "
                             "views over a shared mmap (numeric columns "
                             "decode without buffer copies; the mapping is "
                             "shared across --workers)")


def _add_scale_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--machines", type=int, default=100,
                        help="machines per cell (default 100)")
    parser.add_argument("--hours", type=float, default=48.0,
                        help="trace horizon in hours (default 48)")
    parser.add_argument("--scale", type=float, default=0.02,
                        help="arrival-rate scale vs the real clusters")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--faults", default=None, metavar="PROFILE",
                        choices=sorted(FAULT_PROFILES),
                        help="fault-injection profile "
                             f"({', '.join(sorted(FAULT_PROFILES))}; "
                             "default: off)")
    parser.add_argument("--fault-rate", type=float, default=1.0,
                        metavar="SCALE",
                        help="multiplier on the profile's unplanned "
                             "failure rates (default 1.0)")
    parser.add_argument("--archetype-mix", default=None, metavar="MIX",
                        choices=sorted(ARCHETYPE_MIXES),
                        help="additional user-archetype workload "
                             f"({', '.join(sorted(ARCHETYPE_MIXES))}; "
                             "default: none)")


def _simulate(args) -> int:
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    cells: List[str] = [c for c in args.cells.split(",") if c]
    scenarios = []
    for name in cells:
        if name == "2011":
            scenarios.append(scenario_2011(seed=args.seed,
                                           machines_per_cell=args.machines,
                                           horizon_hours=args.hours,
                                           arrival_scale=args.scale,
                                           faults=args.faults,
                                           fault_rate=args.fault_rate,
                                           archetype_mix=args.archetype_mix,
                                           queue=args.queue))
        else:
            scenarios.append(scenarios_2019(seed=args.seed,
                                            machines_per_cell=args.machines,
                                            horizon_hours=args.hours,
                                            arrival_scale=args.scale,
                                            cells=[name],
                                            faults=args.faults,
                                            fault_rate=args.fault_rate,
                                            archetype_mix=args.archetype_mix,
                                            queue=args.queue)[0])
    meta = {"cells": ",".join(cells), "machines": args.machines,
            "hours": args.hours, "scale": args.scale,
            "seed": args.seed, "format": args.format,
            "workers": args.workers, "faults": args.faults,
            "fault_rate": args.fault_rate,
            "archetype_mix": args.archetype_mix,
            "queue": args.queue}
    record: Optional[RunRecorder] = None
    if args.record:
        record = RunRecorder(args.record, interval=args.record_interval)
    profiler: Optional[SamplingProfiler] = None
    profile_payload: Optional[dict] = None
    if args.profile:
        profiler = SamplingProfiler()
        profiler.start()
    try:
        t0 = time.perf_counter()
        results = run_cells(scenarios, workers=args.workers, record=record)
        t_sim = time.perf_counter() - t0
        if record is not None:
            record.status.close()
        parallel = args.workers and args.workers > 1 and len(scenarios) > 1
        mode = (f"{min(args.workers, len(scenarios))} workers" if parallel
                else "serial")
        # Batch wall clock + per-cell row counts, so benchmark regressions
        # in the simulator or the writer are visible straight from the CLI.
        print(f"{len(results)} cell(s) simulated in {t_sim:.1f}s ({mode})")
        for scenario, result in zip(scenarios, results):
            name = scenario.name
            t1 = time.perf_counter()
            trace = encode_cell(result)
            save_trace(trace, out / name, format=args.format)
            t_save = time.perf_counter() - t1
            rows = {tname: len(t) for tname, t in trace.tables.items()}
            print(f"cell {name}: encoded + saved ({args.format}) "
                  f"in {t_save:.1f}s -> {out / name}")
            print(f"cell {name}: rows written: total={sum(rows.values())} "
                  + " ".join(f"{tname}={n}" for tname, n in rows.items()))
    finally:
        if profiler is not None:
            profiler.stop()
    if profiler is not None:
        stacks = profiler.write_collapsed(args.profile)
        print(f"profile: {profiler.sample_count} samples "
              f"({profiler.engine} engine) -> {args.profile} "
              f"({stacks} collapsed stack(s))", file=sys.stderr)
        profile_payload = profiler.to_dict()
    if record is not None:
        # The final frame is sampled after trace encoding, at the same
        # point the obs report is written, so their counters agree.
        record.finalize("simulate", meta)
        record.close()
        print(f"frames written to {record.sink.path} "
              f"({record.sink.frames_written} frame(s)); render with "
              "'borg-repro stats'", file=sys.stderr)
    _write_obs_report(args, "simulate", meta, profile=profile_payload)
    return 0


def _validate(args) -> int:
    trace = load_trace(args.trace_dir, use_mmap=args.store_mmap)
    violations = validate_trace(trace)
    if not violations:
        print(f"{args.trace_dir}: all invariants hold "
              f"({len(trace.instance_usage)} usage rows checked)")
        return 0
    print(f"{args.trace_dir}: {len(violations)} violations")
    for v in violations[:20]:
        print(f"  {v}")
    return 1


def _report(args) -> int:
    root = Path(args.trace_root)
    dirs = sorted(p for p in root.iterdir()
                  if p.is_dir() and detect_format(p) is not None)
    if not dirs:
        print(f"no traces under {root} (expected subdirectories with "
              "metadata.json or manifest.json; create them with "
              "'borg-repro simulate')",
              file=sys.stderr)
        return 1
    traces_2011, traces_2019 = [], []
    for d in dirs:
        trace = load_trace(d, use_mmap=args.store_mmap)
        (traces_2011 if trace.era == "2011" else traces_2019).append(trace)
        print(f"loaded {d.name} (era {trace.era})", file=sys.stderr)
    if not traces_2011 or not traces_2019:
        print("the report needs at least one 2011-era and one 2019-era trace",
              file=sys.stderr)
        return 1
    text = full_report(traces_2011, traces_2019)
    if args.out:
        Path(args.out).write_text(text)
        print(f"report written to {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def _convert(args) -> int:
    t0 = time.perf_counter()
    if args.to == "store":
        store = convert_csv_to_store(args.src, args.dst,
                                     chunk_rows=args.chunk_rows)
        chunks = sum(len(store.manifest.chunks(t)) for t in store.table_names)
        rows = sum(store.rows(t) for t in store.table_names)
        print(f"{args.src} -> {args.dst}: {rows} rows in {chunks} chunks "
              f"({args.chunk_rows} rows/chunk) in {time.perf_counter() - t0:.1f}s")
    else:
        convert_store_to_csv(args.src, args.dst)
        print(f"{args.src} -> {args.dst}: store re-encoded as CSV "
              f"in {time.perf_counter() - t0:.1f}s")
    return 0


def _parse_scalar(text: str):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    return text


def _parse_where(clause: str):
    """One ``--where`` clause -> a pushdown predicate.

    Grammar (whitespace-separated): ``col OP value`` with OP in
    ``== != < <= > >=``, ``col in v1,v2,...``, or
    ``col between LO HI``.
    """
    parts = clause.split()
    if len(parts) == 4 and parts[1] == "between":
        return Between(parts[0], _parse_scalar(parts[2]), _parse_scalar(parts[3]))
    if len(parts) != 3:
        raise SystemExit(f"bad --where clause {clause!r}: expected "
                         "'col OP value', 'col in v1,v2', or 'col between lo hi'")
    column, op, value = parts
    if op == "in":
        return IsIn(column, [_parse_scalar(v) for v in value.split(",") if v])
    return Compare(column, op, _parse_scalar(value))


def _parse_agg(spec: str) -> Agg:
    """``count``, ``kind:column``, or ``histogram:column:e0,e1,...``."""
    parts = spec.split(":")
    if parts[0] == "count" and len(parts) == 1:
        return Agg("count")
    if parts[0] == "histogram":
        if len(parts) != 3:
            raise SystemExit(f"bad --agg {spec!r}: histogram needs "
                             "'histogram:column:edge0,edge1,...'")
        edges = [float(e) for e in parts[2].split(",") if e]
        return Agg("histogram", parts[1], edges=edges)
    if len(parts) != 2:
        raise SystemExit(f"bad --agg {spec!r}: expected 'count', 'kind:column',"
                         " or 'histogram:column:edges'")
    return Agg(parts[0], parts[1])


def _query(args) -> int:
    store = open_store(args.store_dir, use_mmap=args.store_mmap)
    scan = store.scan(args.table)
    predicates = [_parse_where(clause) for clause in args.where or []]
    if predicates:
        scan = scan.where(And(*predicates) if len(predicates) > 1 else predicates[0])
    if args.select:
        scan = scan.select(*[c for c in args.select.split(",") if c])
    workers: Optional[int] = args.workers
    if args.agg:
        aggs = [_parse_agg(spec) for spec in args.agg]
        result = scan.aggregate(*aggs, workers=workers)
        for alias, value in result.items():
            if hasattr(value, "tolist"):
                value = value.tolist()
            print(f"{alias} = {value}")
    else:
        table = scan.to_table(workers=workers)
        print(table.to_string(max_rows=args.limit))
    print(f"scan: {scan.last_stats}", file=sys.stderr)
    print(f"cache: {store.cache.stats}", file=sys.stderr)
    _write_obs_report(args, "query",
                      {"store": str(args.store_dir), "table": args.table,
                       "workers": args.workers})
    return 0


def _stats(args) -> int:
    """Render either supported ``repro.obs`` file format.

    A run report (``repro.obs/1``) is one indented JSON object; a
    flight-recorder frames file (``repro.obs.frames/1``) is JSONL with
    one frame per line.  Anything else — including a *future*
    ``repro.obs*`` schema this build does not know — is a clean error
    on stderr and exit code 2, never a traceback.
    """
    try:
        with open(args.report, "r", encoding="utf-8") as f:
            text = f.read()
    except OSError as exc:
        print(f"stats: {exc}", file=sys.stderr)
        return 2
    try:
        payload = json.loads(text)
    except ValueError:
        payload = None  # multi-line JSONL (or garbage): handled below
    if isinstance(payload, dict) and payload.get("schema") == obs.SCHEMA:
        if args.format == "json":
            json.dump(payload, sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
        else:
            sys.stdout.write(obs.render_report(payload))
        return 0
    if isinstance(payload, dict) and payload.get("schema") != FRAMES_SCHEMA:
        print(f"stats: {args.report}: unsupported repro.obs schema "
              f"{payload.get('schema')!r} (this build renders "
              f"{obs.SCHEMA!r} reports and {FRAMES_SCHEMA!r} frames)",
              file=sys.stderr)
        return 2
    try:
        frames = list(iter_frames(io.StringIO(text), source=str(args.report)))
    except FrameSchemaError as exc:
        print(f"stats: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        json.dump(frames, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        sys.stdout.write(render_frames(frames))
    return 0


def _bench_compare(args) -> int:
    try:
        result = compare_files(args.current, args.history,
                               threshold=args.threshold,
                               noise_factor=args.noise_factor,
                               last=args.last)
    except BenchDataError as exc:
        print(f"bench compare: {exc}", file=sys.stderr)
        return 2
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump(result.to_dict(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"verdict written to {args.json_out}", file=sys.stderr)
    sys.stdout.write(result.render())
    return 0 if result.passed else 1


def _bench_append(args) -> int:
    try:
        entry = append_history(args.history, args.current, label=args.label)
    except (OSError, ValueError) as exc:
        print(f"bench append: {exc}", file=sys.stderr)
        return 2
    print(f"history entry written: {entry}")
    return 0


def _campaign_run(args) -> int:
    try:
        spec = load_spec(args.spec)
    except (OSError, CampaignSpecError) as exc:
        print(f"campaign run: {exc}", file=sys.stderr)
        return 2
    summary = run_campaign(spec, args.out, workers=args.workers,
                           force=args.force)
    print(summary.render())
    if args.summary_out:
        with open(args.summary_out, "w", encoding="utf-8") as f:
            json.dump(summary.to_dict(), f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"run summary written to {args.summary_out}", file=sys.stderr)
    _write_obs_report(args, "campaign run",
                      {"spec": str(args.spec), "out": str(args.out),
                       "workers": args.workers})
    return 0 if summary.ok else 1


def _campaign_status(args) -> int:
    try:
        spec = load_spec(args.spec)
    except (OSError, CampaignSpecError) as exc:
        print(f"campaign status: {exc}", file=sys.stderr)
        return 2
    records = campaign_status(spec, args.out)
    counts = {"hit": 0, "error": 0, "missing": 0}
    for record in records:
        counts[record["state"]] += 1
    if args.json:
        json.dump({"campaign": spec.name, "points": len(records),
                   "hits": counts["hit"], "errors": counts["error"],
                   "missing": counts["missing"]},
                  sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
        return 0
    print(f"campaign {spec.name}: {len(records)} point(s) — "
          f"{counts['hit']} cached, {counts['error']} error(s), "
          f"{counts['missing']} missing")
    for record in records:
        grid = " ".join(f"{k}={v}" for k, v in record["grid"].items())
        print(f"  point {record['point_id']:>3d} seed {record['seed']:>3d} "
              f"[{record['key']}] {record['state']:<7s} {grid}")
    return 0


def _campaign_report(args) -> int:
    try:
        spec = load_spec(args.spec)
    except (OSError, CampaignSpecError) as exc:
        print(f"campaign report: {exc}", file=sys.stderr)
        return 2
    results = load_campaign_results(spec, args.out)
    if not results:
        print(f"campaign report: no cached results for {spec.name} under "
              f"{args.out} (run 'borg-repro campaign run' first)",
              file=sys.stderr)
        return 1
    report = build_report(spec, results)
    text = render_report_json(report) if args.format == "json" \
        else render_report(report)
    if args.report_out:
        Path(args.report_out).write_text(text, encoding="utf-8")
        print(f"report written to {args.report_out}", file=sys.stderr)
    else:
        sys.stdout.write(text)
    return 0


def _lint(args) -> int:
    select = None
    if args.select:
        select = sorted({rule_id.strip().upper()
                         for spec in args.select
                         for rule_id in spec.split(",") if rule_id.strip()})
    try:
        result = lint_project(args.paths, select=select,
                              cache_dir=args.cache_dir,
                              use_cache=not args.no_cache,
                              changed_only=args.changed_only)
    except (OSError, ValueError) as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    run_stats = LintRunStats(
        files_analyzed=result.files_analyzed,
        files_reused=result.files_reused,
        rule_timings={rule_id: hist.summary()
                      for rule_id, hist in result.timings.items()
                      if hist.count})
    return render_lint(result.violations, result.files_total, sys.stdout,
                       format=args.format, statistics=args.statistics,
                       run_stats=run_stats)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="borg-repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_sim = sub.add_parser("simulate", help="simulate cells and save traces")
    p_sim.add_argument("--cells", default="2011,a,b,c,d,e,f,g,h",
                       help="comma-separated cells ('2011' and/or a-h)")
    p_sim.add_argument("--out", default="traces",
                       help="output directory (one subdir per cell)")
    p_sim.add_argument("--format", choices=("csv", "store"), default="csv",
                       help="trace format to write (default csv)")
    p_sim.add_argument("--workers", type=int, default=None,
                       help="worker processes for the parallel multi-cell "
                            "driver (default: serial; one cell per task)")
    p_sim.add_argument("--queue", choices=QUEUE_KINDS, default=None,
                       help="event-queue implementation: 'heap' (binary "
                            "heap) or 'calendar' (bucketed calendar queue); "
                            "both produce bit-identical traces (default: "
                            "module default, normally heap)")
    p_sim.add_argument("--record", nargs="?", const="frames.jsonl",
                       default=None, metavar="FRAMES.jsonl",
                       help="stream flight-recorder frames (one JSONL frame "
                            "per simulated interval per cell) to this file "
                            "(default frames.jsonl); render with "
                            "'borg-repro stats'")
    p_sim.add_argument("--record-interval", type=float,
                       default=DEFAULT_RECORD_INTERVAL, metavar="SECONDS",
                       help="simulated seconds between frames "
                            "(default: one hour)")
    p_sim.add_argument("--profile", nargs="?", const="profile.collapsed",
                       default=None, metavar="STACKS.collapsed",
                       help="sample the run with the zero-dependency "
                            "profiler and write collapsed stacks here "
                            "(default profile.collapsed); the hot-function "
                            "table lands in --obs-out")
    _add_scale_args(p_sim)
    _add_obs_out_arg(p_sim)
    p_sim.set_defaults(func=_simulate)

    p_val = sub.add_parser("validate", help="check trace invariants")
    p_val.add_argument("trace_dir", help="directory written by 'simulate'")
    _add_store_mmap_arg(p_val)
    p_val.set_defaults(func=_validate)

    p_rep = sub.add_parser("report", help="render the full paper report")
    p_rep.add_argument("trace_root", help="directory containing cell subdirs")
    p_rep.add_argument("--out", default=None, help="write the report here")
    _add_store_mmap_arg(p_rep)
    p_rep.set_defaults(func=_report)

    p_conv = sub.add_parser(
        "convert", help="re-encode a CSV trace as a chunked store (or back)")
    p_conv.add_argument("src", help="source trace directory")
    p_conv.add_argument("dst", help="destination directory")
    p_conv.add_argument("--to", choices=("store", "csv"), default="store",
                        help="target format (default store)")
    p_conv.add_argument("--chunk-rows", type=int, default=DEFAULT_CHUNK_ROWS,
                        help=f"rows per chunk (default {DEFAULT_CHUNK_ROWS})")
    p_conv.set_defaults(func=_convert)

    p_query = sub.add_parser(
        "query", help="projection + predicate + aggregate over a store")
    p_query.add_argument("store_dir", help="store directory (see 'convert')")
    p_query.add_argument("table", help="table name, e.g. instance_usage")
    p_query.add_argument("--select", default=None,
                         help="comma-separated columns to project")
    p_query.add_argument("--where", action="append", default=[],
                         metavar="CLAUSE",
                         help="predicate clause 'col OP value' | "
                              "'col in v1,v2' | 'col between lo hi' "
                              "(repeatable; clauses are ANDed and pushed "
                              "down to skip whole chunks)")
    p_query.add_argument("--agg", action="append", default=[], metavar="SPEC",
                         help="aggregate 'count' | 'sum:col' | 'min:col' | "
                              "'max:col' | 'mean:col' | "
                              "'histogram:col:e0,e1,...' (repeatable; "
                              "omit to print matching rows)")
    p_query.add_argument("--workers", type=int, default=None,
                         help="worker processes for the parallel executor "
                              "(default: serial)")
    p_query.add_argument("--limit", type=int, default=10,
                         help="max rows to print without --agg (default 10)")
    _add_store_mmap_arg(p_query)
    _add_obs_out_arg(p_query)
    p_query.set_defaults(func=_query)

    p_stats = sub.add_parser(
        "stats", help="render a repro.obs run report (--obs-out) or a "
                      "flight-recorder frames file (--record)")
    p_stats.add_argument("report", help="report JSON written with --obs-out, "
                                        "or frames JSONL written with --record")
    p_stats.add_argument("--format", choices=("text", "json"), default="text",
                         help="output format (default text)")
    p_stats.set_defaults(func=_stats)

    p_bench = sub.add_parser(
        "bench", help="noise-aware benchmark comparison and history")
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_cmp = bench_sub.add_parser(
        "compare", help="diff a benchmark run against BENCH_history/ "
                        "(exit 1 on regression, 2 on bad input)")
    p_cmp.add_argument("current",
                       help="pytest-benchmark JSON of the current run")
    p_cmp.add_argument("--history", default="BENCH_history",
                       help="history directory (default BENCH_history)")
    p_cmp.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                       help="relative regression threshold "
                            f"(default {DEFAULT_THRESHOLD:g})")
    p_cmp.add_argument("--noise-factor", type=float,
                       default=DEFAULT_NOISE_FACTOR,
                       help="historical-spread multiplier widening the gate "
                            f"(default {DEFAULT_NOISE_FACTOR:g})")
    p_cmp.add_argument("--last", type=int, default=0,
                       help="compare against only the last N history "
                            "entries (default: all)")
    p_cmp.add_argument("--json-out", default=None, metavar="VERDICT.json",
                       help="also write the machine-readable verdict here")
    p_cmp.set_defaults(func=_bench_compare)
    p_app = bench_sub.add_parser(
        "append", help="compact a benchmark run into the next numbered "
                       "history entry")
    p_app.add_argument("current",
                       help="pytest-benchmark JSON of the run to record")
    p_app.add_argument("--history", default="BENCH_history",
                       help="history directory (default BENCH_history)")
    p_app.add_argument("--label", default=None,
                       help="entry label (default: the run's short commit)")
    p_app.set_defaults(func=_bench_append)

    p_camp = sub.add_parser(
        "campaign", help="declarative what-if sweeps with a "
                         "content-addressed point cache")
    camp_sub = p_camp.add_subparsers(dest="campaign_command", required=True)
    p_crun = camp_sub.add_parser(
        "run", help="run a campaign spec (cached points are skipped; "
                    "exit 1 when any point errored)")
    p_crun.add_argument("spec", help="campaign spec JSON (see examples/)")
    p_crun.add_argument("--out", default="campaign_out",
                        help="campaign output directory "
                             "(default campaign_out; one subdir per "
                             "point cache key)")
    p_crun.add_argument("--workers", type=int, default=None,
                        help="worker processes for point fan-out "
                             "(default: serial)")
    p_crun.add_argument("--force", action="store_true",
                        help="re-evaluate every point, ignoring the cache")
    p_crun.add_argument("--summary-out", default=None, metavar="SUMMARY.json",
                        help="write the machine-readable run summary "
                             "(points/hits/ran/errors) here")
    _add_obs_out_arg(p_crun)
    p_crun.set_defaults(func=_campaign_run)
    p_cstat = camp_sub.add_parser(
        "status", help="probe a campaign's cache state without running")
    p_cstat.add_argument("spec", help="campaign spec JSON")
    p_cstat.add_argument("--out", default="campaign_out",
                         help="campaign output directory "
                              "(default campaign_out)")
    p_cstat.add_argument("--json", action="store_true",
                         help="print the counts as JSON")
    p_cstat.set_defaults(func=_campaign_status)
    p_crep = camp_sub.add_parser(
        "report", help="render the trade-study tables and Pareto front "
                       "from cached results")
    p_crep.add_argument("spec", help="campaign spec JSON")
    p_crep.add_argument("--out", default="campaign_out",
                        help="campaign output directory "
                             "(default campaign_out)")
    p_crep.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default text)")
    p_crep.add_argument("--report-out", default=None, metavar="REPORT",
                        help="write the report here instead of stdout")
    p_crep.set_defaults(func=_campaign_report)

    p_lint = sub.add_parser(
        "lint", help="run the repo's static-analysis rules (RPR001-RPR010, "
                     "incl. whole-program flow rules; incremental cache)")
    p_lint.add_argument("paths", nargs="+",
                        help="files or directories to lint (e.g. src/)")
    p_lint.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (default text)")
    p_lint.add_argument("--select", action="append", default=[],
                        metavar="RULES",
                        help="comma-separated rule ids to run "
                             "(default: all; repeatable)")
    p_lint.add_argument("--statistics", action="store_true",
                        help="append per-rule violation counts and wall-time "
                             "histograms (text format)")
    p_lint.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the incremental cache "
                             "(analyze every file)")
    p_lint.add_argument("--changed-only", action="store_true",
                        help="report only files re-analyzed this run "
                             "(changed files + their reverse imports); "
                             "the cache is still updated for the whole tree")
    p_lint.add_argument("--cache-dir", default=LINT_CACHE_DIR,
                        metavar="DIR",
                        help=f"incremental cache directory "
                             f"(default {LINT_CACHE_DIR})")
    p_lint.set_defaults(func=_lint)

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
