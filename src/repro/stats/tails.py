"""Heavy-tail share statistics: the hogs-and-mice decomposition.

The paper's section 7 finding: the top 1% of jobs ("hogs") consume over
99% of all resources, leaving the remaining 99% of jobs as "mice".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


def top_share(samples: Sequence[float], fraction: float) -> float:
    """Fraction of the total carried by the largest ``fraction`` of samples.

    ``top_share(x, 0.01)`` is the paper's "top 1%% jobs load".  At least
    one sample is always counted in the top group so the statistic is
    defined for small samples.
    """
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("top_share requires a non-empty sample")
    if (arr < 0).any():
        raise ValueError("top_share expects non-negative quantities")
    total = arr.sum()
    if total == 0:
        return 0.0
    k = max(1, int(round(arr.size * fraction)))
    top = np.partition(arr, arr.size - k)[arr.size - k:]
    return float(top.sum() / total)


@dataclass(frozen=True)
class HogMouseSplit:
    """Samples partitioned at a top-fraction threshold."""

    threshold: float
    hog_count: int
    mouse_count: int
    hog_load_share: float
    hogs: np.ndarray
    mice: np.ndarray


def split_hogs_mice(samples: Sequence[float], hog_fraction: float = 0.01) -> HogMouseSplit:
    """Partition samples into the largest ``hog_fraction`` and the rest.

    Ties at the threshold are broken so that exactly ``round(n * f)``
    (at least one) samples are hogs, matching the top_share convention.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("split_hogs_mice requires a non-empty sample")
    k = max(1, int(round(arr.size * hog_fraction)))
    order = np.argsort(arr, kind="stable")
    mice_idx, hog_idx = order[:-k], order[-k:]
    hogs = arr[hog_idx]
    mice = arr[mice_idx]
    total = arr.sum()
    return HogMouseSplit(
        threshold=float(hogs.min()) if hogs.size else float("inf"),
        hog_count=int(hogs.size),
        mouse_count=int(mice.size),
        hog_load_share=float(hogs.sum() / total) if total > 0 else 0.0,
        hogs=np.sort(hogs),
        mice=np.sort(mice),
    )
