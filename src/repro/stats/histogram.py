"""Histograms, including the 2019 trace's biased CPU-usage histogram.

The 2019 trace records, for every 5-minute sample of every instance, a
21-element histogram of CPU utilization whose bucket boundaries are
percentile positions biased towards the high end (the tail is what
matters for overload detection and Autopilot).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

#: The percentile positions captured by the 2019 trace's per-sample CPU
#: histogram (21 elements, biased towards high percentiles).
CPU_HISTOGRAM_PERCENTILES: Tuple[float, ...] = (
    0, 10, 20, 30, 40, 50, 60, 70, 80, 90,
    91, 92, 93, 94, 95, 96, 97, 98, 99, 99.9, 100,
)


def histogram(samples: Sequence[float], edges: Sequence[float]) -> np.ndarray:
    """Counts of samples per bucket defined by sorted ``edges``.

    Returns ``len(edges) - 1`` counts; samples outside [edges[0],
    edges[-1]] are clipped into the end buckets so no data is lost.
    """
    edges = np.asarray(edges, dtype=float)
    if edges.ndim != 1 or edges.size < 2:
        raise ValueError("edges must be a 1-D array of at least two values")
    if (np.diff(edges) <= 0).any():
        raise ValueError("edges must be strictly increasing")
    arr = np.clip(np.asarray(samples, dtype=float), edges[0], edges[-1])
    counts, _ = np.histogram(arr, bins=edges)
    return counts


def cpu_usage_histogram(fine_grained_usage: Sequence[float]) -> np.ndarray:
    """The 21-element biased percentile summary of one 5-minute window.

    ``fine_grained_usage`` is the within-window sequence of instantaneous
    CPU usage readings; the result is usage at each of
    :data:`CPU_HISTOGRAM_PERCENTILES` — exactly the encoding the 2019
    trace ships per usage sample.
    """
    arr = np.asarray(fine_grained_usage, dtype=float)
    if arr.size == 0:
        raise ValueError("cpu_usage_histogram requires at least one reading")
    return np.percentile(arr, CPU_HISTOGRAM_PERCENTILES)
