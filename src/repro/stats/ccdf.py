"""Complementary Cumulative Distribution Functions.

The paper's primary visualization: ``Pr{X > x}`` as a function of x
(see its figures 6, 8, 9, 10, 11, 12, 14).  :class:`Ccdf` stores the
sorted sample once and answers point and grid queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Ccdf:
    """An empirical CCDF over a finite sample.

    ``xs`` are the sorted unique sample values; ``probs[i]`` is the
    fraction of samples strictly greater than ``xs[i]``.
    """

    xs: np.ndarray
    probs: np.ndarray
    n_samples: int

    def at(self, x: float) -> float:
        """``Pr{X > x}`` for an arbitrary threshold ``x``."""
        # Number of samples strictly greater than x, via the sorted uniques:
        # find the first unique value > x; its prob entry is exactly what we
        # need *before* that value, so use searchsorted on xs with side
        # 'right' against the sorted sample reconstruction.
        idx = np.searchsorted(self.xs, x, side="right")
        if idx == 0:
            # x below every sample value: count samples > x = those >= xs[0]
            # minus ones equal to values <= x (none), i.e. everything unless
            # x >= xs[0].
            return 1.0 if x < self.xs[0] else float(self.probs[0])
        return float(self.probs[idx - 1])

    def quantile_of_exceedance(self, p: float) -> float:
        """Smallest x with ``Pr{X > x} <= p`` (an inverse-CCDF query)."""
        if not 0 <= p <= 1:
            raise ValueError(f"p must be in [0, 1], got {p}")
        mask = self.probs <= p
        if not mask.any():
            return float(self.xs[-1])
        return float(self.xs[int(np.argmax(mask))])

    def on_grid(self, grid: Sequence[float]) -> np.ndarray:
        """Evaluate the CCDF at every point of ``grid``."""
        return np.asarray([self.at(float(x)) for x in grid])

    def as_series(self) -> Tuple[np.ndarray, np.ndarray]:
        """(x, Pr{X > x}) pairs, ready for plotting or text rendering."""
        return self.xs.copy(), self.probs.copy()


def empirical_ccdf(samples: Sequence[float]) -> Ccdf:
    """Build the empirical CCDF of ``samples``.

    >>> c = empirical_ccdf([1.0, 2.0, 2.0, 5.0])
    >>> c.at(0.5), c.at(1.0), c.at(2.0), c.at(5.0)
    (1.0, 0.75, 0.25, 0.0)
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("empirical_ccdf requires a non-empty sample")
    if np.isnan(arr).any():
        raise ValueError("empirical_ccdf received NaN samples")
    arr = np.sort(arr)
    xs, first_idx = np.unique(arr, return_index=True)
    counts = np.diff(np.append(first_idx, arr.size))
    greater = arr.size - np.cumsum(counts)
    return Ccdf(xs=xs, probs=greater / arr.size, n_samples=int(arr.size))


def ccdf_at(samples: Sequence[float], x: float) -> float:
    """One-shot ``Pr{X > x}`` without building the full structure."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("ccdf_at requires a non-empty sample")
    return float((arr > x).mean())
