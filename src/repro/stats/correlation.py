"""Correlation analyses (paper Figure 13).

The paper buckets jobs by their CPU consumption (1 NCU-hour bins) and
plots the median memory consumption per bucket, finding a Pearson
correlation of 0.97 between bucket center and median NMU-hours.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson product-moment correlation coefficient."""
    a = np.asarray(x, dtype=float)
    b = np.asarray(y, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size < 2:
        raise ValueError("pearson requires at least two points")
    if a.std() == 0 or b.std() == 0:
        raise ValueError("pearson undefined for a constant series")
    return float(np.corrcoef(a, b)[0, 1])


def bucketed_medians(x: Sequence[float], y: Sequence[float],
                     bucket_width: float = 1.0,
                     min_bucket_count: int = 1) -> Tuple[np.ndarray, np.ndarray]:
    """Median of ``y`` within equal-width buckets of ``x``.

    Returns (bucket centers, median y per bucket), skipping buckets with
    fewer than ``min_bucket_count`` points.  This is the exact transform
    behind the paper's Figure 13.
    """
    a = np.asarray(x, dtype=float)
    b = np.asarray(y, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    if a.size == 0:
        raise ValueError("bucketed_medians requires non-empty input")
    if bucket_width <= 0:
        raise ValueError(f"bucket_width must be positive, got {bucket_width}")
    codes = np.floor(a / bucket_width).astype(np.int64)
    centers = []
    medians = []
    for code in np.unique(codes):
        mask = codes == code
        if int(mask.sum()) < min_bucket_count:
            continue
        centers.append((code + 0.5) * bucket_width)
        medians.append(float(np.median(b[mask])))
    return np.asarray(centers), np.asarray(medians)
