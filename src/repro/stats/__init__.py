"""Statistics substrate: the estimators behind every figure and table.

The paper presents its results as Complementary Cumulative Distribution
Functions (CCDFs), power-law (Pareto) tail fits with R² goodness of fit,
squared coefficients of variation (C²), top-k%% load shares ("hogs and
mice"), Pearson correlations of bucketed medians, and the 2019 trace's
21-bucket high-percentile-biased CPU-utilization histograms.  Each of
those lives here as a small, independently tested unit.
"""

from repro.stats.ccdf import Ccdf, ccdf_at, empirical_ccdf
from repro.stats.correlation import bucketed_medians, pearson
from repro.stats.distributions import (
    bounded_pareto_sample,
    pareto_sample,
)
from repro.stats.histogram import CPU_HISTOGRAM_PERCENTILES, cpu_usage_histogram, histogram
from repro.stats.moments import DistributionSummary, squared_cv, summarize
from repro.stats.pareto import ParetoFit, fit_pareto_ccdf, fit_pareto_mle
from repro.stats.tails import HogMouseSplit, split_hogs_mice, top_share

__all__ = [
    "Ccdf",
    "ccdf_at",
    "empirical_ccdf",
    "bucketed_medians",
    "pearson",
    "bounded_pareto_sample",
    "pareto_sample",
    "CPU_HISTOGRAM_PERCENTILES",
    "cpu_usage_histogram",
    "histogram",
    "DistributionSummary",
    "squared_cv",
    "summarize",
    "ParetoFit",
    "fit_pareto_ccdf",
    "fit_pareto_mle",
    "top_share",
    "HogMouseSplit",
    "split_hogs_mice",
]
