"""Pareto (power-law) tail fitting.

The paper fits ``Pr{X > x} = 1/x^alpha`` to "large" jobs — those using
more than 1 resource-hour, excluding the extreme top 0.01% outliers —
via the straight line the CCDF makes on log-log axes, and reports an R²
goodness of fit above 99% (Table 2, Figure 12).  We implement that
regression fit exactly, plus the standard Hill/MLE estimator as a
cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.stats.ccdf import empirical_ccdf


@dataclass(frozen=True)
class ParetoFit:
    """Result of a Pareto tail fit."""

    alpha: float
    r_squared: float
    n_tail: int
    x_min: float
    x_max: float

    def ccdf(self, x: np.ndarray) -> np.ndarray:
        """Model CCDF ``(x / x_min)^-alpha`` for x >= x_min."""
        x = np.asarray(x, dtype=float)
        out = np.power(x / self.x_min, -self.alpha, where=x > 0, out=np.ones_like(x))
        return np.clip(out, 0.0, 1.0)


def _tail(samples: np.ndarray, x_min: float, upper_quantile: float) -> np.ndarray:
    if upper_quantile <= 0 or upper_quantile > 1:
        raise ValueError(f"upper_quantile must be in (0, 1], got {upper_quantile}")
    cutoff = np.quantile(samples, upper_quantile) if upper_quantile < 1 else np.inf
    tail = samples[(samples > x_min) & (samples <= cutoff)]
    return tail


def fit_pareto_ccdf(samples: Sequence[float], x_min: float = 1.0,
                    upper_quantile: float = 0.9999) -> ParetoFit:
    """Fit alpha by least squares on the log-log CCDF (the paper's method).

    ``x_min`` and ``upper_quantile`` default to the paper's choices for
    Table 2: jobs above 1 resource-hour, capped at the 99.99th percentile.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("fit_pareto_ccdf requires a non-empty sample")
    tail = _tail(arr, x_min, upper_quantile)
    if tail.size < 10:
        raise ValueError(
            f"only {tail.size} samples above x_min={x_min}; need >= 10 for a fit"
        )
    c = empirical_ccdf(tail)
    # Drop the final point where the CCDF hits exactly zero (log undefined).
    keep = c.probs > 0
    log_x = np.log(c.xs[keep])
    log_p = np.log(c.probs[keep])
    if log_x.size < 3:
        raise ValueError("too few distinct tail values for a regression fit")
    slope, intercept = np.polyfit(log_x, log_p, deg=1)
    predicted = slope * log_x + intercept
    ss_res = float(((log_p - predicted) ** 2).sum())
    ss_tot = float(((log_p - log_p.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ParetoFit(
        alpha=float(-slope),
        r_squared=r2,
        n_tail=int(tail.size),
        x_min=float(x_min),
        x_max=float(tail.max()),
    )


def fit_pareto_mle(samples: Sequence[float], x_min: float = 1.0,
                   upper_quantile: float = 1.0) -> ParetoFit:
    """Hill / maximum-likelihood estimator for the tail exponent.

    alpha_hat = n / sum(log(x_i / x_min)) over tail samples.  Used as a
    sanity cross-check against the regression fit; R² here is still the
    log-log linearity of the empirical CCDF (so the two fits can be
    compared on the same scale).
    """
    arr = np.asarray(samples, dtype=float)
    tail = _tail(arr, x_min, upper_quantile)
    if tail.size < 10:
        raise ValueError(
            f"only {tail.size} samples above x_min={x_min}; need >= 10 for a fit"
        )
    alpha = tail.size / float(np.log(tail / x_min).sum())
    # Evaluate linearity R² of the empirical CCDF against this alpha.
    c = empirical_ccdf(tail)
    keep = c.probs > 0
    log_x = np.log(c.xs[keep])
    log_p = np.log(c.probs[keep])
    predicted = -alpha * (log_x - np.log(x_min))
    ss_res = float(((log_p - predicted) ** 2).sum())
    ss_tot = float(((log_p - log_p.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return ParetoFit(
        alpha=float(alpha),
        r_squared=r2,
        n_tail=int(tail.size),
        x_min=float(x_min),
        x_max=float(tail.max()),
    )
