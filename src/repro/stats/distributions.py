"""Samplers for the heavy-tailed distributions driving the workload model.

Job resource-hours in the trace follow Pareto(alpha) with alpha < 1
(infinite mean in the unbounded limit).  The workload generator uses a
*bounded* Pareto so that scaled-down simulations stay finite while
preserving the tail exponent over the observable range.
"""

from __future__ import annotations

import numpy as np


def pareto_sample(rng: np.random.Generator, alpha: float, x_min: float, size: int) -> np.ndarray:
    """Unbounded Pareto(alpha) samples with scale ``x_min`` (inverse CDF)."""
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if x_min <= 0:
        raise ValueError(f"x_min must be positive, got {x_min}")
    u = rng.random(size)
    return x_min / np.power(1.0 - u, 1.0 / alpha)


def bounded_pareto_quantile(u, alpha: float, x_min: float, x_max: float):
    """Inverse CDF of the bounded Pareto on [x_min, x_max].

    CDF: F(x) = (1 - (x_min/x)^alpha) / (1 - (x_min/x_max)^alpha).
    Accepts scalar or array ``u`` in [0, 1).
    """
    if alpha <= 0:
        raise ValueError(f"alpha must be positive, got {alpha}")
    if not 0 < x_min < x_max:
        raise ValueError(f"need 0 < x_min < x_max, got {x_min}, {x_max}")
    u = np.asarray(u, dtype=float)
    ratio = (x_min / x_max) ** alpha
    return x_min / np.power(1.0 - u * (1.0 - ratio), 1.0 / alpha)


def bounded_pareto_sample(rng: np.random.Generator, alpha: float, x_min: float,
                          x_max: float, size: int) -> np.ndarray:
    """Bounded Pareto(alpha) on [x_min, x_max] by inverse-CDF sampling."""
    return np.atleast_1d(bounded_pareto_quantile(rng.random(size), alpha, x_min, x_max))


def stratified_uniforms(rng: np.random.Generator, size: int) -> np.ndarray:
    """``size`` uniforms with one sample per equal-width stratum, shuffled.

    A low-discrepancy replacement for iid uniforms: pushing these through
    an inverse CDF yields a sample whose empirical distribution matches
    the target far more tightly than iid draws — crucial when a Pareto
    tail with alpha < 1 carries almost all of the mass, where an iid
    sample's realized mean is dominated by whether the top stratum
    happened to be drawn.  Marginally each value is still Uniform(0, 1).
    """
    if size <= 0:
        return np.empty(0)
    u = (np.arange(size) + rng.random(size)) / size
    rng.shuffle(u)
    return u
