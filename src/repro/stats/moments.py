"""Moments and distribution summaries (paper Table 2).

The paper's headline variability statistic is the squared coefficient of
variation, C² = variance / mean², which is invariant to normalization —
the property that makes 2011-vs-2019 comparisons meaningful despite
different machine-size scalings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np


def squared_cv(samples: Sequence[float]) -> float:
    """C² = variance / mean² (unbiased variance, ddof=1).

    An exponential distribution has C² = 1; the paper measures C² in the
    tens of thousands for Borg job resource-hours.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size < 2:
        raise ValueError("squared_cv requires at least two samples")
    mean = arr.mean()
    if mean == 0:
        raise ValueError("squared_cv undefined for zero-mean sample")
    return float(arr.var(ddof=1) / mean**2)


@dataclass(frozen=True)
class DistributionSummary:
    """The row format of the paper's Table 2."""

    n: int
    median: float
    mean: float
    variance: float
    p90: float
    p99: float
    p999: float
    maximum: float
    top_1pct_share: float
    top_01pct_share: float
    squared_cv: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "n": self.n,
            "median": self.median,
            "mean": self.mean,
            "variance": self.variance,
            "90%ile": self.p90,
            "99%ile": self.p99,
            "99.9%ile": self.p999,
            "maximum": self.maximum,
            "top 1% jobs load": self.top_1pct_share,
            "top 0.1% jobs load": self.top_01pct_share,
            "C^2": self.squared_cv,
        }


def summarize(samples: Sequence[float]) -> DistributionSummary:
    """Compute every Table 2 statistic for one sample.

    Shares are the fraction of the *total* carried by the largest 1%% and
    0.1%% of samples — the paper's hogs-vs-mice decomposition.
    """
    from repro.stats.tails import top_share

    arr = np.asarray(samples, dtype=float)
    if arr.size < 2:
        raise ValueError("summarize requires at least two samples")
    if (arr < 0).any():
        raise ValueError("summarize expects non-negative resource quantities")
    return DistributionSummary(
        n=int(arr.size),
        median=float(np.median(arr)),
        mean=float(arr.mean()),
        variance=float(arr.var(ddof=1)),
        p90=float(np.percentile(arr, 90)),
        p99=float(np.percentile(arr, 99)),
        p999=float(np.percentile(arr, 99.9)),
        maximum=float(arr.max()),
        top_1pct_share=top_share(arr, 0.01),
        top_01pct_share=top_share(arr, 0.001),
        squared_cv=squared_cv(arr),
    )
