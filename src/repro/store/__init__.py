"""``repro.store`` — the chunked columnar trace store (BigQuery stand-in).

The paper's 2019 trace ships as partitioned, clustered BigQuery tables
because month-scale event data cannot be slurped into memory whole.
This package is that idea at laptop scale:

* :mod:`~repro.store.format` — a typed, columnar row-group chunk file;
* :mod:`~repro.store.manifest` — JSON chunk index with per-chunk
  min/max statistics (≈ partition metadata + clustering);
* :mod:`~repro.store.predicates` — picklable filters that prune chunks
  from statistics alone;
* :mod:`~repro.store.scan` — lazy scans with projection and predicate
  pushdown;
* :mod:`~repro.store.executor` — ``multiprocessing`` map of
  scan → filter → partial-aggregate over chunks, with associative merge;
* :mod:`~repro.store.cache` — an LRU of decoded chunks with hit/miss
  counters;
* :mod:`~repro.store.writer` / :mod:`~repro.store.reader` — atomic
  store writing, :class:`TraceStore`, and a lazily-backed
  :class:`~repro.trace.dataset.TraceDataset`;
* :mod:`~repro.store.convert` — CSV layout ↔ store conversion.

Quick tour::

    from repro.store import Agg, Between, Compare, open_store

    store = open_store("traces/d.store")
    busy = (store.scan("instance_usage")
                 .where(Between("start_time", 0, 6 * 3600)
                        & Compare("tier", "==", "prod"))
                 .select("avg_cpu", "duration"))
    result = busy.aggregate(Agg("sum", "avg_cpu"), Agg("count"), workers=4)
    print(result, busy.last_stats)   # ... chunks 3/40 decoded (37 skipped) ...
"""

from repro.store.cache import CacheStats, ChunkCache
from repro.store.convert import convert_csv_to_store, convert_store_to_csv
from repro.store.executor import (
    AGG_KINDS,
    Agg,
    default_workers,
    merge_partials,
    partial_aggregate,
)
from repro.store.format import read_chunk, read_chunk_header, write_chunk
from repro.store.manifest import MANIFEST_FILE, Manifest, chunk_stats
from repro.store.predicates import And, Between, Compare, IsIn, Or, Predicate
from repro.store.reader import StoreBackedTraceDataset, TraceStore, open_store
from repro.store.scan import Scan, ScanStats
from repro.store.writer import (DEFAULT_CHUNK_ROWS, DEFAULT_CLUSTER_BY,
                                write_store)

__all__ = [
    "AGG_KINDS",
    "Agg",
    "And",
    "Between",
    "CacheStats",
    "ChunkCache",
    "Compare",
    "DEFAULT_CHUNK_ROWS",
    "DEFAULT_CLUSTER_BY",
    "IsIn",
    "MANIFEST_FILE",
    "Manifest",
    "Or",
    "Predicate",
    "Scan",
    "ScanStats",
    "StoreBackedTraceDataset",
    "TraceStore",
    "chunk_stats",
    "convert_csv_to_store",
    "convert_store_to_csv",
    "default_workers",
    "merge_partials",
    "open_store",
    "partial_aggregate",
    "read_chunk",
    "read_chunk_header",
    "write_chunk",
    "write_store",
]
