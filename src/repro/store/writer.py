"""Write a :class:`TraceDataset` as a chunked columnar store.

Each table is split into row groups of ``chunk_rows`` rows; every chunk
is one binary file (see :mod:`repro.store.format`) and the manifest
records its per-column min/max statistics.  The whole store is staged in
a temp directory and renamed into place atomically.

Tables whose rows arrive roughly time-ordered (every table the simulator
emits) get tight per-chunk time bounds for free, which is what makes
time-window pushdown effective; ``cluster_by`` can force a sort when
converting foreign data that is not already ordered.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro import obs
from repro.store.format import CHUNK_SUFFIX, write_chunk
from repro.store.manifest import Manifest, chunk_stats
from repro.table.table import Table
from repro.trace.schema import TIME_COLUMNS
from repro.util.fs import atomic_directory

#: Default rows per chunk.  Small enough that a 48-hour cell yields tens
#: of chunks (so pruning has something to skip), large enough that the
#: per-chunk overhead stays negligible.
DEFAULT_CHUNK_ROWS = 8192

#: Default clustering: the event and usage tables are stably sorted by
#: their time column before chunking, exactly like the clustered
#: BigQuery tables the 2019 trace ships as.  The simulator emits usage
#: rows grouped per instance (each group spanning the whole horizon), so
#: *without* this sort every chunk's time range covers the full trace
#: and time-window pushdown can never skip anything.  Derived from the
#: canonical schema: every table with a time column clusters on it.
DEFAULT_CLUSTER_BY: Dict[str, str] = dict(TIME_COLUMNS)


def write_store(trace, directory: Union[str, os.PathLike],
                chunk_rows: int = DEFAULT_CHUNK_ROWS,
                cluster_by: Optional[Dict[str, str]] = DEFAULT_CLUSTER_BY) -> None:
    """Persist ``trace`` (a :class:`TraceDataset`) under ``directory``.

    ``cluster_by`` maps table name -> column to stably sort by before
    chunking (BigQuery-style clustering; tables without their listed
    column, and unlisted tables, keep their row order).  Pass ``None``
    or ``{}`` to preserve the exact input row order everywhere.
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    meta = {
        "cell": trace.cell,
        "era": trace.era,
        "horizon": trace.horizon,
        "sample_period": trace.sample_period,
        "utc_offset_hours": trace.utc_offset_hours,
        "capacity_cpu": trace.capacity_cpu,
        "capacity_mem": trace.capacity_mem,
    }
    cluster_by = cluster_by or {}
    with obs.span("store.write"), atomic_directory(directory) as tmp:
        manifest = Manifest.new(meta, chunk_rows)
        for name, table in trace.tables.items():
            key = cluster_by.get(name)
            if key is not None and key in table and len(table) > 1:
                table = table.sort(key)
            _write_table(manifest, tmp, name, table, chunk_rows)
        manifest.save(tmp)


def _write_table(manifest: Manifest, root: Path, name: str, table: Table,
                 chunk_rows: int) -> None:
    columns = [{"name": n, "kind": table.column(n).kind}
               for n in table.column_names]
    manifest.add_table(name, columns)
    if len(table) == 0:
        return
    table_dir = root / name
    table_dir.mkdir()
    n_chunks = (len(table) + chunk_rows - 1) // chunk_rows
    for i in range(n_chunks):
        lo = i * chunk_rows
        hi = min(lo + chunk_rows, len(table))
        chunk = table.take(np.arange(lo, hi))
        file = f"{name}/chunk-{i:05d}{CHUNK_SUFFIX}"
        nbytes = write_chunk(chunk, root / file)
        registry = obs.get_registry()
        registry.inc("store.chunks_written")
        registry.inc("store.bytes_written", nbytes)
        registry.inc("store.rows_written", len(chunk))
        manifest.add_chunk(name, file, len(chunk), chunk_stats(chunk))
