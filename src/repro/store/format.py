"""The on-disk chunk format: one binary file per row group.

A chunk file holds a horizontal slice of one trace table, encoded
column-by-column so that a reader can decode a *projection* (a subset of
columns) without touching the bytes of the others — the columnar half of
the BigQuery substitution (see DESIGN.md §9 note).

Layout::

    8 bytes   magic ``RSTORE1\\n``
    8 bytes   little-endian uint64: header length H
    H bytes   UTF-8 JSON header
    ...       column payloads, in header order

The JSON header records, per column, its ``name``, ``kind`` (one of the
four :class:`~repro.table.column.Column` kinds) and payload byte length,
so a reader can seek straight to any column.  Payload encodings:

* ``float`` — raw little-endian ``float64`` (``inf``/``nan`` round-trip
  exactly, unlike CSV text)
* ``int``   — raw little-endian ``int64``
* ``bool``  — one ``uint8`` per value
* ``str``   — ``n + 1`` little-endian ``int64`` offsets, then the
  concatenated UTF-8 bytes of all values

Two read paths share the decoder:

* **buffered** (default) — ``open`` + ``read``/``seek``; every wanted
  payload is copied into process memory once.
* **mmap** (``use_mmap=True`` or :func:`set_default_mmap`) — the file is
  memory-mapped and numeric columns become *read-only zero-copy views*
  over the mapped pages; nothing is copied until a page is actually
  touched.  The map is kept alive by the views' buffer references (no
  explicit close — closing a map with live views would raise
  ``BufferError``), and because the pages live in the OS page cache they
  are physically shared across ``--workers`` scan processes mapping the
  same chunk.
"""

from __future__ import annotations

import io
import json
import mmap
import os
import struct
from typing import BinaryIO, List, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.table.column import KINDS, Column
from repro.table.table import Table
from repro.util.errors import SchemaError

MAGIC = b"RSTORE1\n"
CHUNK_SUFFIX = ".rsc"

_LEN = struct.Struct("<Q")

_DEFAULT_MMAP = False


def set_default_mmap(enabled: bool) -> None:
    """Set what ``read_chunk(..., use_mmap=None)`` resolves to.

    Harness-level hook (CLI flag, conftest) — library code defaults to
    the buffered path so behavior only changes when explicitly asked.
    """
    global _DEFAULT_MMAP
    _DEFAULT_MMAP = bool(enabled)


def get_default_mmap() -> bool:
    """The current default for the mmap read path (``False`` unless set)."""
    return _DEFAULT_MMAP


def _encode_column(column: Column) -> bytes:
    kind = column.kind
    values = column.values
    if kind == "float":
        return values.astype("<f8").tobytes()
    if kind == "int":
        return values.astype("<i8").tobytes()
    if kind == "bool":
        return values.astype(np.uint8).tobytes()
    blobs = [v.encode("utf-8") for v in values]
    offsets = np.zeros(len(blobs) + 1, dtype="<i8")
    np.cumsum([len(b) for b in blobs], out=offsets[1:])
    return offsets.tobytes() + b"".join(blobs)


def _decode_column(kind: str, rows: int,
                   payload: Union[bytes, memoryview]) -> Column:
    # ``payload`` is bytes (buffered path) or a memoryview over the
    # mapped region (mmap path).  ``<f8``/``<i8`` ARE float64/int64 on
    # every platform we target (little-endian), so frombuffer's view
    # needs no ``astype`` copy — the Column wraps the (read-only) view
    # directly; only ``bool`` genuinely converts (uint8 -> bool).
    if kind not in KINDS:
        raise SchemaError(f"chunk column has unknown kind {kind!r}; "
                          f"this reader understands {KINDS}")
    if kind == "float":
        return Column(np.frombuffer(payload, dtype="<f8", count=rows)
                      .astype(np.float64, copy=False))
    if kind == "int":
        return Column(np.frombuffer(payload, dtype="<i8", count=rows)
                      .astype(np.int64, copy=False))
    if kind == "bool":
        return Column(np.frombuffer(payload, dtype=np.uint8, count=rows)
                      .astype(bool))
    offsets = np.frombuffer(payload, dtype="<i8", count=rows + 1)
    # Strings decode to fresh Python objects either way; one bytes()
    # conversion keeps the slicing loop off memoryview objects.
    blob = bytes(payload[(rows + 1) * 8:])
    out = np.empty(rows, dtype=object)
    for i in range(rows):
        out[i] = blob[offsets[i]:offsets[i + 1]].decode("utf-8")
    return Column(out)


def write_chunk(table: Table, dest: Union[str, os.PathLike, BinaryIO]) -> int:
    """Serialize ``table`` as one chunk; returns the bytes written."""
    payloads = []
    header_cols = []
    for name in table.column_names:
        column = table.column(name)
        payload = _encode_column(column)
        payloads.append(payload)
        header_cols.append({"name": name, "kind": column.kind,
                            "nbytes": len(payload)})
    header = json.dumps({"rows": len(table), "columns": header_cols},
                        separators=(",", ":")).encode("utf-8")
    blob = MAGIC + _LEN.pack(len(header)) + header + b"".join(payloads)
    if hasattr(dest, "write"):
        dest.write(blob)
    else:
        with open(dest, "wb") as f:
            f.write(blob)
    return len(blob)


def read_chunk_header(source: Union[str, os.PathLike, BinaryIO]) -> dict:
    """The JSON header of a chunk file (no column payloads decoded)."""
    if hasattr(source, "read"):
        return _read_header(source)
    with open(source, "rb") as f:
        return _read_header(f)


def _read_header(f: BinaryIO) -> dict:
    magic = f.read(len(MAGIC))
    if magic != MAGIC:
        raise SchemaError(f"not a repro store chunk (bad magic {magic!r})")
    (header_len,) = _LEN.unpack(f.read(_LEN.size))
    return json.loads(f.read(header_len).decode("utf-8"))


def read_chunk(source: Union[str, os.PathLike, BinaryIO],
               columns: Optional[Sequence[str]] = None,
               use_mmap: Optional[bool] = None) -> Table:
    """Decode a chunk file into a :class:`Table`.

    ``columns``, if given, selects and orders a projection; the payloads
    of unrequested columns are skipped with seeks (buffered path) or
    simply never touched (mmap path).  ``use_mmap=None`` resolves to the
    module default (:func:`set_default_mmap`); file-like sources always
    use the buffered path since they need not be mappable.
    """
    if hasattr(source, "read"):
        return _read_chunk(source, columns)
    resolved = _DEFAULT_MMAP if use_mmap is None else use_mmap
    if resolved:
        return _read_chunk_mapped(source, columns)
    with open(source, "rb") as f:
        return _read_chunk(f, columns)


def _read_chunk(f: BinaryIO, columns: Optional[Sequence[str]]) -> Table:
    header = _read_header(f)
    rows = header["rows"]
    available = {c["name"]: c for c in header["columns"]}
    wanted: List[str] = list(columns) if columns is not None else list(available)
    for name in wanted:
        if name not in available:
            raise SchemaError(
                f"chunk has no column {name!r}; available: {sorted(available)}"
            )
    # Single pass: seek past unwanted payloads, read wanted ones.
    decoded = {}
    bytes_read = 0
    wanted_set = set(wanted)
    for meta in header["columns"]:
        if meta["name"] in wanted_set:
            payload = f.read(meta["nbytes"])
            bytes_read += len(payload)
            decoded[meta["name"]] = _decode_column(meta["kind"], rows, payload)
        else:
            f.seek(meta["nbytes"], io.SEEK_CUR)
    registry = obs.get_registry()
    registry.inc("store.chunks_read")
    registry.inc("store.bytes_read", bytes_read)
    return Table({name: decoded[name] for name in wanted})


def _read_chunk_mapped(path: Union[str, os.PathLike],
                       columns: Optional[Sequence[str]]) -> Table:
    """The zero-copy read path: decode columns as views over an mmap.

    The map object is deliberately *not* closed: every numeric column is
    a numpy view holding a buffer reference into it, and closing a map
    with exported buffers raises ``BufferError``.  The map (and its file
    handle) is released by refcounting once the last view dies.
    """
    with open(path, "rb") as f:
        mapped = mmap.mmap(f.fileno(), 0, access=mmap.ACCESS_READ)
    if mapped[:len(MAGIC)] != MAGIC:
        raise SchemaError(
            f"not a repro store chunk (bad magic {mapped[:len(MAGIC)]!r})")
    (header_len,) = _LEN.unpack_from(mapped, len(MAGIC))
    base = len(MAGIC) + _LEN.size
    header = json.loads(bytes(mapped[base:base + header_len]).decode("utf-8"))
    rows = header["rows"]
    available = {c["name"]: c for c in header["columns"]}
    wanted: List[str] = list(columns) if columns is not None else list(available)
    for name in wanted:
        if name not in available:
            raise SchemaError(
                f"chunk has no column {name!r}; available: {sorted(available)}"
            )
    view = memoryview(mapped)
    decoded = {}
    bytes_mapped = 0
    wanted_set = set(wanted)
    offset = base + header_len
    for meta in header["columns"]:
        if meta["name"] in wanted_set:
            payload = view[offset:offset + meta["nbytes"]]
            bytes_mapped += meta["nbytes"]
            decoded[meta["name"]] = _decode_column(meta["kind"], rows, payload)
        offset += meta["nbytes"]
    registry = obs.get_registry()
    registry.inc("store.chunks_read")
    registry.inc("store.chunks_mapped")
    registry.inc("store.bytes_mapped", bytes_mapped)
    return Table({name: decoded[name] for name in wanted})
