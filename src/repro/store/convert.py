"""Conversions between the CSV trace layout and the chunked store.

``convert_csv_to_store`` is what ``borg-repro convert`` runs: read a
directory written by ``save_trace(..., format="csv")`` and re-encode it
as a chunked columnar store (atomically).  The reverse direction exists
for interoperability with the 2011-style CSV tooling.

Imports of :mod:`repro.trace.io` are deferred into the functions because
``trace.io`` itself imports the store writer/reader (the two layers are
mutually aware by design, like BigQuery's load/export paths).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Union

from repro.store.reader import TraceStore
from repro.store.writer import (DEFAULT_CHUNK_ROWS, DEFAULT_CLUSTER_BY,
                                write_store)


def convert_csv_to_store(src: Union[str, os.PathLike],
                         dst: Union[str, os.PathLike],
                         chunk_rows: int = DEFAULT_CHUNK_ROWS,
                         cluster_by: Optional[Dict[str, str]] = DEFAULT_CLUSTER_BY) -> TraceStore:
    """Re-encode a CSV trace directory as a store; returns it opened."""
    from repro.trace.io import load_trace

    trace = load_trace(src, format="csv")
    write_store(trace, dst, chunk_rows=chunk_rows, cluster_by=cluster_by)
    return TraceStore(dst)


def convert_store_to_csv(src: Union[str, os.PathLike],
                         dst: Union[str, os.PathLike]) -> None:
    """Materialize a store back into the flat CSV layout."""
    from repro.trace.io import save_trace

    trace = TraceStore(src).to_dataset()
    save_trace(trace, dst, format="csv")
