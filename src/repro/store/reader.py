"""Reading a store: :class:`TraceStore` and the lazily-backed dataset.

``TraceStore`` is the query entry point — open the manifest, build
:class:`~repro.store.scan.Scan` objects, materialize tables.  Decoded
chunks are served through an LRU :class:`~repro.store.cache.ChunkCache`,
so repeated analyses over the same store mostly hit memory.

``StoreBackedTraceDataset`` makes a store quack like a fully-loaded
:class:`~repro.trace.dataset.TraceDataset`: every existing analysis
works unchanged, but each table is decoded only on first access.
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.store.cache import ChunkCache
from repro.store.manifest import Manifest
from repro.store.format import get_default_mmap, read_chunk
from repro.store.scan import Scan
from repro.table.column import Column
from repro.table.table import Table, concat

_EMPTY_ARRAYS = {
    "float": lambda: np.empty(0, dtype=np.float64),
    "int": lambda: np.empty(0, dtype=np.int64),
    "bool": lambda: np.empty(0, dtype=bool),
    "str": lambda: np.empty(0, dtype=object),
}


class TraceStore:
    """One on-disk chunked columnar store (one cell's trace)."""

    def __init__(self, directory: Union[str, os.PathLike],
                 cache_chunks: int = 64,
                 use_mmap: Optional[bool] = None):
        self.path = Path(directory)
        self.manifest = Manifest.load(self.path)
        self.cache = ChunkCache(cache_chunks)
        #: Resolved once at open time (``None`` -> the module default),
        #: so every chunk this store decodes — serial or shipped to a
        #: worker pool — takes the same read path.
        self.use_mmap = get_default_mmap() if use_mmap is None else use_mmap

    # -- metadata ------------------------------------------------------------

    @property
    def meta(self) -> dict:
        return self.manifest.meta

    @property
    def table_names(self) -> List[str]:
        return self.manifest.table_names

    def rows(self, table: str) -> int:
        return self.manifest.rows(table)

    def chunk_path(self, file: str) -> Path:
        return self.path / file

    # -- chunk access (cached) ----------------------------------------------

    def load_chunk(self, table: str, file: str,
                   columns: Optional[Sequence[str]] = None) -> Table:
        """Decode one chunk (projected), via the LRU cache."""
        key = (table, file, tuple(columns) if columns is not None else None)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        decoded = read_chunk(self.chunk_path(file), columns,
                             use_mmap=self.use_mmap)
        self.cache.put(key, decoded)
        return decoded

    def empty_table(self, table: str,
                    columns: Optional[Sequence[str]] = None) -> Table:
        """A zero-row table with the manifest's column kinds preserved."""
        kinds = self.manifest.column_kinds(table)
        names = list(columns) if columns is not None \
            else self.manifest.column_names(table)
        return Table({n: Column(_EMPTY_ARRAYS[kinds[n]]()) for n in names})

    # -- queries -------------------------------------------------------------

    def scan(self, table: str) -> Scan:
        """A lazy scan over ``table`` (compose with select/where)."""
        self.manifest.table(table)  # raise early on unknown tables
        return Scan(self, table)

    def read_table(self, table: str,
                   columns: Optional[Sequence[str]] = None) -> Table:
        """Materialize a whole table (optionally projected)."""
        chunks = self.manifest.chunks(table)
        if not chunks:
            return self.empty_table(table, columns)
        wanted = tuple(columns) if columns is not None else None
        parts = [self.load_chunk(table, c["file"], wanted) for c in chunks]
        return concat(parts)

    def to_dataset(self) -> "StoreBackedTraceDataset":
        """A lazy :class:`TraceDataset` view over this store."""
        return StoreBackedTraceDataset(tables=_LazyTables(self), store=self,
                                       **self.meta)

    def __repr__(self) -> str:
        rows = {name: self.rows(name) for name in self.table_names}
        return f"TraceStore({str(self.path)!r}, rows={rows})"


def open_store(directory: Union[str, os.PathLike],
               cache_chunks: int = 64,
               use_mmap: Optional[bool] = None) -> TraceStore:
    """Open an existing store directory.

    ``use_mmap=True`` serves chunk reads as read-only zero-copy views
    over memory-mapped files (``None`` defers to the library default).
    """
    return TraceStore(directory, cache_chunks=cache_chunks, use_mmap=use_mmap)


class _LazyTables(Mapping):
    """Mapping of table name -> Table that decodes on first access."""

    def __init__(self, store: TraceStore):
        self._store = store
        self._loaded: Dict[str, Table] = {}

    def __getitem__(self, name: str) -> Table:
        if name not in self._loaded:
            self._loaded[name] = self._store.read_table(name)
        return self._loaded[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._store.table_names)

    def __len__(self) -> int:
        return len(self._store.table_names)

    @property
    def loaded_tables(self) -> List[str]:
        """Names decoded so far (observability for tests and tuning)."""
        return sorted(self._loaded)


# Imported late to dodge the repro.trace <-> repro.store import cycle
# (trace.io imports the writer/reader; the dataset only needs the class).
from repro.trace.dataset import SCHEMA_2019, TraceDataset  # noqa: E402


@dataclass
class StoreBackedTraceDataset(TraceDataset):
    """A TraceDataset whose tables decode lazily from a store."""

    store: Optional[TraceStore] = None

    def __post_init__(self):
        # Validate against the manifest instead of materializing tables;
        # report every mismatched table at once.
        problems = []
        for name, columns in SCHEMA_2019.items():
            if name not in self.store.manifest.table_names:
                problems.append(f"missing table {name!r}")
                continue
            got = self.store.manifest.column_names(name)
            if got != columns:
                problems.append(
                    f"table {name!r} has columns {got}, expected {columns}"
                )
        if problems:
            raise ValueError("; ".join(problems))

    @property
    def loaded_tables(self) -> List[str]:
        return self.tables.loaded_tables  # type: ignore[union-attr]

    def __repr__(self) -> str:
        sizes = {name: self.store.rows(name) for name in self.store.table_names}
        return (f"StoreBackedTraceDataset(cell={self.cell!r}, era={self.era}, "
                f"rows={sizes}, loaded={self.loaded_tables})")
