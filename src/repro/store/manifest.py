"""The store manifest: schema, chunk index, and per-chunk statistics.

The manifest is the store's substitute for BigQuery partition metadata:
a single JSON document listing, for every table, its column schema and
every chunk file with per-column ``min``/``max`` statistics.  Scans
consult these statistics to skip whole chunks before decoding a single
value (the "clustering" half of the substitution — see DESIGN.md).

Statistics are kept for every non-boolean column (numeric min/max, and
lexicographic min/max for strings), which subsumes the four columns the
paper's queries partition on: ``time``, ``collection_id``, ``tier`` and
``priority``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.table.table import Table
from repro.util.errors import SchemaError

MANIFEST_FILE = "manifest.json"
FORMAT_NAME = "repro-store"
FORMAT_VERSION = 1


def chunk_stats(table: Table) -> Dict[str, Dict[str, object]]:
    """Per-column ``{"min": ..., "max": ...}`` for one chunk's rows.

    Boolean columns are skipped (two values carry no pruning power);
    empty tables yield no statistics.
    """
    stats: Dict[str, Dict[str, object]] = {}
    if len(table) == 0:
        return stats
    for name in table.column_names:
        column = table.column(name)
        if column.kind == "bool":
            continue
        if column.kind == "str":
            stats[name] = {"min": str(column.min()), "max": str(column.max())}
        elif column.kind == "int":
            stats[name] = {"min": int(column.min()), "max": int(column.max())}
        else:
            # NaN-aware bounds: plain min/max would record NaN, and every
            # range test against NaN is False — the chunk would be pruned
            # even though its other rows match.  All-NaN columns get no
            # stats at all (nothing can be proven about them).
            lo = float(np.nanmin(column.values)) if not np.isnan(column.values).all() else None
            if lo is not None:
                stats[name] = {"min": lo, "max": float(np.nanmax(column.values))}
    return stats


class Manifest:
    """Parsed view of a store's ``manifest.json``."""

    def __init__(self, data: dict, root: Optional[Path] = None):
        if data.get("format") != FORMAT_NAME:
            raise SchemaError(
                f"not a {FORMAT_NAME} manifest (format={data.get('format')!r})"
            )
        if data.get("version", 0) > FORMAT_VERSION:
            raise SchemaError(
                f"store version {data['version']} is newer than this "
                f"reader (understands <= {FORMAT_VERSION})"
            )
        self.data = data
        self.root = root

    # -- construction --------------------------------------------------------

    @classmethod
    def new(cls, meta: dict, chunk_rows: int) -> "Manifest":
        return cls({
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "chunk_rows": chunk_rows,
            "meta": dict(meta),
            "tables": {},
        })

    @classmethod
    def load(cls, directory: Union[str, os.PathLike]) -> "Manifest":
        root = Path(directory)
        path = root / MANIFEST_FILE
        if not path.exists():
            raise SchemaError(f"no store manifest at {path}")
        with open(path) as f:
            return cls(json.load(f), root=root)

    def save(self, directory: Union[str, os.PathLike]) -> None:
        with open(Path(directory) / MANIFEST_FILE, "w") as f:
            json.dump(self.data, f, indent=1)

    # -- registration (writer side) -----------------------------------------

    def add_table(self, name: str, columns: List[Dict[str, str]]) -> None:
        self.data["tables"][name] = {"columns": columns, "rows": 0, "chunks": []}

    def add_chunk(self, table: str, file: str, rows: int,
                  stats: Dict[str, Dict[str, object]]) -> None:
        entry = self.data["tables"][table]
        entry["chunks"].append({"file": file, "rows": rows, "stats": stats})
        entry["rows"] += rows

    # -- reader side ---------------------------------------------------------

    @property
    def meta(self) -> dict:
        return self.data["meta"]

    @property
    def chunk_rows(self) -> int:
        return self.data["chunk_rows"]

    @property
    def table_names(self) -> List[str]:
        return list(self.data["tables"])

    def table(self, name: str) -> dict:
        try:
            return self.data["tables"][name]
        except KeyError:
            raise SchemaError(
                f"store has no table {name!r}; available: {self.table_names}"
            ) from None

    def column_names(self, table: str) -> List[str]:
        return [c["name"] for c in self.table(table)["columns"]]

    def column_kinds(self, table: str) -> Dict[str, str]:
        return {c["name"]: c["kind"] for c in self.table(table)["columns"]}

    def chunks(self, table: str) -> List[dict]:
        return self.table(table)["chunks"]

    def rows(self, table: str) -> int:
        return self.table(table)["rows"]
